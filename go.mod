module graftmatch

go 1.22
