// BenchmarkHotLoopAllocs pins the allocation behavior of the hot phase and
// superstep loops that hotpath-alloc polices: the shared-memory MS-BFS-Graft
// engine (per-phase counter scratch), PF and push-relabel (round-invariant
// parallel bodies and activation lists), and the distributed engine under
// fault injection (superstep closures and transport scratch). Run with
//
//	go test -bench=HotLoopAllocs -benchmem -run=^$ .
//
// and compare allocs/op; EXPERIMENTS.md records the before/after of the
// hoists on the small-scale RMAT instance.
package graftmatch_test

import (
	"testing"

	"graftmatch/internal/dist"
	"graftmatch/internal/exps"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/obs"
)

func BenchmarkHotLoopAllocs(b *testing.B) {
	var inst *exps.Instance
	for i := range benchSuite {
		if benchSuite[i].Name == "RMAT" {
			inst = &benchSuite[i]
		}
	}
	if inst == nil {
		b.Fatal("RMAT instance missing from suite")
	}
	g := inst.Graph
	base := matchinit.Greedy(g)
	p := fullThreads()

	for _, algo := range []exps.Algo{exps.AlgoGraft, exps.AlgoPF, exps.AlgoPR} {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = exps.Run(algo, g, p)
			}
		})
	}
	// The engines are always instrumented; the plain runs above exercise the
	// nil-recorder (no-op) path. This variant attaches a live recorder so
	// the observability tax is directly comparable — the acceptance bar is
	// allocs/op identical to the nil-recorder run (handles are registered
	// once, phase-boundary recording is alloc-free) and wall time within a
	// few percent.
	b.Run("Graft-live-recorder", func(b *testing.B) {
		b.ReportAllocs()
		rec := obs.New(obs.Config{Workers: p})
		b.ResetTimer() // recorder construction (the span ring) is one-time, not per-run cost
		for i := 0; i < b.N; i++ {
			_ = exps.RunWith(exps.AlgoGraft, g, p, rec)
		}
	})
	b.Run("Dist-faulty", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := base.Clone()
			_ = dist.Run(g, m, dist.Options{Ranks: 4, Grafting: true,
				Faults: &dist.Faults{Seed: 1, Drop: 0.1, Duplicate: 0.05}})
		}
	})
}
