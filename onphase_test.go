package graftmatch

import (
	"context"
	"testing"

	"graftmatch/internal/dist"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
)

// phaseLog collects OnPhase callbacks and checks the cross-engine contract:
// phase numbers count 1, 2, 3, ... and cardinality never decreases
// (augmenting-path and push-relabel engines both only grow the matching).
type phaseLog struct {
	phases []int64
	cards  []int64
}

func (l *phaseLog) hook() func(phase, card int64) {
	return func(phase, card int64) {
		l.phases = append(l.phases, phase)
		l.cards = append(l.cards, card)
	}
}

func (l *phaseLog) check(t *testing.T, name string) {
	t.Helper()
	if len(l.phases) == 0 {
		t.Fatalf("%s: OnPhase never fired", name)
	}
	for i, p := range l.phases {
		if p != int64(i+1) {
			t.Fatalf("%s: phase %d reported as %d; want consecutive from 1 (%v)", name, i+1, p, l.phases)
		}
	}
	for i := 1; i < len(l.cards); i++ {
		if l.cards[i] < l.cards[i-1] {
			t.Fatalf("%s: cardinality shrank %d -> %d at phase %d (%v)",
				name, l.cards[i-1], l.cards[i], i+1, l.cards)
		}
	}
}

// onPhaseGraph is sparse enough (from an empty matching) that every engine
// needs several phases, so ordering and monotonicity are actually exercised.
func onPhaseGraph() *Graph { return gen.ER(400, 400, 1200, 3) }

var onPhaseAlgos = []Algorithm{MSBFSGraft, PothenFan, PushRelabel}

// Every context engine reachable through the facade must fire OnPhase with
// consecutive phase numbers, monotone cardinality, and a final report that
// matches the returned result.
func TestOnPhaseOrderingFacadeEngines(t *testing.T) {
	g := onPhaseGraph()
	for _, algo := range onPhaseAlgos {
		var log phaseLog
		res, err := Match(g, Options{
			Algorithm:   algo,
			Initializer: NoInit,
			Threads:     2,
			OnPhase:     log.hook(),
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Complete {
			t.Fatalf("%s: incomplete", algo)
		}
		log.check(t, algo.String())
		last := log.cards[len(log.cards)-1]
		if algo == PushRelabel {
			// PR fires the hook at global relabels; pushes after the final
			// relabel may still grow the matching before termination.
			if last > res.Cardinality {
				t.Errorf("%s: last OnPhase cardinality %d > final %d", algo, last, res.Cardinality)
			}
		} else if last != res.Cardinality {
			t.Errorf("%s: last OnPhase cardinality %d != final %d", algo, last, res.Cardinality)
		}
		if lastPhase := log.phases[len(log.phases)-1]; lastPhase != res.Stats.Phases {
			t.Errorf("%s: last OnPhase phase %d != stats phases %d", algo, lastPhase, res.Stats.Phases)
		}
	}
}

// The distributed engine shares the same OnPhase contract.
func TestOnPhaseOrderingDist(t *testing.T) {
	g := onPhaseGraph()
	var log phaseLog
	m := matching.New(g.NX(), g.NY())
	s := dist.Run(g, m, dist.Options{Ranks: 4, Grafting: true, OnPhase: log.hook()})
	if !s.Complete {
		t.Fatal("dist: incomplete")
	}
	log.check(t, "dist")
	if last := log.cards[len(log.cards)-1]; last != s.FinalCardinality {
		t.Errorf("dist: last OnPhase cardinality %d != final %d", last, s.FinalCardinality)
	}
	if lastPhase := log.phases[len(log.phases)-1]; lastPhase != s.Phases {
		t.Errorf("dist: last OnPhase phase %d != stats phases %d", lastPhase, s.Phases)
	}
}

// Cancelling from inside the OnPhase hook must stop each facade engine at
// that boundary: partial Complete=false result, nil error, valid matching,
// and no OnPhase calls after the cancellation took effect at a boundary.
func TestOnPhaseCancellationFacadeEngines(t *testing.T) {
	g := onPhaseGraph()
	for _, algo := range onPhaseAlgos {
		ctx, cancel := context.WithCancel(context.Background())
		var log phaseLog
		var fired int
		res, err := MatchContext(ctx, g, Options{
			Algorithm:   algo,
			Initializer: NoInit,
			Threads:     2,
			OnPhase: func(phase, card int64) {
				fired++
				log.hook()(phase, card)
				if phase == 1 {
					cancel()
				}
			},
		})
		if err != nil {
			t.Fatalf("%s: cancellation must yield a partial result, got error %v", algo, err)
		}
		cancel()
		if res.Complete {
			// The engine may legitimately finish if phase 1 was the last
			// phase needed; on this instance from an empty matching it never
			// is, so completing means cancellation was ignored.
			t.Fatalf("%s: run completed despite cancel at phase 1 (%d phases)", algo, res.Stats.Phases)
		}
		log.check(t, algo.String())
		if fired > 2 {
			t.Errorf("%s: %d OnPhase calls after cancel at phase 1; want at most one more boundary", algo, fired)
		}
		if verr := VerifyMatching(g, res.MateX, res.MateY); verr != nil {
			t.Errorf("%s: partial matching invalid: %v", algo, verr)
		}
	}
}

// Dist under cancellation from the hook: the run stops at a superstep-safe
// boundary with a valid gathered partial matching, and resuming from it
// reaches the full cardinality.
func TestOnPhaseCancellationDist(t *testing.T) {
	g := onPhaseGraph()
	base := matching.New(g.NX(), g.NY())
	want := dist.Run(g, base, dist.Options{Ranks: 4, Grafting: true}).FinalCardinality

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var log phaseLog
	m := matching.New(g.NX(), g.NY())
	s, err := dist.RunCtx(ctx, g, m, dist.Options{
		Ranks: 4, Grafting: true,
		OnPhase: func(phase, card int64) {
			log.hook()(phase, card)
			if phase == 1 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("dist: want context error after cancel")
	}
	if s.Complete {
		t.Fatal("dist: stats claim completion after cancel")
	}
	log.check(t, "dist")
	if verr := VerifyMatching(g, m.MateX, m.MateY); verr != nil {
		t.Fatalf("dist: partial matching invalid: %v", verr)
	}

	res, err := ResumeMatch(g, m.MateX, m.MateY, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality != want {
		t.Errorf("dist resume: cardinality %d, want %d", res.Cardinality, want)
	}
}
