// Social-network example: maximum-cardinality user-to-item recommendation
// assignment on a web-like graph with LOW matching number — the paper's
// third input class, where tree grafting pays off most. Demonstrates the
// frontier-trace instrumentation (the Fig. 8 view) and the unmatched-side
// analysis via the König cover.
package main

import (
	"fmt"
	"log"

	"graftmatch"
	"graftmatch/internal/gen"
)

func main() {
	// A crawl-like graph: 35% of users have no usable recommendations,
	// so the maximum matching leaves many vertices unmatched.
	g := gen.WebLike(14, 5, 0.35, 3)
	fmt.Printf("web-like graph: %d + %d vertices, %d edges\n", g.NX(), g.NY(), g.NumEdges())

	// NoInit: let the exact algorithm do all the work so the multi-phase
	// graft behaviour is visible (production code would keep Karp–Sipser).
	res, err := graftmatch.Match(g, graftmatch.Options{
		Algorithm:      graftmatch.MSBFSGraft,
		Initializer:    graftmatch.NoInit,
		TraceFrontiers: true,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	frac := float64(2*res.Cardinality) / float64(g.NumVertices())
	fmt.Printf("matched %d pairs (matching fraction %.3f)\n", res.Cardinality, frac)
	fmt.Printf("phases: %d (grafted %d, rebuilt %d)\n",
		res.Stats.Phases, res.Stats.Grafts, res.Stats.Rebuilds)

	// Show how grafting shapes the BFS frontiers: after the first phase,
	// grafted phases start from a large frontier and only shrink.
	for pi, phase := range res.Stats.FrontierTrace {
		if pi > 3 {
			fmt.Printf("  ... (%d more phases)\n", len(res.Stats.FrontierTrace)-pi)
			break
		}
		fmt.Printf("  phase %d frontier sizes: %v\n", pi+1, phase)
	}

	// König cover: the unmatched-X side of the cover explains *why* the
	// matching is small — these vertices compete for a deficient Y core.
	if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		log.Fatal(err)
	}
	unmatched := 0
	for _, y := range res.MateX {
		if y == graftmatch.Unmatched {
			unmatched++
		}
	}
	fmt.Printf("%d users certifiably cannot be assigned (structural deficiency, not algorithm failure)\n", unmatched)
}
