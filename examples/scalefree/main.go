// Scale-free example: compares the algorithms of the paper on a skewed
// power-law bipartite graph (the paper's second input class) and shows the
// tree-grafting advantage in traversal counts.
package main

import (
	"fmt"
	"log"
	"runtime"

	"graftmatch"
	"graftmatch/internal/gen"
)

func main() {
	// Preferential-attachment bipartite graph, ~32k vertices per side.
	g := gen.ScaleFree(32768, 32768, 5, 1)
	fmt.Printf("scale-free graph: %d + %d vertices, %d edges\n", g.NX(), g.NY(), g.NumEdges())

	p := runtime.GOMAXPROCS(0)
	for _, algo := range []graftmatch.Algorithm{
		graftmatch.MSBFSGraft,
		graftmatch.MSBFS,
		graftmatch.PothenFan,
		graftmatch.PushRelabel,
	} {
		res, err := graftmatch.Match(g, graftmatch.Options{Algorithm: algo, Threads: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s |M|=%-7d phases=%-4d edges=%-10d time=%v\n",
			algo, res.Cardinality, res.Stats.Phases, res.Stats.EdgesTraversed, res.Stats.Runtime)
	}

	// Certify the default algorithm's answer.
	res, err := graftmatch.Match(g, graftmatch.Options{Threads: p})
	if err != nil {
		log.Fatal(err)
	}
	if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		log.Fatal(err)
	}
	frac := float64(2*res.Cardinality) / float64(g.NumVertices())
	fmt.Printf("matching number fraction: %.3f (certified maximum)\n", frac)
}
