// BTF example: the paper's motivating application (§I). A structurally
// reducible sparse matrix is permuted to block triangular form via the
// Dulmage–Mendelsohn decomposition built on a maximum matching, enabling
// block-by-block solution of linear systems.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graftmatch"
)

func main() {
	// Build a 600x600 sparse matrix that is secretly block upper
	// triangular: three diagonal blocks of 200 with random coupling above
	// the diagonal blocks only, then scramble rows and columns.
	const n, blocks = 600, 3
	const bs = n / blocks
	rng := rand.New(rand.NewSource(7))

	b := graftmatch.NewBuilder(n, n)
	for blk := 0; blk < blocks; blk++ {
		lo := int32(blk * bs)
		// Strongly coupled diagonal block: a cycle plus the diagonal.
		for i := int32(0); i < bs; i++ {
			if err := b.AddEdge(lo+i, lo+i); err != nil {
				log.Fatal(err)
			}
			if err := b.AddEdge(lo+i, lo+(i+1)%bs); err != nil {
				log.Fatal(err)
			}
		}
		// Sparse coupling to later blocks (upper triangle).
		for k := 0; k < bs; k++ {
			if blk+1 < blocks {
				row := lo + int32(rng.Intn(bs))
				col := int32((blk+1)*bs) + int32(rng.Intn(n-(blk+1)*bs))
				if err := b.AddEdge(row, col); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	hidden := b.Build()

	// Scramble: random row/column permutations hide the structure.
	rowScr := rng.Perm(n)
	colScr := rng.Perm(n)
	sb := graftmatch.NewBuilder(n, n)
	for x := int32(0); x < hidden.NX(); x++ {
		for _, y := range hidden.NbrX(x) {
			if err := sb.AddEdge(int32(rowScr[x]), int32(colScr[y])); err != nil {
				log.Fatal(err)
			}
		}
	}
	g := sb.Build()
	fmt.Printf("scrambled matrix: %d x %d with %d nonzeros\n", g.NX(), g.NY(), g.NumEdges())

	// Recover the block structure.
	d, err := graftmatch.BlockTriangularForm(g, graftmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse parts: H=%dx%d S=%d V=%dx%d\n", d.HRows, d.HCols, d.SSize, d.VRows, d.VCols)
	fmt.Printf("recovered %d diagonal blocks\n", d.NumBlocks())
	sizes := map[int32]int{}
	for _, s := range d.Blocks {
		sizes[s]++
	}
	fmt.Printf("block size histogram: %v\n", sizes)
	if d.NumBlocks() == blocks {
		fmt.Println("exactly the hidden block count was recovered")
	}
	fmt.Println("solving now proceeds block by block instead of on the full matrix")
}
