// Distributed example: the paper's future-work extension. Runs the
// BSP-simulated distributed-memory MS-BFS-Graft over increasing rank counts
// and reports the cost model a real MPI deployment would care about:
// supersteps (network rounds) and message volume, with and without tree
// grafting.
package main

import (
	"fmt"
	"log"

	"graftmatch"
	"graftmatch/internal/dist"
	"graftmatch/internal/gen"
	"graftmatch/internal/matchinit"
)

func main() {
	// A low-matching-number web-like graph — the class where grafting
	// matters most (§V-A).
	g := gen.WebLike(13, 5, 0.35, 7)
	fmt.Printf("graph: %d + %d vertices, %d edges\n", g.NX(), g.NY(), g.NumEdges())

	fmt.Printf("%-8s %-8s %-10s %-12s %-10s %-8s\n",
		"ranks", "graft", "|M|", "supersteps", "messages", "phases")
	var card int64 = -1
	for _, k := range []int{1, 2, 4, 8, 16} {
		for _, grafting := range []bool{false, true} {
			// Greedy initialization, as for the shared-memory experiments:
			// the exact phase then works incrementally, the regime where
			// grafting competes with rebuilds.
			m := matchinit.Greedy(g)
			s := dist.Run(g, m, dist.Options{Ranks: k, Grafting: grafting})
			fmt.Printf("%-8d %-8v %-10d %-12d %-10d %-8d\n",
				k, grafting, s.FinalCardinality, s.Supersteps, s.Messages, s.Phases)
			if card == -1 {
				card = s.FinalCardinality
			} else if s.FinalCardinality != card {
				log.Fatalf("cardinality mismatch: %d vs %d", s.FinalCardinality, card)
			}
		}
	}

	// Cross-check against the shared-memory engine via the public API.
	res, err := graftmatch.Match(g, graftmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Cardinality != card {
		log.Fatalf("distributed %d vs shared-memory %d", card, res.Cardinality)
	}
	fmt.Printf("distributed and shared-memory engines agree: |M| = %d (certified)\n", card)
	if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		log.Fatal(err)
	}
}
