// Quickstart: build a small bipartite graph, compute a maximum cardinality
// matching with the default MS-BFS-Graft configuration, and certify the
// result.
package main

import (
	"fmt"
	"log"

	"graftmatch"
)

func main() {
	// A tiny assignment problem: 4 workers (X) and 4 tasks (Y); an edge
	// means the worker is qualified for the task.
	g, err := graftmatch.FromEdges(4, 4, []graftmatch.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1},
		{X: 1, Y: 0},
		{X: 2, Y: 2}, {X: 2, Y: 3},
		{X: 3, Y: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Zero options = the paper's recommended configuration: MS-BFS-Graft,
	// Karp–Sipser initialization, all cores.
	res, err := graftmatch.Match(g, graftmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("maximum matching cardinality: %d\n", res.Cardinality)
	for x, y := range res.MateX {
		if y == graftmatch.Unmatched {
			fmt.Printf("worker %d: unassigned\n", x)
		} else {
			fmt.Printf("worker %d -> task %d\n", x, y)
		}
	}

	// The matching comes with a constructive optimality proof: a König
	// vertex cover of the same size.
	if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		log.Fatal(err)
	}
	fmt.Println("certified maximum by König vertex cover")

	fmt.Printf("stats: %d phases, %d edges traversed, %s runtime\n",
		res.Stats.Phases, res.Stats.EdgesTraversed, res.Stats.Runtime)
}
