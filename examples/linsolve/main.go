// Linear-solve example: the full §I pipeline of the paper. A sparse linear
// system whose matrix is secretly block triangular is solved by (1) maximum
// cardinality matching (MS-BFS-Graft), (2) Dulmage–Mendelsohn block
// triangular form, (3) dense LU only on the small diagonal blocks — the
// reason circuit simulators compute BTFs at all.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"graftmatch/internal/btfsolve"
)

func main() {
	// Build a scrambled system with 40 hidden diagonal blocks of size 25:
	// n = 1000, but no dense factorization larger than 25 is ever needed.
	const blocks, bs = 40, 25
	const n = blocks * bs
	rng := rand.New(rand.NewSource(11))

	var entries []btfsolve.Entry
	for blk := 0; blk < blocks; blk++ {
		lo := int32(blk * bs)
		for i := int32(0); i < bs; i++ {
			row := lo + i
			var offsum float64
			// A sparse strongly-connected block: ring + a few random couplings.
			for _, j := range []int32{(i + 1) % bs, (i + 7) % bs} {
				v := rng.Float64() - 0.5
				offsum += math.Abs(v)
				entries = append(entries, btfsolve.Entry{Row: row, Col: lo + j, Val: v})
			}
			entries = append(entries, btfsolve.Entry{Row: row, Col: row, Val: offsum + 1.5})
			// Coupling into later blocks only (upper structure).
			if blk+1 < blocks {
				tgt := int32((blk+1)*bs) + int32(rng.Intn(n-(blk+1)*bs))
				entries = append(entries, btfsolve.Entry{Row: row, Col: tgt, Val: rng.Float64() * 0.3})
			}
		}
	}
	// Scramble rows/columns to hide the structure.
	rp, cp := rng.Perm(n), rng.Perm(n)
	for i, e := range entries {
		entries[i] = btfsolve.Entry{Row: int32(rp[e.Row]), Col: int32(cp[e.Col]), Val: e.Val}
	}
	a, err := btfsolve.NewMatrix(n, entries)
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture a known solution and its right-hand side.
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.Apply(xTrue)

	sol, err := btfsolve.Solve(a, b)
	if err != nil {
		log.Fatal(err)
	}

	var worst float64
	for i := range xTrue {
		if d := math.Abs(sol.X[i] - xTrue[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("system: n=%d, %d nonzeros\n", a.N(), a.NumNonzeros())
	fmt.Printf("BTF found %d diagonal blocks, largest %d (hidden structure: %d blocks of %d)\n",
		len(sol.Blocks), sol.MaxBlock, blocks, bs)
	fmt.Printf("max |x - x_true| = %.2e\n", worst)
	dense := float64(n) * float64(n) * float64(n)
	var blockWork float64
	for _, s := range sol.Blocks {
		blockWork += float64(s) * float64(s) * float64(s)
	}
	fmt.Printf("LU work vs dense solve: %.4f%% (%.0f vs %.0f flops-ish)\n",
		100*blockWork/dense, blockWork, dense)
}
