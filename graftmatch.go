// Package graftmatch computes maximum cardinality matchings in bipartite
// graphs on shared-memory parallel machines. It implements the MS-BFS-Graft
// algorithm of Azad, Buluç and Pothen ("A Parallel Tree Grafting Algorithm
// for Maximum Cardinality Matching in Bipartite Graphs", IPDPS 2015) —
// multi-source breadth-first search with tree grafting and
// direction-optimizing traversal — together with the classical algorithms
// the paper evaluates against (Pothen–Fan, push-relabel, Hopcroft–Karp,
// single-source BFS/DFS, plain MS-BFS) and the Dulmage–Mendelsohn block
// triangular decomposition as the motivating application.
//
// # Quickstart
//
//	g := graftmatch.MustFromEdges(4, 4, []graftmatch.Edge{{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 2}})
//	res, err := graftmatch.Match(g, graftmatch.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Cardinality)   // 3
//	fmt.Println(res.MateX)         // mate of each X vertex, -1 if unmatched
//
// The zero Options run MS-BFS-Graft with Karp–Sipser initialization on
// GOMAXPROCS workers — the configuration the paper recommends.
package graftmatch

import (
	"fmt"
	"io"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/dmperm"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/mmio"
	"graftmatch/internal/pf"
	"graftmatch/internal/pushrelabel"
	"graftmatch/internal/ssbfs"
	"graftmatch/internal/ssdfs"
)

// Unmatched marks an unmatched vertex in mate arrays.
const Unmatched int32 = -1

// Graph is an immutable bipartite graph in CSR form; build one with
// NewBuilder, FromEdges, or ReadMatrixMarket.
type Graph = bipartite.Graph

// Edge is an (X, Y) vertex pair.
type Edge = bipartite.Edge

// Builder accumulates edges into a Graph.
type Builder = bipartite.Builder

// Stats reports the per-run metrics of a matching algorithm (edges
// traversed, phases, augmenting path lengths, step time breakdown).
type Stats = matching.Stats

// Decomposition is a Dulmage–Mendelsohn / block-triangular decomposition.
type Decomposition = dmperm.Decomposition

// NewBuilder returns a Builder for a graph with nx X-vertices (rows) and ny
// Y-vertices (columns).
func NewBuilder(nx, ny int32) *Builder { return bipartite.NewBuilder(nx, ny) }

// FromEdges builds a Graph from an edge list, coalescing duplicates.
func FromEdges(nx, ny int32, edges []Edge) (*Graph, error) {
	return bipartite.FromEdges(nx, ny, edges)
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(nx, ny int32, edges []Edge) *Graph {
	return bipartite.MustFromEdges(nx, ny, edges)
}

// ReadMatrixMarket parses a Matrix Market coordinate file into the bipartite
// graph of its sparsity pattern (rows → X, columns → Y).
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return mmio.Read(r) }

// ReadMatrixMarketFile reads a Matrix Market file from disk.
func ReadMatrixMarketFile(path string) (*Graph, error) { return mmio.ReadFile(path) }

// ReadGraphFile reads a graph from disk, dispatching on extension:
// .mtx (Matrix Market) or .el/.txt (0-based edge list), each optionally
// gzip-compressed with a trailing .gz.
func ReadGraphFile(path string) (*Graph, error) { return mmio.ReadAuto(path) }

// WriteGraphFile writes a graph to disk with the same extension dispatch
// as ReadGraphFile.
func WriteGraphFile(path string, g *Graph) error { return mmio.WriteAuto(path, g) }

// WriteMatrixMarket writes g as a coordinate-pattern Matrix Market file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return mmio.Write(w, g) }

// Algorithm selects a maximum matching algorithm.
type Algorithm int

// Available algorithms. MSBFSGraft is the paper's contribution and the
// default; the rest are the baselines of its evaluation.
const (
	MSBFSGraft   Algorithm = iota // multi-source BFS + tree grafting + direction optimization
	MSBFS                         // multi-source BFS, no grafting, top-down only
	MSBFSDirOpt                   // multi-source BFS + direction optimization, no grafting
	PothenFan                     // multi-source DFS with lookahead and fairness
	PushRelabel                   // unit-flow push-relabel with global relabeling
	HopcroftKarp                  // shortest-augmenting-path phases
	SSBFS                         // single-source BFS with failed-tree pruning
	SSDFS                         // single-source DFS with failed-tree pruning
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MSBFSGraft:
		return "MS-BFS-Graft"
	case MSBFS:
		return "MS-BFS"
	case MSBFSDirOpt:
		return "MS-BFS-DirOpt"
	case PothenFan:
		return "PF"
	case PushRelabel:
		return "PR"
	case HopcroftKarp:
		return "HK"
	case SSBFS:
		return "SS-BFS"
	case SSDFS:
		return "SS-DFS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Initializer selects the maximal-matching heuristic run before the exact
// algorithm.
type Initializer int

// Available initializers. The paper uses Karp–Sipser for every algorithm.
const (
	KarpSipser Initializer = iota
	Greedy
	ParallelGreedy
	NoInit // start from the empty matching

	// ParallelKarpSipser is the shared-memory Karp–Sipser relaxation with
	// worker-local degree-1 cascading; near-serial quality, not
	// deterministic across thread counts.
	ParallelKarpSipser
)

// Options configures Match. The zero value selects the paper's defaults:
// MS-BFS-Graft, Karp–Sipser initialization, GOMAXPROCS threads, α = 5.
type Options struct {
	Algorithm   Algorithm
	Initializer Initializer

	// Threads is the worker count; 0 means GOMAXPROCS. Single-source
	// algorithms and Hopcroft–Karp are serial and ignore it.
	Threads int

	// Alpha is the direction-switch/graft threshold of MS-BFS-Graft;
	// 0 means 5 (the paper's recommendation).
	Alpha float64

	// Seed drives the Karp–Sipser random vertex order.
	Seed int64

	// TraceFrontiers records per-level frontier sizes (Fig. 8) for the
	// MS-BFS family.
	TraceFrontiers bool
}

// Result is the outcome of Match.
type Result struct {
	// MateX[x] is the Y vertex matched to X vertex x, or Unmatched;
	// MateY is the inverse map.
	MateX []int32
	MateY []int32

	// Cardinality is |M|, the maximum matching size.
	Cardinality int64

	// Stats holds the run metrics of the exact algorithm (not including
	// the initializer).
	Stats *Stats
}

// Match computes a maximum cardinality matching of g.
func Match(g *Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("graftmatch: nil graph")
	}
	m, err := initialize(g, opts)
	if err != nil {
		return nil, err
	}
	return finishMatch(g, m, opts)
}

// finishMatch dispatches the exact algorithm on an already-initialized
// matching and assembles the Result.
func finishMatch(g *Graph, m *matching.Matching, opts Options) (*Result, error) {
	var stats *Stats
	switch opts.Algorithm {
	case MSBFSGraft:
		stats = core.Run(g, m, core.Options{
			Threads:            opts.Threads,
			Alpha:              opts.Alpha,
			DirectionOptimized: true,
			Grafting:           true,
			TraceFrontiers:     opts.TraceFrontiers,
		})
	case MSBFS:
		stats = core.Run(g, m, core.Options{
			Threads:        opts.Threads,
			Alpha:          opts.Alpha,
			TraceFrontiers: opts.TraceFrontiers,
		})
	case MSBFSDirOpt:
		stats = core.Run(g, m, core.Options{
			Threads:            opts.Threads,
			Alpha:              opts.Alpha,
			DirectionOptimized: true,
			TraceFrontiers:     opts.TraceFrontiers,
		})
	case PothenFan:
		stats = pf.Run(g, m, opts.Threads)
	case PushRelabel:
		stats = pushrelabel.Run(g, m, pushrelabel.Options{Threads: opts.Threads})
	case HopcroftKarp:
		stats = hk.Run(g, m)
	case SSBFS:
		stats = ssbfs.Run(g, m)
	case SSDFS:
		stats = ssdfs.Run(g, m)
	default:
		return nil, fmt.Errorf("graftmatch: unknown algorithm %v", opts.Algorithm)
	}
	return &Result{
		MateX:       m.MateX,
		MateY:       m.MateY,
		Cardinality: m.Cardinality(),
		Stats:       stats,
	}, nil
}

func initialize(g *Graph, opts Options) (*matching.Matching, error) {
	switch opts.Initializer {
	case KarpSipser:
		return matchinit.KarpSipser(g, opts.Seed), nil
	case Greedy:
		return matchinit.Greedy(g), nil
	case ParallelGreedy:
		return matchinit.ParallelGreedy(g, opts.Threads), nil
	case NoInit:
		return matching.New(g.NX(), g.NY()), nil
	case ParallelKarpSipser:
		return matchinit.ParallelKarpSipser(g, opts.Threads), nil
	default:
		return nil, fmt.Errorf("graftmatch: unknown initializer %v", opts.Initializer)
	}
}

// MaximumMatching computes a maximum cardinality matching with the default
// options and returns the mate array of X and the cardinality.
func MaximumMatching(g *Graph) ([]int32, int64, error) {
	res, err := Match(g, Options{})
	if err != nil {
		return nil, 0, err
	}
	return res.MateX, res.Cardinality, nil
}

// VerifyMatching checks that the mate arrays form a valid matching of g.
func VerifyMatching(g *Graph, mateX, mateY []int32) error {
	m := &matching.Matching{MateX: mateX, MateY: mateY}
	return m.Verify(g)
}

// VerifyMaximum proves that the matching is valid and of maximum
// cardinality via the König vertex-cover certificate.
func VerifyMaximum(g *Graph, mateX, mateY []int32) error {
	m := &matching.Matching{MateX: mateX, MateY: mateY}
	return matching.VerifyMaximum(g, m)
}

// BlockTriangularForm computes the Dulmage–Mendelsohn decomposition of g
// (rows = X, columns = Y) using a maximum matching computed with opts.
func BlockTriangularForm(g *Graph, opts Options) (*Decomposition, error) {
	res, err := Match(g, opts)
	if err != nil {
		return nil, err
	}
	m := &matching.Matching{MateX: res.MateX, MateY: res.MateY}
	return dmperm.Decompose(g, m)
}

// ResumeMatch continues a maximum matching computation from an existing
// valid (possibly partial, non-maximal) matching given by mate arrays. The
// arrays are copied; the result is a fresh maximum matching.
func ResumeMatch(g *Graph, mateX, mateY []int32, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("graftmatch: nil graph")
	}
	m := &matching.Matching{
		MateX: append([]int32(nil), mateX...),
		MateY: append([]int32(nil), mateY...),
	}
	if err := m.Verify(g); err != nil {
		return nil, fmt.Errorf("graftmatch: invalid initial matching: %w", err)
	}
	opts.Initializer = NoInit // the provided matching replaces the initializer
	return finishMatch(g, m, opts)
}
