// Package graftmatch computes maximum cardinality matchings in bipartite
// graphs on shared-memory parallel machines. It implements the MS-BFS-Graft
// algorithm of Azad, Buluç and Pothen ("A Parallel Tree Grafting Algorithm
// for Maximum Cardinality Matching in Bipartite Graphs", IPDPS 2015) —
// multi-source breadth-first search with tree grafting and
// direction-optimizing traversal — together with the classical algorithms
// the paper evaluates against (Pothen–Fan, push-relabel, Hopcroft–Karp,
// single-source BFS/DFS, plain MS-BFS) and the Dulmage–Mendelsohn block
// triangular decomposition as the motivating application.
//
// # Quickstart
//
//	g := graftmatch.MustFromEdges(4, 4, []graftmatch.Edge{{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 2}})
//	res, err := graftmatch.Match(g, graftmatch.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Cardinality)   // 3
//	fmt.Println(res.MateX)         // mate of each X vertex, -1 if unmatched
//
// The zero Options run MS-BFS-Graft with Karp–Sipser initialization on
// GOMAXPROCS workers — the configuration the paper recommends.
package graftmatch

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/dmperm"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/mmio"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
	"graftmatch/internal/pf"
	"graftmatch/internal/pushrelabel"
	"graftmatch/internal/ssbfs"
	"graftmatch/internal/ssdfs"
)

// Unmatched marks an unmatched vertex in mate arrays.
const Unmatched int32 = -1

// Graph is an immutable bipartite graph in CSR form; build one with
// NewBuilder, FromEdges, or ReadMatrixMarket.
type Graph = bipartite.Graph

// Edge is an (X, Y) vertex pair.
type Edge = bipartite.Edge

// Builder accumulates edges into a Graph.
type Builder = bipartite.Builder

// Stats reports the per-run metrics of a matching algorithm (edges
// traversed, phases, augmenting path lengths, step time breakdown).
type Stats = matching.Stats

// Decomposition is a Dulmage–Mendelsohn / block-triangular decomposition.
type Decomposition = dmperm.Decomposition

// Recorder is the live observability hub: a lock-free per-worker metrics
// registry, a bounded span tracer, and a run-status snapshot. Pass one via
// Options.Recorder to observe a run; serve it with ObsHandler. A nil
// *Recorder (the default) is a no-op that costs the engines nothing.
type Recorder = obs.Recorder

// RecorderConfig sizes a Recorder; the zero value means GOMAXPROCS worker
// slots and a 16384-span trace ring.
type RecorderConfig = obs.Config

// NewRecorder builds a live Recorder.
func NewRecorder(cfg RecorderConfig) *Recorder { return obs.New(cfg) }

// ObsHandler serves rec's operational surface over HTTP: /metrics
// (Prometheus text), /metrics.json, /status (live run status), /trace
// (Chrome trace-event JSON, loadable in Perfetto), /trace/summary (flame
// summary), /debug/pprof/* and /debug/vars. Safe on a nil recorder (all
// endpoints report empty state).
func ObsHandler(rec *Recorder) http.Handler { return obs.Handler(rec) }

// Scheduler supplies the workers for the parallel regions of a run; see
// Options.Scheduler. The nil default spawns goroutines per parallel call.
type Scheduler = par.Scheduler

// WorkerPool is a Scheduler backed by a fixed set of resident workers,
// shared by every run that carries it in Options.Scheduler. A process
// serving many concurrent matchings keeps its total compute parallelism at
// the pool size instead of multiplying GOMAXPROCS per request; a saturated
// or closed pool degrades regions to inline execution on the calling
// goroutine rather than queueing unboundedly.
type WorkerPool = par.Pool

// NewWorkerPool starts a shared pool of workers (0 means GOMAXPROCS).
// Close it when no more runs will use it; runs already in flight complete.
func NewWorkerPool(workers int) *WorkerPool { return par.NewPool(workers) }

// NewBuilder returns a Builder for a graph with nx X-vertices (rows) and ny
// Y-vertices (columns).
func NewBuilder(nx, ny int32) *Builder { return bipartite.NewBuilder(nx, ny) }

// FromEdges builds a Graph from an edge list, coalescing duplicates.
func FromEdges(nx, ny int32, edges []Edge) (*Graph, error) {
	return bipartite.FromEdges(nx, ny, edges)
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(nx, ny int32, edges []Edge) *Graph {
	return bipartite.MustFromEdges(nx, ny, edges)
}

// ReadMatrixMarket parses a Matrix Market coordinate file into the bipartite
// graph of its sparsity pattern (rows → X, columns → Y).
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return mmio.Read(r) }

// ReadMatrixMarketFile reads a Matrix Market file from disk.
func ReadMatrixMarketFile(path string) (*Graph, error) { return mmio.ReadFile(path) }

// ReadGraphFile reads a graph from disk, dispatching on extension:
// .mtx (Matrix Market) or .el/.txt (0-based edge list), each optionally
// gzip-compressed with a trailing .gz.
func ReadGraphFile(path string) (*Graph, error) { return mmio.ReadAuto(path) }

// WriteGraphFile writes a graph to disk with the same extension dispatch
// as ReadGraphFile.
func WriteGraphFile(path string, g *Graph) error { return mmio.WriteAuto(path, g) }

// WriteMatrixMarket writes g as a coordinate-pattern Matrix Market file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return mmio.Write(w, g) }

// Algorithm selects a maximum matching algorithm.
type Algorithm int

// Available algorithms. MSBFSGraft is the paper's contribution and the
// default; the rest are the baselines of its evaluation.
const (
	MSBFSGraft   Algorithm = iota // multi-source BFS + tree grafting + direction optimization
	MSBFS                         // multi-source BFS, no grafting, top-down only
	MSBFSDirOpt                   // multi-source BFS + direction optimization, no grafting
	PothenFan                     // multi-source DFS with lookahead and fairness
	PushRelabel                   // unit-flow push-relabel with global relabeling
	HopcroftKarp                  // shortest-augmenting-path phases
	SSBFS                         // single-source BFS with failed-tree pruning
	SSDFS                         // single-source DFS with failed-tree pruning
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MSBFSGraft:
		return "MS-BFS-Graft"
	case MSBFS:
		return "MS-BFS"
	case MSBFSDirOpt:
		return "MS-BFS-DirOpt"
	case PothenFan:
		return "PF"
	case PushRelabel:
		return "PR"
	case HopcroftKarp:
		return "HK"
	case SSBFS:
		return "SS-BFS"
	case SSDFS:
		return "SS-DFS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Initializer selects the maximal-matching heuristic run before the exact
// algorithm.
type Initializer int

// Available initializers. The paper uses Karp–Sipser for every algorithm.
const (
	KarpSipser Initializer = iota
	Greedy
	ParallelGreedy
	NoInit // start from the empty matching

	// ParallelKarpSipser is the shared-memory Karp–Sipser relaxation with
	// worker-local degree-1 cascading; near-serial quality, not
	// deterministic across thread counts.
	ParallelKarpSipser
)

// Options configures Match. The zero value selects the paper's defaults:
// MS-BFS-Graft, Karp–Sipser initialization, GOMAXPROCS threads, α = 5.
type Options struct {
	Algorithm   Algorithm
	Initializer Initializer

	// Threads is the worker count; 0 means GOMAXPROCS. Single-source
	// algorithms and Hopcroft–Karp are serial and ignore it.
	Threads int

	// Alpha is the direction-switch/graft threshold of MS-BFS-Graft;
	// 0 means 5 (the paper's recommendation).
	Alpha float64

	// Seed drives the Karp–Sipser random vertex order.
	Seed int64

	// TraceFrontiers records per-level frontier sizes (Fig. 8) for the
	// MS-BFS family.
	TraceFrontiers bool

	// Deadline, when non-zero, bounds the exact algorithm's wall-clock
	// time. A run that reaches it stops at the next consistent point (a
	// phase or round boundary) and returns the partial matching with
	// Result.Complete == false and a nil error. Both Match and MatchContext
	// honor it; the initializer is not interrupted.
	Deadline time.Time

	// OnPhase, when non-nil, is invoked on the calling goroutine after
	// every completed phase of a parallel algorithm (MS-BFS family,
	// Pothen–Fan; push-relabel calls it at global relabels) with the phase
	// count and the current matching cardinality. The mate arrays form a
	// valid matching at each call; cancelling the MatchContext context from
	// the hook stops the run at that boundary. Serial algorithms ignore it.
	OnPhase func(phase, cardinality int64)

	// Checkpoint, when non-nil, persists crash-safe snapshots of the run
	// state at phase boundaries, so a killed process can restart from disk
	// with LoadCheckpoint + ResumeMatch instead of recomputing. Snapshot
	// failures never abort the run; see Result.CheckpointErr.
	Checkpoint *CheckpointOptions

	// Supervise, when non-nil, runs the computation under a supervisor
	// with a per-phase watchdog, stall detection, and a graceful
	// degradation ladder of fallback engines, each seeded with the best
	// matching reached so far. See SuperviseOptions.
	Supervise *SuperviseOptions

	// Recorder, when non-nil, receives live metrics (per-phase counters,
	// step-time breakdowns, queue and checkpoint I/O), one trace span per
	// phase/step, and run-status updates from every layer of the run —
	// engine, checkpoint writer, and supervisor. Serve it over HTTP with
	// ObsHandler. The nil default records nothing and costs nothing.
	Recorder *Recorder

	// Scheduler, when non-nil, supplies the workers for every parallel
	// region of the run — typically a WorkerPool shared across concurrent
	// runs so their combined parallelism stays bounded at the pool size.
	// Nil spawns fresh goroutines per parallel call (the right default for
	// a run that owns the machine). Serial algorithms ignore it.
	Scheduler Scheduler
}

// Result is the outcome of Match.
type Result struct {
	// MateX[x] is the Y vertex matched to X vertex x, or Unmatched;
	// MateY is the inverse map.
	MateX []int32
	MateY []int32

	// Cardinality is |M|, the matching size. Maximum when Complete.
	Cardinality int64

	// Complete reports whether the matching is maximum. It is false only
	// when a context or Options.Deadline stopped the run early; the mate
	// arrays then hold the valid partial matching of the last consistent
	// state, which ResumeMatch can continue from.
	Complete bool

	// Stats holds the run metrics of the exact algorithm (not including
	// the initializer).
	Stats *Stats

	// CheckpointPath is the newest snapshot written when
	// Options.Checkpoint was set; CheckpointErr records the first snapshot
	// write failure. Checkpointing is best-effort: a write failure is
	// reported here, never by aborting the run.
	CheckpointPath string
	CheckpointErr  error

	// Supervision reports the engine ladder when Options.Supervise was
	// set: every rung attempted, its outcome, and which engine completed.
	Supervision *SupervisionReport
}

// Match computes a maximum cardinality matching of g. It is
// MatchContext with a background context; Options.Deadline still applies.
func Match(g *Graph, opts Options) (*Result, error) {
	return MatchContext(context.Background(), g, opts)
}

// MatchContext computes a maximum cardinality matching of g under ctx.
//
// Cancellation — an explicit cancel, a context deadline, or Options.Deadline
// — stops the algorithm at its next consistent point: a phase boundary for
// the MS-BFS family and Pothen–Fan, a round boundary for push-relabel. The
// call then returns the partial matching accumulated so far with
// Result.Complete == false and a NIL error: a degraded-but-valid answer, not
// a failure. The partial matching always passes VerifyMatching, contains
// every pair matched by the initializer (matched vertices never become
// unmatched), and can be continued to a maximum matching with ResumeMatch or
// ResumeMatchContext.
//
// A nil Result with a non-nil error signals a real failure: a nil graph,
// unknown options, or a worker panic contained by the parallel runtime
// (returned as *par.PanicError with the worker's stack).
//
// The serial algorithms (HopcroftKarp, SSBFS, SSDFS) check ctx only before
// starting; once launched they run to completion.
func MatchContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("graftmatch: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := initialize(g, opts)
	if err != nil {
		return nil, err
	}
	return runMatch(ctx, g, m, opts)
}

// finishMatch dispatches the exact algorithm on an already-initialized
// matching and assembles the Result, translating a cancellation into a
// partial (Complete == false) Result with nil error.
func finishMatch(ctx context.Context, g *Graph, m *matching.Matching, opts Options) (*Result, error) {
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}
	var stats *Stats
	var err error
	switch opts.Algorithm {
	case MSBFSGraft, MSBFS, MSBFSDirOpt:
		co := core.Options{
			Threads:        opts.Threads,
			Alpha:          opts.Alpha,
			TraceFrontiers: opts.TraceFrontiers,
			OnPhase:        opts.OnPhase,
			Recorder:       opts.Recorder,
			Sched:          opts.Scheduler,
		}
		if opts.Algorithm != MSBFS {
			co.DirectionOptimized = true
		}
		co.Grafting = opts.Algorithm == MSBFSGraft
		stats, err = core.RunCtx(ctx, g, m, co)
	case PothenFan:
		stats, err = pf.RunCtx(ctx, g, m, pf.Options{Threads: opts.Threads, OnPhase: opts.OnPhase, Recorder: opts.Recorder, Sched: opts.Scheduler})
	case PushRelabel:
		stats, err = pushrelabel.RunCtx(ctx, g, m, pushrelabel.Options{Threads: opts.Threads, OnPhase: opts.OnPhase, Recorder: opts.Recorder, Sched: opts.Scheduler})
	case HopcroftKarp, SSBFS, SSDFS:
		if err = ctx.Err(); err == nil {
			//lint:ignore proto-exhaustive the enclosing case arm already narrowed to the three serial algorithms; the outer default rejects unknown values
			switch opts.Algorithm {
			case HopcroftKarp:
				stats = hk.Run(g, m)
			case SSBFS:
				stats = ssbfs.Run(g, m)
			default:
				stats = ssdfs.Run(g, m)
			}
		}
	default:
		return nil, fmt.Errorf("graftmatch: unknown algorithm %v", opts.Algorithm)
	}
	if err != nil {
		if !core.IsCancellation(err) {
			return nil, err // contained worker panic, not a cancellation
		}
		if stats == nil { // serial algorithm skipped under an expired context
			stats = &matching.Stats{
				Algorithm:          opts.Algorithm.String(),
				Threads:            1,
				InitialCardinality: m.Cardinality(),
				FinalCardinality:   m.Cardinality(),
			}
		}
	}
	return &Result{
		MateX:       m.MateX,
		MateY:       m.MateY,
		Cardinality: m.Cardinality(),
		Complete:    stats.Complete,
		Stats:       stats,
	}, nil
}

func initialize(g *Graph, opts Options) (*matching.Matching, error) {
	switch opts.Initializer {
	case KarpSipser:
		return matchinit.KarpSipser(g, opts.Seed), nil
	case Greedy:
		return matchinit.Greedy(g), nil
	case ParallelGreedy:
		return matchinit.ParallelGreedy(g, opts.Threads), nil
	case NoInit:
		return matching.New(g.NX(), g.NY()), nil
	case ParallelKarpSipser:
		return matchinit.ParallelKarpSipser(g, opts.Threads), nil
	default:
		return nil, fmt.Errorf("graftmatch: unknown initializer %v", opts.Initializer)
	}
}

// MaximumMatching computes a maximum cardinality matching with the default
// options and returns the mate array of X and the cardinality.
func MaximumMatching(g *Graph) ([]int32, int64, error) {
	res, err := Match(g, Options{})
	if err != nil {
		return nil, 0, err
	}
	return res.MateX, res.Cardinality, nil
}

// VerifyMatching checks that the mate arrays form a valid matching of g:
// mutually consistent, in range, and matched pairs are edges. Partial
// matchings (including those returned by an interrupted MatchContext) pass.
// Malformed input — a nil graph or mate arrays whose lengths do not match
// g's dimensions — yields a descriptive error, never a panic.
func VerifyMatching(g *Graph, mateX, mateY []int32) error {
	if g == nil {
		return fmt.Errorf("graftmatch: nil graph")
	}
	m := &matching.Matching{MateX: mateX, MateY: mateY}
	return m.Verify(g)
}

// VerifyMaximum proves that the matching is valid and of maximum
// cardinality via the König vertex-cover certificate. Like VerifyMatching
// it rejects malformed input with a descriptive error instead of panicking.
func VerifyMaximum(g *Graph, mateX, mateY []int32) error {
	if g == nil {
		return fmt.Errorf("graftmatch: nil graph")
	}
	m := &matching.Matching{MateX: mateX, MateY: mateY}
	return matching.VerifyMaximum(g, m)
}

// BlockTriangularForm computes the Dulmage–Mendelsohn decomposition of g
// (rows = X, columns = Y) using a maximum matching computed with opts.
func BlockTriangularForm(g *Graph, opts Options) (*Decomposition, error) {
	res, err := Match(g, opts)
	if err != nil {
		return nil, err
	}
	m := &matching.Matching{MateX: res.MateX, MateY: res.MateY}
	return dmperm.Decompose(g, m)
}

// ResumeMatch continues a maximum matching computation from an existing
// valid (possibly partial, non-maximal) matching given by mate arrays —
// typically the MateX/MateY of an incomplete Result. The arrays are copied
// and validated first: mismatched lengths or an invalid matching yield a
// descriptive error, never a panic. Because matched vertices stay matched,
// resuming an interrupted run reaches the same cardinality an uninterrupted
// run would have.
func ResumeMatch(g *Graph, mateX, mateY []int32, opts Options) (*Result, error) {
	return ResumeMatchContext(context.Background(), g, mateX, mateY, opts)
}

// ResumeMatchContext is ResumeMatch under a cancellation context, with the
// same partial-result semantics as MatchContext.
func ResumeMatchContext(ctx context.Context, g *Graph, mateX, mateY []int32, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("graftmatch: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := &matching.Matching{
		MateX: append([]int32(nil), mateX...),
		MateY: append([]int32(nil), mateY...),
	}
	if err := m.Verify(g); err != nil {
		return nil, fmt.Errorf("graftmatch: invalid initial matching: %w", err)
	}
	opts.Initializer = NoInit // the provided matching replaces the initializer
	return runMatch(ctx, g, m, opts)
}
