package graftmatch_test

import (
	"math/rand"
	"sync"
	"testing"

	"graftmatch"
)

// randomGraph builds a connected-ish random bipartite instance.
func randomGraph(t *testing.T, nx, ny int32, deg int, seed int64) *graftmatch.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []graftmatch.Edge
	for x := int32(0); x < nx; x++ {
		for d := 0; d < deg; d++ {
			edges = append(edges, graftmatch.Edge{X: x, Y: rng.Int31n(ny)})
		}
	}
	g, err := graftmatch.FromEdges(nx, ny, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMatchWithSharedWorkerPool checks that every parallel algorithm run on a
// shared WorkerPool reaches the same maximum as the default spawn scheduler.
func TestMatchWithSharedWorkerPool(t *testing.T) {
	pool := graftmatch.NewWorkerPool(3)
	defer pool.Close()
	g := randomGraph(t, 400, 400, 3, 7)
	for _, alg := range []graftmatch.Algorithm{
		graftmatch.MSBFSGraft, graftmatch.PothenFan, graftmatch.PushRelabel,
	} {
		ref, err := graftmatch.Match(g, graftmatch.Options{Algorithm: alg, Threads: 4})
		if err != nil {
			t.Fatalf("%v spawn: %v", alg, err)
		}
		res, err := graftmatch.Match(g, graftmatch.Options{Algorithm: alg, Threads: 4, Scheduler: pool})
		if err != nil {
			t.Fatalf("%v pooled: %v", alg, err)
		}
		if res.Cardinality != ref.Cardinality || !res.Complete {
			t.Fatalf("%v pooled: |M|=%d complete=%v, want |M|=%d complete", alg, res.Cardinality, res.Complete, ref.Cardinality)
		}
		if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
			t.Fatalf("%v pooled: %v", alg, err)
		}
	}
}

// TestConcurrentMatchesShareOnePool is the serving workload in miniature:
// many concurrent Match calls multiplexed over one small pool, each reaching
// its own verified maximum.
func TestConcurrentMatchesShareOnePool(t *testing.T) {
	pool := graftmatch.NewWorkerPool(2)
	defer pool.Close()
	const runs = 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := randomGraph(t, 300, 300, 3, int64(100+i))
			res, err := graftmatch.Match(g, graftmatch.Options{
				Algorithm: graftmatch.MSBFSGraft,
				Threads:   4,
				Scheduler: pool,
			})
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
}
