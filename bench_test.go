// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure (see DESIGN.md §4 for the experiment index). Each benchmark
// measures the cell-level work of its experiment; the formatted rows and
// series the paper prints are produced by cmd/matchbench, which shares the
// same drivers (internal/exps).
//
// Run everything:
//
//	go test -bench=. -benchmem .
package graftmatch_test

import (
	"fmt"
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/dist"
	"graftmatch/internal/exps"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/par"
)

const benchScale = exps.Small

// benchSuite caches the generated suite across benchmarks.
var benchSuite = exps.Suite(benchScale)

func fullThreads() int { return par.DefaultWorkers() }

// reportMatchStats attaches the paper's counters to a benchmark cell.
func runCell(b *testing.B, algo exps.Algo, g *bipartite.Graph, p int) {
	b.Helper()
	var edges, phases, card int64
	for i := 0; i < b.N; i++ {
		s := exps.Run(algo, g, p)
		edges, phases, card = s.EdgesTraversed, s.Phases, s.FinalCardinality
	}
	b.ReportMetric(float64(edges), "edges")
	b.ReportMetric(float64(phases), "phases")
	b.ReportMetric(float64(card), "cardinality")
}

// BenchmarkTableI has no timed content in the paper (machine table); here
// it measures suite generation, the fixed cost every experiment shares.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Suite(benchScale)
	}
}

// BenchmarkTableII measures the exact matching (with Karp–Sipser) used to
// compute each suite instance's matching number column.
func BenchmarkTableII(b *testing.B) {
	for _, inst := range benchSuite {
		b.Run(inst.Name, func(b *testing.B) {
			runCell(b, exps.AlgoGraft, inst.Graph, fullThreads())
		})
	}
}

// BenchmarkFig1 regenerates Fig. 1(a,b,c): the five serial algorithms on
// the three representative graphs. The edges/phases metrics on each cell
// are the figure's y-values; path lengths print via cmd/matchbench.
func BenchmarkFig1(b *testing.B) {
	algos := []exps.Algo{exps.AlgoSSDFS, exps.AlgoSSBFS, exps.AlgoPF, exps.AlgoMSBFS, exps.AlgoHK}
	for _, inst := range exps.Fig1Suite(benchScale) {
		for _, a := range algos {
			b.Run(inst.Name+"/"+string(a), func(b *testing.B) {
				runCell(b, a, inst.Graph, 1)
			})
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: MS-BFS-Graft vs PF vs PR at one thread
// and at full threads on every suite graph.
func BenchmarkFig3(b *testing.B) {
	algos := []exps.Algo{exps.AlgoGraft, exps.AlgoPF, exps.AlgoPR}
	for _, inst := range benchSuite {
		for _, a := range algos {
			for _, p := range dedupeInts(1, fullThreads()) {
				b.Run(fmt.Sprintf("%s/%s/p=%d", inst.Name, a, p), func(b *testing.B) {
					runCell(b, a, inst.Graph, p)
				})
			}
		}
	}
}

// dedupeInts drops adjacent duplicates (on a 1-core host the "full thread"
// count equals 1 and would otherwise register duplicate benchmarks).
func dedupeInts(vs ...int) []int {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// BenchmarkFig4 regenerates Fig. 4 (search rate): the MTEPS value is
// edges / runtime, both reported per cell for PF and MS-BFS-Graft.
func BenchmarkFig4(b *testing.B) {
	for _, inst := range benchSuite {
		for _, a := range []exps.Algo{exps.AlgoPF, exps.AlgoGraft} {
			b.Run(inst.Name+"/"+string(a), func(b *testing.B) {
				runCell(b, a, inst.Graph, fullThreads())
			})
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (strong scaling): MS-BFS-Graft across a
// thread sweep; speedup = serial time / p-thread time across cells.
func BenchmarkFig5(b *testing.B) {
	sweep := []int{1}
	for p := 2; p <= fullThreads(); p *= 2 {
		sweep = append(sweep, p)
	}
	if last := sweep[len(sweep)-1]; last != fullThreads() {
		sweep = append(sweep, fullThreads())
	}
	for _, inst := range benchSuite {
		for _, p := range sweep {
			b.Run(fmt.Sprintf("%s/p=%d", inst.Name, p), func(b *testing.B) {
				runCell(b, exps.AlgoGraft, inst.Graph, p)
			})
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (runtime breakdown): per-step shares are
// reported as metrics on each instance's cell.
func BenchmarkFig6(b *testing.B) {
	for _, inst := range benchSuite {
		b.Run(inst.Name, func(b *testing.B) {
			var td, bu, aug, graft float64
			for i := 0; i < b.N; i++ {
				s := exps.Run(exps.AlgoGraft, inst.Graph, fullThreads())
				td = s.StepShare(0) * 100
				bu = s.StepShare(1) * 100
				aug = s.StepShare(2) * 100
				graft = s.StepShare(3) * 100
			}
			b.ReportMetric(td, "topdown%")
			b.ReportMetric(bu, "bottomup%")
			b.ReportMetric(aug, "augment%")
			b.ReportMetric(graft, "graft%")
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7 (performance contributions): the four
// ablation rungs on every suite graph at full threads.
func BenchmarkFig7(b *testing.B) {
	algos := []exps.Algo{exps.AlgoMSBFS, exps.AlgoDirOpt, exps.AlgoGraftTD, exps.AlgoGraft}
	for _, inst := range benchSuite {
		for _, a := range algos {
			b.Run(inst.Name+"/"+string(a), func(b *testing.B) {
				runCell(b, a, inst.Graph, fullThreads())
			})
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (frontier evolution): the traced run on
// the coPapersDBLP stand-in; the series itself prints via cmd/matchbench.
func BenchmarkFig8(b *testing.B) {
	inst, ok := exps.ByName(benchScale, "coPapersDBLP")
	if !ok {
		b.Fatal("suite instance missing")
	}
	for _, a := range []exps.Algo{exps.AlgoMSBFS, exps.AlgoGraft} {
		b.Run(string(a), func(b *testing.B) {
			var levels int
			for i := 0; i < b.N; i++ {
				s := exps.RunTraced(a, inst.Graph, fullThreads())
				levels = 0
				for _, phase := range s.FrontierTrace {
					levels += len(phase)
				}
			}
			b.ReportMetric(float64(levels), "levels")
		})
	}
}

// BenchmarkPsi regenerates the §V-B sensitivity measurement workload (one
// timed parallel run per iteration; ψ derives from the b.N samples).
func BenchmarkPsi(b *testing.B) {
	for _, a := range []exps.Algo{exps.AlgoGraft, exps.AlgoPF, exps.AlgoPR} {
		inst, _ := exps.ByName(benchScale, "wikipedia")
		b.Run(string(a), func(b *testing.B) {
			runCell(b, a, inst.Graph, fullThreads())
		})
	}
}

// BenchmarkKarpSipser measures the shared initializer (§II-B) on each class
// representative.
func BenchmarkKarpSipser(b *testing.B) {
	for _, inst := range exps.Fig1Suite(benchScale) {
		b.Run(inst.Name, func(b *testing.B) {
			var card int64
			for i := 0; i < b.N; i++ {
				card = matchinit.KarpSipser(inst.Graph, 42).Cardinality()
			}
			b.ReportMetric(float64(card), "cardinality")
		})
	}
}

// BenchmarkAblationAlpha sweeps the α threshold (DESIGN.md ablation).
func BenchmarkAblationAlpha(b *testing.B) {
	inst, _ := exps.ByName(benchScale, "cit-patents")
	for _, alpha := range []float64{1, 2, 5, 10, 50} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := matchinit.Greedy(inst.Graph)
				core.Run(inst.Graph, m, core.Options{
					Threads: fullThreads(), Alpha: alpha,
					DirectionOptimized: true, Grafting: true,
				}.Defaults())
			}
		})
	}
}

// BenchmarkAblationVisited compares the int32 visited array against the
// atomic bit vector (the paper's __sync_fetch_and_or scheme).
func BenchmarkAblationVisited(b *testing.B) {
	for _, inst := range exps.Fig1Suite(benchScale) {
		for _, bm := range []bool{false, true} {
			name := inst.Name + "/array"
			if bm {
				name = inst.Name + "/bitvector"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := matchinit.Greedy(inst.Graph)
					core.Run(inst.Graph, m, core.Options{
						Threads: fullThreads(), DirectionOptimized: true,
						Grafting: true, VisitedBitmap: bm,
					}.Defaults())
				}
			})
		}
	}
}

// BenchmarkAblationInit compares initializer heuristics feeding the exact
// algorithm.
func BenchmarkAblationInit(b *testing.B) {
	inst, _ := exps.ByName(benchScale, "coPapersDBLP")
	inits := map[string]func() *matching.Matching{
		"none":        func() *matching.Matching { return matching.New(inst.Graph.NX(), inst.Graph.NY()) },
		"greedy":      func() *matching.Matching { return matchinit.Greedy(inst.Graph) },
		"karp-sipser": func() *matching.Matching { return matchinit.KarpSipser(inst.Graph, 42) },
		"parallel-ks": func() *matching.Matching { return matchinit.ParallelKarpSipser(inst.Graph, fullThreads()) },
	}
	for name, mk := range inits {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mk()
				core.Run(inst.Graph, m, core.FullOptions(fullThreads()))
			}
		})
	}
}

// BenchmarkDistributed measures the BSP distributed-memory simulation (the
// paper's future-work extension) across rank counts.
func BenchmarkDistributed(b *testing.B) {
	inst, _ := exps.ByName(benchScale, "wikipedia")
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("ranks=%d", k), func(b *testing.B) {
			var msgs, steps int64
			for i := 0; i < b.N; i++ {
				m := matchinit.Greedy(inst.Graph)
				s := dist.Run(inst.Graph, m, dist.Options{Ranks: k, Grafting: true})
				msgs, steps = s.Messages, s.Supersteps
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(float64(steps), "supersteps")
		})
	}
}
