package graftmatch_test

import (
	"fmt"
	"log"
	"strings"

	"graftmatch"
)

// The basic workflow: build a graph, match, inspect mates.
func ExampleMatch() {
	g := graftmatch.MustFromEdges(3, 3, []graftmatch.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2},
	})
	res, err := graftmatch.Match(g, graftmatch.Options{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cardinality:", res.Cardinality)
	fmt.Println("x0 matched:", res.MateX[0] != graftmatch.Unmatched)
	// Output:
	// cardinality: 3
	// x0 matched: true
}

// Selecting a baseline algorithm and certifying its answer.
func ExampleMatch_algorithm() {
	g := graftmatch.MustFromEdges(2, 2, []graftmatch.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0},
	})
	res, err := graftmatch.Match(g, graftmatch.Options{
		Algorithm: graftmatch.HopcroftKarp,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Stats.Algorithm, res.Cardinality)
	// Output: HK 2
}

// Parsing a Matrix Market matrix and matching its sparsity pattern.
func ExampleReadMatrixMarket() {
	mtx := `%%MatrixMarket matrix coordinate pattern general
3 3 4
1 1
2 2
3 3
1 3
`
	g, err := graftmatch.ReadMatrixMarket(strings.NewReader(mtx))
	if err != nil {
		log.Fatal(err)
	}
	_, card, err := graftmatch.MaximumMatching(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d matrix, structural rank %d\n", g.NX(), g.NY(), card)
	// Output: 3x3 matrix, structural rank 3
}

// Block triangular form of a reducible matrix.
func ExampleBlockTriangularForm() {
	// Upper block triangular: {0,1} block coupled into {2}.
	g := graftmatch.MustFromEdges(3, 3, []graftmatch.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 1, Y: 1},
		{X: 0, Y: 2},
		{X: 2, Y: 2},
	})
	d, err := graftmatch.BlockTriangularForm(g, graftmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocks:", d.NumBlocks())
	fmt.Println("square size:", d.SSize)
	// Output:
	// blocks: 2
	// square size: 3
}
