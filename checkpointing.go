package graftmatch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"graftmatch/internal/checkpoint"
	"graftmatch/internal/matching"
)

// CheckpointOptions enables crash-safe snapshotting of run state. Snapshots
// are emitted at phase boundaries (where the mate arrays are a valid partial
// matching), written atomically via temp-file + rename, CRC-checksummed, and
// fingerprinted against the graph so a restore can never silently apply a
// snapshot to the wrong instance. Serial algorithms (HopcroftKarp, SSBFS,
// SSDFS) report no phases, so only their final snapshot is written.
type CheckpointOptions struct {
	// Dir is the snapshot directory, created if missing.
	Dir string

	// Interval is the minimum wall-clock time between mid-run snapshots;
	// 0 writes one at every phase boundary.
	Interval time.Duration

	// Keep bounds the snapshots retained in Dir (older ones are pruned);
	// 0 means 3.
	Keep int
}

// ErrNoCheckpoint is returned by LoadCheckpoint when the directory holds no
// snapshots at all — the caller should start fresh. Damaged or
// wrong-graph snapshots yield typed errors instead, so "nothing to resume"
// and "everything to resume is broken" stay distinguishable.
var ErrNoCheckpoint = checkpoint.ErrNoSnapshot

// CheckpointState is a restored snapshot: a valid partial matching of the
// graph it was loaded for, plus where the producing run stopped. Feed MateX
// and MateY to ResumeMatch to continue the computation.
type CheckpointState struct {
	MateX, MateY []int32
	Engine       string // algorithm that produced the snapshot
	Phase        int64
	Cardinality  int64
	Path         string // the snapshot file chosen
}

// LoadCheckpoint restores the best snapshot for g from dir: the highest-
// cardinality intact snapshot whose graph fingerprint matches g (cardinality
// is monotone across restarts, so that is also the newest state). Corrupt or
// mismatched files are skipped when an intact one exists, returned as typed
// errors (*checkpoint.CorruptError, *checkpoint.MismatchError via errors.As)
// when nothing survives, and an empty directory yields ErrNoCheckpoint.
func LoadCheckpoint(g *Graph, dir string) (*CheckpointState, error) {
	if g == nil {
		return nil, fmt.Errorf("graftmatch: nil graph")
	}
	s, path, err := checkpoint.LoadLatest(dir, checkpoint.GraphFingerprint(g))
	if err != nil {
		return nil, err
	}
	// The fingerprint ties the snapshot to g's exact adjacency, but verify
	// edge membership anyway: a restore must never hand out mates that are
	// not edges.
	if err := VerifyMatching(g, s.MateX, s.MateY); err != nil {
		return nil, &checkpoint.CorruptError{Path: path, Reason: err.Error()}
	}
	return &CheckpointState{
		MateX:       s.MateX,
		MateY:       s.MateY,
		Engine:      s.Engine,
		Phase:       s.Phase,
		Cardinality: s.Cardinality,
		Path:        path,
	}, nil
}

// ckptWriter emits snapshots from phase callbacks. Calls normally arrive
// serially on an engine driver goroutine, but an abandoned (zombie) rung can
// race the next rung's driver for an instant, so the mutable state is
// mutex-guarded. The mutex is never held across checkpoint.Save: a snapshot
// attempt claims the `writing` flag under the lock, performs file I/O
// unlocked, and records the outcome under the lock again. A caller that
// finds `writing` set skips its snapshot — checkpoints are best-effort, and
// the overlap only occurs in the zombie-rung window where one of the two
// racing snapshots is redundant anyway.
type ckptWriter struct {
	// Immutable after construction.
	dir         string
	interval    time.Duration
	keep        int
	fp          checkpoint.Fingerprint
	initialCard int64
	start       time.Time
	rec         *Recorder // nil-safe observability tap

	mu        sync.Mutex
	writing   bool // a Save is in flight (guarded by mu, claimed before I/O)
	lastWrite time.Time
	lastPath  string
	firstErr  error
}

func newCkptWriter(g *Graph, co CheckpointOptions, initialCard int64, rec *Recorder) *ckptWriter {
	keep := co.Keep
	if keep <= 0 {
		keep = 3
	}
	return &ckptWriter{
		dir:         co.Dir,
		interval:    co.Interval,
		keep:        keep,
		fp:          checkpoint.GraphFingerprint(g),
		initialCard: initialCard,
		start:       time.Now(),
		rec:         rec,
	}
}

// observe writes a mid-run snapshot at a phase boundary, rate-limited by the
// configured interval.
func (w *ckptWriter) observe(engine string, phase, card int64, mateX, mateY []int32) {
	if !w.claimWrite(false) {
		return
	}
	w.write(engine, phase, card, mateX, mateY, nil)
}

// final writes the end-of-run snapshot carrying the engine's full counters.
// It bypasses the rate limit but still yields to an in-flight write.
func (w *ckptWriter) final(engine string, stats *Stats, card int64, mateX, mateY []int32) {
	if !w.claimWrite(true) {
		return
	}
	var phase int64
	if stats != nil {
		phase = stats.Phases
	}
	w.write(engine, phase, card, mateX, mateY, stats)
}

// claimWrite decides under the lock whether a snapshot should proceed and,
// if so, claims the writing flag. force bypasses the interval rate limit.
func (w *ckptWriter) claimWrite(force bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writing {
		return false
	}
	if !force && w.interval > 0 && !w.lastWrite.IsZero() && time.Since(w.lastWrite) < w.interval {
		return false
	}
	w.writing = true
	return true
}

func (w *ckptWriter) write(engine string, phase, card int64, mateX, mateY []int32, stats *Stats) {
	s := &checkpoint.Snapshot{
		Fingerprint: w.fp,
		Engine:      engine,
		Phase:       phase,
		Cardinality: card,
		Stats: checkpoint.CumulativeStats{
			Phases:             phase,
			InitialCardinality: w.initialCard,
			Runtime:            time.Since(w.start),
		},
		MateX: mateX,
		MateY: mateY,
	}
	if stats != nil {
		s.Stats = checkpoint.CumulativeStats{
			Phases:             stats.Phases,
			EdgesTraversed:     stats.EdgesTraversed,
			AugPaths:           stats.AugPaths,
			AugPathLen:         stats.AugPathLen,
			InitialCardinality: stats.InitialCardinality,
			Grafts:             stats.Grafts,
			Rebuilds:           stats.Rebuilds,
			Runtime:            stats.Runtime,
		}
	}
	// File I/O happens with the writing flag claimed but the mutex free:
	// status() and rival snapshot attempts never block behind the disk.
	saveStart := time.Now()
	path, io, err := checkpoint.SaveMeasured(w.dir, s)
	if err == nil {
		w.rec.CheckpointSaved(path, io.Bytes, io.Fsync)
		w.rec.Span("checkpoint", "save", saveStart, time.Since(saveStart), io.Bytes)
		// Retention is best-effort: a failed prune must not disable
		// checkpointing, and the next successful prune catches up.
		_ = checkpoint.Prune(w.dir, w.keep)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.writing = false
	if err != nil {
		if w.firstErr == nil {
			w.firstErr = err
		}
		return
	}
	w.lastWrite = time.Now()
	w.lastPath = path
}

// status returns the newest snapshot path and the first write failure.
func (w *ckptWriter) status() (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastPath, w.firstErr
}

// runMatch routes an initialized matching through the durability layers:
// supervised execution when requested, otherwise a single engine run with
// optional checkpointing. The recorder's run-status lifecycle brackets all
// of it, so /status reflects the run whichever layer drives it.
func runMatch(ctx context.Context, g *Graph, m *matching.Matching, opts Options) (*Result, error) {
	rec := opts.Recorder
	rec.SetGraph(int64(g.NX()), int64(g.NY()), g.NumEdges())
	rec.RunStart(opts.Algorithm.String())
	res, err := runMatchLayers(ctx, g, m, opts)
	if err != nil {
		rec.RunDone(false, m.Cardinality())
		return nil, err
	}
	rec.RunDone(res.Complete, res.Cardinality)
	return res, nil
}

func runMatchLayers(ctx context.Context, g *Graph, m *matching.Matching, opts Options) (*Result, error) {
	if opts.Supervise != nil {
		return superviseMatch(ctx, g, m, opts)
	}
	if opts.Checkpoint == nil {
		return finishMatch(ctx, g, m, opts)
	}
	w := newCkptWriter(g, *opts.Checkpoint, m.Cardinality(), opts.Recorder)
	engine := opts.Algorithm.String()
	user := opts.OnPhase
	opts.OnPhase = func(phase, card int64) {
		// Engines fire this on the driver goroutine at a consistent phase
		// boundary, so reading the live mate arrays here is safe.
		w.observe(engine, phase, card, m.MateX, m.MateY)
		if user != nil {
			user(phase, card)
		}
	}
	res, err := finishMatch(ctx, g, m, opts)
	if err != nil {
		return nil, err
	}
	w.final(engine, res.Stats, res.Cardinality, res.MateX, res.MateY)
	res.CheckpointPath, res.CheckpointErr = w.status()
	return res, nil
}
