package graftmatch

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graftmatch/internal/checkpoint"
	"graftmatch/internal/core"
	"graftmatch/internal/gen"
)

// TestCheckpointEmissionAndResume: a run with checkpointing cancelled
// mid-computation must leave a loadable snapshot on disk, and resuming from
// it must reach the same maximum cardinality as an uninterrupted run.
func TestCheckpointEmissionAndResume(t *testing.T) {
	g := gen.ER(500, 500, 1500, 3)
	want, err := Match(g, Options{Initializer: NoInit})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := MatchContext(ctx, g, Options{
		Initializer: NoInit,
		Checkpoint:  &CheckpointOptions{Dir: dir},
		OnPhase: func(phase, card int64) {
			if phase == 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErr != nil {
		t.Fatalf("checkpoint write failed: %v", res.CheckpointErr)
	}
	if res.CheckpointPath == "" {
		t.Fatal("no checkpoint path on a checkpointed run")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Fatal("no snapshot files emitted")
	}

	st, err := LoadCheckpoint(g, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMatching(g, st.MateX, st.MateY); err != nil {
		t.Fatalf("restored matching invalid: %v", err)
	}
	resumed, err := ResumeMatch(g, st.MateX, st.MateY, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete || resumed.Cardinality != want.Cardinality {
		t.Fatalf("resumed to %d (complete=%v), want %d",
			resumed.Cardinality, resumed.Complete, want.Cardinality)
	}
}

// TestCheckpointFinalSnapshotOnCompletion: a run allowed to finish writes a
// final snapshot whose cardinality is the maximum, restorable even for
// serial engines that report no phases.
func TestCheckpointFinalSnapshotOnCompletion(t *testing.T) {
	g := gen.ER(200, 200, 800, 5)
	for _, algo := range []Algorithm{MSBFSGraft, HopcroftKarp} {
		dir := t.TempDir()
		res, err := Match(g, Options{Algorithm: algo, Checkpoint: &CheckpointOptions{Dir: dir}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.CheckpointErr != nil {
			t.Fatalf("%v: %v", algo, res.CheckpointErr)
		}
		st, err := LoadCheckpoint(g, dir)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if st.Cardinality != res.Cardinality {
			t.Fatalf("%v: snapshot |M|=%d, run |M|=%d", algo, st.Cardinality, res.Cardinality)
		}
		if st.Engine != algo.String() {
			t.Fatalf("%v: snapshot engine %q", algo, st.Engine)
		}
	}
}

// TestCheckpointKeepBound: retention pruning holds the snapshot count at
// CheckpointOptions.Keep.
func TestCheckpointKeepBound(t *testing.T) {
	g := gen.ER(500, 500, 1500, 3)
	dir := t.TempDir()
	if _, err := Match(g, Options{
		Initializer: NoInit,
		Checkpoint:  &CheckpointOptions{Dir: dir, Keep: 2},
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			ckpts++
		}
	}
	if ckpts > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", ckpts)
	}
}

// TestLoadCheckpointErrors: an empty directory is ErrNoCheckpoint (start
// fresh); a snapshot of a different graph is a typed mismatch, not silence.
func TestLoadCheckpointErrors(t *testing.T) {
	g := gen.ER(100, 100, 400, 1)
	if _, err := LoadCheckpoint(g, t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
	if _, err := LoadCheckpoint(nil, t.TempDir()); err == nil {
		t.Fatal("nil graph: want error")
	}

	// Checkpoint one graph, try to restore onto another.
	dir := t.TempDir()
	if _, err := Match(g, Options{Checkpoint: &CheckpointOptions{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	other := gen.ER(100, 100, 400, 2)
	var me *checkpoint.MismatchError
	if _, err := LoadCheckpoint(other, dir); !errors.As(err, &me) {
		t.Fatalf("wrong graph: got %v, want *MismatchError", err)
	}
}

// TestSupervisedMatchesUnsupervised: on a healthy instance the supervisor is
// invisible — same cardinality, first rung completes.
func TestSupervisedMatchesUnsupervised(t *testing.T) {
	g := gen.ER(500, 500, 1500, 3)
	want, err := Match(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(g, Options{Supervise: &SuperviseOptions{
		PhaseTimeout: time.Minute,
		StallPhases:  50,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Cardinality != want.Cardinality {
		t.Fatalf("supervised |M|=%d complete=%v, want %d", res.Cardinality, res.Complete, want.Cardinality)
	}
	if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		t.Fatal(err)
	}
	sup := res.Supervision
	if sup == nil || sup.Engine != "MS-BFS-Graft" || len(sup.Rungs) != 1 {
		t.Fatalf("supervision report = %+v, want single MS-BFS-Graft completion", sup)
	}
	if sup.Rungs[0].Outcome != "completed" {
		t.Fatalf("rung outcome %q, want completed", sup.Rungs[0].Outcome)
	}
}

// TestSupervisedFallbackOnEngineFault: the first rung's workers panic; the
// supervisor must degrade to Pothen–Fan and still deliver the maximum
// matching, recording the errored rung.
func TestSupervisedFallbackOnEngineFault(t *testing.T) {
	core.TestHookWorkerFault = func(worker int) {
		panic("injected worker fault")
	}
	defer func() { core.TestHookWorkerFault = nil }()

	g := gen.ER(400, 400, 1600, 9)
	want, err := Match(g, Options{Algorithm: PothenFan, Initializer: NoInit})
	if err != nil {
		t.Fatal(err)
	}
	// Threads > 1 so the parallel top-down path (where the hook lives) runs
	// even on single-core machines.
	res, err := Match(g, Options{Initializer: NoInit, Threads: 4, Supervise: &SuperviseOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Cardinality != want.Cardinality {
		t.Fatalf("supervised |M|=%d complete=%v, want %d", res.Cardinality, res.Complete, want.Cardinality)
	}
	sup := res.Supervision
	if sup == nil || len(sup.Rungs) < 2 {
		t.Fatalf("supervision report = %+v, want a fallback after the fault", sup)
	}
	if sup.Rungs[0].Outcome != "errored" || sup.Rungs[0].Err == "" {
		t.Fatalf("rung 0 = %+v, want errored MS-BFS-Graft", sup.Rungs[0])
	}
	if sup.Engine != "PF" {
		t.Fatalf("completing engine %q, want PF", sup.Engine)
	}
}

// TestSupervisedAllEnginesFail: when every rung hard-fails the error
// surfaces instead of a bogus result.
func TestSupervisedAllEnginesFail(t *testing.T) {
	core.TestHookWorkerFault = func(worker int) {
		panic("injected worker fault")
	}
	defer func() { core.TestHookWorkerFault = nil }()

	g := gen.ER(200, 200, 800, 9)
	// A ladder of MS-BFS variants only — all hit the injected fault.
	_, err := Match(g, Options{Initializer: NoInit, Threads: 4, Supervise: &SuperviseOptions{
		Ladder: []Algorithm{MSBFSGraft, MSBFS},
	}})
	if err == nil {
		t.Fatal("want error when every rung fails")
	}
}

// TestSupervisedDeadlinePartial: the deadline governs the whole supervised
// run and yields the usual partial-result semantics.
func TestSupervisedDeadlinePartial(t *testing.T) {
	g := gen.ER(200, 200, 800, 5)
	res, err := Match(g, Options{
		Deadline:  time.Now().Add(-time.Hour),
		Supervise: &SuperviseOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("expired deadline produced a complete supervised result")
	}
	if err := VerifyMatching(g, res.MateX, res.MateY); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisedWithCheckpointing: snapshots ride the supervisor's observe
// hook; the final state on disk matches the returned result.
func TestSupervisedWithCheckpointing(t *testing.T) {
	g := gen.ER(500, 500, 1500, 3)
	dir := t.TempDir()
	res, err := Match(g, Options{
		Initializer: NoInit,
		Checkpoint:  &CheckpointOptions{Dir: dir},
		Supervise:   &SuperviseOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErr != nil {
		t.Fatal(res.CheckpointErr)
	}
	st, err := LoadCheckpoint(g, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cardinality != res.Cardinality {
		t.Fatalf("snapshot |M|=%d, result |M|=%d", st.Cardinality, res.Cardinality)
	}
	resumed, err := ResumeMatch(g, st.MateX, st.MateY, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cardinality != res.Cardinality {
		t.Fatalf("resume from final snapshot moved |M| %d -> %d", st.Cardinality, resumed.Cardinality)
	}
}

// TestCheckpointWriteFailureDoesNotAbort: an unwritable checkpoint dir is
// reported via CheckpointErr while the computation still completes.
func TestCheckpointWriteFailureDoesNotAbort(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(parent, 0o755) })
	g := gen.ER(200, 200, 800, 5)
	res, err := Match(g, Options{
		Checkpoint: &CheckpointOptions{Dir: filepath.Join(parent, "ck")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("run did not complete despite checkpoint failure being best-effort")
	}
	if res.CheckpointErr == nil {
		t.Fatal("unwritable dir not reported via CheckpointErr")
	}
}

// TestCkptWriterConcurrentSnapshots drives observe/final/status from racing
// goroutines, the zombie-rung overlap the writer must tolerate: no snapshot
// may run while another is in flight (the writing flag), the mutex must not
// be held across file I/O (status stays responsive), and a final snapshot
// must land even with a rate limit that suppresses every observe.
func TestCkptWriterConcurrentSnapshots(t *testing.T) {
	g := gen.ER(100, 100, 300, 7)
	dir := t.TempDir()
	w := newCkptWriter(g, CheckpointOptions{Dir: dir, Interval: time.Hour}, 0, nil)

	mateX := make([]int32, 100)
	mateY := make([]int32, 100)
	for i := range mateX {
		mateX[i], mateY[i] = -1, -1
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for p := int64(0); p < 50; p++ {
				w.observe("tg", p, 0, mateX, mateY)
				if _, err := w.status(); err != nil {
					t.Errorf("status: %v", err)
				}
			}
		}(int64(i))
	}
	wg.Wait()
	w.final("tg", &Stats{Phases: 50}, 0, mateX, mateY)

	path, err := w.status()
	if err != nil {
		t.Fatalf("status after final: %v", err)
	}
	if path == "" {
		t.Fatal("final snapshot was not written despite the hour-long observe rate limit")
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("loading final snapshot: %v", err)
	}
	if snap.Stats.Phases != 50 {
		t.Fatalf("final snapshot phases = %d, want 50", snap.Stats.Phases)
	}
}
