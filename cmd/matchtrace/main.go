// Command matchtrace visualizes the BFS frontier evolution of the MS-BFS
// family on any input graph — the Fig. 8 view of the paper, as ASCII bars
// per phase and level. It makes the effect of tree grafting directly
// visible: grafted phases start from their largest frontier and only
// shrink, while plain MS-BFS phases rebuild and re-grow the same forests.
//
// Usage:
//
//	matchtrace [-algo msbfsgraft|msbfs|diropt] [-init greedy|ks|none]
//	           [-threads N] [-phases K] [-width W] (file.mtx | -suite NAME)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graftmatch"
	"graftmatch/internal/exps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matchtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("matchtrace", flag.ContinueOnError)
	algoName := fs.String("algo", "msbfsgraft", "algorithm: msbfsgraft, msbfs, diropt")
	initName := fs.String("init", "greedy", "initializer: ks, greedy, pgreedy, pks, none")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	maxPhases := fs.Int("phases", 8, "show at most this many phases")
	width := fs.Int("width", 60, "bar width of the largest frontier")
	suiteName := fs.String("suite", "", "use a synthetic suite instance instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graftmatch.Graph
	switch {
	case *suiteName != "":
		inst, ok := exps.ByName(exps.Small, *suiteName)
		if !ok {
			return fmt.Errorf("unknown suite instance %q (try: %s)", *suiteName, strings.Join(exps.Names(exps.Small), ", "))
		}
		g = inst.Graph
	case fs.NArg() == 1:
		var err error
		g, err = graftmatch.ReadGraphFile(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("expected a graph file or -suite NAME")
	}

	algo, ok := map[string]graftmatch.Algorithm{
		"msbfsgraft": graftmatch.MSBFSGraft,
		"msbfs":      graftmatch.MSBFS,
		"diropt":     graftmatch.MSBFSDirOpt,
	}[strings.ToLower(*algoName)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q (matchtrace supports the MS-BFS family)", *algoName)
	}
	initz, ok := map[string]graftmatch.Initializer{
		"ks":      graftmatch.KarpSipser,
		"greedy":  graftmatch.Greedy,
		"pgreedy": graftmatch.ParallelGreedy,
		"pks":     graftmatch.ParallelKarpSipser,
		"none":    graftmatch.NoInit,
	}[strings.ToLower(*initName)]
	if !ok {
		return fmt.Errorf("unknown initializer %q", *initName)
	}

	res, err := graftmatch.Match(g, graftmatch.Options{
		Algorithm:      algo,
		Initializer:    initz,
		Threads:        *threads,
		TraceFrontiers: true,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s on %d+%d vertices, %d edges: |M| = %d in %d phases (%d grafted, %d rebuilt)\n",
		res.Stats.Algorithm, g.NX(), g.NY(), g.NumEdges(),
		res.Cardinality, res.Stats.Phases, res.Stats.Grafts, res.Stats.Rebuilds)

	var peak int64 = 1
	for _, phase := range res.Stats.FrontierTrace {
		for _, sz := range phase {
			if sz > peak {
				peak = sz
			}
		}
	}
	for pi, phase := range res.Stats.FrontierTrace {
		if pi >= *maxPhases {
			fmt.Fprintf(w, "... %d more phases\n", len(res.Stats.FrontierTrace)-pi)
			break
		}
		fmt.Fprintf(w, "phase %d:\n", pi+1)
		for li, sz := range phase {
			bar := int(sz * int64(*width) / peak)
			fmt.Fprintf(w, "  L%-2d %8d %s\n", li, sz, strings.Repeat("#", bar))
		}
	}
	return nil
}
