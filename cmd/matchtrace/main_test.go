package main

import (
	"os"
	"path/filepath"
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/mmio"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestSuiteInstance(t *testing.T) {
	for _, algo := range []string{"msbfsgraft", "msbfs", "diropt"} {
		if err := run([]string{"-suite", "coPapersDBLP", "-algo", algo, "-phases", "2"}, devNull(t)); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := mmio.WriteFile(path, gen.ER(60, 60, 200, 1)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-init", "none", path}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestInitializers(t *testing.T) {
	for _, init := range []string{"ks", "greedy", "pgreedy", "pks", "none"} {
		if err := run([]string{"-suite", "wikipedia", "-init", init, "-phases", "1"}, devNull(t)); err != nil {
			t.Fatalf("%s: %v", init, err)
		}
	}
}

func TestErrors(t *testing.T) {
	out := devNull(t)
	cases := [][]string{
		{},                                     // no input
		{"-suite", "nope"},                     // unknown instance
		{"-algo", "pf", "-suite", "wikipedia"}, // unsupported algorithm
		{"-init", "bogus", "-suite", "wikipedia"},
		{"/missing.mtx"},
		{"-phases", "x", "-suite", "wikipedia"}, // flag error
	}
	for _, args := range cases {
		if err := run(args, out); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
