// Command graphgen generates the synthetic bipartite graph suite (or a
// single named instance) as Matrix Market files, so experiments can be
// rerun from on-disk inputs and external tools can consume the same graphs.
//
// Usage:
//
//	graphgen -out DIR [-scale small|medium|large] [-name kkt_power]
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/exps"
	"graftmatch/internal/mmio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory for .mtx files")
	scaleName := fs.String("scale", "small", "suite scale: small, medium, large")
	name := fs.String("name", "", "generate only the named instance")
	format := fs.String("format", "mtx", "output format: mtx, el, mtx.gz, el.gz")
	list := fs.Bool("list", false, "list suite instances and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		return err
	}
	if *list {
		for _, inst := range exps.Suite(scale) {
			s := bipartite.ComputeStats(inst.Graph)
			fmt.Printf("%-16s %-12s %s\n", inst.Name, inst.Class, s.String())
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required (or use -list)")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, inst := range exps.Suite(scale) {
		if *name != "" && inst.Name != *name {
			continue
		}
		path := filepath.Join(*out, inst.Name+"."+*format)
		if err := mmio.WriteAuto(path, inst.Graph); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d x %d, %d nonzeros)\n",
			path, inst.Graph.NX(), inst.Graph.NY(), inst.Graph.NumEdges())
	}
	return nil
}

func parseScale(s string) (exps.Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return exps.Small, nil
	case "medium":
		return exps.Medium, nil
	case "large":
		return exps.Large, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}
