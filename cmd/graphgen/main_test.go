package main

import (
	"os"
	"path/filepath"
	"testing"

	"graftmatch/internal/exps"
	"graftmatch/internal/mmio"
)

func TestMain(m *testing.M) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = devnull
	}
	os.Exit(m.Run())
}

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSingle(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-name", "wikipedia"}); err != nil {
		t.Fatal(err)
	}
	g, err := mmio.ReadFile(filepath.Join(dir, "wikipedia.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exps.ByName(exps.Small, "wikipedia")
	if g.NumEdges() != want.Graph.NumEdges() {
		t.Fatalf("round trip changed edges: %d vs %d", g.NumEdges(), want.Graph.NumEdges())
	}
	// Only the requested instance is written.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("wrote %d files, want 1", len(entries))
	}
}

func TestGenerateAll(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("wrote %d files, want 12", len(entries))
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]exps.Scale{
		"small": exps.Small, "Medium": exps.Medium, "LARGE": exps.Large,
	} {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Fatalf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Fatal("want error for unknown scale")
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("want error without -out")
	}
	if err := run([]string{"-scale", "bogus", "-list"}); err == nil {
		t.Fatal("want error for bad scale")
	}
	if err := run([]string{"-out", "/proc/definitely/not/writable"}); err == nil {
		t.Fatal("want error for unwritable dir")
	}
}

func TestGenerateFormats(t *testing.T) {
	for _, format := range []string{"el", "mtx.gz", "el.gz"} {
		dir := t.TempDir()
		if err := run([]string{"-out", dir, "-name", "wikipedia", "-format", format}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		g, err := mmio.ReadAuto(filepath.Join(dir, "wikipedia."+format))
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		want, _ := exps.ByName(exps.Small, "wikipedia")
		if g.NumEdges() != want.Graph.NumEdges() {
			t.Fatalf("%s: edge mismatch", format)
		}
	}
	if err := run([]string{"-out", t.TempDir(), "-name", "wikipedia", "-format", "bogus"}); err == nil {
		t.Fatal("want error for unknown format")
	}
}
