// Command graftlint runs the repo's concurrency-invariant static analysis
// suite (internal/analysis) over the module and reports findings with
// file:line diagnostics. It is the machine-checkable wall in front of the
// atomic-heavy matching kernels and the distributed runtime: alignment of
// 64-bit atomics on 32-bit targets, atomic-vs-plain access discipline,
// cache-line padding of per-worker state, context propagation of the
// resilient entry points, error/panic hygiene, goroutine/lock/WaitGroup
// flow rules, hot-path allocation, and the value-flow tier over the wire
// protocol (exhaustive frame dispatch, socket-deadline hygiene, bounded
// decode allocations, cancellable goroutine channel ops).
//
// Usage:
//
//	graftlint [-json] [-sarif] [-checks a,b,c] [-list] [-C dir]
//	          [-baseline file] [-write-baseline file] [-suppressions]
//	          [packages]
//
// Package patterns are module-relative ("./...", "./internal/queue",
// "internal/par/..."); with none given the whole module is checked.
// -checks selects a subset by name, or with "-name" entries negates
// against the full registry (-checks=-hotpath-alloc runs all but one);
// the two forms do not mix. The
// exit status is 0 when clean, 1 when findings were reported, 2 on usage or
// load errors. Findings are suppressed per line with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// -sarif emits SARIF 2.1.0 for code-scanning upload instead of text; rules
// carry per-check severity (defaultConfiguration.level) and a helpUri.
// -baseline subtracts the findings recorded in a baseline file (keyed by
// file, check, and message — not line) and warns about stale entries;
// -write-baseline records the current findings as that file, announcing
// the stale entries it drops, and exits 0. -suppressions reports the
// //lint:ignore ledger — directive counts per check and file, plus every
// directive that silenced nothing in the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"graftmatch/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run, or -name entries to run all but those (default: all)")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	dirFlag := fs.String("C", "", "module root directory (default: nearest go.mod at or above the working directory)")
	baselineFlag := fs.String("baseline", "", "subtract findings recorded in this baseline file; warn about stale entries")
	writeBaselineFlag := fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	suppressionsFlag := fs.Bool("suppressions", false, "report //lint:ignore directives per check and file, flagging any that silence nothing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graftlint [-json] [-sarif] [-checks a,b,c] [-list] [-C dir] [-baseline file] [-write-baseline file] [-suppressions] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintf(stdout, "\n-checks takes a comma-separated subset, or an all-negated form\n(-checks=-hotpath-alloc runs every check but that one)\n")
		return 0
	}

	root := *dirFlag
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "graftlint: %v\n", err)
			return 2
		}
		root = findModuleRoot(wd)
		if root == "" {
			fmt.Fprintf(stderr, "graftlint: no go.mod found at or above %s\n", wd)
			return 2
		}
	}

	names, err := parseChecks(*checksFlag)
	if err != nil {
		fmt.Fprintf(stderr, "graftlint: %v\n", err)
		return 2
	}

	prog, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "graftlint: %v\n", err)
		return 2
	}
	diags, err := prog.Run(names)
	if err != nil {
		fmt.Fprintf(stderr, "graftlint: %v\n", err)
		return 2
	}
	diags = filterPatterns(diags, root, fs.Args(), stderr)

	if *suppressionsFlag {
		reportSuppressions(stdout, root, prog.Suppressions())
		return 0
	}
	if *writeBaselineFlag != "" {
		if err := writeBaseline(*writeBaselineFlag, root, diags, stderr); err != nil {
			fmt.Fprintf(stderr, "graftlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "graftlint: wrote %d baseline entr%s to %s\n",
			len(diags), map[bool]string{true: "y", false: "ies"}[len(diags) == 1], *writeBaselineFlag)
		return 0
	}
	if *baselineFlag != "" {
		bf, err := loadBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintf(stderr, "graftlint: %v\n", err)
			return 2
		}
		diags = applyBaseline(bf, root, diags, stderr)
	}

	switch {
	case *sarifOut:
		if err := writeSARIF(stdout, root, diags); err != nil {
			fmt.Fprintf(stderr, "graftlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File: relTo(root, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Check: d.Check, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "graftlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relTo(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot ascends from dir to the nearest directory with a go.mod.
// parseChecks resolves the -checks flag: a plain comma-separated list names
// the checks to run, while "-name" entries negate — every registered check
// except those. The two forms do not mix; nil means "all checks".
func parseChecks(s string) ([]string, error) {
	var pos, neg []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		switch {
		case n == "":
		case strings.HasPrefix(n, "-"):
			neg = append(neg, n[1:])
		default:
			pos = append(pos, n)
		}
	}
	if len(neg) == 0 {
		return pos, nil
	}
	if len(pos) > 0 {
		return nil, fmt.Errorf("-checks mixes selected (%s) and negated (-%s) names; use one form",
			strings.Join(pos, ","), strings.Join(neg, ",-"))
	}
	known := map[string]bool{}
	for _, name := range analysis.CheckNames() {
		known[name] = true
	}
	drop := map[string]bool{}
	for _, n := range neg {
		if !known[n] {
			return nil, fmt.Errorf("-checks negates unknown check %q (see -list)", n)
		}
		drop[n] = true
	}
	var names []string
	for _, name := range analysis.CheckNames() {
		if !drop[name] {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-checks negates every check; nothing to run")
	}
	return names, nil
}

func findModuleRoot(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// relTo renders path relative to root when possible, for stable output.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// filterPatterns keeps the diagnostics whose file falls under one of the
// module-relative package patterns. An empty pattern list, "./...", or the
// bare module pattern keeps everything.
func filterPatterns(diags []analysis.Diagnostic, root string, patterns []string, stderr io.Writer) []analysis.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keepAll := false
	type rule struct {
		dir       string // slash-form relative dir, "" = root
		recursive bool
	}
	var rules []rule
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		p = strings.TrimPrefix(p, "./")
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
		}
		if p == "" || p == "." {
			if recursive {
				keepAll = true
			}
			p = "."
		}
		rules = append(rules, rule{dir: p, recursive: recursive})
	}
	if keepAll {
		return diags
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		rel := filepath.ToSlash(relTo(root, d.Pos.Filename))
		dir := "."
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		for _, r := range rules {
			if dir == r.dir || (r.recursive && strings.HasPrefix(dir, r.dir+"/")) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}
