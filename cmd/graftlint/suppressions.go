package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graftmatch/internal/analysis"
)

// reportSuppressions renders the //lint:ignore audit: totals per check and
// per file, then every directive that silenced nothing in this run. The hit
// counts come from the full check run the caller already performed, so a
// zero-hit directive means the code it once justified has moved on (or the
// run was narrowed with -checks, which the caller controls).
func reportSuppressions(w io.Writer, root string, dirs []analysis.Directive) {
	byCheck := map[string]int{}  // check -> directives naming it
	hitCheck := map[string]int{} // check -> findings silenced
	byFile := map[string]int{}
	var stale []analysis.Directive
	for _, d := range dirs {
		byFile[relTo(root, d.File)]++
		for _, c := range d.Checks {
			byCheck[c]++
			hitCheck[c] += d.Hits[c]
		}
		if d.Silenced() == 0 {
			stale = append(stale, d)
		}
	}

	fmt.Fprintf(w, "%d //lint:ignore directive%s in %d file%s\n",
		len(dirs), plural(len(dirs)), len(byFile), plural(len(byFile)))

	fmt.Fprintf(w, "\nby check:\n")
	for _, c := range sortedKeys(byCheck) {
		fmt.Fprintf(w, "  %-20s %3d directive%s, %d finding%s silenced\n",
			c, byCheck[c], plural(byCheck[c]), hitCheck[c], plural(hitCheck[c]))
	}

	fmt.Fprintf(w, "\nby file:\n")
	for _, f := range sortedKeys(byFile) {
		fmt.Fprintf(w, "  %-44s %3d\n", f, byFile[f])
	}

	if len(stale) > 0 {
		fmt.Fprintf(w, "\nsilencing nothing in this run (stale, or scoped to a narrowed -checks set):\n")
		for _, d := range stale {
			fmt.Fprintf(w, "  %s:%d: %s — %s\n",
				relTo(root, d.File), d.Line, strings.Join(d.Checks, ","), d.Reason)
		}
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
