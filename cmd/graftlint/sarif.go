package main

import (
	"encoding/json"
	"io"

	"graftmatch/internal/analysis"
)

// SARIF 2.1.0 output, shaped for GitHub code scanning: one run, the check
// suite as the tool's rule list, one result per finding with a physical
// location. Only the subset of the schema consumers actually read is
// emitted.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string           `json:"id"`
	ShortDescription     sarifMessage     `json:"shortDescription"`
	HelpURI              string           `json:"helpUri,omitempty"`
	DefaultConfiguration *sarifRuleConfig `json:"defaultConfiguration,omitempty"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the findings as a SARIF 2.1.0 log. File paths are
// emitted module-root-relative in slash form, which is what code-scanning
// upload expects when the workflow checks out the repository at the root.
func writeSARIF(w io.Writer, root string, diags []analysis.Diagnostic) error {
	rules := []sarifRule{{
		ID:                   "lint-directive",
		ShortDescription:     sarifMessage{Text: "malformed //lint:ignore directive"},
		DefaultConfiguration: &sarifRuleConfig{Level: "error"},
	}}
	levels := map[string]string{"lint-directive": "error"}
	for _, c := range analysis.Checks() {
		rules = append(rules, sarifRule{
			ID:                   c.Name,
			ShortDescription:     sarifMessage{Text: c.Doc},
			HelpURI:              c.HelpURI,
			DefaultConfiguration: &sarifRuleConfig{Level: c.Level},
		})
		levels[c.Name] = c.Level
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		level := levels[d.Check]
		if level == "" {
			level = "error"
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   level,
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relTo(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "graftlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
