package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"graftmatch/internal/analysis"
)

// A baseline is the debt ledger for adopting a new check on an existing
// tree: known findings recorded by (file, check, message) — deliberately
// not by line, so unrelated edits that shift code do not invalidate
// entries. `-baseline file` subtracts recorded findings from the output;
// entries that no longer match anything are reported as stale on stderr so
// the ledger shrinks monotonically. `-write-baseline file` records the
// current findings and exits clean.

// baselineEntry identifies one accepted finding.
type baselineEntry struct {
	File    string `json:"file"` // module-root-relative, slash form
	Check   string `json:"check"`
	Message string `json:"message"`
}

// baselineFile is the on-disk form.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []baselineEntry `json:"entries"`
}

func entryOf(root string, d analysis.Diagnostic) baselineEntry {
	return baselineEntry{File: relTo(root, d.Pos.Filename), Check: d.Check, Message: d.Message}
}

// loadBaseline reads and validates a baseline file.
func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d", path, bf.Version)
	}
	return &bf, nil
}

// applyBaseline filters diags against the baseline, returning the findings
// still to report. Each matched entry absorbs any number of findings with
// its key (a message repeated at several lines of one file is one debt);
// entries matching nothing are stale and reported on stderr.
func applyBaseline(bf *baselineFile, root string, diags []analysis.Diagnostic, stderr io.Writer) []analysis.Diagnostic {
	matched := make([]bool, len(bf.Entries))
	index := map[baselineEntry]int{}
	for i, e := range bf.Entries {
		index[e] = i
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		if i, ok := index[entryOf(root, d)]; ok {
			matched[i] = true
			continue
		}
		out = append(out, d)
	}
	for i, e := range bf.Entries {
		if !matched[i] {
			fmt.Fprintf(stderr, "graftlint: stale baseline entry (no longer reported): %s: %s: %s\n",
				e.File, e.Check, e.Message)
		}
	}
	return out
}

// writeBaseline records diags as a baseline at path, deduplicated and
// sorted for stable diffs. When path already holds a baseline, entries that
// no longer match any current finding are dropped and reported on stderr:
// rewriting the ledger is how debt is retired, and a silent rewrite would
// hide how much was.
func writeBaseline(path, root string, diags []analysis.Diagnostic, stderr io.Writer) error {
	seen := map[baselineEntry]bool{}
	bf := baselineFile{Version: 1}
	for _, d := range diags {
		e := entryOf(root, d)
		if seen[e] {
			continue
		}
		seen[e] = true
		bf.Entries = append(bf.Entries, e)
	}
	if old, err := loadBaseline(path); err == nil {
		for _, e := range old.Entries {
			if !seen[e] {
				fmt.Fprintf(stderr, "graftlint: dropping stale baseline entry: %s: %s: %s\n",
					e.File, e.Check, e.Message)
			}
		}
	}
	sort.Slice(bf.Entries, func(i, j int) bool {
		a, b := bf.Entries[i], bf.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	if bf.Entries == nil {
		bf.Entries = []baselineEntry{}
	}
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
