package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graftmatch/internal/analysis"
)

// writeFixtureModule lays out a small module with one dirty package (two
// err-checked findings) and one clean package, and returns its root.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixmod\n\ngo 1.22\n",
		"dirty/dirty.go": `// Package dirty drops errors.
package dirty

import "errors"

func fail() error { return errors.New("boom") }

// Drop discards the error (finding 1).
func Drop() {
	fail()
}

// Explode panics outside the containment layer (finding 2).
func Explode() {
	panic("boom")
}
`,
		"clean/clean.go": `// Package clean is finding-free.
package clean

import "errors"

func fail() error { return errors.New("ok") }

// Handled propagates the error.
func Handled() error { return fail() }
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitNonZero(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{
		"dirty/dirty.go:10:2: err-checked:",
		"dirty/dirty.go:15:2: err-checked:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "clean/clean.go") {
		t.Errorf("clean package reported:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2:\n%s", len(findings), out)
	}
	if findings[0].File != "dirty/dirty.go" || findings[0].Line != 10 || findings[0].Check != "err-checked" {
		t.Errorf("unexpected first finding: %+v", findings[0])
	}
	if findings[1].Line != 15 || findings[1].Message == "" {
		t.Errorf("unexpected second finding: %+v", findings[1])
	}
}

func TestChecksSelection(t *testing.T) {
	root := writeFixtureModule(t)
	// The fixture only has err-checked findings: selecting another check
	// must come back clean.
	code, out, _ := runLint(t, "-C", root, "-checks", "ctx-discipline,atomic-align")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	code, out, _ = runLint(t, "-C", root, "-checks", "err-checked")
	if code != 1 || strings.Count(out, "err-checked") != 2 {
		t.Fatalf("exit = %d, want 1 with two err-checked findings; output:\n%s", code, out)
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	root := writeFixtureModule(t)
	code, _, errb := runLint(t, "-C", root, "-checks", "no-such-check")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown check") {
		t.Errorf("stderr missing unknown-check message:\n%s", errb)
	}
}

func TestPatternFiltering(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "./clean/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 when only the clean package is selected; output:\n%s", code, out)
	}
	code, out, _ = runLint(t, "-C", root, "./dirty")
	if code != 1 || strings.Count(out, "err-checked") != 2 {
		t.Fatalf("exit = %d, want 1 with both findings for ./dirty; output:\n%s", code, out)
	}
	code, _, _ = runLint(t, "-C", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for ./...", code)
	}
}

func TestListChecks(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"atomic-align", "mixed-access", "falseshare", "ctx-discipline", "err-checked",
		"goroutine-leak", "lock-discipline", "wg-balance", "hotpath-alloc",
		"proto-exhaustive", "deadline-discipline", "bounded-decode", "ctx-select",
		"shared-race", "aliased-lock", "global-mutable",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "-checks=-hotpath-alloc") {
		t.Errorf("-list output missing the negation syntax note:\n%s", out)
	}
}

// TestParseChecks pins the -checks grammar: plain names select, -name
// entries negate against the full registry, and the two forms do not mix.
func TestParseChecks(t *testing.T) {
	all := analysis.CheckNames()
	allBut := func(drop ...string) []string {
		skip := map[string]bool{}
		for _, d := range drop {
			skip[d] = true
		}
		var out []string
		for _, n := range all {
			if !skip[n] {
				out = append(out, n)
			}
		}
		return out
	}
	var negateAll []string
	for _, n := range all {
		negateAll = append(negateAll, "-"+n)
	}
	cases := []struct {
		name    string
		in      string
		want    []string
		wantErr string
	}{
		{name: "empty means all", in: "", want: nil},
		{name: "single", in: "err-checked", want: []string{"err-checked"}},
		{name: "spaces and commas", in: " err-checked , falseshare ,", want: []string{"err-checked", "falseshare"}},
		{name: "negate one", in: "-hotpath-alloc", want: allBut("hotpath-alloc")},
		{name: "negate two", in: "-shared-race,-aliased-lock", want: allBut("shared-race", "aliased-lock")},
		{name: "mixed forms", in: "err-checked,-falseshare", wantErr: "use one form"},
		{name: "negate unknown", in: "-no-such-check", wantErr: "unknown check"},
		{name: "negate everything", in: strings.Join(negateAll, ","), wantErr: "nothing to run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseChecks(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseChecks(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseChecks(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parseChecks(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("parseChecks(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestChecksNegationEndToEnd: negating the only firing check silences the
// dirty fixture; negating an unrelated one leaves its findings intact.
func TestChecksNegationEndToEnd(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "-checks", "-err-checked")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with err-checked negated; output:\n%s", code, out)
	}
	code, out, _ = runLint(t, "-C", root, "-checks", "-ctx-discipline")
	if code != 1 || strings.Count(out, "err-checked") != 2 {
		t.Fatalf("exit = %d, want 1 with both err-checked findings; output:\n%s", code, out)
	}
}

// TestSARIFOutput validates the -sarif log against the SARIF 2.1.0 shape
// GitHub code scanning consumes: schema/version headers, the tool driver
// with the full rule list, and per-result rule, level, message, and
// physical location.
func TestSARIFOutput(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "-sarif")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						HelpURI              string `json:"helpUri"`
						DefaultConfiguration struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q, $schema = %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "graftlint" {
		t.Errorf("driver name = %q, want graftlint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	ruleLevels := map[string]string{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		ruleLevels[r.ID] = r.DefaultConfiguration.Level
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		if r.DefaultConfiguration.Level == "" {
			t.Errorf("rule %s has no defaultConfiguration.level", r.ID)
		}
		if r.ID != "lint-directive" && !strings.Contains(r.HelpURI, r.ID) {
			t.Errorf("rule %s helpUri = %q, want an anchor naming the check", r.ID, r.HelpURI)
		}
	}
	for _, want := range []string{"err-checked", "goroutine-leak", "lock-discipline", "wg-balance", "hotpath-alloc",
		"proto-exhaustive", "deadline-discipline", "bounded-decode", "ctx-select", "lint-directive"} {
		if !ruleIDs[want] {
			t.Errorf("driver rules missing %q", want)
		}
	}
	// The level triage: hard invariants are errors, heuristics warn or note.
	for rule, level := range map[string]string{
		"err-checked":    "error",
		"ctx-discipline": "warning",
		"goroutine-leak": "warning",
		"falseshare":     "note",
		"hotpath-alloc":  "note",
		"bounded-decode": "error",
		"ctx-select":     "error",
	} {
		if ruleLevels[rule] != level {
			t.Errorf("rule %s level = %q, want %q", rule, ruleLevels[rule], level)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2:\n%s", len(run.Results), out)
	}
	res := run.Results[0]
	if res.RuleID != "err-checked" || res.Level != "error" || res.Message.Text == "" {
		t.Errorf("unexpected first result: %+v", res)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "dirty/dirty.go" {
		t.Errorf("uri = %q, want dirty/dirty.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 10 || loc.Region.StartColumn != 2 {
		t.Errorf("region = %+v, want 10:2", loc.Region)
	}
}

// TestBaselineRoundTrip exercises the add/expire lifecycle: record the
// current findings, verify they are subtracted, verify a fixed finding is
// reported as stale, and verify a new finding still fails the run.
func TestBaselineRoundTrip(t *testing.T) {
	root := writeFixtureModule(t)
	baseline := filepath.Join(root, "lint-baseline.json")

	// Record: exit 0 and a two-entry ledger.
	code, _, errb := runLint(t, "-C", root, "-write-baseline", baseline)
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0; stderr:\n%s", code, errb)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Version int `json:"version"`
		Entries []struct {
			File, Check, Message string
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatalf("invalid baseline JSON: %v\n%s", err, data)
	}
	if bf.Version != 1 || len(bf.Entries) != 2 {
		t.Fatalf("baseline = version %d with %d entries, want version 1 with 2", bf.Version, len(bf.Entries))
	}

	// Subtract: same tree is now clean, no stale warnings.
	code, out, errb := runLint(t, "-C", root, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; output:\n%s", code, out)
	}
	if strings.Contains(errb, "stale") {
		t.Errorf("unexpected stale warnings:\n%s", errb)
	}

	// Expire: fixing a finding turns its entry stale (warned, still exit 0).
	dirty := filepath.Join(root, "dirty", "dirty.go")
	src, err := os.ReadFile(dirty)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src), "func Drop() {\n\tfail()\n}", "func Drop() error {\n\treturn fail()\n}", 1)
	if fixed == string(src) {
		t.Fatal("fixture rewrite did not apply")
	}
	if err := os.WriteFile(dirty, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb = runLint(t, "-C", root, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 after fix; output:\n%s", code, out)
	}
	if !strings.Contains(errb, "stale baseline entry") || !strings.Contains(errb, "err-checked") {
		t.Errorf("expected stale-entry warning on stderr, got:\n%s", errb)
	}

	// Add: a new finding is not absorbed by the old ledger.
	extra := filepath.Join(root, "dirty", "extra.go")
	if err := os.WriteFile(extra, []byte("package dirty\n\n// Leak drops a fresh error.\nfunc Leak() {\n\tfail()\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runLint(t, "-C", root, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 with new finding; output:\n%s", code, out)
	}
	if !strings.Contains(out, "dirty/extra.go") {
		t.Errorf("new finding missing from output:\n%s", out)
	}
}

// TestBaselineErrors covers the failure modes: missing ledger and
// unsupported version are load errors (exit 2).
func TestBaselineErrors(t *testing.T) {
	root := writeFixtureModule(t)
	code, _, errb := runLint(t, "-C", root, "-baseline", filepath.Join(root, "missing.json"))
	if code != 2 {
		t.Fatalf("missing baseline: exit = %d, want 2; stderr:\n%s", code, errb)
	}
	bad := filepath.Join(root, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb = runLint(t, "-C", root, "-baseline", bad)
	if code != 2 {
		t.Fatalf("bad version: exit = %d, want 2; stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "unsupported baseline version") {
		t.Errorf("expected version error, got:\n%s", errb)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := t.TempDir() // no go.mod
	code, _, errb := runLint(t, "-C", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb)
	}
}

func TestRepoCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runLint(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("graftlint on the repo: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

// TestSuppressionsReport drives graftlint -suppressions over a module with
// one live directive and one stale one: the report must count both and list
// only the stale directive as silencing nothing, exiting 0 (the audit is a
// report, not a gate).
func TestSuppressionsReport(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module supmod\n\ngo 1.22\n",
		"a/a.go": `// Package a carries one live and one stale suppression.
package a

import "errors"

func fail() error { return errors.New("boom") }

// Drop is silenced by a live directive.
func Drop() {
	fail() //lint:ignore err-checked live: intentional drop for the report test
}

// Handled propagates the error; the directive above it is dead weight.
func Handled() error {
	//lint:ignore err-checked stale: the call below handles its error
	return fail()
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, out, errb := runLint(t, "-C", root, "-suppressions")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb)
	}
	for _, want := range []string{
		"2 //lint:ignore directives in 1 file",
		"err-checked",
		"a/a.go",
		"silencing nothing",
		"a/a.go:15: err-checked — stale: the call below handles its error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-suppressions output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "live: intentional drop") {
		t.Errorf("live directive listed as stale:\n%s", out)
	}
}

// TestWriteBaselineDropsStale pins the rewrite path: regenerating a baseline
// after a finding is fixed must shrink the ledger and announce each dropped
// entry, so retired debt is visible in the rewrite's output.
func TestWriteBaselineDropsStale(t *testing.T) {
	root := writeFixtureModule(t)
	baseline := filepath.Join(root, "lint-baseline.json")
	if code, _, errb := runLint(t, "-C", root, "-write-baseline", baseline); code != 0 {
		t.Fatalf("initial write exit = %d; stderr:\n%s", code, errb)
	}

	// Fix one of the two findings, then rewrite.
	dirty := filepath.Join(root, "dirty", "dirty.go")
	src, err := os.ReadFile(dirty)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src), "func Drop() {\n\tfail()\n}", "func Drop() error {\n\treturn fail()\n}", 1)
	if fixed == string(src) {
		t.Fatal("fixture rewrite did not apply")
	}
	if err := os.WriteFile(dirty, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runLint(t, "-C", root, "-write-baseline", baseline)
	if code != 0 {
		t.Fatalf("rewrite exit = %d; stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "dropping stale baseline entry") || !strings.Contains(errb, "discarded") {
		t.Errorf("rewrite did not announce the dropped entry:\n%s", errb)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var bf struct {
		Entries []struct{ File, Check, Message string } `json:"entries"`
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if len(bf.Entries) != 1 {
		t.Fatalf("rewritten baseline has %d entries, want 1: %+v", len(bf.Entries), bf.Entries)
	}
	if !strings.Contains(bf.Entries[0].Message, "panic") {
		t.Errorf("surviving entry = %+v, want the panic finding", bf.Entries[0])
	}
}
