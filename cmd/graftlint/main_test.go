package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureModule lays out a small module with one dirty package (two
// err-checked findings) and one clean package, and returns its root.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixmod\n\ngo 1.22\n",
		"dirty/dirty.go": `// Package dirty drops errors.
package dirty

import "errors"

func fail() error { return errors.New("boom") }

// Drop discards the error (finding 1).
func Drop() {
	fail()
}

// Explode panics outside the containment layer (finding 2).
func Explode() {
	panic("boom")
}
`,
		"clean/clean.go": `// Package clean is finding-free.
package clean

import "errors"

func fail() error { return errors.New("ok") }

// Handled propagates the error.
func Handled() error { return fail() }
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitNonZero(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{
		"dirty/dirty.go:10:2: err-checked:",
		"dirty/dirty.go:15:2: err-checked:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "clean/clean.go") {
		t.Errorf("clean package reported:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2:\n%s", len(findings), out)
	}
	if findings[0].File != "dirty/dirty.go" || findings[0].Line != 10 || findings[0].Check != "err-checked" {
		t.Errorf("unexpected first finding: %+v", findings[0])
	}
	if findings[1].Line != 15 || findings[1].Message == "" {
		t.Errorf("unexpected second finding: %+v", findings[1])
	}
}

func TestChecksSelection(t *testing.T) {
	root := writeFixtureModule(t)
	// The fixture only has err-checked findings: selecting another check
	// must come back clean.
	code, out, _ := runLint(t, "-C", root, "-checks", "ctx-discipline,atomic-align")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	code, out, _ = runLint(t, "-C", root, "-checks", "err-checked")
	if code != 1 || strings.Count(out, "err-checked") != 2 {
		t.Fatalf("exit = %d, want 1 with two err-checked findings; output:\n%s", code, out)
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	root := writeFixtureModule(t)
	code, _, errb := runLint(t, "-C", root, "-checks", "no-such-check")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown check") {
		t.Errorf("stderr missing unknown-check message:\n%s", errb)
	}
}

func TestPatternFiltering(t *testing.T) {
	root := writeFixtureModule(t)
	code, out, _ := runLint(t, "-C", root, "./clean/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 when only the clean package is selected; output:\n%s", code, out)
	}
	code, out, _ = runLint(t, "-C", root, "./dirty")
	if code != 1 || strings.Count(out, "err-checked") != 2 {
		t.Fatalf("exit = %d, want 1 with both findings for ./dirty; output:\n%s", code, out)
	}
	code, _, _ = runLint(t, "-C", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for ./...", code)
	}
}

func TestListChecks(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomic-align", "mixed-access", "falseshare", "ctx-discipline", "err-checked"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := t.TempDir() // no go.mod
	code, _, errb := runLint(t, "-C", root)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb)
	}
}

func TestRepoCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runLint(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("graftlint on the repo: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}
