package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"graftmatch"
	"graftmatch/internal/gen"
	"graftmatch/internal/mmio"
)

func TestParseChaosSpec(t *testing.T) {
	ch, err := parseChaosSpec("drop=0.05,dup=0.1,latency=2ms,jitter=3ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if ch.Drop != 0.05 || ch.Duplicate != 0.1 || ch.Latency != 2*time.Millisecond ||
		ch.Jitter != 3*time.Millisecond || ch.Seed != 7 {
		t.Fatalf("parsed %+v", ch)
	}
	for _, bad := range []string{"drop", "rate=0.1", "drop=x", "drop=1.5", "dup=-0.1"} {
		if _, err := parseChaosSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestDistFlagValidation(t *testing.T) {
	path := writeTestMatrix(t)
	cases := [][]string{
		{"-dist-listen", "127.0.0.1:0", "-dist-join", "127.0.0.1:1", path}, // both roles
		{"-dist-listen", "127.0.0.1:0", path},                             // no -dist-ranks
		{"-dist-listen", "127.0.0.1:0", "-dist-ranks", "2", "-json", path},
		{"-dist-join", "127.0.0.1:1", "-dist-chaos", "bogus", path},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// TestDistCLIUnixSocket drives the whole CLI surface in-process: one run()
// call is the coordinator on a unix socket, two more are the rank workers —
// one of them behind a -dist-chaos proxy, which also pins the proxy's
// ability to front a unix-socket target (it once hardcoded tcp).
// The socket path is chosen up front, so no port needs to be communicated.
func TestDistCLIUnixSocket(t *testing.T) {
	path := writeTestMatrix(t)
	out := filepath.Join(t.TempDir(), "m.txt")
	sock := filepath.Join(t.TempDir(), "graft.sock")
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	launch := func(args []string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- run(args)
		}()
	}
	launch([]string{"-dist-listen", sock, "-dist-ranks", "2", "-dist-respawn=false",
		"-dist-hb", "50ms", "-verify", "-stats", "-out", out, path})
	launch([]string{"-dist-join", sock, path})
	launch([]string{"-dist-join", sock, "-dist-chaos", "drop=0.02,dup=0.02,latency=1ms,seed=3", path})
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if data, err := os.ReadFile(out); err != nil || len(data) == 0 {
		t.Fatalf("matching file: err=%v, %d bytes", err, len(data))
	}
}

// TestDistE2EKillRank is the acceptance run for the distributed runtime: a
// real maxmatch binary coordinates 4 real worker processes over TCP, one
// worker is SIGKILLed mid-run, and the coordinator must detect the death,
// respawn a replacement, and still finish with a Verify-clean matching of
// the same cardinality as the single-process engine.
func TestDistE2EKillRank(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns 5 processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "maxmatch")
	if out, err := exec.Command("go", "build", "-o", bin, "graftmatch/cmd/maxmatch").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Big enough that the phase loop is still running when the kill lands,
	// small enough to keep the test fast.
	g := gen.ER(20000, 20000, 120000, 11)
	gpath := filepath.Join(dir, "g.mtx")
	if err := mmio.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	ref, err := graftmatch.Match(g, graftmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin,
		"-dist-listen", "127.0.0.1:0", "-dist-ranks", "4", "-dist-spawn",
		"-dist-hb", "25ms", "-obs-addr", "127.0.0.1:0", "-verify", "-stats", gpath)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Scan the coordinator's stdout live: learn the worker pids from the
	// spawn lines and the obs address from the serving line, SIGKILL rank 1
	// the moment the first phase completes, and scrape /trace + /cluster
	// mid-run at each later phase boundary until spans from at least two
	// distinct ranks have landed in the coordinator's trace.
	pids := map[int]int{}
	killed := false
	var obsURL string
	rankLanes := map[int]bool{}
	var clusterOK bool
	var transcript strings.Builder
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		transcript.WriteString(line)
		transcript.WriteByte('\n')
		var rank, pid int
		if _, err := fmt.Sscanf(line, "dist: spawned rank %d pid=%d", &rank, &pid); err == nil {
			pids[rank] = pid
			continue
		}
		if addr, ok := strings.CutPrefix(line, "observability: serving http://"); ok {
			obsURL = "http://" + addr[:strings.IndexByte(addr, '/')]
			continue
		}
		if !strings.HasPrefix(line, "phase ") {
			continue
		}
		if !killed && pids[1] != 0 {
			proc, err := os.FindProcess(pids[1])
			if err != nil {
				t.Fatalf("find rank 1 pid %d: %v", pids[1], err)
			}
			if err := proc.Kill(); err != nil {
				t.Fatalf("kill rank 1: %v", err)
			}
			killed = true
			continue
		}
		if obsURL != "" && (len(rankLanes) < 2 || !clusterOK) {
			scrapeClusterObs(t, obsURL, rankLanes, &clusterOK)
		}
	}
	err = cmd.Wait()
	out := transcript.String()
	if err != nil {
		t.Fatalf("coordinator: %v\nstdout:\n%s\nstderr:\n%s", err, out, stderr.String())
	}
	if !killed {
		t.Fatalf("run finished before a phase line appeared — never killed a rank\nstdout:\n%s", out)
	}
	for _, want := range []string{
		"dist: rank 1 died; respawning",
		fmt.Sprintf("maximum matching cardinality: %d", ref.Cardinality),
		"verified: matching is valid and maximum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s\nstderr:\n%s", want, out, stderr.String())
		}
	}
	if !regexp.MustCompile(`rank deaths: [1-9]`).MatchString(out) {
		t.Errorf("stats report no rank deaths\nstdout:\n%s", out)
	}
	if obsURL == "" {
		t.Errorf("coordinator never printed the observability serving line\nstdout:\n%s", out)
	}
	if len(rankLanes) < 2 {
		t.Errorf("mid-run /trace scrapes saw spans from ranks %v, want >= 2 distinct ranks", rankLanes)
	}
	if !clusterOK {
		t.Errorf("mid-run /cluster scrapes never returned a full snapshot (trace id + 4 ranks)")
	}
	if !regexp.MustCompile(`run trace: [0-9a-f]{16}`).MatchString(out) {
		t.Errorf("stdout missing the run trace line\nstdout:\n%s", out)
	}
}

// scrapeClusterObs polls the coordinator's observability surface mid-run.
// Scrapes are best-effort — the run may finish between the phase line and
// the GET — so errors leave the accumulators unchanged; the caller asserts
// on the union of all scrapes.
func scrapeClusterObs(t *testing.T, obsURL string, rankLanes map[int]bool, clusterOK *bool) {
	t.Helper()
	if resp, err := http.Get(obsURL + "/trace"); err == nil {
		var ct struct {
			TraceEvents []struct {
				Ph  string `json:"ph"`
				Pid int    `json:"pid"`
			} `json:"traceEvents"`
		}
		if json.NewDecoder(resp.Body).Decode(&ct) == nil {
			for _, ev := range ct.TraceEvents {
				// Lane 0 (pid 1) is the coordinator's own local lane; pids
				// >= 2 are worker rank lanes (pid = rank + 2).
				if ev.Ph != "M" && ev.Pid >= 2 {
					rankLanes[ev.Pid-2] = true
				}
			}
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(obsURL + "/cluster"); err == nil {
		var cs struct {
			Trace string `json:"trace"`
			Ranks []struct {
				Rank  int  `json:"rank"`
				Alive bool `json:"alive"`
			} `json:"ranks"`
		}
		if json.NewDecoder(resp.Body).Decode(&cs) == nil &&
			cs.Trace != "" && len(cs.Ranks) == 4 {
			*clusterOK = true
		}
		resp.Body.Close()
	}
}
