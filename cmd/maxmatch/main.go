// Command maxmatch computes a maximum cardinality matching of a sparse
// matrix in Matrix Market format and reports run statistics.
//
// Usage:
//
//	maxmatch [-algo msbfsgraft|pf|pr|hk|ssbfs|ssdfs|msbfs|diropt] [-threads N]
//	         [-init ks|greedy|pgreedy|pks|none] [-timeout 30s] [-verify]
//	         [-checkpoint-dir DIR] [-checkpoint-interval 5s] [-resume]
//	         [-supervise] [-watchdog 30s] [-stall N] [-obs-addr :8080]
//	         [-stats] [-json] [-out matching.txt] file.{mtx,el,txt}[.gz]
//
// Distributed mode runs the matching across real processes over TCP or unix
// sockets. One process is the coordinator:
//
//	maxmatch -dist-listen :9000 -dist-ranks 4 -dist-spawn [-dist-respawn]
//	         [-dist-hb 500ms] [-dist-lease 4s] [-verify] [-stats] file.mtx
//
// and each rank is a worker (spawned automatically with -dist-spawn, or
// launched by hand or an external supervisor):
//
//	maxmatch -dist-join host:9000 [-dist-rank N] [-dist-chaos drop=0.05,latency=2ms] file.mtx
//
// Every process loads the same graph file; the handshake cross-checks graph
// fingerprints. The coordinator detects dead ranks by heartbeat lease,
// respawns replacements (-dist-respawn, default on), and resumes from the
// last phase-boundary checkpoint of the matching — with -checkpoint-dir the
// phase snapshots also persist to disk and survive coordinator restarts.
//
// With -checkpoint-dir the run persists crash-safe snapshots of its state at
// phase boundaries; -resume restarts from the newest valid snapshot for the
// same graph (verifying it first) and falls back to a fresh start when the
// directory is empty. -supervise (implied by -watchdog or -stall) runs the
// computation under a watchdog with an engine degradation ladder.
//
// With -obs-addr the run serves a live operational surface on that address
// while it computes: /metrics (Prometheus text), /metrics.json, /status,
// /trace (Chrome trace-event JSON for Perfetto), /trace/summary,
// /debug/pprof/* and /debug/vars. The listener is closed when the run ends.
//
// Exit status: 0 on success, 1 on error, 3 when -timeout expired and the
// reported matching is a valid partial result rather than a certified
// maximum, 4 when -resume found only corrupt or wrong-graph checkpoints.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"graftmatch"
	"graftmatch/internal/serve"
)

// errPartial signals a degraded (timeout-bounded) run: the matching printed
// is valid and resumable but not certified maximum. Mapped to exit status 3.
var errPartial = errors.New("timeout reached: matching is partial (valid and resumable), not certified maximum")

// errCheckpoint signals that -resume found checkpoints but none could be
// used: every snapshot was corrupt or belongs to a different graph. Mapped
// to exit status 4 so callers can distinguish "recompute from scratch is the
// only option" from an ordinary failure.
var errCheckpoint = errors.New("checkpoint unusable")

var algoByName = map[string]graftmatch.Algorithm{
	"msbfsgraft": graftmatch.MSBFSGraft,
	"msbfs":      graftmatch.MSBFS,
	"diropt":     graftmatch.MSBFSDirOpt,
	"pf":         graftmatch.PothenFan,
	"pr":         graftmatch.PushRelabel,
	"hk":         graftmatch.HopcroftKarp,
	"ssbfs":      graftmatch.SSBFS,
	"ssdfs":      graftmatch.SSDFS,
}

var initByName = map[string]graftmatch.Initializer{
	"ks":      graftmatch.KarpSipser,
	"greedy":  graftmatch.Greedy,
	"pgreedy": graftmatch.ParallelGreedy,
	"pks":     graftmatch.ParallelKarpSipser,
	"none":    graftmatch.NoInit,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maxmatch:", err)
		switch {
		case errors.Is(err, errPartial):
			os.Exit(3)
		case errors.Is(err, errCheckpoint):
			os.Exit(4)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maxmatch", flag.ContinueOnError)
	algoName := fs.String("algo", "msbfsgraft", "algorithm: msbfsgraft, msbfs, diropt, pf, pr, hk, ssbfs, ssdfs")
	initName := fs.String("init", "ks", "initializer: ks (Karp-Sipser), greedy, pgreedy, pks, none")
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 42, "initializer random seed")
	verify := fs.Bool("verify", false, "certify maximality (König vertex cover)")
	showStats := fs.Bool("stats", false, "print detailed run statistics")
	printMates := fs.Bool("mates", false, "print the mate of every row vertex")
	outPath := fs.String("out", "", "write the matching (1-based \"row col\" pairs) to this file")
	jsonOut := fs.Bool("json", false, "print the result summary as JSON")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the exact algorithm (0 = unlimited); on expiry the valid partial matching is reported and the exit status is 3")
	ckptDir := fs.String("checkpoint-dir", "", "persist crash-safe snapshots of run state into this directory")
	ckptInterval := fs.Duration("checkpoint-interval", 0, "minimum time between snapshots (0 = every phase boundary)")
	ckptKeep := fs.Int("checkpoint-keep", 0, "snapshots retained in -checkpoint-dir (0 = 3)")
	resume := fs.Bool("resume", false, "restart from the newest valid snapshot in -checkpoint-dir (fresh start if none)")
	superviseFlag := fs.Bool("supervise", false, "run under a supervisor with an engine degradation ladder")
	watchdog := fs.Duration("watchdog", 0, "supervisor watchdog: degrade engines after this long without a completed phase (implies -supervise)")
	stall := fs.Int("stall", 0, "supervisor stall detection: degrade after N phases without cardinality growth (implies -supervise)")
	obsAddr := fs.String("obs-addr", "", "serve live metrics/status/trace/pprof on this address (e.g. :8080) for the duration of the run")
	df := registerDistFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one .mtx file, got %d args", fs.NArg())
	}
	if df.listen != "" || df.join != "" {
		return runDist(distRunConfig{
			graphPath:  fs.Arg(0),
			flags:      df,
			verify:     *verify,
			showStats:  *showStats,
			printMates: *printMates,
			outPath:    *outPath,
			jsonOut:    *jsonOut,
			timeout:    *timeout,
			ckptDir:    *ckptDir,
			obsAddr:    *obsAddr,
		})
	}
	algo, ok := algoByName[strings.ToLower(*algoName)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	initz, ok := initByName[strings.ToLower(*initName)]
	if !ok {
		return fmt.Errorf("unknown initializer %q", *initName)
	}

	// The observability surface comes up before graph loading so a scraper
	// can attach while a large instance is still parsing.
	var rec *graftmatch.Recorder
	if *obsAddr != "" {
		rec = graftmatch.NewRecorder(graftmatch.RecorderConfig{Workers: *threads})
		stop, err := serveObs(*obsAddr, rec)
		if err != nil {
			return err
		}
		defer stop()
	}

	g, err := graftmatch.ReadGraphFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d rows, %d cols, %d nonzeros\n", g.NX(), g.NY(), g.NumEdges())

	opts := graftmatch.Options{
		Algorithm:   algo,
		Initializer: initz,
		Threads:     *threads,
		Seed:        *seed,
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	if *ckptDir != "" {
		opts.Checkpoint = &graftmatch.CheckpointOptions{
			Dir:      *ckptDir,
			Interval: *ckptInterval,
			Keep:     *ckptKeep,
		}
	}
	if *superviseFlag || *watchdog > 0 || *stall > 0 {
		opts.Supervise = &graftmatch.SuperviseOptions{
			PhaseTimeout: *watchdog,
			StallPhases:  *stall,
		}
	}
	opts.Recorder = rec

	var resumeState *graftmatch.CheckpointState
	if *resume {
		if *ckptDir == "" {
			return fmt.Errorf("-resume requires -checkpoint-dir")
		}
		st, err := graftmatch.LoadCheckpoint(g, *ckptDir)
		switch {
		case errors.Is(err, graftmatch.ErrNoCheckpoint):
			fmt.Printf("resume: no checkpoint in %s, starting fresh\n", *ckptDir)
		case err != nil:
			return fmt.Errorf("%w: %v", errCheckpoint, err)
		default:
			// LoadCheckpoint validates structurally; re-verify against the
			// graph here so a resumed run never continues from mates that
			// are not edges.
			if verr := graftmatch.VerifyMatching(g, st.MateX, st.MateY); verr != nil {
				return fmt.Errorf("%w: restored matching failed verification: %v", errCheckpoint, verr)
			}
			fmt.Printf("resumed from %s: engine %s, phase %d, |M|=%d\n",
				st.Path, st.Engine, st.Phase, st.Cardinality)
			resumeState = st
		}
	}

	var res *graftmatch.Result
	if resumeState != nil {
		res, err = graftmatch.ResumeMatch(g, resumeState.MateX, resumeState.MateY, opts)
	} else {
		res, err = graftmatch.Match(g, opts)
	}
	if err != nil {
		return err
	}
	if res.CheckpointErr != nil {
		fmt.Fprintf(os.Stderr, "maxmatch: warning: checkpointing failed: %v\n", res.CheckpointErr)
	}
	if *outPath != "" {
		if err := writeMatching(*outPath, res.MateX); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, g, res); err != nil {
			return err
		}
	} else {
		fmt.Printf("algorithm: %s\n", res.Stats.Algorithm)
		if res.Complete {
			fmt.Printf("maximum matching cardinality: %d\n", res.Cardinality)
		} else {
			fmt.Printf("PARTIAL matching cardinality: %d (timeout %s reached; resumable, not certified maximum)\n",
				res.Cardinality, *timeout)
		}
		fmt.Printf("runtime: %s\n", res.Stats.Runtime)
		if *showStats {
			fmt.Printf("initial |M| (after %s): %d\n", *initName, res.Stats.InitialCardinality)
			fmt.Printf("phases: %d\n", res.Stats.Phases)
			fmt.Printf("edges traversed: %d (%.2f MTEPS)\n", res.Stats.EdgesTraversed, res.Stats.MTEPS())
			fmt.Printf("augmenting paths: %d (avg length %.2f)\n", res.Stats.AugPaths, res.Stats.AvgAugPathLen())
			if res.Stats.Grafts+res.Stats.Rebuilds > 0 {
				fmt.Printf("grafted phases: %d, rebuilt phases: %d\n", res.Stats.Grafts, res.Stats.Rebuilds)
			}
			if res.Supervision != nil {
				for _, r := range res.Supervision.Rungs {
					fmt.Printf("supervision: %s attempt %d -> %s (phases=%d, |M|=%d)\n",
						r.Engine, r.Attempt, r.Outcome, r.Phases, r.Cardinality)
				}
			}
			if res.CheckpointPath != "" {
				fmt.Printf("checkpoint: %s\n", res.CheckpointPath)
			}
		}
		if *verify {
			if res.Complete {
				if err := graftmatch.VerifyMaximum(g, res.MateX, res.MateY); err != nil {
					return fmt.Errorf("verification FAILED: %w", err)
				}
				fmt.Println("verified: matching is valid and maximum (König certificate)")
			} else {
				if err := graftmatch.VerifyMatching(g, res.MateX, res.MateY); err != nil {
					return fmt.Errorf("verification FAILED: %w", err)
				}
				fmt.Println("verified: partial matching is valid (maximality not certified)")
			}
		}
		if *printMates {
			for x, y := range res.MateX {
				fmt.Printf("%d %d\n", x+1, y+1) // 1-based like Matrix Market
			}
		}
		if *outPath != "" {
			fmt.Printf("matching written to %s\n", *outPath)
		}
	}
	if !res.Complete {
		return errPartial
	}
	return nil
}

// serveObs starts the operational HTTP surface on addr and returns a stop
// function that closes the listener and waits for the server goroutine. The
// bind happens synchronously so a bad address fails the run immediately and
// the printed URL is live before the computation starts.
func serveObs(addr string, rec *graftmatch.Recorder) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs-addr: %w", err)
	}
	fmt.Printf("observability: serving http://%s/ (metrics, status, trace, pprof)\n", ln.Addr())
	// Hardened constructor (header/read/idle timeouts): the surface may be
	// reachable by untrusted scrapers, and a naked http.Server holds a
	// slowloris connection open forever.
	srv := serve.NewHTTPServer(addr, graftmatch.ObsHandler(rec))
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Serve returns ErrServerClosed-like errors once the listener is
		// closed by stop(); the surface is best-effort either way.
		_ = srv.Serve(ln)
	}()
	return func() {
		_ = srv.Close()
		<-done
	}, nil
}

// writeMatching writes the matched (row, col) pairs 1-based, one per line.
func writeMatching(path string, mateX []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for x, y := range mateX {
		if y < 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d %d\n", x+1, y+1); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON emits a machine-readable result summary.
func writeJSON(w io.Writer, g *graftmatch.Graph, res *graftmatch.Result) error {
	type summary struct {
		Algorithm      string  `json:"algorithm"`
		Rows           int32   `json:"rows"`
		Cols           int32   `json:"cols"`
		Nonzeros       int64   `json:"nonzeros"`
		Cardinality    int64   `json:"cardinality"`
		Complete       bool    `json:"complete"`
		InitialCard    int64   `json:"initial_cardinality"`
		Phases         int64   `json:"phases"`
		EdgesTraversed int64   `json:"edges_traversed"`
		AugPaths       int64   `json:"augmenting_paths"`
		AvgPathLen     float64 `json:"avg_path_length"`
		Grafts         int64   `json:"grafts"`
		Rebuilds       int64   `json:"rebuilds"`
		RuntimeMS      float64 `json:"runtime_ms"`
	}
	enc := json.NewEncoder(w)
	return enc.Encode(summary{
		Algorithm:      res.Stats.Algorithm,
		Rows:           g.NX(),
		Cols:           g.NY(),
		Nonzeros:       g.NumEdges(),
		Cardinality:    res.Cardinality,
		Complete:       res.Complete,
		InitialCard:    res.Stats.InitialCardinality,
		Phases:         res.Stats.Phases,
		EdgesTraversed: res.Stats.EdgesTraversed,
		AugPaths:       res.Stats.AugPaths,
		AvgPathLen:     res.Stats.AvgAugPathLen(),
		Grafts:         res.Stats.Grafts,
		Rebuilds:       res.Stats.Rebuilds,
		RuntimeMS:      float64(res.Stats.Runtime.Nanoseconds()) / 1e6,
	})
}
