package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graftmatch"
	"graftmatch/internal/gen"
	"graftmatch/internal/mmio"
)

func TestRunCheckpointAndResume(t *testing.T) {
	path := writeTestMatrix(t)
	ckdir := filepath.Join(t.TempDir(), "ck")
	if err := run([]string{"-checkpoint-dir", ckdir, "-verify", path}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ckdir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshots written (err=%v)", err)
	}
	// Resuming from the final snapshot must verify and certify maximum.
	if err := run([]string{"-checkpoint-dir", ckdir, "-resume", "-verify", "-stats", path}); err != nil {
		t.Fatal(err)
	}
}

func TestResumeEmptyDirStartsFresh(t *testing.T) {
	path := writeTestMatrix(t)
	ckdir := filepath.Join(t.TempDir(), "ck")
	if err := run([]string{"-checkpoint-dir", ckdir, "-resume", "-verify", path}); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRequiresCheckpointDir(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-resume", path}); err == nil {
		t.Fatal("-resume without -checkpoint-dir must fail")
	}
}

func TestResumeCorruptCheckpointExitsDistinctly(t *testing.T) {
	path := writeTestMatrix(t)
	ckdir := t.TempDir()
	bad := filepath.Join(ckdir, "ck-00000000000000000001.ckpt")
	if err := os.WriteFile(bad, []byte("GMCK garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-checkpoint-dir", ckdir, "-resume", path})
	if !errors.Is(err, errCheckpoint) {
		t.Fatalf("got %v, want errCheckpoint (exit status 4)", err)
	}
}

func TestResumeWrongGraphExitsDistinctly(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ck")
	pathA := writeTestMatrix(t)
	if err := run([]string{"-checkpoint-dir", ckdir, pathA}); err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(t.TempDir(), "other.mtx")
	if err := mmio.WriteFile(pathB, gen.ER(50, 50, 200, 99)); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-checkpoint-dir", ckdir, "-resume", pathB})
	if !errors.Is(err, errCheckpoint) {
		t.Fatalf("got %v, want errCheckpoint for a wrong-graph checkpoint", err)
	}
}

func TestRunSupervisedFlags(t *testing.T) {
	path := writeTestMatrix(t)
	for _, args := range [][]string{
		{"-supervise", "-verify", "-stats"},
		{"-watchdog", "1m", "-verify"},
		{"-stall", "50", "-verify"},
	} {
		if err := run(append(args, path)); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

// TestHelperProcess is not a test: it is the child body for the kill-restart
// test below, re-executing the CLI in a separate process so a SIGKILL is
// survivable by the parent.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("MAXMATCH_HELPER") != "1" {
		return
	}
	if err := run(strings.Split(os.Getenv("MAXMATCH_ARGS"), "\n")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestKillAndRestart is the crash-safety property end to end: SIGKILL a
// checkpointing maxmatch process as soon as its first snapshot lands, resume
// from disk, and require the resumed run to reach the same maximum
// cardinality as an uninterrupted run.
func TestKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	g := gen.RMAT(13, 8, 0.45, 0.25, 0.15, 7)
	gpath := filepath.Join(dir, "g.mtx")
	if err := mmio.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	ref, err := graftmatch.Match(g, graftmatch.Options{Initializer: graftmatch.NoInit})
	if err != nil {
		t.Fatal(err)
	}

	ckdir := filepath.Join(dir, "ck")
	args := []string{"-init", "none", "-checkpoint-dir", ckdir, gpath}
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	cmd.Env = append(os.Environ(),
		"MAXMATCH_HELPER=1",
		"MAXMATCH_ARGS="+strings.Join(args, "\n"))
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Kill the instant the first snapshot appears — mid-run for any
	// instance with more than one phase. If the child outraces the poll,
	// the resume still must reproduce the reference cardinality.
	deadline := time.After(60 * time.Second)
	killed := false
poll:
	for {
		entries, err := os.ReadDir(ckdir)
		if err == nil {
			for _, e := range entries {
				if filepath.Ext(e.Name()) == ".ckpt" {
					killed = cmd.Process.Kill() == nil
					break poll
				}
			}
		}
		select {
		case <-done:
			break poll
		case <-deadline:
			_ = cmd.Process.Kill()
			t.Fatal("no snapshot appeared within 60s")
		case <-time.After(200 * time.Microsecond):
		}
	}
	if killed {
		<-done // reap the killed child
	}

	// Restart from disk and certify the result.
	resumeArgs := []string{"-init", "none", "-checkpoint-dir", ckdir, "-resume", "-verify", gpath}
	if err := run(resumeArgs); err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	st, err := graftmatch.LoadCheckpoint(g, ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cardinality != ref.Cardinality {
		t.Fatalf("resumed run reached |M|=%d, uninterrupted reference %d", st.Cardinality, ref.Cardinality)
	}
}
