package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/mmio"
)

func TestMain(m *testing.M) {
	// The CLI prints results to stdout; keep test output clean.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = devnull
	}
	os.Exit(m.Run())
}

func writeTestMatrix(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := mmio.WriteFile(path, gen.ER(50, 50, 200, 1)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTestMatrix(t)
	for name := range algoByName {
		if err := run([]string{"-algo", name, "-verify", "-stats", path}); err != nil {
			t.Fatalf("algo %s: %v", name, err)
		}
	}
}

func TestRunAllInitializers(t *testing.T) {
	path := writeTestMatrix(t)
	for name := range initByName {
		if err := run([]string{"-init", name, "-verify", path}); err != nil {
			t.Fatalf("init %s: %v", name, err)
		}
	}
}

func TestRunMatesOutput(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-mates", "-threads", "2", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestMatrix(t)
	cases := [][]string{
		{},                            // no file
		{path, "extra"},               // two files
		{"-algo", "bogus", path},      // unknown algorithm
		{"-init", "bogus", path},      // unknown initializer
		{"/does/not/exist.mtx"},       // missing file
		{"-threads", "notanum", path}, // flag parse error
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// TestTimeoutPartial: an immediately-expiring timeout must yield the
// distinct errPartial (exit status 3 in main), with -verify accepting the
// partial matching, for both parallel and serial algorithms.
func TestTimeoutPartial(t *testing.T) {
	path := writeTestMatrix(t)
	for _, algo := range []string{"msbfsgraft", "pf", "pr", "hk"} {
		err := run([]string{"-algo", algo, "-init", "none", "-timeout", "1ns", "-verify", "-stats", path})
		if !errors.Is(err, errPartial) {
			t.Fatalf("algo %s: got %v, want errPartial", algo, err)
		}
	}
}

// TestTimeoutGenerous: a timeout the run comfortably beats must change
// nothing.
func TestTimeoutGenerous(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-timeout", "1h", "-verify", path}); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutPartialJSON: the JSON summary must carry complete=false and
// the run must still exit via errPartial.
func TestTimeoutPartialJSON(t *testing.T) {
	path := writeTestMatrix(t)
	err := run([]string{"-init", "none", "-timeout", "1ns", "-json", path})
	if !errors.Is(err, errPartial) {
		t.Fatalf("got %v, want errPartial", err)
	}
}

func TestOutAndJSON(t *testing.T) {
	path := writeTestMatrix(t)
	out := filepath.Join(t.TempDir(), "m.txt")
	if err := run([]string{"-out", out, "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty matching file")
	}
	if err := run([]string{"-out", "/nodir/x.txt", path}); err == nil {
		t.Fatal("want error for unwritable out path")
	}
}

// TestObsAddr: -obs-addr serves the operational surface for the run's
// duration (a successful run closes it cleanly) and a bad address fails the
// run immediately instead of computing unobserved.
func TestObsAddr(t *testing.T) {
	path := writeTestMatrix(t)
	if err := run([]string{"-obs-addr", "127.0.0.1:0", "-stats", "-verify", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-obs-addr", "127.0.0.1:99999", path}); err == nil {
		t.Fatal("bad -obs-addr: want bind error")
	}
}
