// dist.go wires the real multi-process distributed runtime into the CLI.
// One invocation with -dist-listen becomes the coordinator: it owns the
// global phase loop, optionally spawns its worker processes (-dist-spawn),
// and respawns replacements when a rank dies (-dist-respawn). Invocations
// with -dist-join become rank workers; every process loads the same graph
// file and the handshake cross-checks fingerprints.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"graftmatch"
	"graftmatch/internal/dist"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/matching"
)

// distFlags holds the multi-process launch flags.
type distFlags struct {
	listen  string
	ranks   int
	join    string
	rank    int
	spawn   bool
	respawn bool
	hb      time.Duration
	lease   time.Duration
	chaos   string
}

func registerDistFlags(fs *flag.FlagSet) *distFlags {
	df := &distFlags{}
	fs.StringVar(&df.listen, "dist-listen", "", "run as distributed coordinator, listening on this address (host:port, or a unix socket path)")
	fs.IntVar(&df.ranks, "dist-ranks", 0, "cluster width K for -dist-listen: worker processes the run waits for")
	fs.StringVar(&df.join, "dist-join", "", "run as distributed worker, joining the coordinator at this address")
	fs.IntVar(&df.rank, "dist-rank", -1, "rank to request when joining (-1 = coordinator assigns)")
	fs.BoolVar(&df.spawn, "dist-spawn", false, "coordinator spawns its K workers as subprocesses of this binary")
	fs.BoolVar(&df.respawn, "dist-respawn", true, "coordinator respawns a replacement subprocess when a rank dies")
	fs.DurationVar(&df.hb, "dist-hb", 0, "heartbeat interval for failure detection (0 = 500ms)")
	fs.DurationVar(&df.lease, "dist-lease", 0, "silence after which a peer is declared dead (0 = 8x heartbeat)")
	fs.StringVar(&df.chaos, "dist-chaos", "", "worker-side fault injection, e.g. drop=0.05,dup=0.05,latency=2ms,jitter=3ms,seed=7")
	return df
}

// distRunConfig carries the subset of ordinary CLI flags a distributed run
// honors, plus the dist flags themselves.
type distRunConfig struct {
	graphPath string
	flags     *distFlags

	verify     bool
	showStats  bool
	printMates bool
	outPath    string
	jsonOut    bool
	timeout    time.Duration
	ckptDir    string
	obsAddr    string
}

// runDist dispatches a maxmatch process into its distributed role.
func runDist(cfg distRunConfig) error {
	if cfg.flags.listen != "" && cfg.flags.join != "" {
		return fmt.Errorf("-dist-listen and -dist-join are mutually exclusive: one process is coordinator or worker, not both")
	}
	if cfg.jsonOut {
		return fmt.Errorf("-json is not supported in distributed mode")
	}
	if cfg.flags.join != "" {
		return runDistWorker(cfg)
	}
	return runDistCoordinator(cfg)
}

// parseChaosSpec parses the -dist-chaos value: comma-separated key=value
// pairs with keys drop, dup, latency, jitter, seed.
func parseChaosSpec(s string) (distnet.Chaos, error) {
	var ch distnet.Chaos
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return ch, fmt.Errorf("chaos spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "drop":
			ch.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			ch.Duplicate, err = strconv.ParseFloat(v, 64)
		case "latency":
			ch.Latency, err = time.ParseDuration(v)
		case "jitter":
			ch.Jitter, err = time.ParseDuration(v)
		case "seed":
			ch.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return ch, fmt.Errorf("chaos spec: unknown key %q (want drop, dup, latency, jitter, seed)", k)
		}
		if err != nil {
			return ch, fmt.Errorf("chaos spec %q: %v", kv, err)
		}
	}
	if ch.Drop < 0 || ch.Drop >= 1 || ch.Duplicate < 0 || ch.Duplicate >= 1 {
		return ch, fmt.Errorf("chaos spec: drop and dup must be in [0,1)")
	}
	return ch, nil
}

// runDistWorker is one rank process: load the graph, optionally interpose a
// chaos proxy on the link, and serve supersteps until the coordinator says
// done.
func runDistWorker(cfg distRunConfig) error {
	g, err := graftmatch.ReadGraphFile(cfg.graphPath)
	if err != nil {
		return err
	}
	addr := cfg.flags.join
	if cfg.flags.chaos != "" {
		ch, err := parseChaosSpec(cfg.flags.chaos)
		if err != nil {
			return err
		}
		proxy, err := distnet.NewProxy(addr, ch, distnet.Limits{})
		if err != nil {
			return fmt.Errorf("chaos proxy: %w", err)
		}
		defer func() { _ = proxy.Close() }()
		fmt.Fprintf(os.Stderr, "dist: chaos proxy %s -> %s (%s)\n", proxy.Addr(), addr, cfg.flags.chaos)
		addr = proxy.Addr()
	}
	opts := dist.WorkerOptions{
		Addr: addr,
		Rank: cfg.flags.rank,
		G:    g,
		OnAttach: func(rank int) {
			fmt.Fprintf(os.Stderr, "dist: attached to %s as rank %d\n", cfg.flags.join, rank)
		},
		// A worker always keeps a small local recorder: it feeds the
		// telemetry shipper, so the coordinator's /trace shows a process
		// lane for this rank even though the worker serves no HTTP itself.
		Recorder: graftmatch.NewRecorder(graftmatch.RecorderConfig{Workers: 1, TraceCapacity: 4096}),
	}
	if err := dist.RunWorker(context.Background(), opts); err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	fmt.Fprintln(os.Stderr, "dist: worker done")
	return nil
}

// workerSpawner launches and tracks worker subprocesses of this binary. The
// same path serves the initial -dist-spawn fleet and -dist-respawn
// replacements, so a respawned rank is bit-identical to a fresh one.
type workerSpawner struct {
	self      string // this binary, re-exec'd for each worker
	addr      string // coordinator address, set once the listener is up
	graphPath string
	chaos     string

	mu    sync.Mutex
	procs map[int]spawnedProc
}

type spawnedProc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

func newWorkerSpawner(graphPath, chaos string) *workerSpawner {
	return &workerSpawner{
		self:      os.Args[0],
		graphPath: graphPath,
		chaos:     chaos,
		procs:     make(map[int]spawnedProc),
	}
}

// spawn launches one worker subprocess requesting the given rank. Worker
// output goes to our stderr so the coordinator's stdout stays a clean result
// stream.
func (s *workerSpawner) spawn(rank int) error {
	args := []string{"-dist-join", s.addr, "-dist-rank", strconv.Itoa(rank)}
	if s.chaos != "" {
		args = append(args, "-dist-chaos", s.chaos)
	}
	args = append(args, s.graphPath)
	cmd := exec.Command(s.self, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn rank %d: %w", rank, err)
	}
	fmt.Printf("dist: spawned rank %d pid=%d\n", rank, cmd.Process.Pid)
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		close(done)
	}()
	s.mu.Lock()
	s.procs[rank] = spawnedProc{cmd: cmd, done: done}
	s.mu.Unlock()
	return nil
}

// shutdown waits up to grace for every live worker to exit (a completed run
// has already broadcast done), then kills stragglers.
func (s *workerSpawner) shutdown(grace time.Duration) {
	s.mu.Lock()
	procs := make([]spawnedProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	deadline := time.After(grace)
	for _, p := range procs {
		select {
		case <-p.done:
		case <-deadline:
			_ = p.cmd.Process.Kill()
			<-p.done
		}
	}
}

// runDistCoordinator owns the distributed run: listen, (optionally) spawn
// the fleet, drive the phase loop with failure recovery, report like a
// single-process run.
func runDistCoordinator(cfg distRunConfig) error {
	df := cfg.flags
	if df.ranks < 1 {
		return fmt.Errorf("-dist-listen requires -dist-ranks >= 1")
	}

	var rec *graftmatch.Recorder
	if cfg.obsAddr != "" {
		rec = graftmatch.NewRecorder(graftmatch.RecorderConfig{Workers: df.ranks})
		stop, err := serveObs(cfg.obsAddr, rec)
		if err != nil {
			return err
		}
		defer stop()
	}

	g, err := graftmatch.ReadGraphFile(cfg.graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d rows, %d cols, %d nonzeros\n", g.NX(), g.NY(), g.NumEdges())

	spawner := newWorkerSpawner(cfg.graphPath, df.chaos)
	opts := dist.ClusterOptions{
		Ranks:         df.ranks,
		Grafting:      true,
		Heartbeat:     df.hb,
		Lease:         df.lease,
		CheckpointDir: cfg.ckptDir,
		Recorder:      rec,
		OnPhase: func(phase, cardinality int64) {
			fmt.Printf("phase %d: |M|=%d\n", phase, cardinality)
		},
	}
	if df.respawn {
		opts.Respawn = func(rank int) error {
			fmt.Printf("dist: rank %d died; respawning\n", rank)
			return spawner.spawn(rank)
		}
	}

	coord, err := dist.NewCoordinator(g, df.listen, opts)
	if err != nil {
		return err
	}
	defer func() { _ = coord.Close() }()
	spawner.addr = coord.Addr()
	fmt.Printf("dist: coordinator listening on %s (%d ranks)\n", coord.Addr(), df.ranks)

	if df.spawn {
		for r := 0; r < df.ranks; r++ {
			if err := spawner.spawn(r); err != nil {
				spawner.shutdown(0)
				return err
			}
		}
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	m := matching.New(g.NX(), g.NY())
	st, runErr := coord.Run(ctx, m)
	// Close before reaping so worker sessions see the teardown even on the
	// error path; a clean run already broadcast done.
	_ = coord.Close()
	spawner.shutdown(5 * time.Second)
	if runErr != nil {
		return fmt.Errorf("distributed run: %w", runErr)
	}

	if st.Trace != "" {
		fmt.Printf("run trace: %s\n", st.Trace)
	}
	fmt.Printf("algorithm: %s\n", st.Algorithm)
	fmt.Printf("maximum matching cardinality: %d\n", m.Cardinality())
	fmt.Printf("runtime: %s\n", st.Runtime)
	if cfg.showStats {
		fmt.Printf("ranks: %d\n", st.Ranks)
		fmt.Printf("phases: %d\n", st.Phases)
		fmt.Printf("supersteps: %d, messages: %d\n", st.Supersteps, st.Messages)
		fmt.Printf("edges traversed: %d (%.2f MTEPS)\n", st.EdgesTraversed, st.MTEPS())
		fmt.Printf("augmenting paths: %d (avg length %.2f)\n", st.AugPaths, st.AvgAugPathLen())
		if st.Grafts+st.Rebuilds > 0 {
			fmt.Printf("grafted phases: %d, rebuilt phases: %d\n", st.Grafts, st.Rebuilds)
		}
		fmt.Printf("rank deaths: %d, recoveries: %d (%.0fms), reconnects: %d\n",
			st.RankDeaths, st.Recoveries, float64(st.RecoveryTime.Nanoseconds())/1e6, st.Reconnects)
		fmt.Printf("session retransmits: %d, attaches: %d\n", st.Retransmits, st.Attaches)
	}
	if cfg.verify {
		if err := graftmatch.VerifyMaximum(g, m.MateX, m.MateY); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Println("verified: matching is valid and maximum (König certificate)")
	}
	if cfg.printMates {
		for x, y := range m.MateX {
			fmt.Printf("%d %d\n", x+1, y+1) // 1-based like Matrix Market
		}
	}
	if cfg.outPath != "" {
		if err := writeMatching(cfg.outPath, m.MateX); err != nil {
			return err
		}
		fmt.Printf("matching written to %s\n", cfg.outPath)
	}
	return nil
}
