package main

import (
	"os"
	"path/filepath"
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/mmio"
)

func TestMain(m *testing.M) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = devnull
	}
	os.Exit(m.Run())
}

func writeMatrix(t *testing.T, g *bipartite.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := mmio.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBTFOnBlockMatrix(t *testing.T) {
	// Two decoupled 2x2 blocks.
	g := bipartite.MustFromEdges(4, 4, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 1, Y: 1},
		{X: 2, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 2}, {X: 3, Y: 3},
	})
	if err := run([]string{writeMatrix(t, g)}); err != nil {
		t.Fatal(err)
	}
}

func TestBTFWithPermOutput(t *testing.T) {
	g := bipartite.MustFromEdges(3, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 0, Y: 2},
	})
	if err := run([]string{"-perm", "-threads", "2", "-blocks", "2", writeMatrix(t, g)}); err != nil {
		t.Fatal(err)
	}
}

func TestBTFRectangular(t *testing.T) {
	g := bipartite.MustFromEdges(5, 3, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 1}, {X: 3, Y: 2}, {X: 4, Y: 2},
	})
	if err := run([]string{writeMatrix(t, g)}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("want error without file")
	}
	if err := run([]string{"/missing.mtx"}); err == nil {
		t.Fatal("want error for missing file")
	}
	if err := run([]string{"-threads", "x", "f.mtx"}); err == nil {
		t.Fatal("want error for bad flag")
	}
}
