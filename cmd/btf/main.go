// Command btf permutes a sparse matrix to block triangular form via the
// Dulmage–Mendelsohn decomposition — the paper's §I motivating application.
//
// Usage:
//
//	btf [-threads N] [-perm] file.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"graftmatch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btf:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("btf", flag.ContinueOnError)
	threads := fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	printPerm := fs.Bool("perm", false, "print row and column permutations (1-based)")
	maxBlocks := fs.Int("blocks", 20, "print at most this many block sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one .mtx file")
	}
	g, err := graftmatch.ReadGraphFile(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := graftmatch.BlockTriangularForm(g, graftmatch.Options{Threads: *threads})
	if err != nil {
		return err
	}
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", g.NX(), g.NY(), g.NumEdges())
	fmt.Printf("coarse decomposition:\n")
	fmt.Printf("  horizontal (underdetermined): %d rows, %d cols\n", d.HRows, d.HCols)
	fmt.Printf("  square (well-determined):     %d rows/cols\n", d.SSize)
	fmt.Printf("  vertical (overdetermined):    %d rows, %d cols\n", d.VRows, d.VCols)
	fmt.Printf("fine decomposition: %d diagonal blocks\n", d.NumBlocks())
	if d.NumBlocks() > 0 {
		n := d.NumBlocks()
		if n > *maxBlocks {
			n = *maxBlocks
		}
		fmt.Printf("  first %d block sizes: %v\n", n, d.Blocks[:n])
		largest := int32(0)
		for _, b := range d.Blocks {
			if b > largest {
				largest = b
			}
		}
		fmt.Printf("  largest block: %d\n", largest)
	}
	if *printPerm {
		fmt.Println("row permutation (new order of original rows, 1-based):")
		for _, x := range d.RowPerm {
			fmt.Println(x + 1)
		}
		fmt.Println("column permutation (1-based):")
		for _, y := range d.ColPerm {
			fmt.Println(y + 1)
		}
	}
	return nil
}
