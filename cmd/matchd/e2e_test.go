package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"graftmatch/internal/gen"
	"graftmatch/internal/mmio"
)

func TestRunFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no -registry: want error")
	}
	if err := run([]string{"-registry", t.TempDir()}, &out); err == nil {
		t.Error("empty registry: want error")
	}
	if err := run([]string{"-registry", t.TempDir(), "extra"}, &out); err == nil {
		t.Error("positional arg: want error")
	}
}

// matchdProc is a running matchd binary under test.
type matchdProc struct {
	cmd    *exec.Cmd
	base   string
	stdout *syncBuffer
	stderr bytes.Buffer
	waited chan error
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) add(line string) {
	s.mu.Lock()
	s.b.WriteString(line)
	s.b.WriteByte('\n')
	s.mu.Unlock()
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startMatchd builds the binary once per test, starts it on a free port with
// args, and waits until /readyz answers 200.
func startMatchd(t *testing.T, registryDir string, extra ...string) *matchdProc {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "matchd")
	if out, err := exec.Command("go", "build", "-o", bin, "graftmatch/cmd/matchd").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	args := append([]string{"-registry", registryDir, "-addr", "127.0.0.1:0"}, extra...)
	p := &matchdProc{cmd: exec.Command(bin, args...), stdout: &syncBuffer{}, waited: make(chan error, 1)}
	p.cmd.Stderr = &p.stderr
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = p.cmd.Process.Kill()
		<-p.waited
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.stdout.add(line)
			var a string
			if _, err := fmt.Sscanf(line, "matchd: listening on http://%s ", &a); err == nil {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
		p.waited <- p.cmd.Wait()
		close(p.waited)
	}()

	select {
	case a := <-addrCh:
		p.base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatalf("matchd never announced its address\nstdout:\n%s\nstderr:\n%s", p.stdout, p.stderr.String())
	}
	for i := 0; ; i++ {
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if i > 200 {
			t.Fatalf("matchd never became ready\nstdout:\n%s\nstderr:\n%s", p.stdout, p.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	return p
}

func (p *matchdProc) post(t *testing.T, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(p.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// waitForActive polls /instances until the interactive class shows at least
// want busy compute slots.
func waitForActive(t *testing.T, p *matchdProc, want int64) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		resp, err := http.Get(p.base + "/instances")
		if err == nil {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var listing struct {
				Admission []struct {
					Class  string `json:"class"`
					Active int64  `json:"active"`
				} `json:"admission"`
			}
			if json.Unmarshal(data, &listing) == nil {
				for _, c := range listing.Admission {
					if c.Class == "interactive" && c.Active >= want {
						return
					}
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("compute slots never became busy")
}

// writeRegistry builds the fixture registry: "fast" is small, "slow" is big
// enough that single-threaded runs occupy a compute slot for a while.
func writeRegistry(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, g := range []struct {
		name            string
		nx, ny, m, seed int
	}{
		{"fast", 500, 500, 2000, 5},
		{"slow", 40000, 40000, 200000, 6},
		// deep exists to stretch single-threaded runs to ~100ms+, wide
		// enough to observe the drain window from outside.
		{"deep", 300000, 300000, 1200000, 7},
	} {
		if err := mmio.WriteFile(filepath.Join(dir, g.name+".mtx"),
			gen.ER(int32(g.nx), int32(g.ny), int64(g.m), int64(g.seed))); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestMatchdE2ESoak is the acceptance run for the daemon's robustness
// contract: a real matchd binary on a fixture registry is soaked by
// concurrent clients (valid, over-deadline, and shed-inducing), /metrics is
// scraped mid-soak, and a SIGTERM drain must lose zero admitted in-flight
// requests while /readyz flips before exit.
func TestMatchdE2ESoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and soaks it with concurrent clients")
	}
	p := startMatchd(t, writeRegistry(t),
		"-workers", "2", "-interactive-slots", "2", "-max-queue", "2",
		"-deadline", "5s", "-max-deadline", "30s")

	// --- phase 1: valid traffic ---------------------------------------
	code, hdr1, data := p.post(t, "/match", `{"instance":"fast"}`)
	if code != http.StatusOK {
		t.Fatalf("fast match: %d %s", code, data)
	}
	reqID := hdr1.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("fast match response has no X-Request-Id header")
	}
	var m struct {
		Cardinality int64  `json:"cardinality"`
		Complete    bool   `json:"complete"`
		Source      string `json:"source"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Complete || m.Cardinality <= 0 {
		t.Fatalf("fast match = %+v", m)
	}
	if code, _, data = p.post(t, "/match", `{"instance":"fast"}`); code != http.StatusOK {
		t.Fatalf("cached match: %d %s", code, data)
	} else if err := json.Unmarshal(data, &m); err != nil || m.Source != "cache" {
		t.Fatalf("second match source = %q (err %v)", m.Source, err)
	}

	// Request correlation: the minted X-Request-Id from the first match must
	// appear in the trace ring (spans tagged with its trace id) and in the
	// one-line-per-request log on stdout.
	resp0, err := http.Get(p.base + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if !strings.Contains(string(traceBody), reqID) {
		t.Errorf("request id %s from the match response not found in /trace", reqID)
	}
	// The log line flushes after the response is written; give the pipe
	// scanner a moment to deliver it.
	logged := false
	for i := 0; i < 200 && !logged; i++ {
		logged = strings.Contains(p.stdout.String(), `"id":"`+reqID+`"`)
		if !logged {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !logged {
		t.Errorf("request id %s has no structured log line on stdout\nstdout:\n%s", reqID, p.stdout)
	}

	// --- phase 2: concurrent soak -------------------------------------
	// 16 clients: distinct seeds defeat the single-flight collapse, so
	// with 2 slots and a queue of 2 most of them must be shed with 429 +
	// Retry-After; over-deadline requests must degrade to 200, not error.
	var (
		wg        sync.WaitGroup
		ok200     atomic.Int64
		shed429   atomic.Int64
		degraded  atomic.Int64
		badStatus atomic.Int64
	)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var body string
			if i%4 == 0 {
				// Hopeless deadline: must yield a degraded 200.
				body = fmt.Sprintf(`{"instance":"slow","deadline_ms":1,"threads":1,"initializer":"none","seed":%d,"no_cache":true}`, i)
			} else {
				body = fmt.Sprintf(`{"instance":"slow","threads":1,"seed":%d}`, i)
			}
			code, hdr, data := p.post(t, "/match", body)
			switch code {
			case http.StatusOK:
				ok200.Add(1)
				var r struct {
					Degraded bool `json:"degraded"`
				}
				_ = json.Unmarshal(data, &r)
				if r.Degraded {
					degraded.Add(1)
				}
			case http.StatusTooManyRequests:
				shed429.Add(1)
				if hdr.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				var e struct {
					RetryAfterMS int64 `json:"retry_after_ms"`
				}
				if err := json.Unmarshal(data, &e); err != nil || e.RetryAfterMS <= 0 {
					t.Errorf("429 body lacks retry_after_ms: %s", data)
				}
			default:
				badStatus.Add(1)
				t.Errorf("unexpected status %d: %s", code, data)
			}
		}()
	}

	// --- phase 3: scrape /metrics mid-soak ----------------------------
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics mid-soak: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"graftmatch_serve_requests_total",
		"graftmatch_serve_shed_total",
		"graftmatch_serve_inflight",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	wg.Wait()

	if ok200.Load() == 0 || badStatus.Load() != 0 {
		t.Fatalf("soak: ok=%d shed=%d bad=%d", ok200.Load(), shed429.Load(), badStatus.Load())
	}
	if shed429.Load() == 0 {
		t.Errorf("soak never shed: ok=%d degraded=%d (want at least one 429)", ok200.Load(), degraded.Load())
	}

	// --- phase 4: SIGTERM drain loses no admitted request -------------
	// Four requests fill both slots and the queue (none shed); all four
	// must come back 200 even though the drain starts while they run.
	const cohort = 4
	inFlight := make(chan int, cohort)
	for i := 0; i < cohort; i++ {
		i := i
		go func() {
			code, _, _ := p.post(t, "/match",
				fmt.Sprintf(`{"instance":"deep","deadline_ms":20000,"threads":1,"initializer":"none","seed":%d,"no_cache":true}`, 1000+i))
			inFlight <- code
		}()
	}
	// Signal only once both compute slots are demonstrably busy, so the
	// drain provably overlaps admitted work.
	waitForActive(t, p, 2)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Readiness must flip before the process exits.
	sawNotReady := false
	for i := 0; i < 2000; i++ {
		resp, err := http.Get(p.base + "/readyz")
		if err != nil {
			break // listener closed: process completed its drain
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawNotReady = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawNotReady {
		t.Error("/readyz never flipped to 503 during drain")
	}
	for i := 0; i < cohort; i++ {
		if code := <-inFlight; code != http.StatusOK {
			t.Errorf("in-flight request %d during drain: status %d (want 200 — drain must not drop admitted work)", i, code)
		}
	}
	if err := <-p.waited; err != nil {
		t.Fatalf("matchd exit: %v\nstdout:\n%s\nstderr:\n%s", err, p.stdout, p.stderr.String())
	}
	out := p.stdout.String()
	for _, want := range []string{"terminated received; draining", "drain complete; exiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s", want, out)
		}
	}
}
