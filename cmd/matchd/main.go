// Command matchd is the matching-as-a-service daemon: it loads a registry of
// named graph instances and serves maximum-matching, verification,
// Dulmage–Mendelsohn decomposition, and BTF linear solves over HTTP to many
// concurrent clients.
//
// The daemon is built for sustained operation under hostile load: admission
// control with a bounded queue and per-class concurrency limits (overload
// answers 429 + Retry-After, never a collapsing queue), per-request
// deadlines with degraded-but-valid answers (a run that cannot finish in
// time returns its partial matching or the instance's last-good matching
// with HTTP 200 and "degraded":true), one shared worker pool bounding total
// compute parallelism, result caching with single-flight collapse of
// duplicate requests, and graceful drain on SIGTERM/SIGINT: stop admitting,
// finish every admitted request, then exit.
//
// Usage:
//
//	matchd -registry graphs/ [-addr 127.0.0.1:8080] [flags]
//
// The observability surface (/metrics, /status, /trace, /requests,
// /cluster, /debug/pprof) is mounted on the same listener. Every response
// carries an X-Request-Id header (inbound one honored, minted otherwise);
// one structured log line per request ties the id to its trace on /trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graftmatch"
	"graftmatch/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	var (
		registry    = fs.String("registry", "", "directory of graph instance files (.mtx/.el/.txt, optionally .gz); required")
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers     = fs.Int("workers", 0, "shared worker pool size; 0 means GOMAXPROCS")
		threads     = fs.Int("threads", 0, "default per-request thread count; 0 means the pool size")
		deadline    = fs.Duration("deadline", serve.DefaultDeadline, "default per-request deadline when the body names none")
		maxDeadline = fs.Duration("max-deadline", serve.DefaultMaxDeadline, "ceiling on the deadline a request may ask for")
		interactive = fs.Int("interactive-slots", 0, "concurrent compute slots for the interactive class; 0 means the default")
		batch       = fs.Int("batch-slots", 0, "concurrent compute slots for the batch class; 0 means the default")
		maxQueue    = fs.Int("max-queue", 0, "bounded run-queue depth per class before load shedding; 0 means the default")
		ckptDir     = fs.String("checkpoint", "", "checkpoint directory: persists run snapshots and restores last-good matchings at startup")
		phaseTO     = fs.Duration("phase-timeout", 30*time.Second, "engine watchdog: degrade a run whose phases stop completing for this long; 0 disables")
		stallPhases = fs.Int("stall-phases", 0, "degrade a run after this many phases without cardinality growth; 0 disables")
		drainTO     = fs.Duration("drain-timeout", 0, "bound on graceful drain; 0 means max-deadline + 10s")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *registry == "" {
		return fmt.Errorf("-registry is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	reg, err := serve.LoadRegistry(*registry)
	if err != nil {
		return err
	}
	pool := graftmatch.NewWorkerPool(*workers)
	defer pool.Close()
	s, err := serve.NewServer(serve.Config{
		Registry:      reg,
		Pool:          pool,
		Threads:       *threads,
		Deadline:      *deadline,
		MaxDeadline:   *maxDeadline,
		Admission:     serve.AdmissionConfig{InteractiveSlots: *interactive, BatchSlots: *batch, MaxQueue: *maxQueue},
		Supervise:     &graftmatch.SuperviseOptions{PhaseTimeout: *phaseTO, StallPhases: *stallPhases},
		CheckpointDir: *ckptDir,
		Log:           stdout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := serve.NewHTTPServer(*addr, s.Handler())
	fmt.Fprintf(stdout, "matchd: listening on http://%s (%d instances, %d workers)\n",
		ln.Addr(), len(reg.Names()), pool.Workers())
	for _, name := range reg.Names() {
		ins, _ := reg.Get(name)
		fmt.Fprintf(stdout, "matchd: instance %s: %dx%d, %d edges\n",
			name, ins.Graph.NX(), ins.Graph.NY(), ins.Graph.NumEdges())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	case got := <-sig:
		fmt.Fprintf(stdout, "matchd: %v received; draining\n", got)
	}

	// Graceful drain: stop admitting (readyz flips to 503 immediately, new
	// compute requests answer 503), wait for every admitted request to
	// finish, then close the listener. No admitted request is ever dropped
	// — each one's own deadline bounds how long this can take.
	budget := *drainTO
	if budget <= 0 {
		budget = *maxDeadline + 10*time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		// Shut the listener down anyway; a stuck drain must not wedge
		// process exit past its budget.
		_ = srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "matchd: drain complete; exiting")
	return nil
}
