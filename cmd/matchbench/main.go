// Command matchbench regenerates the paper's evaluation tables and figures
// on the synthetic suite. Each experiment id matches a table or figure of
// the paper; see DESIGN.md for the index and EXPERIMENTS.md for recorded
// results.
//
// Usage:
//
//	matchbench -exp all                      # run everything
//	matchbench -exp fig3,fig7 -scale medium  # selected experiments
//	matchbench -exp tab2 -csv                # CSV instead of ASCII
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"graftmatch/internal/exps"
)

// experiments maps experiment ids to drivers returning one or more tables.
var experiments = map[string]func(exps.Config) []*exps.Table{
	"tab1": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.TableI(c)} },
	"tab2": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.TableII(c)} },
	"fig1": exps.Fig1,
	"fig3": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig3(c)} },
	"fig4": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig4(c)} },
	"fig5": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig5(c)} },
	"fig6": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig6(c)} },
	"fig7": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig7(c)} },
	"fig8": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig8(c)} },
	"psi":  func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Psi(c)} },

	// Ablations and extensions beyond the paper's figures.
	"abl-alpha":   func(c exps.Config) []*exps.Table { return []*exps.Table{exps.AblationAlpha(c)} },
	"abl-init":    func(c exps.Config) []*exps.Table { return []*exps.Table{exps.AblationInit(c)} },
	"abl-visited": func(c exps.Config) []*exps.Table { return []*exps.Table{exps.AblationVisited(c)} },
	"dist":        func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Distributed(c)} },
	"fig7xl":      func(c exps.Config) []*exps.Table { return []*exps.Table{exps.Fig7XL(c)} },
}

// order fixes the presentation sequence of -exp all.
var order = []string{"tab1", "tab2", "fig1", "fig3", "psi", "fig4", "fig5", "fig6", "fig7", "fig8",
	"abl-alpha", "abl-init", "abl-visited", "dist", "fig7xl"}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matchbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("matchbench", flag.ContinueOnError)
	expList := fs.String("exp", "all", "comma-separated experiment ids: "+strings.Join(order, ",")+" or all")
	scaleName := fs.String("scale", "small", "suite scale: small, medium, large")
	threads := fs.Int("threads", 0, "full-machine thread count P (0 = GOMAXPROCS)")
	reps := fs.Int("reps", 3, "repetitions per timed cell (paper: 10)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned ASCII")
	jsonOut := fs.Bool("json", false, "emit a JSON object stream instead of ASCII")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exps.Config{Threads: *threads, Reps: *reps}
	switch strings.ToLower(*scaleName) {
	case "small":
		cfg.Scale = exps.Small
	case "medium":
		cfg.Scale = exps.Medium
	case "large":
		cfg.Scale = exps.Large
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	ids := order
	if *expList != "all" {
		ids = strings.Split(*expList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		driver, ok := experiments[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(order, ", "))
		}
		for _, tab := range driver(cfg) {
			var err error
			switch {
			case *jsonOut:
				err = tab.WriteJSON(w)
			case *csv:
				err = tab.WriteCSV(w)
			default:
				err = tab.WriteASCII(w)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
