package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterExperimentsASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "tab1,tab2,fig1", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Fig. 1(a)", "Fig. 1(b)", "Fig. 1(c)",
		"kkt_power", "wikipedia", "SS-BFS", "MS-BFS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestTimedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiments")
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig4,fig6,fig8", "-reps", "1", "-threads", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MTEPS", "breakdown", "frontier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "tab2", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 { // header + 12 instances
		t.Fatalf("CSV lines = %d, want 13", len(lines))
	}
	if !strings.HasPrefix(lines[0], "class,graph,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestExperimentOrderCoversAll(t *testing.T) {
	if len(order) != len(experiments) {
		t.Fatalf("order has %d ids, experiments has %d", len(order), len(experiments))
	}
	for _, id := range order {
		if _, ok := experiments[id]; !ok {
			t.Fatalf("order id %q not in experiments", id)
		}
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &buf); err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if err := run([]string{"-scale", "bogus"}, &buf); err == nil {
		t.Fatal("want error for unknown scale")
	}
	if err := run([]string{"-threads", "x"}, &buf); err == nil {
		t.Fatal("want error for bad flag")
	}
}

func TestScaleParsing(t *testing.T) {
	var buf bytes.Buffer
	for _, sc := range []string{"small", "medium"} {
		if err := run([]string{"-exp", "tab1", "-scale", sc}, &buf); err != nil {
			t.Fatalf("scale %s: %v", sc, err)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "tab2", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(obj.Rows) != 12 || !strings.Contains(obj.Title, "Table II") {
		t.Fatalf("JSON content: %+v", obj.Title)
	}
}
