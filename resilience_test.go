package graftmatch

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"graftmatch/internal/core"
	"graftmatch/internal/gen"
	"graftmatch/internal/par"
)

// resilienceSuite holds instances with multi-phase runs so mid-run
// cancellation actually lands between phases.
func resilienceSuite() map[string]*Graph {
	return map[string]*Graph{
		"er":        gen.ER(500, 500, 1500, 3),
		"weblike":   gen.WebLike(10, 5, 0.35, 2),
		"deficient": gen.RankDeficient(400, 400, 120, 3, 7),
	}
}

// TestCancelResumeEquivalence is the central resilience property: cancel a
// run at a random phase boundary, check the partial matching is valid, then
// resume it — the final cardinality must equal an uninterrupted run's, for
// every context-aware algorithm across thread counts.
func TestCancelResumeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	algos := []Algorithm{MSBFSGraft, PothenFan, PushRelabel}
	for name, g := range resilienceSuite() {
		for _, algo := range algos {
			want, err := Match(g, Options{Algorithm: algo, Initializer: NoInit})
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{1, 2, 4} {
				cutoff := 1 + rng.Int63n(3) // cancel at phase 1..3
				ctx, cancel := context.WithCancel(context.Background())
				res, err := MatchContext(ctx, g, Options{
					Algorithm:   algo,
					Initializer: NoInit,
					Threads:     threads,
					OnPhase: func(phase, card int64) {
						if phase == cutoff {
							cancel()
						}
					},
				})
				cancel()
				if err != nil {
					t.Fatalf("%s/%v t=%d: %v", name, algo, threads, err)
				}
				if err := VerifyMatching(g, res.MateX, res.MateY); err != nil {
					t.Fatalf("%s/%v t=%d: partial matching invalid: %v", name, algo, threads, err)
				}
				if res.Complete {
					// The run finished before phase `cutoff`; nothing to
					// resume, but the result must already be maximum.
					if res.Cardinality != want.Cardinality {
						t.Fatalf("%s/%v t=%d: complete with %d, want %d",
							name, algo, threads, res.Cardinality, want.Cardinality)
					}
					continue
				}
				if res.Cardinality > want.Cardinality {
					t.Fatalf("%s/%v t=%d: partial exceeds maximum", name, algo, threads)
				}
				resumed, err := ResumeMatch(g, res.MateX, res.MateY, Options{Algorithm: algo, Threads: threads})
				if err != nil {
					t.Fatalf("%s/%v t=%d: resume: %v", name, algo, threads, err)
				}
				if !resumed.Complete || resumed.Cardinality != want.Cardinality {
					t.Fatalf("%s/%v t=%d: resumed to %d (complete=%v), want %d",
						name, algo, threads, resumed.Cardinality, resumed.Complete, want.Cardinality)
				}
				if err := VerifyMaximum(g, resumed.MateX, resumed.MateY); err != nil {
					t.Fatalf("%s/%v t=%d: %v", name, algo, threads, err)
				}
			}
		}
	}
}

// TestDeadlineInPast: Options.Deadline already expired must return the
// initializer's matching as a partial result with a nil error.
func TestDeadlineInPast(t *testing.T) {
	g := gen.ER(200, 200, 800, 1)
	for _, algo := range []Algorithm{MSBFSGraft, PothenFan, PushRelabel, HopcroftKarp, SSBFS, SSDFS} {
		res, err := Match(g, Options{Algorithm: algo, Deadline: time.Now().Add(-time.Hour)})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Complete {
			t.Fatalf("%v: expired deadline produced a complete result", algo)
		}
		if err := VerifyMatching(g, res.MateX, res.MateY); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Cardinality != res.Stats.InitialCardinality {
			t.Fatalf("%v: partial |M| %d != initial %d", algo, res.Cardinality, res.Stats.InitialCardinality)
		}
	}
}

// TestMatchContextWorkerPanic drives the containment path end to end: a
// panicking worker inside the engine must surface as an error from the
// facade — no crash, no hung WaitGroup — and must not be mistaken for a
// cancellation.
func TestMatchContextWorkerPanic(t *testing.T) {
	// Unconditional so the fault fires regardless of which worker claims
	// the first block (on few-core machines one worker may claim them all).
	core.TestHookWorkerFault = func(worker int) {
		panic("injected worker fault")
	}
	defer func() { core.TestHookWorkerFault = nil }()

	g := gen.ER(400, 400, 1600, 9)
	res, err := MatchContext(context.Background(), g, Options{Initializer: NoInit, Threads: 4})
	if err == nil {
		t.Fatal("want error from contained worker panic")
	}
	if res != nil {
		t.Fatal("a panicked run must not return a result")
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err=%v, want *par.PanicError", err)
	}
}

// TestVerifyHardening: malformed inputs yield descriptive errors, never
// panics.
func TestVerifyHardening(t *testing.T) {
	g := MustFromEdges(3, 3, []Edge{{X: 0, Y: 0}, {X: 1, Y: 1}})
	short := []int32{-1}
	cases := []struct {
		name string
		err  error
	}{
		{"nil-graph-verify", VerifyMatching(nil, nil, nil)},
		{"nil-graph-maximum", VerifyMaximum(nil, nil, nil)},
		{"short-mateX", VerifyMatching(g, short, []int32{-1, -1, -1})},
		{"short-mateY", VerifyMatching(g, []int32{-1, -1, -1}, short)},
		{"nil-mates", VerifyMatching(g, nil, nil)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestResumeMatchHardening: resuming from mismatched or invalid mate arrays
// fails loudly instead of panicking or silently corrupting.
func TestResumeMatchHardening(t *testing.T) {
	g := MustFromEdges(3, 3, []Edge{{X: 0, Y: 0}, {X: 1, Y: 1}})
	if _, err := ResumeMatch(nil, nil, nil, Options{}); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := ResumeMatch(g, []int32{-1}, []int32{-1, -1, -1}, Options{}); err == nil {
		t.Error("short mateX: want error")
	}
	if _, err := ResumeMatch(g, []int32{2, -1, -1}, []int32{-1, -1, 0}, Options{}); err == nil {
		t.Error("non-edge pair: want error")
	}
	// A valid partial matching resumes fine.
	res, err := ResumeMatch(g, []int32{0, -1, -1}, []int32{0, -1, -1}, Options{})
	if err != nil || res.Cardinality != 2 || !res.Complete {
		t.Fatalf("valid resume: res=%+v err=%v", res, err)
	}
}

// TestSerialAlgorithmsPreCancelled: serial algorithms check the context
// before launching and degrade to the initializer's matching.
func TestSerialAlgorithmsPreCancelled(t *testing.T) {
	g := gen.ER(100, 100, 400, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{HopcroftKarp, SSBFS, SSDFS} {
		res, err := MatchContext(ctx, g, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Complete {
			t.Fatalf("%v: pre-cancelled run marked complete", algo)
		}
		if err := VerifyMatching(g, res.MateX, res.MateY); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

// TestMatchUnaffectedByBackgroundContext pins that the resilient plumbing
// did not change fault-free behavior: Match still reaches the maximum with
// Complete set.
func TestMatchUnaffectedByBackgroundContext(t *testing.T) {
	g := gen.ER(300, 300, 1000, 5)
	res, err := Match(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("fault-free run not complete")
	}
	if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		t.Fatal(err)
	}
}
