package graftmatch

import (
	"context"
	"time"

	"graftmatch/internal/matching"
	"graftmatch/internal/supervise"
)

// SuperviseOptions configures the run supervisor: a watchdog on per-phase
// progress, stall detection on cardinality growth, and a graceful
// degradation ladder of engines. When a rung trips, the next engine is
// seeded with the best matching reached so far — augmenting-path algorithms
// only grow a matching, so matched edges are never lost across a fallback.
type SuperviseOptions struct {
	// Ladder is the degradation sequence. Empty means the requested
	// Options.Algorithm followed by PothenFan and HopcroftKarp (duplicates
	// removed) — parallel first, then the serial workhorse that always
	// terminates.
	Ladder []Algorithm

	// PhaseTimeout is the watchdog: maximum wall-clock time between
	// completed phases before the engine is declared wedged and the run
	// degrades. 0 disables the watchdog. Serial algorithms report no
	// phases and are exempt.
	PhaseTimeout time.Duration

	// StallPhases degrades after this many consecutive phases without
	// cardinality growth; 0 disables stall detection.
	StallPhases int

	// Grace bounds how long a cancelled engine may take to stop before it
	// is abandoned and the supervisor proceeds with the matching copied at
	// its last phase boundary; 0 means 10s.
	Grace time.Duration

	// RetryAttempts bounds in-place retries (with exponential backoff) of
	// transient engine failures, e.g. a simulated network outage from the
	// distributed engine; 0 disables retries.
	RetryAttempts int
}

// RungReport records one engine attempt of a supervised run.
type RungReport struct {
	Engine      string // algorithm name, e.g. "MS-BFS-Graft"
	Outcome     string // completed | watchdog | stalled | errored | abandoned | cancelled
	Attempt     int    // 1-based attempt number for this engine
	Phases      int64  // phases the attempt completed
	Cardinality int64  // |M| when the attempt ended
	Err         string // engine error, when Outcome == errored
}

// SupervisionReport is the full outcome of a supervised run.
type SupervisionReport struct {
	// Rungs lists every engine attempt in order.
	Rungs []RungReport

	// Engine names the rung that completed; empty if none did (the run
	// was cancelled or every engine failed).
	Engine string
}

// defaultLadder is MS-BFS-Graft → Pothen–Fan → Hopcroft–Karp, adjusted so
// the requested algorithm leads.
func defaultLadder(first Algorithm) []Algorithm {
	ladder := []Algorithm{first}
	for _, a := range []Algorithm{PothenFan, HopcroftKarp} {
		if a != first {
			ladder = append(ladder, a)
		}
	}
	return ladder
}

// serialAlgorithm reports whether a runs to completion without phase
// callbacks (so watchdog/stall supervision cannot observe it).
func serialAlgorithm(a Algorithm) bool {
	switch a {
	case HopcroftKarp, SSBFS, SSDFS:
		return true
	default:
		return false
	}
}

// superviseMatch runs the degradation ladder over an initialized matching.
func superviseMatch(ctx context.Context, g *Graph, m *matching.Matching, opts Options) (*Result, error) {
	so := *opts.Supervise
	algs := so.Ladder
	if len(algs) == 0 {
		algs = defaultLadder(opts.Algorithm)
	}

	// The deadline governs the supervised run as a whole, not each rung.
	if !opts.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, opts.Deadline)
		defer cancel()
	}

	engines := make([]supervise.Engine, len(algs))
	for i, alg := range algs {
		engOpts := opts
		engOpts.Algorithm = alg
		engOpts.Supervise = nil
		engOpts.Checkpoint = nil // snapshotting rides the Observe hook below
		engOpts.Deadline = time.Time{}
		name := alg.String()
		serial := serialAlgorithm(alg)
		engines[i] = supervise.Engine{
			Name:   name,
			Serial: serial,
			Run: func(rctx context.Context, seedX, seedY []int32, onPhase func(supervise.Progress)) (supervise.Result, error) {
				em := &matching.Matching{MateX: seedX, MateY: seedY}
				ro := engOpts
				ro.OnPhase = func(phase, card int64) {
					onPhase(supervise.Progress{
						Engine: name, Phase: phase, Cardinality: card,
						MateX: em.MateX, MateY: em.MateY,
					})
				}
				res, err := finishMatch(rctx, g, em, ro)
				if err != nil {
					return supervise.Result{}, err
				}
				return supervise.Result{
					MateX: res.MateX, MateY: res.MateY,
					Cardinality: res.Cardinality,
					Complete:    res.Complete,
					Aux:         res.Stats,
				}, nil
			},
		}
	}

	initial := m.Cardinality()
	var w *ckptWriter
	if opts.Checkpoint != nil {
		w = newCkptWriter(g, *opts.Checkpoint, initial, opts.Recorder)
	}
	user := opts.OnPhase
	cfg := supervise.Config{
		PhaseTimeout: so.PhaseTimeout,
		StallPhases:  so.StallPhases,
		Grace:        so.Grace,
		Retry:        supervise.Backoff{Attempts: so.RetryAttempts},
		Recorder:     opts.Recorder,
		Observe: func(p supervise.Progress) {
			if w != nil {
				w.observe(p.Engine, p.Phase, p.Cardinality, p.MateX, p.MateY)
			}
			if user != nil {
				user(p.Phase, p.Cardinality)
			}
		},
	}

	rep, err := supervise.Run(ctx, m.MateX, m.MateY, engines, cfg)
	if err != nil {
		return nil, err
	}

	stats, _ := rep.Aux.(*Stats)
	if stats == nil {
		// No rung ran to completion with stats (cancelled, abandoned, or
		// all errored before finishing); synthesize the boundary counters.
		stats = &matching.Stats{
			Algorithm:          algs[0].String(),
			Threads:            opts.Threads,
			InitialCardinality: initial,
			FinalCardinality:   rep.Cardinality,
			Complete:           rep.Complete,
		}
	}
	res := &Result{
		MateX:       rep.MateX,
		MateY:       rep.MateY,
		Cardinality: rep.Cardinality,
		Complete:    rep.Complete,
		Stats:       stats,
		Supervision: convertReport(rep),
	}
	if w != nil {
		engine := rep.Engine
		if engine == "" {
			engine = algs[0].String()
		}
		w.final(engine, stats, rep.Cardinality, rep.MateX, rep.MateY)
		res.CheckpointPath, res.CheckpointErr = w.status()
	}
	return res, nil
}

func convertReport(rep *supervise.Report) *SupervisionReport {
	sr := &SupervisionReport{Engine: rep.Engine}
	for _, r := range rep.Rungs {
		sr.Rungs = append(sr.Rungs, RungReport{
			Engine:      r.Engine,
			Outcome:     string(r.Outcome),
			Attempt:     r.Attempt,
			Phases:      r.Phases,
			Cardinality: r.Cardinality,
			Err:         r.Err,
		})
	}
	return sr
}
