package graftmatch

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"graftmatch/internal/exps"
	"graftmatch/internal/gen"
	"graftmatch/internal/reference"
)

// allAlgorithms lists every exact algorithm for cross-checking.
var allAlgorithms = []Algorithm{
	MSBFSGraft, MSBFS, MSBFSDirOpt, PothenFan, PushRelabel, HopcroftKarp, SSBFS, SSDFS,
}

// testGraphs returns a battery of small-to-medium instances covering all
// three classes of the paper plus edge cases.
func testGraphs(tb testing.TB) map[string]*Graph {
	tb.Helper()
	return map[string]*Graph{
		"empty":         MustFromEdges(0, 0, nil),
		"no-edges":      MustFromEdges(5, 7, nil),
		"single":        MustFromEdges(1, 1, []Edge{{X: 0, Y: 0}}),
		"path":          MustFromEdges(3, 3, []Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}),
		"star":          MustFromEdges(5, 1, []Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0}}),
		"complete3x4":   completeGraph(3, 4),
		"er-sparse":     gen.ER(200, 200, 600, 1),
		"er-dense":      gen.ER(100, 120, 3000, 2),
		"er-rect":       gen.ER(300, 80, 1200, 3),
		"grid":          gen.Grid(16, 16),
		"mesh":          gen.Mesh(12, 18, 4),
		"roadnet":       gen.RoadNet(20, 20, 0.85, 5),
		"rmat":          gen.RMAT(9, 8, 0.57, 0.19, 0.19, 6),
		"scalefree":     gen.ScaleFree(256, 256, 4, 7),
		"weblike":       gen.WebLike(9, 6, 0.3, 8),
		"rankdeficient": gen.RankDeficient(300, 300, 120, 3, 9),
		"banded":        gen.Banded(200, 3, 0.7, 10),
	}
}

func completeGraph(nx, ny int32) *Graph {
	var edges []Edge
	for x := int32(0); x < nx; x++ {
		for y := int32(0); y < ny; y++ {
			edges = append(edges, Edge{X: x, Y: y})
		}
	}
	return MustFromEdges(nx, ny, edges)
}

// TestAllAlgorithmsAgree is the central cross-check: every algorithm, under
// every initializer and at 1 and 4 threads, must produce a valid matching
// of identical (maximum) cardinality, certified by König's theorem.
func TestAllAlgorithmsAgree(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var want int64 = -1
			for _, alg := range allAlgorithms {
				for _, threads := range []int{1, 4} {
					res, err := Match(g, Options{Algorithm: alg, Threads: threads, Seed: 42})
					if err != nil {
						t.Fatalf("%v/p=%d: %v", alg, threads, err)
					}
					if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
						t.Fatalf("%v/p=%d: %v", alg, threads, err)
					}
					if want == -1 {
						want = res.Cardinality
					} else if res.Cardinality != want {
						t.Fatalf("%v/p=%d: cardinality %d, want %d", alg, threads, res.Cardinality, want)
					}
				}
			}
		})
	}
}

// TestInitializers checks every initializer produces a valid starting
// matching and the final result is unaffected.
func TestInitializers(t *testing.T) {
	g := gen.ER(150, 150, 500, 11)
	var want int64 = -1
	for _, init := range []Initializer{KarpSipser, Greedy, ParallelGreedy, NoInit, ParallelKarpSipser} {
		res, err := Match(g, Options{Initializer: init, Threads: 2, Seed: 1})
		if err != nil {
			t.Fatalf("init %v: %v", init, err)
		}
		if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
			t.Fatalf("init %v: %v", init, err)
		}
		if want == -1 {
			want = res.Cardinality
		} else if res.Cardinality != want {
			t.Fatalf("init %v: cardinality %d, want %d", init, res.Cardinality, want)
		}
	}
}

// TestRandomSweep hammers MS-BFS-Graft against Hopcroft–Karp on many random
// instances with varying shapes and densities.
func TestRandomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	for seed := int64(0); seed < 30; seed++ {
		nx := int32(20 + (seed*37)%180)
		ny := int32(20 + (seed*53)%180)
		m := int64(nx) * (1 + seed%6)
		g := gen.ER(nx, ny, m, seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref, err := Match(g, Options{Algorithm: HopcroftKarp, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Match(g, Options{Algorithm: MSBFSGraft, Threads: 4, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cardinality != ref.Cardinality {
				t.Fatalf("graft=%d hk=%d", got.Cardinality, ref.Cardinality)
			}
			if err := VerifyMaximum(g, got.MateX, got.MateY); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMaximumMatchingConvenience(t *testing.T) {
	g := MustFromEdges(4, 4, []Edge{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 2, Y: 2}, {X: 3, Y: 2}})
	mateX, card, err := MaximumMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if card != 3 {
		t.Fatalf("cardinality = %d, want 3", card)
	}
	if len(mateX) != 4 {
		t.Fatalf("len(mateX) = %d, want 4", len(mateX))
	}
}

func TestMatchNilGraph(t *testing.T) {
	if _, err := Match(nil, Options{}); err == nil {
		t.Fatal("want error for nil graph")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	g := MustFromEdges(1, 1, []Edge{{X: 0, Y: 0}})
	if _, err := Match(g, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	if _, err := Match(g, Options{Initializer: Initializer(99)}); err == nil {
		t.Fatal("want error for unknown initializer")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, alg := range allAlgorithms {
		if alg.String() == "" {
			t.Fatalf("empty name for %d", int(alg))
		}
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatalf("unexpected name %q", Algorithm(99).String())
	}
}

// TestDifferentialAgainstReference cross-checks every algorithm against the
// independent reference implementations (shared no code with the engines):
// SimpleMaximum on medium random instances and exhaustive search on tiny
// ones.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		nx := int32(rng.Intn(80) + 2)
		ny := int32(rng.Intn(80) + 2)
		b := NewBuilder(nx, ny)
		m := rng.Intn(400)
		for i := 0; i < m; i++ {
			if err := b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny)))); err != nil {
				t.Fatal(err)
			}
		}
		g := b.Build()
		want := reference.SimpleMaximum(g).Cardinality()
		for _, alg := range allAlgorithms {
			res, err := Match(g, Options{Algorithm: alg, Threads: 3, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cardinality != want {
				t.Fatalf("trial %d, %v: %d, want %d", trial, alg, res.Cardinality, want)
			}
		}
	}
	// Tiny instances against exhaustive search.
	for trial := 0; trial < 40; trial++ {
		nx := int32(rng.Intn(5) + 1)
		ny := int32(rng.Intn(5) + 1)
		b := NewBuilder(nx, ny)
		for i := 0; i < 10; i++ {
			_ = b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny))))
		}
		g := b.Build()
		want := reference.BruteForceMaximum(g)
		res, err := Match(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cardinality != want {
			t.Fatalf("tiny trial %d: %d, want %d", trial, res.Cardinality, want)
		}
	}
}

func TestGraphFileRoundTrips(t *testing.T) {
	g := gen.Grid(8, 8)
	dir := t.TempDir()
	for _, name := range []string{"g.mtx", "g.el", "g.mtx.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteGraphFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := ReadGraphFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges %d vs %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadMatrixMarket(&buf)
	if err != nil || g3.NumEdges() != g.NumEdges() {
		t.Fatalf("in-memory round trip: %v", err)
	}
}

func TestFacadeTraceAndStats(t *testing.T) {
	g := gen.WebLike(8, 5, 0.3, 12)
	res, err := Match(g, Options{Initializer: NoInit, TraceFrontiers: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.FrontierTrace) == 0 {
		t.Fatal("no trace through facade")
	}
	if res.Stats.MTEPS() < 0 || res.Stats.AvgAugPathLen() < 0 {
		t.Fatal("bad derived stats")
	}
	for _, alg := range []Algorithm{MSBFS, MSBFSDirOpt} {
		r2, err := Match(g, Options{Algorithm: alg, TraceFrontiers: true, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Cardinality != res.Cardinality {
			t.Fatalf("%v cardinality %d vs %d", alg, r2.Cardinality, res.Cardinality)
		}
	}
}

func TestFacadeAlphaOption(t *testing.T) {
	g := gen.ER(100, 100, 400, 13)
	for _, alpha := range []float64{1, 5, 20} {
		res, err := Match(g, Options{Alpha: alpha, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
			t.Fatalf("alpha=%f: %v", alpha, err)
		}
	}
}

func TestVerifyMatchingFacade(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{X: 0, Y: 0}, {X: 1, Y: 1}})
	res, err := Match(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMatching(g, res.MateX, res.MateY); err != nil {
		t.Fatal(err)
	}
	bad := make([]int32, len(res.MateX))
	copy(bad, res.MateX)
	bad[0] = 1 // claim x0 matched to y1: not an edge / asymmetric
	if err := VerifyMatching(g, bad, res.MateY); err == nil {
		t.Fatal("want error for corrupted mates")
	}
}

func TestBTFErrorPath(t *testing.T) {
	if _, err := BlockTriangularForm(nil, Options{}); err == nil {
		t.Fatal("want error for nil graph")
	}
}

// TestNonMaximalInitialMatchings: every algorithm must accept an arbitrary
// valid (not necessarily maximal) initial matching. We thin a greedy
// matching randomly and run each algorithm through the internal APIs the
// facade wraps.
func TestNonMaximalInitialMatchings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.ER(200, 200, 800, 17)
	ref, err := Match(g, Options{Algorithm: HopcroftKarp})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		// Build a thinned valid matching via the public API result.
		full, err := Match(g, Options{Algorithm: HopcroftKarp})
		if err != nil {
			t.Fatal(err)
		}
		mateX := make([]int32, len(full.MateX))
		mateY := make([]int32, len(full.MateY))
		copy(mateX, full.MateX)
		copy(mateY, full.MateY)
		for x := range mateX {
			if mateX[x] != Unmatched && rng.Intn(2) == 0 {
				mateY[mateX[x]] = Unmatched
				mateX[x] = Unmatched
			}
		}
		if err := VerifyMatching(g, mateX, mateY); err != nil {
			t.Fatal(err)
		}
		got := matchFromPartial(t, g, alg, mateX, mateY)
		if got != ref.Cardinality {
			t.Fatalf("%v from partial init: %d, want %d", alg, got, ref.Cardinality)
		}
	}
}

// matchFromPartial resumes each algorithm from the given partial matching
// via the ResumeMatch API and returns the final cardinality.
func matchFromPartial(t *testing.T, g *Graph, alg Algorithm, mateX, mateY []int32) int64 {
	t.Helper()
	res, err := ResumeMatch(g, mateX, mateY, Options{Algorithm: alg, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMaximum(g, res.MateX, res.MateY); err != nil {
		t.Fatal(err)
	}
	return res.Cardinality
}

func TestResumeMatchErrors(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{X: 0, Y: 0}})
	if _, err := ResumeMatch(nil, nil, nil, Options{}); err == nil {
		t.Fatal("want error for nil graph")
	}
	bad := []int32{1, Unmatched} // x0 "matched" to nonexistent edge partner
	if _, err := ResumeMatch(g, bad, []int32{Unmatched, 0}, Options{}); err == nil {
		t.Fatal("want error for invalid initial matching")
	}
}

// TestResumeMatchDoesNotAliasInput: the caller's arrays must not be
// mutated.
func TestResumeMatchDoesNotAliasInput(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{X: 0, Y: 0}, {X: 1, Y: 1}})
	mateX := []int32{Unmatched, Unmatched}
	mateY := []int32{Unmatched, Unmatched}
	res, err := ResumeMatch(g, mateX, mateY, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality != 2 {
		t.Fatalf("cardinality %d", res.Cardinality)
	}
	if mateX[0] != Unmatched || mateY[0] != Unmatched {
		t.Fatal("input arrays mutated")
	}
}

// TestMediumScaleSoak exercises every algorithm on the medium-scale Fig. 1
// representatives (up to ~60k vertices / ~290k arcs) with certification —
// the closest thing to a production workload in the unit suite. Skipped
// under -short.
func TestMediumScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale soak")
	}
	for _, inst := range exps.Fig1Suite(exps.Medium) {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			var want int64 = -1
			for _, alg := range allAlgorithms {
				res, err := Match(inst.Graph, Options{Algorithm: alg, Threads: 4, Initializer: Greedy})
				if err != nil {
					t.Fatal(err)
				}
				if want == -1 {
					want = res.Cardinality
					if err := VerifyMaximum(inst.Graph, res.MateX, res.MateY); err != nil {
						t.Fatal(err)
					}
				} else if res.Cardinality != want {
					t.Fatalf("%v: %d, want %d", alg, res.Cardinality, want)
				}
			}
		})
	}
}
