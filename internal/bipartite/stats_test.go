package bipartite

import (
	"math"
	"testing"
)

func TestStatsEmpty(t *testing.T) {
	s := ComputeStats(MustFromEdges(0, 0, nil))
	if s.Edges != 0 || s.NX != 0 || s.NY != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsBasic(t *testing.T) {
	// X degrees: 2, 1, 0; Y degrees: 1, 1, 1.
	g := MustFromEdges(3, 3, []Edge{{0, 0}, {0, 1}, {1, 2}})
	s := ComputeStats(g)
	if s.Edges != 3 || s.Arcs != 6 {
		t.Fatalf("edges=%d arcs=%d", s.Edges, s.Arcs)
	}
	if s.MinDegX != 0 || s.MaxDegX != 2 {
		t.Fatalf("degX range [%d,%d], want [0,2]", s.MinDegX, s.MaxDegX)
	}
	if math.Abs(s.MeanDegX-1.0) > 1e-9 {
		t.Fatalf("meanDegX = %f", s.MeanDegX)
	}
	if s.IsolatedX != 1 || s.IsolatedY != 0 {
		t.Fatalf("isolated = %d,%d", s.IsolatedX, s.IsolatedY)
	}
	if s.MedianDegX != 1 {
		t.Fatalf("median = %d", s.MedianDegX)
	}
	if s.EmptyFracton <= 0 {
		t.Fatalf("empty fraction = %f", s.EmptyFracton)
	}
}

func TestGiniUniform(t *testing.T) {
	// Equal degrees → Gini 0.
	g := MustFromEdges(4, 4, []Edge{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	s := ComputeStats(g)
	if math.Abs(s.GiniDegreeX) > 1e-9 {
		t.Fatalf("gini of uniform degrees = %f, want 0", s.GiniDegreeX)
	}
}

func TestGiniSkewed(t *testing.T) {
	// One vertex holds all edges → Gini near 1.
	var edges []Edge
	for y := int32(0); y < 8; y++ {
		edges = append(edges, Edge{0, y})
	}
	g := MustFromEdges(8, 8, edges)
	s := ComputeStats(g)
	if s.GiniDegreeX < 0.8 {
		t.Fatalf("gini of maximally skewed degrees = %f, want near 1", s.GiniDegreeX)
	}
	if s.DegSkewX != 8 {
		t.Fatalf("skew = %f, want 8", s.DegSkewX)
	}
}
