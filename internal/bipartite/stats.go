package bipartite

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the degree structure of a graph; it backs the Table II
// style suite report.
type Stats struct {
	NX, NY       int32
	Edges        int64
	Arcs         int64 // 2·Edges, the paper's m
	MinDegX      int64
	MaxDegX      int64
	MeanDegX     float64
	MinDegY      int64
	MaxDegY      int64
	MeanDegY     float64
	IsolatedX    int32 // degree-0 X vertices (can never be matched)
	IsolatedY    int32
	DegSkewX     float64 // max/mean degree ratio, a scale-free-ness proxy
	MedianDegX   int64
	GiniDegreeX  float64 // inequality of the X degree distribution in [0,1]
	EmptyFracton float64 // fraction of isolated vertices over all vertices
}

// ComputeStats scans g once per side and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{NX: g.NX(), NY: g.NY(), Edges: g.NumEdges(), Arcs: g.NumArcs()}
	if g.NX() > 0 {
		degs := make([]int64, g.NX())
		s.MinDegX = math.MaxInt64
		var sum int64
		for x := int32(0); x < g.NX(); x++ {
			d := g.DegX(x)
			degs[x] = d
			sum += d
			if d < s.MinDegX {
				s.MinDegX = d
			}
			if d > s.MaxDegX {
				s.MaxDegX = d
			}
			if d == 0 {
				s.IsolatedX++
			}
		}
		s.MeanDegX = float64(sum) / float64(g.NX())
		if s.MeanDegX > 0 {
			s.DegSkewX = float64(s.MaxDegX) / s.MeanDegX
		}
		sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
		s.MedianDegX = degs[len(degs)/2]
		s.GiniDegreeX = gini(degs, sum)
	}
	if g.NY() > 0 {
		s.MinDegY = math.MaxInt64
		var sum int64
		for y := int32(0); y < g.NY(); y++ {
			d := g.DegY(y)
			sum += d
			if d < s.MinDegY {
				s.MinDegY = d
			}
			if d > s.MaxDegY {
				s.MaxDegY = d
			}
			if d == 0 {
				s.IsolatedY++
			}
		}
		s.MeanDegY = float64(sum) / float64(g.NY())
	}
	if nv := g.NumVertices(); nv > 0 {
		s.EmptyFracton = float64(int64(s.IsolatedX)+int64(s.IsolatedY)) / float64(nv)
	}
	return s
}

// gini computes the Gini coefficient of sorted non-negative values.
func gini(sorted []int64, sum int64) float64 {
	n := len(sorted)
	if n == 0 || sum == 0 {
		return 0
	}
	var weighted int64
	for i, v := range sorted {
		weighted += int64(i+1) * v
	}
	return (2*float64(weighted))/(float64(n)*float64(sum)) - float64(n+1)/float64(n)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nx=%d ny=%d m=%d degX[min=%d med=%d max=%d mean=%.2f] isolated=%d+%d",
		s.NX, s.NY, s.Arcs, s.MinDegX, s.MedianDegX, s.MaxDegX, s.MeanDegX, s.IsolatedX, s.IsolatedY)
}
