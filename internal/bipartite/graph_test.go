package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, 0, nil)
	if g.NX() != 0 || g.NY() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has wrong sizes: %v", g)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestNoEdges(t *testing.T) {
	g := MustFromEdges(3, 4, nil)
	if g.NX() != 3 || g.NY() != 4 {
		t.Fatalf("sizes: %v", g)
	}
	for x := int32(0); x < 3; x++ {
		if g.DegX(x) != 0 {
			t.Fatalf("degX(%d) = %d", x, g.DegX(x))
		}
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBasicAdjacency(t *testing.T) {
	g := MustFromEdges(3, 3, []Edge{{0, 1}, {0, 2}, {1, 0}, {2, 2}})
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if g.NumArcs() != 8 {
		t.Fatalf("arcs = %d, want 8", g.NumArcs())
	}
	wantX := map[int32][]int32{0: {1, 2}, 1: {0}, 2: {2}}
	for x, want := range wantX {
		got := g.NbrX(x)
		if len(got) != len(want) {
			t.Fatalf("NbrX(%d) = %v, want %v", x, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NbrX(%d) = %v, want %v", x, got, want)
			}
		}
	}
	wantY := map[int32][]int32{0: {1}, 1: {0}, 2: {0, 2}}
	for y, want := range wantY {
		got := g.NbrY(y)
		if len(got) != len(want) {
			t.Fatalf("NbrY(%d) = %v, want %v", y, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NbrY(%d) = %v, want %v", y, got, want)
			}
		}
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgesCoalesced(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{0, 0}, {0, 0}, {0, 0}, {1, 1}, {1, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 after coalescing", g.NumEdges())
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(3, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	cases := []struct {
		x, y int32
		want bool
	}{
		{0, 1, true}, {1, 2, true}, {2, 0, true},
		{0, 0, false}, {1, 1, false}, {0, 2, false},
		{-1, 0, false}, {0, -1, false}, {3, 0, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.x, c.y); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestOutOfRangeEdges(t *testing.T) {
	if _, err := FromEdges(2, 2, []Edge{{2, 0}}); err == nil {
		t.Fatal("want error for X out of range")
	}
	if _, err := FromEdges(2, 2, []Edge{{0, 2}}); err == nil {
		t.Fatal("want error for Y out of range")
	}
	if _, err := FromEdges(2, 2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("want error for negative X")
	}
	if _, err := FromEdges(-1, 2, nil); err == nil {
		t.Fatal("want error for negative part size")
	}
}

func TestTranspose(t *testing.T) {
	g := MustFromEdges(2, 3, []Edge{{0, 0}, {0, 2}, {1, 1}})
	tr := g.Transpose()
	if tr.NX() != 3 || tr.NY() != 2 {
		t.Fatalf("transpose sizes: %v", tr)
	}
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if !tr.HasEdge(y, x) {
				t.Fatalf("edge (%d,%d) missing in transpose", y, x)
			}
		}
	}
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 0}, {2, 2}, {1, 2}}
	g := MustFromEdges(3, 3, orig)
	got := g.Edges(nil)
	if len(got) != len(orig) {
		t.Fatalf("got %d edges, want %d", len(got), len(orig))
	}
	g2 := MustFromEdges(3, 3, got)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed edge count")
	}
}

// TestBuilderPropertyValid uses testing/quick to check that any random edge
// set builds a graph that passes full structural validation.
func TestBuilderPropertyValid(t *testing.T) {
	f := func(seed int64, nxRaw, nyRaw uint8, mRaw uint16) bool {
		nx := int32(nxRaw%50) + 1
		ny := int32(nyRaw%50) + 1
		m := int(mRaw % 2000)
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(nx, ny)
		for i := 0; i < m; i++ {
			if err := b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny)))); err != nil {
				return false
			}
		}
		g := b.Build()
		return Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetryProperty checks x-side and y-side adjacency agree for random
// graphs.
func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := int32(rng.Intn(30) + 1)
		ny := int32(rng.Intn(30) + 1)
		b := NewBuilder(nx, ny)
		for i := 0; i < 200; i++ {
			_ = b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny))))
		}
		g := b.Build()
		var xSide, ySide int64
		for x := int32(0); x < nx; x++ {
			xSide += g.DegX(x)
		}
		for y := int32(0); y < ny; y++ {
			ySide += g.DegY(y)
		}
		return xSide == ySide && xSide == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReserveAndReuse(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Reserve(16)
	if err := b.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if b.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	g1 := b.Build()
	if g1.NumEdges() != 1 {
		t.Fatalf("g1 edges = %d", g1.NumEdges())
	}
	// Builder is reusable after Build.
	if err := b.AddEdge(1, 1); err != nil {
		t.Fatal(err)
	}
	g2 := b.Build()
	if g2.NumEdges() != 1 || !g2.HasEdge(1, 1) || g2.HasEdge(0, 0) {
		t.Fatalf("builder reuse broken: %v", g2)
	}
}

func TestStringForms(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{0, 0}})
	if g.String() == "" {
		t.Fatal("empty String()")
	}
	s := ComputeStats(g)
	if s.String() == "" {
		t.Fatal("empty stats String()")
	}
}

func TestMustFromEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustFromEdges(1, 1, []Edge{{5, 5}})
}

func TestPermute(t *testing.T) {
	g := MustFromEdges(3, 3, []Edge{{X: 0, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 0}})
	// Reverse both sides: new position i holds original 2-i.
	perm := []int32{2, 1, 0}
	p, err := Permute(g, perm, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Edge (0,1) → positions (2,1); (1,2) → (1,0); (2,0) → (0,2).
	for _, e := range []Edge{{X: 2, Y: 1}, {X: 1, Y: 0}, {X: 0, Y: 2}} {
		if !p.HasEdge(e.X, e.Y) {
			t.Fatalf("edge (%d,%d) missing after permute", e.X, e.Y)
		}
	}
	if p.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteErrors(t *testing.T) {
	g := MustFromEdges(2, 2, []Edge{{X: 0, Y: 0}})
	if _, err := Permute(g, []int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want error for short rowPerm")
	}
	if _, err := Permute(g, []int32{0, 0}, []int32{0, 1}); err == nil {
		t.Fatal("want error for non-bijection")
	}
	if _, err := Permute(g, []int32{0, 5}, []int32{0, 1}); err == nil {
		t.Fatal("want error for out-of-range entry")
	}
}

func TestPermuteIdentity(t *testing.T) {
	g := MustFromEdges(3, 2, []Edge{{X: 0, Y: 0}, {X: 2, Y: 1}})
	id3, id2 := []int32{0, 1, 2}, []int32{0, 1}
	p, err := Permute(g, id3, id2)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g.Edges(nil), p.Edges(nil)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("identity permutation changed the graph")
		}
	}
}
