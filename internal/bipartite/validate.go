package bipartite

import "fmt"

// Validate checks the structural invariants of the CSR representation:
// monotone offset arrays, in-range neighbor ids, sorted duplicate-free
// neighbor lists, and X/Y adjacency symmetry (every arc stored in both
// directions exactly once). It returns the first violation found.
func Validate(g *Graph) error {
	if g.nx < 0 || g.ny < 0 {
		return fmt.Errorf("bipartite: negative part size nx=%d ny=%d", g.nx, g.ny)
	}
	if int32(len(g.xptr)) != g.nx+1 {
		return fmt.Errorf("bipartite: xptr length %d, want %d", len(g.xptr), g.nx+1)
	}
	if int32(len(g.yptr)) != g.ny+1 {
		return fmt.Errorf("bipartite: yptr length %d, want %d", len(g.yptr), g.ny+1)
	}
	if len(g.xnbr) != len(g.ynbr) {
		return fmt.Errorf("bipartite: asymmetric arc storage: |xnbr|=%d |ynbr|=%d", len(g.xnbr), len(g.ynbr))
	}
	if err := checkCSR("x", g.xptr, g.xnbr, g.ny); err != nil {
		return err
	}
	if err := checkCSR("y", g.yptr, g.ynbr, g.nx); err != nil {
		return err
	}
	// Symmetry: each (x,y) arc on the X side must appear as (y,x) on the Y
	// side. Count-match per Y vertex suffices given both sides are sorted
	// and duplicate-free with equal totals.
	degY := make([]int64, g.ny)
	for _, y := range g.xnbr {
		degY[y]++
	}
	for y := int32(0); y < g.ny; y++ {
		if degY[y] != g.DegY(y) {
			return fmt.Errorf("bipartite: degree mismatch for y=%d: x-side says %d, y-side says %d",
				y, degY[y], g.DegY(y))
		}
	}
	for x := int32(0); x < g.nx; x++ {
		for _, y := range g.NbrX(x) {
			if !containsSorted(g.NbrY(y), x) {
				return fmt.Errorf("bipartite: arc (%d,%d) missing reverse arc", x, y)
			}
		}
	}
	return nil
}

func checkCSR(side string, ptr []int64, nbr []int32, bound int32) error {
	if ptr[0] != 0 {
		return fmt.Errorf("bipartite: %sptr[0]=%d, want 0", side, ptr[0])
	}
	if ptr[len(ptr)-1] != int64(len(nbr)) {
		return fmt.Errorf("bipartite: %sptr end %d, want %d", side, ptr[len(ptr)-1], len(nbr))
	}
	for i := 0; i+1 < len(ptr); i++ {
		if ptr[i] > ptr[i+1] {
			return fmt.Errorf("bipartite: %sptr not monotone at %d: %d > %d", side, i, ptr[i], ptr[i+1])
		}
		row := nbr[ptr[i]:ptr[i+1]]
		for k, v := range row {
			if v < 0 || v >= bound {
				return fmt.Errorf("bipartite: %s-side neighbor %d of vertex %d out of range [0,%d)", side, v, i, bound)
			}
			if k > 0 && row[k-1] >= v {
				return fmt.Errorf("bipartite: %s-side neighbors of vertex %d not strictly sorted at %d", side, i, k)
			}
		}
	}
	return nil
}

func containsSorted(s []int32, v int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
