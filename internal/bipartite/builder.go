package bipartite

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It is not safe
// for concurrent use; parallel generators shard edges and merge before
// building.
type Builder struct {
	nx, ny int32
	edges  []Edge
}

// NewBuilder returns a Builder for a graph with the given part sizes.
func NewBuilder(nx, ny int32) *Builder {
	return &Builder{nx: nx, ny: ny}
}

// Reserve pre-allocates capacity for n edges.
func (b *Builder) Reserve(n int) {
	if cap(b.edges) < n {
		edges := make([]Edge, len(b.edges), n)
		copy(edges, b.edges)
		b.edges = edges
	}
}

// AddEdge records the undirected edge (x, y). Duplicates are allowed and
// coalesced by Build.
func (b *Builder) AddEdge(x, y int32) error {
	if x < 0 || x >= b.nx {
		return fmt.Errorf("bipartite: X vertex %d out of range [0,%d)", x, b.nx)
	}
	if y < 0 || y >= b.ny {
		return fmt.Errorf("bipartite: Y vertex %d out of range [0,%d)", y, b.ny)
	}
	b.edges = append(b.edges, Edge{x, y})
	return nil
}

// NumEdges returns the number of edges recorded so far (before coalescing).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build sorts, deduplicates, and freezes the accumulated edges into a Graph.
// The Builder may be reused afterwards; its edge list is consumed.
func (b *Builder) Build() *Graph {
	edges := b.edges
	b.edges = nil
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].X != edges[j].X {
			return edges[i].X < edges[j].X
		}
		return edges[i].Y < edges[j].Y
	})
	// Coalesce duplicates in place.
	w := 0
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			edges[w] = e
			w++
		}
	}
	edges = edges[:w]

	g := &Graph{nx: b.nx, ny: b.ny}
	g.xptr = make([]int64, b.nx+1)
	g.xnbr = make([]int32, len(edges))
	for _, e := range edges {
		g.xptr[e.X+1]++
	}
	for i := int32(0); i < b.nx; i++ {
		g.xptr[i+1] += g.xptr[i]
	}
	// Edges are sorted X-major, so a single pass fills xnbr in order.
	for i, e := range edges {
		g.xnbr[i] = e.Y
		_ = i
	}

	// Y-side CSR via counting sort on Y; X-major order makes each Y
	// neighbor list sorted automatically.
	g.yptr = make([]int64, b.ny+1)
	g.ynbr = make([]int32, len(edges))
	for _, e := range edges {
		g.yptr[e.Y+1]++
	}
	for j := int32(0); j < b.ny; j++ {
		g.yptr[j+1] += g.yptr[j]
	}
	next := make([]int64, b.ny)
	for j := int32(0); j < b.ny; j++ {
		next[j] = g.yptr[j]
	}
	for _, e := range edges {
		g.ynbr[next[e.Y]] = e.X
		next[e.Y]++
	}
	return g
}
