// Package bipartite provides a compressed sparse row (CSR) representation of
// undirected bipartite graphs G(X ∪ Y, E) together with builders, statistics,
// and structural validation.
//
// The representation keeps the adjacency of both vertex parts so that
// searches can proceed top-down (from X) and bottom-up (from Y), as required
// by the direction-optimizing BFS of the MS-BFS-Graft algorithm. Following
// the paper's convention (§IV-B), a sparse matrix A with nnz(A) nonzeros maps
// to a bipartite graph with |X| = rows, |Y| = cols and m = 2·nnz(A) directed
// arcs (each nonzero stored once per direction).
package bipartite

import (
	"fmt"
	"sort"
)

// None marks an absent vertex, parent, root, leaf or mate.
const None int32 = -1

// Graph is an immutable bipartite graph in CSR form.
//
// X vertices are numbered 0..NX-1 and Y vertices 0..NY-1, each part in its
// own index space. XAdj/XEnd delimit the Y-neighbors of an X vertex inside
// XNbr, and symmetrically for Y. The zero value is an empty graph.
type Graph struct {
	nx, ny int32

	// CSR of the X side: neighbors of x are XNbr[XPtr[x]:XPtr[x+1]].
	xptr []int64
	xnbr []int32

	// CSR of the Y side: neighbors of y are YNbr[YPtr[y]:YPtr[y+1]].
	yptr []int64
	ynbr []int32
}

// NX returns the number of vertices in part X (rows).
func (g *Graph) NX() int32 { return g.nx }

// NY returns the number of vertices in part Y (columns).
func (g *Graph) NY() int32 { return g.ny }

// NumVertices returns |X| + |Y|.
func (g *Graph) NumVertices() int64 { return int64(g.nx) + int64(g.ny) }

// NumEdges returns the number of undirected edges (nonzeros).
func (g *Graph) NumEdges() int64 { return int64(len(g.xnbr)) }

// NumArcs returns the number of stored directed arcs, m = 2·NumEdges, the
// quantity the paper reports as |E| (§IV-B).
func (g *Graph) NumArcs() int64 { return int64(len(g.xnbr)) + int64(len(g.ynbr)) }

// DegX returns the degree of X vertex x.
func (g *Graph) DegX(x int32) int64 { return g.xptr[x+1] - g.xptr[x] }

// DegY returns the degree of Y vertex y.
func (g *Graph) DegY(y int32) int64 { return g.yptr[y+1] - g.yptr[y] }

// NbrX returns the Y-neighbors of X vertex x. The slice aliases internal
// storage and must not be modified.
func (g *Graph) NbrX(x int32) []int32 { return g.xnbr[g.xptr[x]:g.xptr[x+1]] }

// NbrY returns the X-neighbors of Y vertex y. The slice aliases internal
// storage and must not be modified.
func (g *Graph) NbrY(y int32) []int32 { return g.ynbr[g.yptr[y]:g.yptr[y+1]] }

// XPtr exposes the raw X-side CSR offsets (len NX+1) for tight loops.
func (g *Graph) XPtr() []int64 { return g.xptr }

// XNbr exposes the raw X-side CSR adjacency for tight loops.
func (g *Graph) XNbr() []int32 { return g.xnbr }

// YPtr exposes the raw Y-side CSR offsets (len NY+1) for tight loops.
func (g *Graph) YPtr() []int64 { return g.yptr }

// YNbr exposes the raw Y-side CSR adjacency for tight loops.
func (g *Graph) YNbr() []int32 { return g.ynbr }

// HasEdge reports whether (x, y) is an edge. Neighbor lists are sorted, so
// this is a binary search over the smaller-endpoint adjacency.
func (g *Graph) HasEdge(x, y int32) bool {
	if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
		return false
	}
	nbr := g.NbrX(x)
	if dy := g.DegY(y); dy < int64(len(nbr)) {
		nbr = g.NbrY(y)
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= x })
		return i < len(nbr) && nbr[i] == x
	}
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= y })
	return i < len(nbr) && nbr[i] == y
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("bipartite.Graph{nx: %d, ny: %d, edges: %d}", g.nx, g.ny, g.NumEdges())
}

// Edge is a single (X, Y) pair used by builders and iteration.
type Edge struct {
	X, Y int32
}

// Edges appends every edge of g to dst and returns it, in X-major sorted
// order. Intended for tests and I/O, not hot paths.
func (g *Graph) Edges(dst []Edge) []Edge {
	for x := int32(0); x < g.nx; x++ {
		for _, y := range g.NbrX(x) {
			dst = append(dst, Edge{x, y})
		}
	}
	return dst
}

// Transpose returns a graph with the roles of X and Y exchanged. The CSR
// slices are shared with the receiver, so the operation is O(1).
func (g *Graph) Transpose() *Graph {
	return &Graph{
		nx:   g.ny,
		ny:   g.nx,
		xptr: g.yptr,
		xnbr: g.ynbr,
		yptr: g.xptr,
		ynbr: g.xnbr,
	}
}

// FromEdges builds a graph with nx X-vertices, ny Y-vertices and the given
// edge list. Duplicate edges are coalesced. It returns an error if any
// endpoint is out of range.
func FromEdges(nx, ny int32, edges []Edge) (*Graph, error) {
	if nx < 0 || ny < 0 {
		return nil, fmt.Errorf("bipartite: negative part size nx=%d ny=%d", nx, ny)
	}
	b := NewBuilder(nx, ny)
	for _, e := range edges {
		if err := b.AddEdge(e.X, e.Y); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error; for tests and examples.
func MustFromEdges(nx, ny int32, edges []Edge) *Graph {
	g, err := FromEdges(nx, ny, edges)
	if err != nil {
		panic(err) //lint:ignore err-checked Must* constructor: panicking on bad input is its documented contract
	}
	return g
}

// Permute returns the graph of the permuted matrix: rowPerm and colPerm map
// new position → original index (the convention of dmperm.Decomposition),
// so edge (x, y) of g becomes (rowPos[x], colPos[y]) in the result. Both
// permutations must be bijections of the respective vertex sets.
func Permute(g *Graph, rowPerm, colPerm []int32) (*Graph, error) {
	if int32(len(rowPerm)) != g.NX() || int32(len(colPerm)) != g.NY() {
		return nil, fmt.Errorf("bipartite: permutation sizes (%d,%d) do not match graph (%d,%d)",
			len(rowPerm), len(colPerm), g.NX(), g.NY())
	}
	rowPos := make([]int32, g.NX())
	for i := range rowPos {
		rowPos[i] = None
	}
	for pos, x := range rowPerm {
		if x < 0 || x >= g.NX() || rowPos[x] != None {
			return nil, fmt.Errorf("bipartite: rowPerm is not a bijection at position %d", pos)
		}
		rowPos[x] = int32(pos)
	}
	colPos := make([]int32, g.NY())
	for i := range colPos {
		colPos[i] = None
	}
	for pos, y := range colPerm {
		if y < 0 || y >= g.NY() || colPos[y] != None {
			return nil, fmt.Errorf("bipartite: colPerm is not a bijection at position %d", pos)
		}
		colPos[y] = int32(pos)
	}
	b := NewBuilder(g.NX(), g.NY())
	b.Reserve(int(g.NumEdges()))
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if err := b.AddEdge(rowPos[x], colPos[y]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}
