package exps

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple ASCII/CSV-renderable result table; every experiment
// produces one (or more) so cmd/matchbench and the benchmarks share
// formatting.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	// Rows may be ragged (e.g. per-level series); size columns over the
	// widest row.
	ncol := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncol {
			ncol = len(row)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quotes are not needed for our cells,
// which never contain commas).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// f2 formats a float with two decimals; fI formats an int64.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func fI(v int64) string { return fmt.Sprintf("%d", v) }

// jsonTable is the encoding/json projection of a Table.
type jsonTable struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteJSON renders the table as a JSON object (one per call; callers
// emitting several tables produce a JSON stream).
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTable{Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes})
}
