package exps

import (
	"fmt"
	"math"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/core"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/msbfs"
	"graftmatch/internal/obs"
	"graftmatch/internal/pf"
	"graftmatch/internal/pushrelabel"
	"graftmatch/internal/ssbfs"
	"graftmatch/internal/ssdfs"
)

// Algo names an algorithm in experiment tables.
type Algo string

// Experiment algorithm identifiers (the paper's names).
const (
	AlgoGraft   Algo = "MS-BFS-Graft"
	AlgoMSBFS   Algo = "MS-BFS"
	AlgoDirOpt  Algo = "MS-BFS-DirOpt"
	AlgoGraftTD Algo = "MS-BFS-GraftOnly" // grafting without direction opt
	AlgoPF      Algo = "PF"
	AlgoPR      Algo = "PR"
	AlgoHK      Algo = "HK"
	AlgoSSBFS   Algo = "SS-BFS"
	AlgoSSDFS   Algo = "SS-DFS"
	defaultReps      = 3
)

// initFor produces the experiment initializer matching. The paper uses
// Karp–Sipser; on our synthetic stand-ins Karp–Sipser is *optimal* (its
// degree-1 rule cascades through the whole graph), which would leave the
// exact algorithms nothing to do and collapse every comparison. The plain
// greedy heuristic is an equally valid maximal-matching initializer
// (§II-B) that leaves the same kind of 2–20% gap the paper's real inputs
// leave after Karp–Sipser, so experiments use it; the library default
// (facade Options) remains Karp–Sipser. Documented in DESIGN.md §3.
func initFor(g *bipartite.Graph) *matching.Matching {
	return matchinit.Greedy(g)
}

// Run executes algo on g with p threads, greedy-initialized (see initFor),
// and returns the run statistics.
func Run(algo Algo, g *bipartite.Graph, p int) *matching.Stats {
	return runOn(algo, g, initFor(g), p, nil)
}

// RunWith is Run with a live observability recorder threaded into the
// engines that support one (MS-BFS family, PF, PR); rec may be nil.
func RunWith(algo Algo, g *bipartite.Graph, p int, rec *obs.Recorder) *matching.Stats {
	return runOn(algo, g, initFor(g), p, rec)
}

// RunTraced is Run with frontier tracing enabled (Fig. 8); only meaningful
// for the MS-BFS family.
func RunTraced(algo Algo, g *bipartite.Graph, p int) *matching.Stats {
	m := initFor(g)
	switch algo {
	case AlgoGraft:
		return core.Run(g, m, core.Options{Threads: p, DirectionOptimized: true, Grafting: true, TraceFrontiers: true}.Defaults())
	case AlgoMSBFS:
		return core.Run(g, m, core.Options{Threads: p, TraceFrontiers: true}.Defaults())
	default:
		return runOn(algo, g, m, p, nil)
	}
}

func runOn(algo Algo, g *bipartite.Graph, m *matching.Matching, p int, rec *obs.Recorder) *matching.Stats {
	switch algo {
	case AlgoGraft:
		opts := core.FullOptions(p)
		opts.Recorder = rec
		return core.Run(g, m, opts)
	case AlgoMSBFS:
		return msbfs.Run(g, m, p)
	case AlgoDirOpt:
		return msbfs.RunDirOpt(g, m, p)
	case AlgoGraftTD:
		return core.Run(g, m, core.Options{Threads: p, Grafting: true, Recorder: rec}.Defaults())
	case AlgoPF:
		s, err := pf.RunCtx(nil, g, m, pf.Options{Threads: p, Recorder: rec})
		if err != nil {
			panic(err) //lint:ignore err-checked background context: only a contained worker panic can surface here, and re-raising matches pf.Run
		}
		return s
	case AlgoPR:
		return pushrelabel.Run(g, m, pushrelabel.Options{Threads: p, Recorder: rec})
	case AlgoHK:
		return hk.Run(g, m)
	case AlgoSSBFS:
		return ssbfs.Run(g, m)
	case AlgoSSDFS:
		return ssdfs.Run(g, m)
	default:
		panic(fmt.Sprintf("exps: unknown algorithm %q", algo)) //lint:ignore err-checked experiment-driver invariant: algorithm names come from the fixed Algos table
	}
}

// Timing summarizes repeated runs of one (algorithm, graph, threads) cell.
type Timing struct {
	Algo    Algo
	Threads int
	Reps    int

	Mean   time.Duration
	Stddev time.Duration
	Min    time.Duration
	Max    time.Duration

	// Last holds the stats of the final repetition (counters are
	// deterministic for serial runs).
	Last *matching.Stats
}

// Sensitivity returns ψ = σ/μ in percent (§V-B).
func (t Timing) Sensitivity() float64 {
	if t.Mean <= 0 {
		return 0
	}
	return float64(t.Stddev) / float64(t.Mean) * 100
}

// Measure runs algo on g reps times (re-initialized each run so
// every repetition does identical work) and aggregates wall-clock times.
func Measure(algo Algo, g *bipartite.Graph, p, reps int) Timing {
	if reps <= 0 {
		reps = defaultReps
	}
	times := make([]time.Duration, 0, reps)
	var last *matching.Stats
	for r := 0; r < reps; r++ {
		m := initFor(g)
		start := time.Now()
		// Timed cells run unrecorded: the measurement should not include
		// even the (tiny) recorder tax.
		last = runOn(algo, g, m, p, nil)
		times = append(times, time.Since(start))
	}
	tm := Timing{Algo: algo, Threads: p, Reps: reps, Last: last}
	tm.Min, tm.Max = times[0], times[0]
	var sum float64
	for _, d := range times {
		sum += float64(d)
		if d < tm.Min {
			tm.Min = d
		}
		if d > tm.Max {
			tm.Max = d
		}
	}
	mean := sum / float64(len(times))
	tm.Mean = time.Duration(mean)
	var varsum float64
	for _, d := range times {
		diff := float64(d) - mean
		varsum += diff * diff
	}
	tm.Stddev = time.Duration(math.Sqrt(varsum / float64(len(times))))
	return tm
}
