package exps

import (
	"bytes"
	"strings"
	"testing"
)

var smallCfg = Config{Scale: Small, Threads: 2, Reps: 1}

func TestSuiteDeterministicAndClassed(t *testing.T) {
	a := Suite(Small)
	b := Suite(Small)
	if len(a) != 12 {
		t.Fatalf("suite size %d, want 12", len(a))
	}
	counts := map[Class]int{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Graph.NumEdges() != b[i].Graph.NumEdges() {
			t.Fatalf("suite not deterministic at %d", i)
		}
		if a[i].Graph.NumEdges() == 0 {
			t.Fatalf("instance %s empty", a[i].Name)
		}
		counts[a[i].Class]++
	}
	for _, c := range Classes() {
		if counts[c] != 4 {
			t.Fatalf("class %v has %d instances, want 4", c, counts[c])
		}
	}
}

func TestFig1SuiteSelection(t *testing.T) {
	insts := Fig1Suite(Small)
	if len(insts) != 3 {
		t.Fatalf("fig1 suite = %d instances, want 3", len(insts))
	}
	want := map[string]bool{"kkt_power": true, "cit-patents": true, "wikipedia": true}
	for _, inst := range insts {
		if !want[inst.Name] {
			t.Fatalf("unexpected instance %s", inst.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName(Small, "coPapersDBLP"); !ok {
		t.Fatal("coPapersDBLP missing")
	}
	if _, ok := ByName(Small, "nope"); ok {
		t.Fatal("found nonexistent instance")
	}
	if len(Names(Small)) != 12 {
		t.Fatal("Names size")
	}
}

func TestRunAllAlgos(t *testing.T) {
	inst, _ := ByName(Small, "kkt_power")
	var card int64 = -1
	for _, a := range []Algo{AlgoGraft, AlgoMSBFS, AlgoDirOpt, AlgoGraftTD, AlgoPF, AlgoPR, AlgoHK, AlgoSSBFS, AlgoSSDFS} {
		s := Run(a, inst.Graph, 2)
		if card == -1 {
			card = s.FinalCardinality
		} else if s.FinalCardinality != card {
			t.Fatalf("%s disagrees: %d vs %d", a, s.FinalCardinality, card)
		}
	}
}

func TestRunUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	inst, _ := ByName(Small, "kkt_power")
	Run(Algo("bogus"), inst.Graph, 1)
}

func TestMeasure(t *testing.T) {
	inst, _ := ByName(Small, "road_usa")
	tm := Measure(AlgoGraft, inst.Graph, 2, 3)
	if tm.Reps != 3 || tm.Mean <= 0 || tm.Min <= 0 || tm.Max < tm.Min {
		t.Fatalf("timing: %+v", tm)
	}
	if tm.Sensitivity() < 0 {
		t.Fatalf("negative sensitivity")
	}
	zero := Timing{}
	if zero.Sensitivity() != 0 {
		t.Fatal("zero timing sensitivity")
	}
	def := Measure(AlgoHK, inst.Graph, 1, 0)
	if def.Reps != defaultReps {
		t.Fatalf("default reps = %d", def.Reps)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tab.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,bb\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestTableI(t *testing.T) {
	tab := TableI(smallCfg)
	if len(tab.Rows) < 4 {
		t.Fatalf("table I rows: %v", tab.Rows)
	}
}

func TestTableII(t *testing.T) {
	tab := TableII(smallCfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("table II rows = %d", len(tab.Rows))
	}
	// Networks-class rows must show lower matching fractions than
	// scientific-class rows (the defining property of the classes).
	frac := map[string]string{}
	for _, r := range tab.Rows {
		frac[r[1]] = r[6]
	}
	if frac["kkt_power"] < frac["wb-edu"] {
		t.Fatalf("matching fractions inverted: kkt=%s wb-edu=%s", frac["kkt_power"], frac["wb-edu"])
	}
}

func TestFig1(t *testing.T) {
	tabs := Fig1(smallCfg)
	if len(tabs) != 3 {
		t.Fatalf("fig1 tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 3 || len(tab.Header) != 6 {
			t.Fatalf("fig1 table shape: %v", tab.Header)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3(smallCfg)
	if len(tab.Rows) != 12 || len(tab.Header) != 8 {
		t.Fatalf("fig3 shape: %d rows, %d cols", len(tab.Rows), len(tab.Header))
	}
	// Every thread-group must contain at least one 1.00 (the slowest).
	for _, row := range tab.Rows {
		has1 := false
		for _, c := range row[2:5] {
			if c == "1.00" {
				has1 = true
			}
		}
		if !has1 {
			t.Fatalf("row %v has no slowest=1.00 in serial group", row)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(smallCfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("fig4 rows = %d", len(tab.Rows))
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5(smallCfg)
	if len(tab.Rows) != 3 {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
	if tab.Header[1] != "p=1" {
		t.Fatalf("fig5 header: %v", tab.Header)
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(smallCfg)
	if len(tab.Rows) != 12 || len(tab.Header) != 6 {
		t.Fatalf("fig6 shape: %d rows %d cols", len(tab.Rows), len(tab.Header))
	}
}

func TestFig7Shape(t *testing.T) {
	tab := Fig7(smallCfg)
	if len(tab.Rows) != 12 || len(tab.Header) != 5 {
		t.Fatalf("fig7 shape: %d rows %d cols", len(tab.Rows), len(tab.Header))
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(smallCfg)
	if len(tab.Rows) == 0 {
		t.Skip("instance solved in too few phases to trace")
	}
	for _, row := range tab.Rows {
		if len(row) < 3 {
			t.Fatalf("trace row too short: %v", row)
		}
	}
}

func TestPsiShape(t *testing.T) {
	cfg := smallCfg
	cfg.Reps = 5
	tab := Psi(cfg)
	if len(tab.Rows) != 13 { // 12 instances + AVERAGE
		t.Fatalf("psi rows = %d", len(tab.Rows))
	}
	if tab.Rows[12][0] != "AVERAGE" {
		t.Fatalf("last row: %v", tab.Rows[12])
	}
}

func TestThreadSweep(t *testing.T) {
	got := threadSweep(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if s := threadSweep(1); len(s) != 1 || s[0] != 1 {
		t.Fatalf("sweep(1) = %v", s)
	}
	if s := threadSweep(6); s[len(s)-1] != 6 {
		t.Fatalf("sweep(6) = %v", s)
	}
}

func TestClassString(t *testing.T) {
	if Scientific.String() != "scientific" || ScaleFree.String() != "scale-free" || Networks.String() != "networks" {
		t.Fatal("class names")
	}
	if !strings.HasPrefix(Class(9).String(), "Class(") {
		t.Fatal("unknown class name")
	}
}

func TestAblationAlphaShape(t *testing.T) {
	tab := AblationAlpha(smallCfg)
	if len(tab.Rows) != 15 { // 3 graphs x 5 alphas
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationInitShape(t *testing.T) {
	tab := AblationInit(smallCfg)
	if len(tab.Rows) != 48 { // 12 graphs x 4 inits
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Final |M| identical across inits for each graph.
	final := map[string]string{}
	for _, r := range tab.Rows {
		if prev, ok := final[r[0]]; ok && prev != r[3] {
			t.Fatalf("%s: final cardinality differs across inits: %s vs %s", r[0], prev, r[3])
		}
		final[r[0]] = r[3]
	}
}

func TestAblationVisitedShape(t *testing.T) {
	tab := AblationVisited(smallCfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestDistributedShape(t *testing.T) {
	tab := Distributed(smallCfg)
	if len(tab.Rows) != 9 { // 3 graphs x 3 rank counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Cardinality identical across rank counts per graph.
	card := map[string]string{}
	for _, r := range tab.Rows {
		if prev, ok := card[r[0]]; ok && prev != r[2] {
			t.Fatalf("%s: |M| differs across ranks: %s vs %s", r[0], prev, r[2])
		}
		card[r[0]] = r[2]
	}
}
