package exps

import (
	"fmt"

	"graftmatch/internal/core"
	"graftmatch/internal/dist"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

// AblationAlpha sweeps the α threshold of MS-BFS-Graft (§III-B: "we found
// that α ≈ 5 performs better") on the three representative graphs,
// reporting runtime and the top-down/bottom-up level split per setting.
func AblationAlpha(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("AblationAlpha")()
	alphas := []float64{1, 2, 5, 10, 50}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: α threshold sweep (MS-BFS-Graft, %d threads)", cfg.Threads),
		Header: []string{"graph", "alpha", "time(ms)", "topdown", "bottomup", "grafts", "rebuilds"},
	}
	for _, inst := range Fig1Suite(cfg.Scale) {
		for _, a := range alphas {
			var best float64
			var td, bu, grafts, rebuilds int64
			for r := 0; r < cfg.Reps; r++ {
				m := initFor(inst.Graph)
				s := core.Run(inst.Graph, m, core.Options{
					Threads: cfg.Threads, Alpha: a,
					DirectionOptimized: true, Grafting: true,
					Recorder: cfg.Recorder,
				}.Defaults())
				ms := float64(s.Runtime.Nanoseconds()) / 1e6
				if best == 0 || ms < best {
					best = ms
				}
				td, bu = s.TopDownLevels, s.BottomUpLevels
				grafts, rebuilds = s.Grafts, s.Rebuilds
			}
			t.AddRow(inst.Name, f2(a), f2(best), fI(td), fI(bu), fI(grafts), fI(rebuilds))
		}
	}
	t.AddNote("paper recommendation: α ≈ 5")
	return t
}

// AblationInit compares initializers feeding MS-BFS-Graft: stronger
// initializers shift work out of the exact phase (§II-B: maximal matching
// heuristics initialize maximum matching algorithms).
func AblationInit(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("AblationInit")()
	t := &Table{
		Title:  fmt.Sprintf("Ablation: initializer choice before MS-BFS-Graft (%d threads)", cfg.Threads),
		Header: []string{"graph", "init", "init |M|", "final |M|", "exact phases", "exact time(ms)"},
	}
	for _, inst := range Suite(cfg.Scale) {
		for _, c := range []string{"none", "greedy", "karp-sipser", "parallel-ks"} {
			var m *matching.Matching
			switch c {
			case "none":
				m = matching.New(inst.Graph.NX(), inst.Graph.NY())
			case "greedy":
				m = matchinit.Greedy(inst.Graph)
			case "karp-sipser":
				m = matchinit.KarpSipser(inst.Graph, 42)
			case "parallel-ks":
				m = matchinit.ParallelKarpSipser(inst.Graph, cfg.Threads)
			}
			initCard := m.Cardinality()
			fo := core.FullOptions(cfg.Threads)
			fo.Recorder = cfg.Recorder
			s := core.Run(inst.Graph, m, fo)
			t.AddRow(inst.Name, c, fI(initCard), fI(s.FinalCardinality),
				fI(s.Phases), f2(float64(s.Runtime.Nanoseconds())/1e6))
		}
	}
	return t
}

// AblationVisited compares the int32 visited array against the atomic bit
// vector (the paper's __sync_fetch_and_or analog) on the full suite.
func AblationVisited(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("AblationVisited")()
	t := &Table{
		Title:  fmt.Sprintf("Ablation: visited-flag representation (%d threads)", cfg.Threads),
		Header: []string{"graph", "int32 array (ms)", "bit vector (ms)", "ratio"},
	}
	for _, inst := range Suite(cfg.Scale) {
		arr := measureCore(inst, cfg, core.Options{Threads: cfg.Threads, DirectionOptimized: true, Grafting: true})
		bit := measureCore(inst, cfg, core.Options{Threads: cfg.Threads, DirectionOptimized: true, Grafting: true, VisitedBitmap: true})
		ratio := 0.0
		if bit > 0 {
			ratio = arr / bit
		}
		t.AddRow(inst.Name, f2(arr), f2(bit), f2(ratio))
	}
	t.AddNote("ratio > 1 means the bit vector is faster on this host")
	return t
}

func measureCore(inst Instance, cfg Config, opts core.Options) float64 {
	best := 0.0
	for r := 0; r < cfg.Reps; r++ {
		m := initFor(inst.Graph)
		s := core.Run(inst.Graph, m, opts.Defaults())
		ms := float64(s.Runtime.Nanoseconds()) / 1e6
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// Distributed reports the distributed-memory simulation (the paper's stated
// future work): cardinality parity with the shared-memory engine plus the
// BSP cost model (supersteps and message volume) across rank counts.
func Distributed(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Distributed")()
	t := &Table{
		Title:  "Extension: distributed-memory MS-BFS-Graft (BSP simulation)",
		Header: []string{"graph", "ranks", "|M|", "phases", "supersteps", "messages", "grafts"},
	}
	for _, inst := range Fig1Suite(cfg.Scale) {
		for _, k := range []int{1, 4, 16} {
			m := initFor(inst.Graph)
			s := dist.Run(inst.Graph, m, dist.Options{Ranks: k, Grafting: true, Recorder: cfg.Recorder})
			t.AddRow(inst.Name, fI(int64(k)), fI(s.FinalCardinality),
				fI(s.Phases), fI(s.Supersteps), fI(s.Messages), fI(s.Grafts))
		}
	}
	t.AddNote("supersteps model network rounds; messages model alltoallv volume")
	return t
}

// Fig7XL runs the Fig. 7 ablation on single larger instances (one per
// class) where the asymptotic contributions emerge — the laptop-scale
// complement to Fig7, recorded in EXPERIMENTS.md.
func Fig7XL(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig7XL")()
	t := &Table{
		Title:  "Fig. 7 (XL): contributions on larger single instances",
		Header: []string{"graph", "n", "MS-BFS(ms)", "+DirOpt", "+Graft", "+Both"},
	}
	instances := []Instance{
		{Name: "mesh-xl", Class: Scientific, Graph: gen.StripDiagonal(gen.Mesh(300, 300, 201))},
		{Name: "scalefree-xl", Class: ScaleFree, Graph: gen.ScaleFree(200000, 200000, 6, 202)},
		{Name: "weblike-xl", Class: Networks, Graph: gen.WebLike(17, 5, 0.35, 203)},
	}
	for _, inst := range instances {
		base := measureCore(inst, cfg, core.Options{Threads: cfg.Threads})
		dir := measureCore(inst, cfg, core.Options{Threads: cfg.Threads, DirectionOptimized: true})
		gr := measureCore(inst, cfg, core.Options{Threads: cfg.Threads, Grafting: true})
		both := measureCore(inst, cfg, core.Options{Threads: cfg.Threads, DirectionOptimized: true, Grafting: true})
		ratio := func(v float64) string {
			if v <= 0 {
				return "inf"
			}
			return f2(base / v)
		}
		t.AddRow(inst.Name, fI(int64(inst.Graph.NX())), f2(base), ratio(dir), ratio(gr), ratio(both))
	}
	t.AddNote("paper: grafting ≈3x, direction opt ≈1.6x; contributions grow with instance size")
	return t
}
