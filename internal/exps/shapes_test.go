package exps

import (
	"testing"

	"graftmatch/internal/matching"
)

// These tests assert the paper's qualitative claims (the "shapes" recorded
// in EXPERIMENTS.md) on counter-based metrics, which are deterministic and
// host-independent — so the reproduction claims are locked in CI rather
// than only observed in benchmark output.

// TestShapeFig1bPhases: §II-D / Fig. 1(b) — MS algorithms need orders of
// magnitude fewer phases than SS algorithms on every Fig. 1 graph.
func TestShapeFig1bPhases(t *testing.T) {
	for _, inst := range Fig1Suite(Small) {
		ss := Run(AlgoSSBFS, inst.Graph, 1)
		ms := Run(AlgoMSBFS, inst.Graph, 1)
		if ms.Phases*10 > ss.Phases && ss.Phases > 20 {
			t.Errorf("%s: MS phases %d not ≪ SS phases %d", inst.Name, ms.Phases, ss.Phases)
		}
	}
}

// TestShapeFig1aSSBFSPrunesLowMatching: §II-C / Fig. 1(a) — on the
// low-matching-number graph, SS-BFS traverses fewer edges than the MS
// algorithms because failed trees are pruned permanently.
func TestShapeFig1aSSBFSPrunesLowMatching(t *testing.T) {
	inst, ok := ByName(Small, "wikipedia")
	if !ok {
		t.Fatal("wikipedia missing")
	}
	ss := Run(AlgoSSBFS, inst.Graph, 1)
	pf := Run(AlgoPF, inst.Graph, 1)
	if ss.EdgesTraversed > pf.EdgesTraversed {
		t.Errorf("SS-BFS traversed %d > PF %d on low-matching graph", ss.EdgesTraversed, pf.EdgesTraversed)
	}
}

// TestShapeFig1cPathLengths: Fig. 1(c) — DFS-based search finds longer
// augmenting paths than BFS-based search, and MS shorter than SS.
func TestShapeFig1cPathLengths(t *testing.T) {
	for _, inst := range Fig1Suite(Small) {
		ssdfs := Run(AlgoSSDFS, inst.Graph, 1)
		ssbfs := Run(AlgoSSBFS, inst.Graph, 1)
		msbfs := Run(AlgoMSBFS, inst.Graph, 1)
		if ssdfs.AugPaths == 0 {
			continue
		}
		if ssdfs.AvgAugPathLen() < ssbfs.AvgAugPathLen() {
			t.Errorf("%s: SS-DFS paths (%.1f) shorter than SS-BFS (%.1f)",
				inst.Name, ssdfs.AvgAugPathLen(), ssbfs.AvgAugPathLen())
		}
		if msbfs.AvgAugPathLen() > ssbfs.AvgAugPathLen()+1e-9 {
			t.Errorf("%s: MS-BFS paths (%.1f) longer than SS-BFS (%.1f)",
				inst.Name, msbfs.AvgAugPathLen(), ssbfs.AvgAugPathLen())
		}
	}
}

// TestShapeFig8FrontierEvolution: Fig. 8 — grafted phases start from their
// largest frontier (monotone shrink), ungrafted phases grow first.
func TestShapeFig8FrontierEvolution(t *testing.T) {
	inst, _ := ByName(Small, "coPapersDBLP")
	graft := RunTraced(AlgoGraft, inst.Graph, 1)
	plain := RunTraced(AlgoMSBFS, inst.Graph, 1)
	if len(graft.FrontierTrace) < 3 || len(plain.FrontierTrace) < 3 {
		t.Skip("instance solved in too few phases")
	}
	// Grafted phases after the first: first level is the phase's max.
	for pi, phase := range graft.FrontierTrace {
		if pi == 0 || len(phase) < 2 {
			continue
		}
		for _, sz := range phase[1:] {
			if sz > phase[0] {
				t.Errorf("graft phase %d: level grows %d -> %d", pi+1, phase[0], sz)
			}
		}
	}
	// Plain MS-BFS phases: some phase must grow beyond its first level.
	grew := false
	for _, phase := range plain.FrontierTrace {
		for _, sz := range phase[1:] {
			if sz > phase[0] {
				grew = true
			}
		}
	}
	if !grew {
		t.Error("MS-BFS frontiers never grew; rebuild signature missing")
	}
}

// TestShapeFig6Breakdown: Fig. 6 — high-matching instances concentrate time
// in BFS traversal; low-matching instances spend a visible share on
// augment+graft+census.
func TestShapeFig6Breakdown(t *testing.T) {
	high, _ := ByName(Small, "hugetrace")
	low, _ := ByName(Small, "wb-edu")
	sh := Run(AlgoGraft, high.Graph, 1)
	sl := Run(AlgoGraft, low.Graph, 1)
	bfsShare := func(s *matching.Stats) float64 {
		return s.StepShare(matching.StepTopDown) + s.StepShare(matching.StepBottomUp)
	}
	if bfsShare(sh) < 0.5 {
		t.Errorf("high-matching instance spends only %.0f%% in BFS", bfsShare(sh)*100)
	}
	if rest := 1 - bfsShare(sl); rest < 0.2 {
		t.Errorf("low-matching instance spends only %.0f%% outside BFS", rest*100)
	}
}

// TestShapeGraftReducesTraversals: the core claim — on the scale-free class
// the grafting algorithm traverses at most as many edges as plain MS-BFS
// (it eliminates redundant reconstruction).
func TestShapeGraftReducesTraversals(t *testing.T) {
	inst, _ := ByName(Small, "coPapersDBLP")
	plain := Run(AlgoMSBFS, inst.Graph, 1)
	graft := Run(AlgoGraft, inst.Graph, 1)
	if graft.EdgesTraversed > plain.EdgesTraversed {
		t.Errorf("graft traversed %d > plain %d", graft.EdgesTraversed, plain.EdgesTraversed)
	}
}

// TestShapeTableIIClasses: the class gradient the whole evaluation pivots
// on — matching fraction scientific ≈ 1 > scale-free > networks.
func TestShapeTableIIClasses(t *testing.T) {
	frac := func(name string) float64 {
		inst, ok := ByName(Small, name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		s := Run(AlgoGraft, inst.Graph, 1)
		return float64(2*s.FinalCardinality) / float64(inst.Graph.NumVertices())
	}
	sci := frac("hugetrace")
	sf := frac("coPapersDBLP")
	net := frac("wikipedia")
	if !(sci > 0.9 && sci > sf && sf > net && net < 0.5) {
		t.Errorf("class gradient broken: sci=%.2f sf=%.2f net=%.2f", sci, sf, net)
	}
}
