package exps

import (
	"fmt"
	"runtime"
	"time"

	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

// Config controls experiment execution.
type Config struct {
	// Scale selects suite sizes.
	Scale Scale
	// Threads is the "full machine" thread count P; 0 means GOMAXPROCS.
	Threads int
	// Reps is the repetition count for timed cells; 0 means 3
	// (the paper uses 10; see -reps in cmd/matchbench).
	Reps int

	// Recorder, when non-nil, receives one "exps" span per table built plus
	// the engine metrics of untimed runs, so a long experiment sweep is
	// observable live over the same HTTP surface as a matching run. Timed
	// (Measure) cells run unrecorded to keep the measurement undisturbed.
	Recorder *obs.Recorder
}

// obsTable brackets one experiment table build with an "exps" span; use as
// `defer cfg.obsTable("Fig6")()`. Nil-safe through the recorder.
func (c Config) obsTable(name string) func() {
	start := time.Now()
	return func() { c.Recorder.Span("exps", name, start, time.Since(start), 0) }
}

func (c Config) defaults() Config {
	if c.Threads <= 0 {
		c.Threads = par.DefaultWorkers()
	}
	if c.Reps <= 0 {
		c.Reps = defaultReps
	}
	return c
}

// TableI reports the execution environment, the stand-in for the paper's
// machine-description table.
func TableI(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("TableI")()
	t := &Table{
		Title:  "Table I: system description (this host)",
		Header: []string{"feature", "value"},
	}
	t.AddRow("go version", runtime.Version())
	t.AddRow("GOOS/GOARCH", runtime.GOOS+"/"+runtime.GOARCH)
	t.AddRow("logical CPUs", fI(int64(runtime.NumCPU())))
	t.AddRow("GOMAXPROCS", fI(int64(runtime.GOMAXPROCS(0))))
	t.AddRow("benchmark threads (P)", fI(int64(cfg.Threads)))
	t.AddNote("paper: Mirasol 4×10-core Westmere-EX, Edison 2×12-core Ivy Bridge")
	return t
}

// TableII reports the suite: sizes, degrees, and the matching number as a
// fraction of |V| (computed exactly with MS-BFS-Graft), grouped by class.
func TableII(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("TableII")()
	t := &Table{
		Title:  "Table II: input graph suite (synthetic stand-ins)",
		Header: []string{"class", "graph", "|X|", "|Y|", "m=|E|", "avg deg", "matching frac"},
	}
	for _, inst := range Suite(cfg.Scale) {
		g := inst.Graph
		stats := RunWith(AlgoGraft, g, cfg.Threads, cfg.Recorder)
		frac := float64(2*stats.FinalCardinality) / float64(g.NumVertices())
		t.AddRow(inst.Class.String(), inst.Name,
			fI(int64(g.NX())), fI(int64(g.NY())), fI(g.NumArcs()),
			f2(float64(g.NumArcs())/float64(g.NumVertices())), f2(frac))
	}
	t.AddNote("matching frac = 2|M| / (|X|+|Y|), the paper's matching-number convention")
	return t
}

// fig1Algos are the five serial algorithms compared in Fig. 1.
var fig1Algos = []Algo{AlgoSSDFS, AlgoSSBFS, AlgoPF, AlgoMSBFS, AlgoHK}

// Fig1 reproduces Fig. 1(a,b,c): edges traversed, number of phases, and
// average augmenting path length of five serial algorithms on the three
// representative graphs, all Karp–Sipser initialized.
func Fig1(cfg Config) []*Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig1")()
	edges := &Table{Title: "Fig. 1(a): edges traversed (serial, greedy init)",
		Header: []string{"graph"}}
	phases := &Table{Title: "Fig. 1(b): number of phases",
		Header: []string{"graph"}}
	plens := &Table{Title: "Fig. 1(c): average augmenting path length",
		Header: []string{"graph"}}
	for _, a := range fig1Algos {
		edges.Header = append(edges.Header, string(a))
		phases.Header = append(phases.Header, string(a))
		plens.Header = append(plens.Header, string(a))
	}
	for _, inst := range Fig1Suite(cfg.Scale) {
		er := []string{inst.Name}
		pr := []string{inst.Name}
		lr := []string{inst.Name}
		for _, a := range fig1Algos {
			s := RunWith(a, inst.Graph, 1, cfg.Recorder)
			er = append(er, fI(s.EdgesTraversed))
			pr = append(pr, fI(s.Phases))
			lr = append(lr, f2(s.AvgAugPathLen()))
		}
		edges.AddRow(er...)
		phases.AddRow(pr...)
		plens.AddRow(lr...)
	}
	return []*Table{edges, phases, plens}
}

// Fig3 reproduces Fig. 3: relative performance of MS-BFS-Graft, PF and PR
// on one thread and on P threads. Speedups are relative to the slowest
// algorithm on each graph (slowest = 1), the paper's normalization.
func Fig3(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig3")()
	algos := []Algo{AlgoGraft, AlgoPF, AlgoPR}
	t := &Table{
		Title: fmt.Sprintf("Fig. 3: relative speedup vs slowest (1 and %d threads, %d reps)", cfg.Threads, cfg.Reps),
		Header: []string{"class", "graph",
			"Graft(1t)", "PF(1t)", "PR(1t)",
			fmt.Sprintf("Graft(%dt)", cfg.Threads),
			fmt.Sprintf("PF(%dt)", cfg.Threads),
			fmt.Sprintf("PR(%dt)", cfg.Threads)},
	}
	type cell struct{ mean time.Duration }
	for _, inst := range Suite(cfg.Scale) {
		row := []string{inst.Class.String(), inst.Name}
		for _, p := range []int{1, cfg.Threads} {
			times := make([]cell, len(algos))
			var slowest time.Duration
			for i, a := range algos {
				tm := Measure(a, inst.Graph, p, cfg.Reps)
				times[i] = cell{tm.Mean}
				if tm.Mean > slowest {
					slowest = tm.Mean
				}
			}
			for _, c := range times {
				if c.mean <= 0 {
					row = append(row, "1.00")
					continue
				}
				row = append(row, f2(float64(slowest)/float64(c.mean)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("per graph and thread count, slowest algorithm = 1.00")
	return t
}

// Fig4 reproduces Fig. 4: search rate in MTEPS (traversed edges / runtime)
// of Pothen–Fan vs MS-BFS-Graft on P threads.
func Fig4(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig4")()
	t := &Table{
		Title:  fmt.Sprintf("Fig. 4: search rate in MTEPS (%d threads)", cfg.Threads),
		Header: []string{"graph", "Pothen-Fan", "MS-BFS-Graft", "ratio"},
	}
	for _, inst := range Suite(cfg.Scale) {
		pfT := Measure(AlgoPF, inst.Graph, cfg.Threads, cfg.Reps)
		gfT := Measure(AlgoGraft, inst.Graph, cfg.Threads, cfg.Reps)
		pfRate := mteps(pfT)
		gfRate := mteps(gfT)
		ratio := 0.0
		if pfRate > 0 {
			ratio = gfRate / pfRate
		}
		t.AddRow(inst.Name, f2(pfRate), f2(gfRate), f2(ratio))
	}
	t.AddNote("paper: graft searches 2-12x faster than PF, largest on low matching number")
	return t
}

func mteps(t Timing) float64 {
	if t.Mean <= 0 {
		return 0
	}
	return float64(t.Last.EdgesTraversed) / t.Mean.Seconds() / 1e6
}

// Fig5 reproduces Fig. 5: strong scaling of MS-BFS-Graft. For each class,
// the average speedup over its instances at each thread count, relative to
// the serial MS-BFS-Graft run.
func Fig5(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig5")()
	threads := threadSweep(cfg.Threads)
	t := &Table{Title: "Fig. 5: strong scaling of MS-BFS-Graft (speedup vs 1 thread)",
		Header: []string{"class"}}
	for _, p := range threads {
		t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
	}
	byClass := map[Class][]Instance{}
	for _, inst := range Suite(cfg.Scale) {
		byClass[inst.Class] = append(byClass[inst.Class], inst)
	}
	for _, c := range Classes() {
		insts := byClass[c]
		row := []string{c.String()}
		serial := make([]time.Duration, len(insts))
		for i, inst := range insts {
			serial[i] = Measure(AlgoGraft, inst.Graph, 1, cfg.Reps).Mean
		}
		for _, p := range threads {
			var sum float64
			for i, inst := range insts {
				tm := Measure(AlgoGraft, inst.Graph, p, cfg.Reps)
				if tm.Mean > 0 {
					sum += float64(serial[i]) / float64(tm.Mean)
				}
			}
			row = append(row, f2(sum/float64(len(insts))))
		}
		t.AddRow(row...)
	}
	return t
}

func threadSweep(max int) []int {
	sweep := []int{1}
	for p := 2; p < max; p *= 2 {
		sweep = append(sweep, p)
	}
	if max > 1 {
		sweep = append(sweep, max)
	}
	return sweep
}

// Fig6 reproduces Fig. 6: the breakdown of MS-BFS-Graft runtime into
// Top-Down, Bottom-Up, Augment, Tree-Grafting and Statistics steps.
func Fig6(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig6")()
	steps := []matching.Step{matching.StepTopDown, matching.StepBottomUp,
		matching.StepAugment, matching.StepGraft, matching.StepStatistics}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 6: runtime breakdown of MS-BFS-Graft (%%, %d threads)", cfg.Threads),
		Header: []string{"graph"},
	}
	for _, s := range steps {
		t.Header = append(t.Header, s.String())
	}
	for _, inst := range Suite(cfg.Scale) {
		s := RunWith(AlgoGraft, inst.Graph, cfg.Threads, cfg.Recorder)
		row := []string{inst.Name}
		for _, step := range steps {
			row = append(row, f2(s.StepShare(step)*100))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: ≥40%% of time in BFS traversal; low-matching graphs shift to augment+graft")
	return t
}

// Fig7 reproduces Fig. 7: the contribution of direction optimization and
// tree grafting, reported as speedup over plain parallel MS-BFS.
func Fig7(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig7")()
	t := &Table{
		Title:  fmt.Sprintf("Fig. 7: performance contributions over MS-BFS (%d threads)", cfg.Threads),
		Header: []string{"graph", "MS-BFS(ms)", "+DirOpt", "+Graft", "+Both(Graft alg)"},
	}
	for _, inst := range Suite(cfg.Scale) {
		base := Measure(AlgoMSBFS, inst.Graph, cfg.Threads, cfg.Reps)
		dir := Measure(AlgoDirOpt, inst.Graph, cfg.Threads, cfg.Reps)
		gr := Measure(AlgoGraftTD, inst.Graph, cfg.Threads, cfg.Reps)
		both := Measure(AlgoGraft, inst.Graph, cfg.Threads, cfg.Reps)
		t.AddRow(inst.Name,
			f2(float64(base.Mean)/1e6),
			speedupStr(base.Mean, dir.Mean),
			speedupStr(base.Mean, gr.Mean),
			speedupStr(base.Mean, both.Mean))
	}
	t.AddNote("paper: direction opt ≈1.6x, grafting ≈3x on average; up to 7.8x on low matching number")
	return t
}

func speedupStr(base, v time.Duration) string {
	if v <= 0 {
		return "inf"
	}
	return f2(float64(base) / float64(v))
}

// Fig8 reproduces Fig. 8: frontier size per BFS level during two phases of
// MS-BFS and MS-BFS-Graft on the coPapersDBLP stand-in. Grafted phases
// start from a large frontier that only shrinks; ungrafted phases grow from
// the unmatched vertices before shrinking.
func Fig8(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Fig8")()
	inst, ok := ByName(cfg.Scale, "coPapersDBLP")
	if !ok {
		panic("exps: coPapersDBLP missing from suite") //lint:ignore err-checked experiment-driver invariant: the built-in suite always contains this instance
	}
	graft := RunTraced(AlgoGraft, inst.Graph, cfg.Threads)
	plain := RunTraced(AlgoMSBFS, inst.Graph, cfg.Threads)
	t := &Table{
		Title:  "Fig. 8: frontier sizes per level (phases 2-3, coPapersDBLP stand-in)",
		Header: []string{"algorithm", "phase", "levels..."},
	}
	addTrace := func(name string, trace [][]int64) {
		for pi, phase := range trace {
			if pi == 0 || pi > 2 {
				continue // the figure shows two later phases
			}
			row := []string{name, fI(int64(pi + 1))}
			for _, sz := range phase {
				row = append(row, fI(sz))
			}
			t.AddRow(row...)
		}
	}
	addTrace("MS-BFS", plain.FrontierTrace)
	addTrace("MS-BFS-Graft", graft.FrontierTrace)
	t.AddNote("graft rows should start large and shrink; plain rows grow then shrink")
	return t
}

// Psi reproduces the §V-B experiment: runtime variability ψ = σ/μ (%) of
// the three parallel algorithms over repeated runs.
func Psi(cfg Config) *Table {
	cfg = cfg.defaults()
	defer cfg.obsTable("Psi")()
	reps := cfg.Reps
	if reps < 5 {
		reps = 5
	}
	t := &Table{
		Title:  fmt.Sprintf("§V-B: parallel runtime sensitivity ψ=σ/μ (%%, %d threads, %d reps)", cfg.Threads, reps),
		Header: []string{"graph", "MS-BFS-Graft", "PF", "PR"},
	}
	var sums [3]float64
	n := 0
	for _, inst := range Suite(cfg.Scale) {
		row := []string{inst.Name}
		for i, a := range []Algo{AlgoGraft, AlgoPF, AlgoPR} {
			tm := Measure(a, inst.Graph, cfg.Threads, reps)
			psi := tm.Sensitivity()
			sums[i] += psi
			row = append(row, f2(psi))
		}
		n++
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", f2(sums[0]/float64(n)), f2(sums[1]/float64(n)), f2(sums[2]/float64(n)))
	t.AddNote("paper averages: graft 6%%, PR 10%%, PF 17%%")
	return t
}
