// Package exps contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§IV–V) on the synthetic graph suite
// standing in for the University of Florida collection instances (see
// DESIGN.md for the substitution rationale and EXPERIMENTS.md for measured
// results).
package exps

import (
	"fmt"
	"sort"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
)

// Class groups instances the way Table II does.
type Class int

// The paper's three input classes (§IV-B).
const (
	// Scientific covers scientific computing and road network matrices:
	// low degree, high diameter, matching number ≈ 1.
	Scientific Class = iota
	// ScaleFree covers RMAT and citation/co-purchase/co-author graphs:
	// skewed degrees, low diameter.
	ScaleFree
	// Networks covers web crawls and hyperlink graphs with LOW matching
	// number — the class where tree grafting pays off most.
	Networks
)

// String names the class as the paper does.
func (c Class) String() string {
	switch c {
	case Scientific:
		return "scientific"
	case ScaleFree:
		return "scale-free"
	case Networks:
		return "networks"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Instance is one suite graph: a seeded synthetic stand-in for a named
// paper input.
type Instance struct {
	// Name is the paper's graph name this instance stands in for.
	Name string
	// Class is the Table II grouping.
	Class Class
	// Graph is the generated instance.
	Graph *bipartite.Graph
}

// Scale selects suite sizes. Small keeps unit tests fast; Medium is the
// default for benchmarks; Large approaches the paper's instance sizes.
type Scale int

// Suite scales.
const (
	Small Scale = iota
	Medium
	Large
)

// factor returns the linear size multiplier of a scale.
func (s Scale) factor() int32 {
	switch s {
	case Small:
		return 1
	case Medium:
		return 4
	default:
		return 16
	}
}

// scaleAdd returns the RMAT scale increment of a Scale (log2 of factor).
func (s Scale) scaleAdd() int {
	switch s {
	case Small:
		return 0
	case Medium:
		return 2
	default:
		return 4
	}
}

// Suite generates the full graph suite at the given scale. Instances are
// deterministic: the same scale always yields the same graphs.
func Suite(sc Scale) []Instance {
	f := sc.factor()
	sa := sc.scaleAdd()
	return []Instance{
		// Class 1: scientific computing & road networks. Diagonals are
		// stripped: KKT saddle-point matrices have structurally zero
		// diagonal blocks and road networks are adjacency matrices, and a
		// guaranteed diagonal would make the initializer trivially optimal.
		{"kkt_power", Scientific, gen.StripDiagonal(gen.Banded(3000*f, 4, 0.6, 101))},
		{"hugetrace", Scientific, gen.StripDiagonal(gen.Mesh(55*f, 55*f, 102))},
		{"delaunay_n24", Scientific, gen.StripDiagonal(gen.Mesh(50*f, 60*f, 103))},
		{"road_usa", Scientific, gen.StripDiagonal(gen.RoadNet(60*f, 60*f, 0.85, 104))},

		// Class 2: scale-free graphs.
		{"amazon0312", ScaleFree, gen.ScaleFree(3000*f, 3000*f, 4, 105)},
		{"cit-patents", ScaleFree, gen.ScaleFree(3500*f, 3500*f, 5, 106)},
		{"coPapersDBLP", ScaleFree, gen.ScaleFree(2500*f, 2500*f, 8, 107)},
		{"RMAT", ScaleFree, gen.RMAT(11+sa, 8, 0.57, 0.19, 0.19, 108)},

		// Class 3: web & other networks with low matching number.
		{"wikipedia", Networks, gen.WebLike(11+sa, 5, 0.35, 109)},
		{"web-Google", Networks, gen.WebLike(11+sa, 6, 0.30, 110)},
		{"wb-edu", Networks, gen.WebLike(11+sa, 7, 0.40, 111)},
		{"rank-deficient", Networks, gen.RankDeficient(4000*f, 4000*f, 1300*f, 3, 112)},
	}
}

// Fig1Suite returns the three graphs of Fig. 1 (one per class:
// kkt_power, cit-patents, wikipedia).
func Fig1Suite(sc Scale) []Instance {
	var out []Instance
	for _, inst := range Suite(sc) {
		switch inst.Name {
		case "kkt_power", "cit-patents", "wikipedia":
			out = append(out, inst)
		}
	}
	return out
}

// ByName returns the named suite instance, or false.
func ByName(sc Scale, name string) (Instance, bool) {
	for _, inst := range Suite(sc) {
		if inst.Name == name {
			return inst, true
		}
	}
	return Instance{}, false
}

// Names returns the suite instance names in order.
func Names(sc Scale) []string {
	insts := Suite(sc)
	names := make([]string, len(insts))
	for i, inst := range insts {
		names[i] = inst.Name
	}
	return names
}

// Classes returns the distinct classes in display order.
func Classes() []Class { return []Class{Scientific, ScaleFree, Networks} }

// SortByClass orders instances class-major, preserving suite order inside a
// class.
func SortByClass(insts []Instance) {
	sort.SliceStable(insts, func(i, j int) bool { return insts[i].Class < insts[j].Class })
}
