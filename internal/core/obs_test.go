package core

import (
	"testing"
	"time"

	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
)

// The stepMetricNames table is indexed by matching.Step: pin the
// correspondence so a reordering of the Step enum cannot silently relabel
// the exported breakdown.
func TestStepMetricNamesMatchSteps(t *testing.T) {
	want := map[matching.Step]string{
		matching.StepTopDown:    "graftmatch_core_step_top_down_ns_total",
		matching.StepBottomUp:   "graftmatch_core_step_bottom_up_ns_total",
		matching.StepAugment:    "graftmatch_core_step_augment_ns_total",
		matching.StepGraft:      "graftmatch_core_step_graft_ns_total",
		matching.StepStatistics: "graftmatch_core_step_statistics_ns_total",
	}
	if len(want) != matching.NumSteps {
		t.Fatalf("test covers %d steps, enum has %d", len(want), matching.NumSteps)
	}
	for step, name := range want {
		if got := stepMetricNames[step]; got != name {
			t.Errorf("stepMetricNames[%s] = %q, want %q", step, got, name)
		}
	}
}

// A run with a live recorder must export counters that agree exactly with
// the final Stats, one phase span per phase, per-step spans, and a status
// snapshot at the final phase — the substrate behind the "/metrics within
// one phase of lag" acceptance criterion.
func TestRecorderMatchesStats(t *testing.T) {
	g := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 42)
	rec := obs.New(obs.Config{Workers: 4, TraceCapacity: 4096})
	m := matching.New(g.NX(), g.NY())
	opts := FullOptions(4)
	opts.Recorder = rec
	stats := Run(g, m, opts)
	if !stats.Complete {
		t.Fatal("run incomplete")
	}

	counters := map[string]int64{
		"graftmatch_core_edges_traversed_total":  stats.EdgesTraversed,
		"graftmatch_core_phases_total":           stats.Phases,
		"graftmatch_core_augmenting_paths_total": stats.AugPaths,
		"graftmatch_core_grafts_total":           stats.Grafts,
		"graftmatch_core_rebuilds_total":         stats.Rebuilds,
	}
	for name, want := range counters {
		if got := rec.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d (stats)", name, got, want)
		}
	}
	for i := 0; i < matching.NumSteps; i++ {
		got := time.Duration(rec.Counter(stepMetricNames[i], "").Value())
		if got != stats.StepTime[i] {
			t.Errorf("%s = %s, want %s", stepMetricNames[i], got, stats.StepTime[i])
		}
	}
	levels := stats.TopDownLevels + stats.BottomUpLevels
	hist := rec.Registry().Snapshot().Histograms["graftmatch_core_frontier_size"]
	if hist.Count != levels {
		t.Errorf("frontier histogram count = %d, want %d levels", hist.Count, levels)
	}
	if resv := rec.Counter("graftmatch_queue_reservations_total", "").Value(); resv <= 0 {
		t.Errorf("queue reservations = %d, want > 0", resv)
	}

	spans, _ := rec.Tracer().Snapshot()
	var phaseSpans, stepSpans int64
	for _, s := range spans {
		if s.Cat != "core" {
			t.Errorf("unexpected span category %q", s.Cat)
		}
		if s.Name == "phase" {
			phaseSpans++
		} else {
			stepSpans++
		}
	}
	if phaseSpans != stats.Phases {
		t.Errorf("phase spans = %d, want %d", phaseSpans, stats.Phases)
	}
	if stepSpans < levels {
		t.Errorf("step spans = %d, want at least one per BFS level (%d)", stepSpans, levels)
	}

	st := rec.Status()
	if st.Phase != stats.Phases {
		t.Errorf("status phase = %d, want %d", st.Phase, stats.Phases)
	}
	if st.Cardinality != stats.FinalCardinality {
		t.Errorf("status cardinality = %d, want %d", st.Cardinality, stats.FinalCardinality)
	}
	if st.Algorithm != stats.Algorithm {
		t.Errorf("status algorithm = %q, want %q", st.Algorithm, stats.Algorithm)
	}
}

// A recorder must not perturb results: identical runs with and without one
// produce the same cardinality and phase count.
func TestRecorderDoesNotPerturbRun(t *testing.T) {
	g := gen.ER(500, 500, 2000, 7)
	base := matching.New(g.NX(), g.NY())
	baseStats := Run(g, base, FullOptions(2))

	rec := obs.New(obs.Config{Workers: 2})
	m := matching.New(g.NX(), g.NY())
	opts := FullOptions(2)
	opts.Recorder = rec
	stats := Run(g, m, opts)

	if stats.FinalCardinality != baseStats.FinalCardinality {
		t.Errorf("cardinality %d != %d", stats.FinalCardinality, baseStats.FinalCardinality)
	}
}

// TraceFrontiers output is capped per the documented bounds; a normal run
// stays uncapped and untruncated.
func TestTraceFrontiersUntruncatedOnNormalRun(t *testing.T) {
	g := gen.ER(300, 300, 900, 3)
	m := matching.New(g.NX(), g.NY())
	opts := FullOptions(2)
	opts.TraceFrontiers = true
	stats := Run(g, m, opts)
	if len(stats.FrontierTrace) == 0 {
		t.Fatal("no frontier trace recorded")
	}
	if stats.FrontierTraceTruncated {
		t.Error("normal run hit the trace cap")
	}
	if int64(len(stats.FrontierTrace)) != stats.Phases {
		t.Errorf("trace has %d phases, stats has %d", len(stats.FrontierTrace), stats.Phases)
	}
}
