package core

import (
	"context"
	"errors"
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/par"
)

// TestRunCtxCancelAtPhaseBoundary cancels from the OnPhase hook after the
// first phase: the engine must stop with the context's error, Complete
// false, and a valid partial matching no smaller than the initial one,
// which a follow-up run finishes to the uninterrupted cardinality.
func TestRunCtxCancelAtPhaseBoundary(t *testing.T) {
	g := gen.ER(400, 400, 1200, 3)
	full := matching.New(g.NX(), g.NY())
	Run(g, full, FullOptions(2))
	want := full.Cardinality()

	for _, threads := range []int{1, 2, 4} {
		m := matching.New(g.NX(), g.NY())
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts := FullOptions(threads)
		opts.OnPhase = func(phase, card int64) {
			if phase == 1 {
				cancel()
			}
		}
		stats, err := RunCtx(ctx, g, m, opts)
		if !IsCancellation(err) {
			t.Fatalf("threads=%d: err=%v, want cancellation", threads, err)
		}
		if stats.Complete {
			t.Fatalf("threads=%d: cancelled run marked complete", threads)
		}
		if err := m.Verify(g); err != nil {
			t.Fatalf("threads=%d: partial matching invalid: %v", threads, err)
		}
		if m.Cardinality() < stats.InitialCardinality {
			t.Fatalf("threads=%d: cardinality regressed: %d < %d",
				threads, m.Cardinality(), stats.InitialCardinality)
		}
		// Resume to completion: matched-stays-matched means the same
		// maximum is reached.
		stats2, err := RunCtx(context.Background(), g, m, FullOptions(threads))
		if err != nil || !stats2.Complete {
			t.Fatalf("threads=%d: resume failed: %v", threads, err)
		}
		if m.Cardinality() != want {
			t.Fatalf("threads=%d: resumed to %d, want %d", threads, m.Cardinality(), want)
		}
	}
}

// TestRunCtxPreCancelled: an already-expired context must stop the engine
// before it augments anything, leaving the input matching untouched.
func TestRunCtxPreCancelled(t *testing.T) {
	g := gen.ER(100, 100, 400, 1)
	m := matching.New(g.NX(), g.NY())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunCtx(ctx, g, m, FullOptions(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if stats.Complete || m.Cardinality() != 0 {
		t.Fatalf("pre-cancelled run did work: complete=%v |M|=%d", stats.Complete, m.Cardinality())
	}
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
}

// TestRunCtxWorkerPanic injects a panic in one top-down worker via the test
// hook: RunCtx must return it as a *par.PanicError (no crash, no deadlock)
// and Run must re-raise it.
func TestRunCtxWorkerPanic(t *testing.T) {
	g := gen.ER(400, 400, 1600, 5)
	// Panic on whichever worker claims a block first: on few-core machines
	// one worker can claim every block, so keying on a specific worker id
	// would make the fault vanish.
	TestHookWorkerFault = func(worker int) {
		panic("injected fault")
	}
	defer func() { TestHookWorkerFault = nil }()

	m := matching.New(g.NX(), g.NY())
	_, err := RunCtx(context.Background(), g, m, FullOptions(4))
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err=%v, want *par.PanicError", err)
	}
	if pe.Value != "injected fault" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
	if IsCancellation(err) {
		t.Fatal("a worker panic must not classify as cancellation")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Run must re-raise a contained worker panic")
		}
	}()
	Run(g, matching.New(g.NX(), g.NY()), FullOptions(4))
}

// TestRunCtxDeadline: a context deadline in the past behaves like
// cancellation.
func TestRunCtxDeadline(t *testing.T) {
	g := gen.ER(100, 100, 400, 2)
	m := matching.New(g.NX(), g.NY())
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	stats, err := RunCtx(ctx, g, m, FullOptions(2))
	if !errors.Is(err, context.DeadlineExceeded) || stats.Complete {
		t.Fatalf("err=%v complete=%v, want DeadlineExceeded+incomplete", err, stats.Complete)
	}
}
