package core

import (
	"fmt"
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

// checkForestInvariants verifies the structural invariants of the
// alternating BFS forest at a phase boundary (§III-B):
//
//  1. every visited Y has a parent that is a real edge and a root;
//  2. following parent/mate pointers from any visited Y reaches its root
//     along a valid alternating path, and root[] agrees along the way;
//  3. roots are unmatched X vertices (root[x] = x);
//  4. leaf[r] (when set) is an unmatched visited Y vertex in r's tree.
//
// Vertex-disjointness holds by construction (each Y has one parent slot,
// each matched X is reachable only via its unique mate), and the walk in
// (2) would diverge if it were violated.
func checkForestInvariants(t *testing.T, e *engine) {
	t.Helper()
	g := e.g
	for yi := 0; yi < int(g.NY()); yi++ {
		y := int32(yi)
		if !e.visitedTest(y) {
			if e.rootY[y] != none {
				t.Fatalf("unvisited y=%d has root %d", y, e.rootY[y])
			}
			continue
		}
		x := e.parentY[y]
		if x == none {
			t.Fatalf("visited y=%d has no parent", y)
		}
		if !g.HasEdge(x, y) {
			t.Fatalf("parent edge (%d,%d) does not exist", x, y)
		}
		root := e.rootY[y]
		if root == none {
			t.Fatalf("visited y=%d has no root", y)
		}
		// Walk y → root via parent/mate pointers, bounded by 2n hops.
		cur := y
		for hop := 0; ; hop++ {
			if hop > 2*int(g.NX())+2 {
				t.Fatalf("parent chain from y=%d does not terminate", y)
			}
			px := e.parentY[cur]
			if !g.HasEdge(px, cur) {
				t.Fatalf("chain edge (%d,%d) does not exist", px, cur)
			}
			if e.rootX[px] != root {
				t.Fatalf("root mismatch on chain from y=%d: rootX[%d]=%d, want %d", y, px, e.rootX[px], root)
			}
			if px == root {
				if e.m.MateX[px] != none {
					t.Fatalf("root %d is matched", px)
				}
				break
			}
			mateY := e.m.MateX[px]
			if mateY == none {
				t.Fatalf("interior X %d on chain from y=%d is unmatched but not the root", px, y)
			}
			if e.rootY[mateY] != root {
				t.Fatalf("mate y=%d of interior x=%d has root %d, want %d", mateY, px, e.rootY[mateY], root)
			}
			cur = mateY
		}
	}
	// Roots and leaves.
	for xi := 0; xi < int(g.NX()); xi++ {
		x := int32(xi)
		if e.m.MateX[x] == none && e.rootX[x] != none && e.rootX[x] != x {
			t.Fatalf("unmatched x=%d sits in tree rooted at %d", x, e.rootX[x])
		}
		if e.rootX[x] != x || e.m.MateX[x] != none {
			continue
		}
		if leaf := e.leaf[x]; leaf != none {
			if !e.visitedTest(leaf) {
				t.Fatalf("leaf[%d]=%d not visited", x, leaf)
			}
			if e.m.MateY[leaf] != none {
				t.Fatalf("leaf[%d]=%d is matched", x, leaf)
			}
			if e.rootY[leaf] != x {
				t.Fatalf("leaf[%d]=%d belongs to tree %d", x, leaf, e.rootY[leaf])
			}
		}
	}
}

// TestPhaseInvariants runs the engine serially with the white-box hook
// installed and validates the forest at every phase boundary, across option
// combinations and graph classes.
func TestPhaseInvariants(t *testing.T) {
	defer func() { phaseHook = nil }()

	optionCases := []struct {
		name string
		opts Options
	}{
		{"plain", Options{Threads: 1}.Defaults()},
		{"diropt", Options{Threads: 1, DirectionOptimized: true}.Defaults()},
		{"graft", Options{Threads: 1, Grafting: true}.Defaults()},
		{"full", FullOptions(1)},
	}
	bitmapFull := FullOptions(1)
	bitmapFull.VisitedBitmap = true
	optionCases = append(optionCases, struct {
		name string
		opts Options
	}{"full-bitmap", bitmapFull})

	graphCases := []struct {
		name string
		mk   func() (*bipartite.Graph, *matching.Matching)
	}{
		{"er", func() (*bipartite.Graph, *matching.Matching) {
			g := gen.ER(150, 150, 550, 41)
			return g, matchinit.Greedy(g)
		}},
		{"weblike", func() (*bipartite.Graph, *matching.Matching) {
			g := gen.WebLike(8, 5, 0.35, 42)
			return g, matchinit.Greedy(g)
		}},
		{"grid", func() (*bipartite.Graph, *matching.Matching) {
			g := gen.StripDiagonal(gen.Grid(12, 12))
			return g, matchinit.KarpSipser(g, 1)
		}},
		{"empty-init", func() (*bipartite.Graph, *matching.Matching) {
			g := gen.ScaleFree(200, 200, 4, 43)
			return g, matching.New(g.NX(), g.NY())
		}},
	}

	for _, oc := range optionCases {
		for _, gc := range graphCases {
			t.Run(fmt.Sprintf("%s/%s", oc.name, gc.name), func(t *testing.T) {
				phases := 0
				phaseHook = func(e *engine) {
					phases++
					checkForestInvariants(t, e)
				}
				defer func() { phaseHook = nil }()
				g, m := gc.mk()
				Run(g, m, oc.opts)
				if phases == 0 {
					t.Fatal("hook never fired")
				}
				if err := matching.VerifyMaximum(g, m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
