package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

// fig2Graph reconstructs the worked example of the paper's Fig. 2:
// six vertices per side (x1..x6 → 0..5), the maximal initial matching
// {(x3,y1),(x4,y2),(x5,y3),(x6,y4)}, and unmatched x1, x2, y5, y6. The
// maximum matching is perfect (6).
func fig2Graph() (*bipartite.Graph, *matching.Matching) {
	g := bipartite.MustFromEdges(6, 6, []bipartite.Edge{
		{X: 0, Y: 0}, {X: 0, Y: 1}, // x1: y1, y2
		{X: 1, Y: 1}, {X: 1, Y: 2}, // x2: y2, y3
		{X: 2, Y: 0}, {X: 2, Y: 2}, // x3: y1, y3
		{X: 3, Y: 1}, {X: 3, Y: 3}, // x4: y2, y4
		{X: 4, Y: 2}, {X: 4, Y: 4}, // x5: y3, y5
		{X: 5, Y: 3}, {X: 5, Y: 5}, // x6: y4, y6
	})
	m := matching.New(6, 6)
	m.Match(2, 0)
	m.Match(3, 1)
	m.Match(4, 2)
	m.Match(5, 3)
	return g, m
}

// allOptionCombos enumerates the four feature combinations at the given
// thread counts.
func allOptionCombos(threads ...int) []Options {
	var out []Options
	for _, p := range threads {
		for _, dirOpt := range []bool{false, true} {
			for _, graft := range []bool{false, true} {
				out = append(out, Options{Threads: p, DirectionOptimized: dirOpt, Grafting: graft}.Defaults())
			}
		}
	}
	return out
}

func TestFig2Example(t *testing.T) {
	for _, opts := range allOptionCombos(1, 4) {
		g, m := fig2Graph()
		stats := Run(g, m, opts)
		if m.Cardinality() != 6 {
			t.Fatalf("%s p=%d: cardinality %d, want 6 (perfect)", stats.Algorithm, opts.Threads, m.Cardinality())
		}
		if err := matching.VerifyMaximum(g, m); err != nil {
			t.Fatalf("%s p=%d: %v", stats.Algorithm, opts.Threads, err)
		}
		if stats.InitialCardinality != 4 {
			t.Fatalf("initial cardinality %d, want 4", stats.InitialCardinality)
		}
		if stats.AugPaths != 2 {
			t.Fatalf("augmenting paths %d, want 2 (x1 and x2 both get matched)", stats.AugPaths)
		}
	}
}

func TestFig2SerialTrace(t *testing.T) {
	// Serial MS-BFS (top-down only): phase 1 grows both trees. With our
	// deterministic claim order x1 takes y1 and y2, so both augmenting
	// paths are discovered in the first phase and the run needs exactly
	// two phases (the second finds nothing and terminates).
	g, m := fig2Graph()
	stats := Run(g, m, Options{Threads: 1}.Defaults())
	if stats.Phases != 2 {
		t.Fatalf("phases = %d, want 2", stats.Phases)
	}
	// Paths: (x2,y3,x5,y5) of length 3 and (x1,y2,x4,y4,x6,y6) of length 5.
	if stats.AugPathLen != 8 {
		t.Fatalf("total augmenting path length = %d, want 8", stats.AugPathLen)
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(5, 5, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"isolated-x", bipartite.MustFromEdges(3, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"isolated-y", bipartite.MustFromEdges(1, 3, []bipartite.Edge{{X: 0, Y: 2}}), 1},
	}
	for _, c := range cases {
		for _, opts := range allOptionCombos(1, 2) {
			m := matching.New(c.g.NX(), c.g.NY())
			Run(c.g, m, opts)
			if m.Cardinality() != c.want {
				t.Fatalf("%s: cardinality %d, want %d", c.name, m.Cardinality(), c.want)
			}
			if err := matching.VerifyMaximum(c.g, m); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
		}
	}
}

func TestAgainstHopcroftKarp(t *testing.T) {
	graphs := map[string]*bipartite.Graph{
		"er":        gen.ER(300, 300, 1200, 3),
		"er-rect":   gen.ER(500, 100, 1500, 4),
		"grid":      gen.Grid(20, 20),
		"rmat":      gen.RMAT(9, 8, 0.57, 0.19, 0.19, 5),
		"weblike":   gen.WebLike(9, 4, 0.35, 6),
		"deficient": gen.RankDeficient(400, 400, 150, 3, 7),
	}
	for name, g := range graphs {
		ref := matchinit.KarpSipser(g, 1)
		hk.Run(g, ref)
		want := ref.Cardinality()
		for _, opts := range allOptionCombos(1, 4) {
			m := matchinit.KarpSipser(g, 1)
			stats := Run(g, m, opts)
			if m.Cardinality() != want {
				t.Fatalf("%s/%s p=%d: %d, want %d", name, stats.Algorithm, opts.Threads, m.Cardinality(), want)
			}
			if err := matching.VerifyMaximum(g, m); err != nil {
				t.Fatalf("%s/%s: %v", name, stats.Algorithm, err)
			}
		}
	}
}

func TestGraftingTriggersOnLowMatchingGraphs(t *testing.T) {
	// Start from the empty matching: Karp–Sipser solves this family
	// outright, which would leave nothing for the exact phase to do.
	g := gen.WebLike(10, 4, 0.3, 1)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m, FullOptions(1))
	if stats.Grafts == 0 {
		t.Fatalf("expected grafting on a low-matching-number graph: %+v", stats)
	}
	if stats.Phases < 3 {
		t.Fatalf("expected a multi-phase run, got %d phases", stats.Phases)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionOptimizationUsesBottomUp(t *testing.T) {
	// Dense-ish graph from an empty matching: the initial frontier is all
	// of X, far larger than unvisitedY/α, so bottom-up must trigger.
	g := gen.ER(500, 500, 5000, 8)
	m := matching.New(g.NX(), g.NY())
	stats := Run(g, m, Options{Threads: 1, DirectionOptimized: true, Grafting: true}.Defaults())
	if stats.BottomUpLevels == 0 {
		t.Fatalf("direction optimization never chose bottom-up: %+v", stats)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	// And without the flag, never.
	m2 := matching.New(g.NX(), g.NY())
	stats2 := Run(g, m2, Options{Threads: 1}.Defaults())
	if stats2.BottomUpLevels != 0 {
		t.Fatalf("plain MS-BFS used bottom-up %d times", stats2.BottomUpLevels)
	}
}

func TestSerialDeterminism(t *testing.T) {
	g := gen.ER(200, 200, 800, 9)
	m1 := matchinit.KarpSipser(g, 3)
	m2 := m1.Clone()
	s1 := Run(g, m1, Options{Threads: 1, DirectionOptimized: true, Grafting: true}.Defaults())
	s2 := Run(g, m2, Options{Threads: 1, DirectionOptimized: true, Grafting: true}.Defaults())
	for i := range m1.MateX {
		if m1.MateX[i] != m2.MateX[i] {
			t.Fatal("serial runs differ")
		}
	}
	if s1.EdgesTraversed != s2.EdgesTraversed || s1.Phases != s2.Phases {
		t.Fatalf("serial stats differ: %v vs %v", s1, s2)
	}
}

func TestParallelMatchesSerialCardinality(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ER(150, 140, 600, seed)
		ms := matchinit.KarpSipser(g, seed)
		mp := ms.Clone()
		Run(g, ms, FullOptions(1))
		Run(g, mp, FullOptions(8))
		return ms.Cardinality() == mp.Cardinality() && matching.VerifyMaximum(g, mp) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierTrace(t *testing.T) {
	g := gen.ER(200, 200, 700, 10)
	m := matching.New(g.NX(), g.NY())
	unmatched := len(m.UnmatchedX(nil))
	stats := Run(g, m, Options{Threads: 1, TraceFrontiers: true}.Defaults())
	if len(stats.FrontierTrace) == 0 {
		t.Fatal("no frontier trace recorded")
	}
	if int(stats.FrontierTrace[0][0]) != unmatched {
		t.Fatalf("first frontier %d, want %d (all unmatched X)", stats.FrontierTrace[0][0], unmatched)
	}
	if int64(len(stats.FrontierTrace)) != stats.Phases {
		t.Fatalf("trace has %d phases, stats say %d", len(stats.FrontierTrace), stats.Phases)
	}
}

func TestStepTimesAccounted(t *testing.T) {
	g := gen.RankDeficient(1500, 1500, 500, 3, 12)
	m := matchinit.KarpSipser(g, 1)
	stats := Run(g, m, FullOptions(2))
	if stats.StepTime[matching.StepTopDown] == 0 && stats.StepTime[matching.StepBottomUp] == 0 {
		t.Fatal("no traversal time recorded")
	}
	if stats.StepTime[matching.StepStatistics] == 0 && stats.Phases > 1 {
		t.Fatal("no census time recorded despite multiple phases")
	}
	if stats.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[string]Options{
		"MS-BFS-Graft":            {DirectionOptimized: true, Grafting: true},
		"MS-BFS":                  {},
		"MS-BFS+DirOpt":           {DirectionOptimized: true},
		"MS-BFS+Graft(no dirOpt)": {Grafting: true},
	}
	for want, opts := range names {
		if got := algorithmName(opts); got != want {
			t.Errorf("algorithmName(%+v) = %q, want %q", opts, got, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Threads < 1 || o.Alpha != DefaultAlpha {
		t.Fatalf("defaults: %+v", o)
	}
	o2 := Options{Threads: 3, Alpha: 7}.Defaults()
	if o2.Threads != 3 || o2.Alpha != 7 {
		t.Fatalf("defaults clobbered explicit values: %+v", o2)
	}
	f := FullOptions(2)
	if !f.DirectionOptimized || !f.Grafting || f.Threads != 2 {
		t.Fatalf("FullOptions: %+v", f)
	}
}

// TestGraftVsRebuildBothExercised makes sure the suite covers both branches
// of Algorithm 7 across a spread of inputs.
func TestGraftVsRebuildBothExercised(t *testing.T) {
	var grafts, rebuilds int64
	// Grid with Karp–Sipser leaves a near-perfect matching whose few long
	// augmenting paths flip Algorithm 7 between both branches; web-like
	// graphs from scratch exercise grafting heavily.
	g1 := gen.Grid(60, 60)
	m1 := matchinit.KarpSipser(g1, 1)
	s1 := Run(g1, m1, FullOptions(1))
	grafts += s1.Grafts
	rebuilds += s1.Rebuilds
	g2 := gen.WebLike(9, 4, 0.3, 2)
	m2 := matching.New(g2.NX(), g2.NY())
	s2 := Run(g2, m2, FullOptions(1))
	grafts += s2.Grafts
	rebuilds += s2.Rebuilds
	if grafts == 0 {
		t.Error("graft branch never exercised")
	}
	if rebuilds == 0 {
		t.Error("rebuild branch never exercised")
	}
}

func TestManyThreadsSmallGraph(t *testing.T) {
	// More workers than vertices must not deadlock or crash.
	g := bipartite.MustFromEdges(2, 2, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	m := matching.New(2, 2)
	Run(g, m, FullOptions(32))
	if m.Cardinality() != 2 {
		t.Fatalf("cardinality %d, want 2", m.Cardinality())
	}
}

func TestAlphaExtremes(t *testing.T) {
	g := gen.ER(100, 100, 400, 13)
	for _, alpha := range []float64{0.5, 1, 100} {
		m := matchinit.KarpSipser(g, 1)
		stats := Run(g, m, Options{Threads: 2, Alpha: alpha, DirectionOptimized: true, Grafting: true}.Defaults())
		if err := matching.VerifyMaximum(g, m); err != nil {
			t.Fatalf("alpha=%f: %v (%v)", alpha, err, stats)
		}
	}
}

func BenchmarkTopDownOnly(b *testing.B) {
	g := gen.ER(2000, 2000, 10000, 1)
	for i := 0; i < b.N; i++ {
		m := matchinit.KarpSipser(g, 1)
		Run(g, m, Options{Threads: 1}.Defaults())
	}
}

func BenchmarkFullGraft(b *testing.B) {
	g := gen.ER(2000, 2000, 10000, 1)
	for i := 0; i < b.N; i++ {
		m := matchinit.KarpSipser(g, 1)
		Run(g, m, FullOptions(0))
	}
}

func ExampleRun() {
	g := bipartite.MustFromEdges(2, 2, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	m := matching.New(2, 2)
	Run(g, m, FullOptions(1))
	fmt.Println(m.Cardinality())
	// Output: 2
}

// TestVisitedBitmapEquivalence: the bit-vector visited representation must
// produce the same cardinality and certificate as the int32 array, serial
// and parallel, across all feature combinations.
func TestVisitedBitmapEquivalence(t *testing.T) {
	graphs := []*bipartite.Graph{
		gen.ER(300, 280, 1100, 21),
		gen.WebLike(9, 5, 0.35, 22),
		gen.Grid(15, 15),
	}
	for gi, g := range graphs {
		for _, p := range []int{1, 4} {
			a := matchinit.KarpSipser(g, 5)
			b := a.Clone()
			sa := Run(g, a, Options{Threads: p, DirectionOptimized: true, Grafting: true}.Defaults())
			ob := Options{Threads: p, DirectionOptimized: true, Grafting: true, VisitedBitmap: true}.Defaults()
			sb := Run(g, b, ob)
			if a.Cardinality() != b.Cardinality() {
				t.Fatalf("graph %d p=%d: bitmap %d vs array %d", gi, p, b.Cardinality(), a.Cardinality())
			}
			if err := matching.VerifyMaximum(g, b); err != nil {
				t.Fatalf("graph %d p=%d: %v", gi, p, err)
			}
			if p == 1 && sa.EdgesTraversed != sb.EdgesTraversed {
				t.Fatalf("serial determinism broken across representations: %d vs %d",
					sa.EdgesTraversed, sb.EdgesTraversed)
			}
		}
	}
}

// TestIdempotentRerun: running the engine on an already-maximum matching
// must terminate in one phase with zero augmentations.
func TestIdempotentRerun(t *testing.T) {
	g := gen.ER(200, 200, 800, 30)
	m := matching.New(g.NX(), g.NY())
	Run(g, m, FullOptions(2))
	before := m.Cardinality()
	s := Run(g, m, FullOptions(2))
	if s.Phases != 1 || s.AugPaths != 0 {
		t.Fatalf("rerun did work: %+v", s)
	}
	if m.Cardinality() != before {
		t.Fatal("rerun changed the matching size")
	}
}

// TestAsymmetricShapes: strongly rectangular instances in both directions.
func TestAsymmetricShapes(t *testing.T) {
	for _, c := range []struct{ nx, ny int32 }{{1000, 50}, {50, 1000}, {1, 500}, {500, 1}} {
		g := gen.ER(c.nx, c.ny, int64(c.nx)+int64(c.ny), 31)
		refM := matchinit.KarpSipser(g, 1)
		hk.Run(g, refM)
		for _, opts := range allOptionCombos(1, 4) {
			m := matchinit.KarpSipser(g, 1)
			Run(g, m, opts)
			if m.Cardinality() != refM.Cardinality() {
				t.Fatalf("%dx%d: %d, want %d", c.nx, c.ny, m.Cardinality(), refM.Cardinality())
			}
			if err := matching.VerifyMaximum(g, m); err != nil {
				t.Fatalf("%dx%d: %v", c.nx, c.ny, err)
			}
		}
	}
}

// TestAllFeatureAndRepresentationCombos: every option axis together.
func TestAllFeatureAndRepresentationCombos(t *testing.T) {
	g := gen.WebLike(8, 5, 0.3, 33)
	refM := matchinit.Greedy(g)
	hk.Run(g, refM)
	for _, p := range []int{1, 3} {
		for _, dirOpt := range []bool{false, true} {
			for _, graft := range []bool{false, true} {
				for _, bm := range []bool{false, true} {
					for _, trace := range []bool{false, true} {
						m := matchinit.Greedy(g)
						s := Run(g, m, Options{
							Threads: p, DirectionOptimized: dirOpt,
							Grafting: graft, VisitedBitmap: bm,
							TraceFrontiers: trace,
						}.Defaults())
						if m.Cardinality() != refM.Cardinality() {
							t.Fatalf("p=%d dir=%v graft=%v bm=%v: %d want %d",
								p, dirOpt, graft, bm, m.Cardinality(), refM.Cardinality())
						}
						if trace && int64(len(s.FrontierTrace)) != s.Phases {
							t.Fatalf("trace phases %d != %d", len(s.FrontierTrace), s.Phases)
						}
					}
				}
			}
		}
	}
}

// TestMatchedVerticesStayMatched: augmenting-path algorithms never unmatch
// a matched vertex (the monotonicity the correctness proof relies on).
func TestMatchedVerticesStayMatched(t *testing.T) {
	g := gen.ER(300, 300, 1000, 34)
	m := matchinit.KarpSipser(g, 7)
	matchedX := make([]bool, g.NX())
	for x, y := range m.MateX {
		matchedX[x] = y != none
	}
	Run(g, m, FullOptions(2))
	for x, was := range matchedX {
		if was && m.MateX[x] == none {
			t.Fatalf("vertex %d was unmatched by the engine", x)
		}
	}
}

// TestEdgesTraversedBounded: a phase traverses each direction of each edge
// a bounded number of times; over P phases the total is O(phases * m).
func TestEdgesTraversedBounded(t *testing.T) {
	g := gen.WebLike(9, 5, 0.35, 35)
	m := matching.New(g.NX(), g.NY())
	s := Run(g, m, FullOptions(1))
	bound := (s.Phases + s.Grafts + 1) * g.NumArcs()
	if s.EdgesTraversed > bound {
		t.Fatalf("edges traversed %d exceeds bound %d", s.EdgesTraversed, bound)
	}
}
