package core

import (
	"time"

	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
)

// stepMetricNames maps matching.Step values (in declaration order) to the
// per-step cumulative nanosecond counters, the live form of the Fig. 6
// breakdown; TestStepMetricNamesMatchSteps pins the correspondence.
var stepMetricNames = [matching.NumSteps]string{
	"graftmatch_core_step_top_down_ns_total",
	"graftmatch_core_step_bottom_up_ns_total",
	"graftmatch_core_step_augment_ns_total",
	"graftmatch_core_step_graft_ns_total",
	"graftmatch_core_step_statistics_ns_total",
}

// metrics bundles the engine's recorder handles. With a nil Recorder every
// field is nil and every use degrades to a nil check — the zero-overhead
// default pinned by the alloc benchmarks.
type metrics struct {
	rec      *obs.Recorder
	edges    *obs.Counter
	phases   *obs.Counter
	paths    *obs.Counter
	grafts   *obs.Counter
	rebuilds *obs.Counter
	steps    [matching.NumSteps]*obs.Counter
	frontier *obs.Histogram
}

func newMetrics(rec *obs.Recorder) metrics {
	m := metrics{
		rec:      rec,
		edges:    rec.Counter("graftmatch_core_edges_traversed_total", "edges examined during BFS searches (Fig. 1a)"),
		phases:   rec.Counter("graftmatch_core_phases_total", "completed search phases"),
		paths:    rec.Counter("graftmatch_core_augmenting_paths_total", "augmenting paths applied"),
		grafts:   rec.Counter("graftmatch_core_grafts_total", "phases that grafted renewable vertices onto active trees"),
		rebuilds: rec.Counter("graftmatch_core_rebuilds_total", "phases that destroyed all trees and rebuilt from unmatched X"),
		frontier: rec.Histogram("graftmatch_core_frontier_size", "frontier size at each BFS level"),
	}
	for i := range m.steps {
		m.steps[i] = rec.Counter(stepMetricNames[i], "cumulative step time in nanoseconds (Fig. 6)")
	}
	return m
}

// recordStep closes one timed step: it accumulates the Fig. 6 bucket, the
// live per-step counter, and one tracer span. Runs on the driver goroutine
// once per BFS level or phase step — never per element.
func (e *engine) recordStep(step matching.Step, name string, start time.Time, arg int64) {
	d := time.Since(start)
	e.stats.AddStep(step, d)
	e.met.steps[step].Add(0, int64(d))
	e.met.rec.Span("core", name, start, d, arg)
}
