// Package core implements the paper's contribution: the MS-BFS-Graft
// maximum cardinality matching algorithm (Algorithms 3–7) — a multi-source,
// level-synchronous alternating BFS with direction optimization and tree
// grafting — in serial and shared-memory parallel form.
//
// # Algorithm
//
// Each phase (1) grows an alternating BFS forest rooted at the unmatched X
// vertices, switching between top-down and bottom-up traversal by frontier
// size; (2) augments the matching along the vertex-disjoint augmenting
// paths found, one per renewable tree; and (3) reconstructs the next
// frontier, either by grafting Y vertices of renewable trees onto the
// surviving active trees (a bottom-up sweep over renewableY) or, when the
// renewable forest dominates, by destroying all trees and restarting from
// the unmatched X vertices. The algorithm terminates when a phase finds no
// augmenting path; Theorem 1 of the paper proves the result is maximum.
package core

import (
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

// DefaultAlpha is the direction-switch and graft-decision threshold; the
// paper found α ≈ 5 performs best for MS-BFS-Graft (§III-B).
const DefaultAlpha = 5.0

// Options configures a run of the engine. The zero value with Defaults()
// applied reproduces the full MS-BFS-Graft algorithm.
type Options struct {
	// Threads is the number of workers; 0 means GOMAXPROCS.
	Threads int

	// Alpha is the threshold α: top-down is used while
	// |F| < numUnvisitedY/α, and grafting while |activeX| > |renewableY|/α.
	// 0 means DefaultAlpha.
	Alpha float64

	// DirectionOptimized enables bottom-up traversal (Beamer et al.);
	// disabled it always traverses top-down (the MS-BFS baseline and the
	// Fig. 7 ablation).
	DirectionOptimized bool

	// Grafting enables the tree-grafting frontier reconstruction;
	// disabled, every phase restarts from the unmatched X vertices.
	Grafting bool

	// TraceFrontiers records per-level frontier sizes into
	// Stats.FrontierTrace (Fig. 8). Costs one append per level.
	TraceFrontiers bool

	// VisitedBitmap stores the Y visited flags in an atomic bit vector
	// (the paper's __sync_fetch_and_or scheme) instead of an int32 array:
	// 32x less memory traffic, more word-level contention. Results are
	// identical; see BenchmarkAblationVisited for the trade-off.
	VisitedBitmap bool

	// OnPhase, when non-nil, is invoked on the driver goroutine after every
	// completed phase (a consistent point: no parallel region is active and
	// the mate arrays form a valid matching) with the phase count and the
	// current cardinality. Cancelling a RunCtx context from the hook stops
	// the engine at this phase boundary.
	OnPhase func(phase, cardinality int64)

	// Recorder, when non-nil, receives live metrics (edges traversed,
	// per-step times, grafts/rebuilds, frontier sizes, queue reservations)
	// and one span per phase/step for the observability surface. All
	// recording happens on the driver goroutine at level/phase granularity;
	// the nil default degrades every instrumentation point to a nil check.
	Recorder *obs.Recorder

	// Sched supplies the workers for every parallel region of the run. Nil
	// means per-call goroutine fan-out (par.ForCtx and friends); a shared
	// *par.Pool lets many concurrent runs split a fixed worker budget
	// instead of each spawning its own.
	Sched par.Scheduler
}

// Defaults fills unset fields with the paper's defaults and returns the
// resulting options (full MS-BFS-Graft when both features are left enabled).
func (o Options) Defaults() Options {
	if o.Threads <= 0 {
		o.Threads = par.DefaultWorkers()
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	return o
}

// FullOptions returns Options for the complete MS-BFS-Graft algorithm with
// p threads (direction optimization and grafting enabled).
func FullOptions(p int) Options {
	return Options{Threads: p, DirectionOptimized: true, Grafting: true}.Defaults()
}
