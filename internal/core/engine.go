package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/bitmap"
	"graftmatch/internal/matching"
	"graftmatch/internal/par"
	"graftmatch/internal/queue"
)

const none = matching.None

// phaseHook, when non-nil, is invoked after every BFS forest construction
// (before augmentation). It exists solely for white-box invariant tests;
// production code must leave it nil.
var phaseHook func(*engine)

// TestHookWorkerFault, when non-nil, is invoked by every parallel top-down
// worker at the start of each block it claims. It exists solely so tests can
// inject worker panics and exercise the containment path end to end
// (par → engine → facade); production code must leave it nil.
var TestHookWorkerFault func(worker int)

// engine holds the per-run state of Algorithm 3. Array roles follow §III-B:
// visited/parent only on Y (a matched X vertex is reached via its unique
// mate), root on both parts, leaf indexed by tree root (an X vertex).
type engine struct {
	g    *bipartite.Graph
	m    *matching.Matching
	opts Options

	// ctx is the run's cancellation context, polled at phase boundaries by
	// the driver and at block granularity inside parallel regions; err
	// latches the first failure (context error or contained worker panic)
	// and is only touched by the driver goroutine.
	ctx context.Context
	err error

	// sched supplies the workers of every parallel region (never nil; the
	// spawn-per-call default when Options.Sched is unset).
	sched par.Scheduler

	visited []int32        // Y: 0 unvisited, 1 claimed by a tree this phase
	bits    *bitmap.Bitmap // Y: bit-vector alternative to visited (VisitedBitmap)
	parentY []int32        // Y: parent X vertex in its alternating tree
	rootX   []int32        // X: root of the tree containing x, or none
	rootY   []int32        // Y: root of the tree containing y, or none
	leaf    []int32        // X (roots): unmatched Y leaf ending an augmenting path

	cur, next *queue.Frontier // frontier F (X vertices) double buffer
	locals    []queue.Local

	// unvisitedY tracks |{y : visited[y]=0}| and unvisitedYEdges the total
	// degree of those vertices. The direction heuristic compares *edge*
	// counts (frontier out-degree vs unvisited in-degree), as in Beamer's
	// original direction-optimizing BFS: vertex counts systematically
	// overestimate the profitability of bottom-up on skewed graphs whose
	// unvisited side is dominated by permanently unreachable vertices.
	unvisitedY      int64
	unvisitedYEdges int64

	// census scratch queues (renewable/active Y, active X).
	renewY, activeY, activeX *queue.Frontier

	// unvisQ is the reusable collector of unvisited Y ids for bottom-up.
	unvisQ *queue.Frontier

	// bottomUpTripped disables further in-phase bottom-up traversal once a
	// sweep's adoption rate drops below 1/α. In matching phases — unlike
	// the whole-graph BFS the direction heuristic comes from — a large set
	// of permanently unreachable Y vertices can persist across phases, and
	// every bottom-up sweep rescans their entire adjacency for nothing.
	// A low-yield sweep is the signature of that regime. Grafting sweeps
	// (over renewableY, which is reachable by construction) are unaffected.
	bottomUpTripped bool

	edges      *par.Counter // edges traversed, per worker
	claims     *par.Counter // Y vertices newly claimed, per worker
	claimedDeg *par.Counter // total degree of newly claimed Y, per worker

	// Per-phase counter scratch: augment and graftStep run once per phase,
	// so their counters are Reset and reused instead of reallocated (each
	// Counter is a cache-line-padded cell per worker — a real allocation).
	paths    *par.Counter // augmenting paths flipped this phase
	lens     *par.Counter // total augmenting-path edge length this phase
	phaseDeg *par.Counter // degree sums in graftStep's reset sweeps

	stats *matching.Stats

	// met holds the live-observability handles (all nil-safe no-ops when
	// Options.Recorder is nil).
	met metrics
}

// Run executes the configured algorithm on g, updating m in place to a
// matching whose cardinality is maximum, and returns run statistics. The
// input matching must be valid (typically Karp–Sipser initialized); an
// empty matching is fine. A contained worker panic is re-raised in the
// caller; use RunCtx to receive it as an error instead.
func Run(g *bipartite.Graph, m *matching.Matching, opts Options) *matching.Stats {
	stats, err := RunCtx(context.Background(), g, m, opts)
	if err != nil {
		// Background is never cancelled, so the only possible error is a
		// contained worker panic; preserve Run's panicking contract.
		panic(err) //lint:ignore err-checked re-raising a contained worker panic is Run's documented contract
	}
	return stats
}

// RunCtx is Run under a cancellation context. The context is checked at
// phase boundaries by the driver and at block granularity inside every
// parallel region; on expiry the engine stops cleanly and m holds a valid
// partial matching that contains everything matched at the last phase
// boundary (matched vertices never become unmatched — paper Theorem 1's
// monotonicity), ready to be finished by a later run. The returned stats
// have Complete=false and err is the context's error. A contained worker
// panic is returned as a *par.PanicError.
func RunCtx(ctx context.Context, g *bipartite.Graph, m *matching.Matching, opts Options) (*matching.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.Defaults()
	nx, ny := int(g.NX()), int(g.NY())
	e := &engine{
		g:          g,
		m:          m,
		opts:       opts,
		ctx:        ctx,
		sched:      par.SchedulerOrSpawn(opts.Sched),
		parentY:    make([]int32, ny),
		rootX:      make([]int32, nx),
		rootY:      make([]int32, ny),
		leaf:       make([]int32, nx),
		cur:        queue.NewFrontier(nx),
		next:       queue.NewFrontier(nx),
		renewY:     queue.NewFrontier(ny),
		activeY:    queue.NewFrontier(ny),
		activeX:    queue.NewFrontier(nx),
		unvisQ:     queue.NewFrontier(ny),
		edges:      par.NewCounter(opts.Threads),
		claims:     par.NewCounter(opts.Threads),
		claimedDeg: par.NewCounter(opts.Threads),
		paths:      par.NewCounter(opts.Threads),
		lens:       par.NewCounter(opts.Threads),
		phaseDeg:   par.NewCounter(opts.Threads),
		stats: &matching.Stats{
			Algorithm: algorithmName(opts),
			Threads:   opts.Threads,
		},
	}
	if opts.VisitedBitmap {
		e.bits = bitmap.New(ny)
	} else {
		e.visited = make([]int32, ny)
	}
	e.locals = queue.NewLocals(opts.Threads, e.next)
	e.stats.InitialCardinality = m.Cardinality()
	e.met = newMetrics(opts.Recorder)
	qresv := opts.Recorder.Counter("graftmatch_queue_reservations_total",
		"atomic block reservations on the frontier queues")
	for _, f := range []*queue.Frontier{e.cur, e.next, e.renewY, e.activeY, e.activeX, e.unvisQ} {
		f.Instrument(qresv)
	}

	start := time.Now()
	e.run()
	e.stats.Runtime = time.Since(start)
	e.stats.FinalCardinality = m.Cardinality()
	e.stats.Complete = e.err == nil
	return e.stats, e.err
}

// pfor runs a statically scheduled cancellation-aware parallel region on the
// configured scheduler, latching the first failure; it reports whether the
// run may continue.
func (e *engine) pfor(n int, body func(worker, lo, hi int)) bool {
	if e.err != nil {
		return false
	}
	if err := e.sched.ForCtx(e.ctx, e.opts.Threads, n, body); err != nil {
		e.err = err
		return false
	}
	return true
}

// pforDyn is pfor with dynamic chunk self-scheduling.
func (e *engine) pforDyn(n, grain int, body func(worker, lo, hi int)) bool {
	if e.err != nil {
		return false
	}
	if err := e.sched.ForDynamicCtx(e.ctx, e.opts.Threads, n, grain, body); err != nil {
		e.err = err
		return false
	}
	return true
}

// stopped is the phase-boundary cancellation check.
func (e *engine) stopped() bool {
	if e.err != nil {
		return true
	}
	if err := e.ctx.Err(); err != nil {
		e.err = err
		return true
	}
	return false
}

// IsCancellation reports whether an engine error is a clean context stop
// (as opposed to a contained worker panic).
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func algorithmName(o Options) string {
	switch {
	case o.DirectionOptimized && o.Grafting:
		return "MS-BFS-Graft"
	case o.Grafting:
		return "MS-BFS+Graft(no dirOpt)"
	case o.DirectionOptimized:
		return "MS-BFS+DirOpt"
	default:
		return "MS-BFS"
	}
}

func (e *engine) run() {
	nx, ny := int(e.g.NX()), int(e.g.NY())

	if !e.pfor(ny, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.visitedClear(int32(i))
			e.rootY[i] = none
			e.parentY[i] = none
		}
	}) {
		return
	}
	if !e.pfor(nx, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.rootX[i] = none
			e.leaf[i] = none
		}
	}) {
		return
	}
	e.unvisitedY = int64(ny)
	e.unvisitedYEdges = int64(len(e.g.YNbr()))
	e.seedFrontierFromUnmatched()

	for e.err == nil {
		phaseStart := time.Now()
		var trace []int64

		// Step 1: grow the alternating BFS forest level by level. An
		// interrupted forest is simply abandoned: these steps never touch
		// the mate arrays, so the matching stays as the last phase left it.
		for e.cur.Len() > 0 && e.err == nil {
			fsize := int64(e.cur.Len())
			if e.opts.TraceFrontiers {
				if len(trace) < matching.FrontierTraceMaxLevels {
					// Ownership of the trace transfers to
					// Stats.FrontierTrace each phase, so it cannot be
					// reused scratch; opt-in diagnostics, one append per
					// BFS level, bounded by the documented cap.
					trace = append(trace, fsize) //lint:ignore hotpath-alloc per-phase trace is handed to Stats, not reusable; TraceFrontiers is off by default
				} else {
					e.stats.FrontierTraceTruncated = true
				}
			}
			e.met.frontier.Observe(0, fsize)
			if e.bottomUpTripped || e.useTopDown() {
				t := time.Now()
				e.topDown()
				e.recordStep(matching.StepTopDown, "top-down", t, fsize)
				e.stats.TopDownLevels++
			} else {
				t := time.Now()
				r := e.collectUnvisitedY()
				e.bottomUp(r)
				if float64(e.claims.Sum())*e.opts.Alpha < float64(len(r)) {
					e.bottomUpTripped = true
				}
				e.recordStep(matching.StepBottomUp, "bottom-up", t, int64(len(r)))
				e.stats.BottomUpLevels++
			}
			e.finishLevel()
		}
		if e.err != nil {
			return
		}
		if e.opts.TraceFrontiers {
			e.stats.AppendFrontierTrace(trace)
		}

		if phaseHook != nil {
			phaseHook(e)
		}

		// Step 2: augment along the discovered vertex-disjoint paths. Each
		// path flips inside one block, so an interrupted augment leaves a
		// valid matching containing every fully flipped path.
		t := time.Now()
		augmented := e.augment()
		e.recordStep(matching.StepAugment, "augment", t, augmented)
		if e.err != nil {
			return
		}

		e.stats.Phases++
		card := e.m.Cardinality()
		e.met.phases.Add(0, 1)
		e.met.rec.Span("core", "phase", phaseStart, time.Since(phaseStart), card)
		e.met.rec.PhaseDone(e.stats.Algorithm, e.stats.Phases, card)
		if e.opts.OnPhase != nil {
			e.opts.OnPhase(e.stats.Phases, card)
		}
		if augmented == 0 {
			return
		}
		if e.stopped() {
			return // phase boundary: the preferred cancellation point
		}

		// Step 3: build the next phase's frontier (graft or rebuild).
		e.graftStep()
	}
}

// seedFrontierFromUnmatched sets every unmatched X vertex as the root of a
// fresh singleton active tree and makes them the frontier.
func (e *engine) seedFrontierFromUnmatched() {
	e.cur.Reset()
	mateX := e.m.MateX
	e.pfor(len(mateX), func(w, lo, hi int) {
		l := &e.locals[w]
		l.Rebind(e.cur)
		for i := lo; i < hi; i++ {
			if mateX[i] == none {
				x := int32(i)
				e.rootX[x] = x
				e.leaf[x] = none
				l.Push(x)
			}
		}
		l.Flush()
		l.Rebind(e.next)
	})
}

// useTopDown applies the direction heuristic: top-down while the frontier's
// outgoing edge count is small relative to the edges incident to unvisited
// Y vertices (m_F < m_U/α), the edge-based form of the rule from the
// direction-optimizing BFS the paper builds on. α defaults to 5 (§III-B).
func (e *engine) useTopDown() bool {
	if !e.opts.DirectionOptimized {
		return true
	}
	if e.unvisitedY == 0 {
		return true
	}
	var mf int64
	xptr := e.g.XPtr()
	for _, x := range e.cur.Slice() {
		mf += xptr[x+1] - xptr[x]
	}
	return float64(mf) < float64(e.unvisitedYEdges)/e.opts.Alpha
}

// topDown is Algorithm 4: expand every frontier vertex of an active tree,
// claiming unvisited Y neighbors by CAS (test before CAS to avoid wasted
// atomics). Matched claims push the mate into the next frontier; unmatched
// claims record an augmenting path end in leaf[root] (benign race: the last
// writer wins and the tree keeps exactly one path).
func (e *engine) topDown() {
	if e.opts.Threads == 1 {
		e.topDownSerial()
		return
	}
	f := e.cur.Slice()
	mateY := e.m.MateY
	e.pforDyn(len(f), 64, func(w int, lo, hi int) {
		if TestHookWorkerFault != nil {
			TestHookWorkerFault(w)
		}
		l := &e.locals[w]
		var edges, claims, claimedDeg int64
		for i := lo; i < hi; i++ {
			x := f[i]
			root := e.rootX[x]
			if atomic.LoadInt32(&e.leaf[root]) != none {
				continue // tree became renewable; stop growing it
			}
			nbr := e.g.NbrX(x)
			edges += int64(len(nbr))
			for _, y := range nbr {
				if e.visitedTest(y) {
					continue
				}
				if !e.visitedTryClaim(y) {
					continue
				}
				claims++
				claimedDeg += e.g.DegY(y)
				e.parentY[y] = x
				e.rootY[y] = root
				if mate := mateY[y]; mate != none {
					e.rootX[mate] = root
					l.Push(mate)
				} else {
					atomic.StoreInt32(&e.leaf[root], y)
				}
			}
		}
		l.Flush()
		e.edges.Add(w, edges)
		e.claims.Add(w, claims)
		e.claimedDeg.Add(w, claimedDeg)
	})
}

// topDownSerial is topDown without atomics or worker fan-out — the honest
// serial baseline the paper's one-thread measurements correspond to. It
// visits frontier vertices and claims Y neighbors in deterministic order.
func (e *engine) topDownSerial() {
	f := e.cur.Slice()
	mateY := e.m.MateY
	l := &e.locals[0]
	var edges, claims, claimedDeg int64
	for _, x := range f {
		root := e.rootX[x]
		if e.leaf[root] != none {
			continue // tree became renewable; stop growing it
		}
		nbr := e.g.NbrX(x)
		edges += int64(len(nbr))
		for _, y := range nbr {
			if e.visitedTest(y) {
				continue
			}
			e.visitedSetOwned(y)
			claims++
			claimedDeg += e.g.DegY(y)
			e.parentY[y] = x
			e.rootY[y] = root
			if mate := mateY[y]; mate != none {
				e.rootX[mate] = root
				l.Push(mate)
			} else {
				e.leaf[root] = y
			}
		}
	}
	l.Flush()
	e.edges.Add(0, edges)
	e.claims.Add(0, claims)
	e.claimedDeg.Add(0, claimedDeg)
}

// collectUnvisitedY gathers the ids of unvisited Y vertices into a reusable
// buffer — the set R scanned by a regular bottom-up step.
func (e *engine) collectUnvisitedY() []int32 {
	e.unvisQ.Reset()
	e.pfor(len(e.rootY), func(w, lo, hi int) {
		var buf [256]int32
		n := 0
		for y := lo; y < hi; y++ {
			if !e.visitedTest(int32(y)) {
				if n == len(buf) {
					e.unvisQ.PushBlock(buf[:n])
					n = 0
				}
				buf[n] = int32(y)
				n++
			}
		}
		e.unvisQ.PushBlock(buf[:n])
	})
	return e.unvisQ.Slice()
}

// bottomUp is Algorithm 6: every y in R scans its neighbors and joins the
// first one found in an active tree, then stops. Each y is owned by exactly
// one worker, so visited/parent/root of y need no atomics; only the shared
// leaf[root] reads/writes and the mate push do.
func (e *engine) bottomUp(r []int32) {
	if e.opts.Threads == 1 {
		e.bottomUpSerial(r)
		return
	}
	mateY := e.m.MateY
	e.pforDyn(len(r), 64, func(w int, lo, hi int) {
		l := &e.locals[w]
		var edges, claims, claimedDeg int64
		for i := lo; i < hi; i++ {
			y := r[i]
			for _, x := range e.g.NbrY(y) {
				edges++
				// rootX is read/written atomically here because another
				// worker may concurrently adopt x's mate-chain neighbor
				// (rootX[mate] store below).
				root := atomic.LoadInt32(&e.rootX[x])
				if root == none || atomic.LoadInt32(&e.leaf[root]) != none {
					continue // x is not in an active tree
				}
				claims++
				claimedDeg += e.g.DegY(y)
				e.visitedSetOwned(y)
				e.parentY[y] = x
				e.rootY[y] = root
				if mate := mateY[y]; mate != none {
					atomic.StoreInt32(&e.rootX[mate], root)
					l.Push(mate)
				} else {
					atomic.StoreInt32(&e.leaf[root], y)
				}
				break // stop exploring neighbors of y
			}
		}
		l.Flush()
		e.edges.Add(w, edges)
		e.claims.Add(w, claims)
		e.claimedDeg.Add(w, claimedDeg)
	})
}

// bottomUpSerial is bottomUp without atomics for single-thread runs.
func (e *engine) bottomUpSerial(r []int32) {
	mateY := e.m.MateY
	l := &e.locals[0]
	var edges, claims, claimedDeg int64
	for _, y := range r {
		for _, x := range e.g.NbrY(y) {
			edges++
			root := e.rootX[x]
			if root == none || e.leaf[root] != none {
				continue // x is not in an active tree
			}
			claims++
			claimedDeg += e.g.DegY(y)
			e.visitedSetOwned(y)
			e.parentY[y] = x
			e.rootY[y] = root
			if mate := mateY[y]; mate != none {
				e.rootX[mate] = root
				l.Push(mate)
			} else {
				e.leaf[root] = y
			}
			break // stop exploring neighbors of y
		}
	}
	l.Flush()
	e.edges.Add(0, edges)
	e.claims.Add(0, claims)
	e.claimedDeg.Add(0, claimedDeg)
}

// finishLevel swaps the frontier double buffer and folds the per-worker
// counters into the running statistics.
func (e *engine) finishLevel() {
	edges := e.edges.Sum()
	e.stats.EdgesTraversed += edges
	e.met.edges.Add(0, edges)
	e.unvisitedY -= e.claims.Sum()
	e.unvisitedYEdges -= e.claimedDeg.Sum()
	e.edges.Reset()
	e.claims.Reset()
	e.claimedDeg.Reset()
	e.cur.Swap(e.next)
	e.next.Reset()
}

// augment is Step 2: for every renewable tree (root x0 with leaf[x0] set),
// walk the unique augmenting path leaf→root via parent and mate pointers,
// flipping matched and unmatched edges. Paths are vertex-disjoint across
// trees, so roots are processed in parallel.
func (e *engine) augment() int64 {
	mateX, mateY := e.m.MateX, e.m.MateY
	paths, lens := e.paths, e.lens
	paths.Reset()
	lens.Reset()
	e.pforDyn(len(mateX), 512, func(w int, lo, hi int) {
		for i := lo; i < hi; i++ {
			x0 := int32(i)
			if mateX[x0] != none || e.rootX[x0] != x0 {
				continue
			}
			y := e.leaf[x0]
			if y == none {
				continue
			}
			var edgeLen int64
			for {
				x := e.parentY[y]
				prevY := mateX[x]
				mateX[x] = y
				mateY[y] = x
				edgeLen += 2
				if x == x0 {
					break
				}
				y = prevY
			}
			paths.Add(w, 1)
			lens.Add(w, edgeLen-1) // path has 2k+1 edges for k+1 matches
		}
	})
	n := paths.Sum()
	e.stats.AugPaths += n
	e.stats.AugPathLen += lens.Sum()
	e.met.paths.Add(0, n)
	return n
}

// graftStep is Algorithm 7. It takes the census of active and renewable
// vertices (Statistics in Fig. 6), resets the renewable Y state, and either
// grafts renewableY onto the active forest bottom-up or destroys everything
// and restarts from the unmatched X vertices.
func (e *engine) graftStep() {
	// Census (lines 2–4): classify by leaf[root].
	t := time.Now()
	e.activeX.Reset()
	e.activeY.Reset()
	e.renewY.Reset()
	if !e.pfor(len(e.rootX), func(w, lo, hi int) {
		l := &e.locals[w]
		l.Rebind(e.activeX)
		for i := lo; i < hi; i++ {
			if r := e.rootX[i]; r != none && e.leaf[r] == none {
				l.Push(int32(i))
			}
		}
		l.Flush()
		l.Rebind(e.next)
	}) {
		return
	}
	if !e.pfor(len(e.rootY), func(w, lo, hi int) {
		var act, ren [256]int32
		na, nr := 0, 0
		for i := lo; i < hi; i++ {
			r := e.rootY[i]
			if r == none {
				continue
			}
			if e.leaf[r] == none {
				if na == len(act) {
					e.activeY.PushBlock(act[:na])
					na = 0
				}
				act[na] = int32(i)
				na++
			} else {
				if nr == len(ren) {
					e.renewY.PushBlock(ren[:nr])
					nr = 0
				}
				ren[nr] = int32(i)
				nr++
			}
		}
		e.activeY.PushBlock(act[:na])
		e.renewY.PushBlock(ren[:nr])
	}) {
		return
	}
	e.recordStep(matching.StepStatistics, "statistics", t, int64(e.renewY.Len()))

	// Reset renewable Y state so those vertices can be reused (lines 6–7).
	t = time.Now()
	renewable := e.renewY.Slice()
	renewDeg := e.phaseDeg
	renewDeg.Reset()
	if !e.pfor(len(renewable), func(w, lo, hi int) {
		var deg int64
		for i := lo; i < hi; i++ {
			y := renewable[i]
			e.visitedClear(y)
			e.rootY[y] = none
			e.parentY[y] = none
			deg += e.g.DegY(y)
		}
		renewDeg.Add(w, deg)
	}) {
		return
	}
	e.unvisitedY += int64(len(renewable))
	e.unvisitedYEdges += renewDeg.Sum()

	if e.opts.Grafting && float64(e.activeX.Len()) > float64(len(renewable))/e.opts.Alpha {
		// Graft renewable Y vertices onto active trees (line 9).
		e.next.Reset()
		e.bottomUp(renewable)
		if e.err != nil {
			return
		}
		e.finishLevel()
		e.stats.Grafts++
		e.met.grafts.Add(0, 1)
		e.recordStep(matching.StepGraft, "graft", t, int64(len(renewable)))
		return
	}

	// Regrow from scratch (lines 11–15): clear active forest state and
	// restart from the unmatched X vertices.
	active := e.activeY.Slice()
	activeDeg := e.phaseDeg
	activeDeg.Reset()
	if !e.pfor(len(active), func(w, lo, hi int) {
		var deg int64
		for i := lo; i < hi; i++ {
			y := active[i]
			e.visitedClear(y)
			e.rootY[y] = none
			e.parentY[y] = none
			deg += e.g.DegY(y)
		}
		activeDeg.Add(w, deg)
	}) {
		return
	}
	e.unvisitedY += int64(len(active))
	e.unvisitedYEdges += activeDeg.Sum()
	ax := e.activeX.Slice()
	if !e.pfor(len(ax), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.rootX[ax[i]] = none
		}
	}) {
		return
	}
	e.seedFrontierFromUnmatched()
	e.stats.Rebuilds++
	e.met.rebuilds.Add(0, 1)
	e.recordStep(matching.StepGraft, "rebuild", t, int64(len(active)))
}

// visitedTest reports whether y is claimed, using whichever visited
// representation the run was configured with.
func (e *engine) visitedTest(y int32) bool {
	if e.bits != nil {
		return e.bits.Test(y)
	}
	return atomic.LoadInt32(&e.visited[y]) != 0
}

// visitedTryClaim atomically claims y, reporting whether this caller won.
func (e *engine) visitedTryClaim(y int32) bool {
	if e.bits != nil {
		return e.bits.TestAndSet(y)
	}
	return atomic.CompareAndSwapInt32(&e.visited[y], 0, 1)
}

// visitedSetOwned marks y claimed from a context that owns y exclusively
// (bottom-up, where each y is processed by one worker).
func (e *engine) visitedSetOwned(y int32) {
	if e.bits != nil {
		e.bits.Set(y)
		return
	}
	e.visited[y] = 1
}

// visitedClear unclaims y at a phase barrier.
func (e *engine) visitedClear(y int32) {
	if e.bits != nil {
		e.bits.Clear(y)
		return
	}
	e.visited[y] = 0
}
