package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			seen := make([]int32, n)
			For(p, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestForDynamicCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		for _, grain := range []int{0, 1, 3, 64, 1000} {
			n := 777
			seen := make([]int32, n)
			ForDynamic(p, n, grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d grain=%d: index %d covered %d times", p, grain, i, c)
				}
			}
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	p := 4
	n := 1000
	var used [4]int32
	For(p, n, func(w, lo, hi int) {
		if w < 0 || w >= p {
			t.Errorf("worker id %d out of range", w)
			return
		}
		atomic.AddInt32(&used[w], 1)
	})
	for w, c := range used {
		if c != 1 {
			t.Fatalf("worker %d ran %d block(s), want 1", w, c)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(_, _, _ int) { ran = true })
	For(4, -5, func(_, _, _ int) { ran = true })
	ForDynamic(4, 0, 8, func(_, _, _ int) { ran = true })
	if ran {
		t.Fatal("body ran for empty range")
	}
}

func TestForDefaultWorkers(t *testing.T) {
	// p <= 0 must fall back to GOMAXPROCS and still cover the range.
	n := 50
	var sum atomic.Int64
	For(0, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestRun(t *testing.T) {
	var count atomic.Int32
	Run(7, func(w int) {
		if w < 0 || w >= 7 {
			t.Errorf("worker id %d", w)
		}
		count.Add(1)
	})
	if count.Load() != 7 {
		t.Fatalf("ran %d workers, want 7", count.Load())
	}
	// Serial path.
	count.Store(0)
	Run(1, func(int) { count.Add(1) })
	if count.Load() != 1 {
		t.Fatalf("serial Run ran %d times", count.Load())
	}
}

func TestCounter(t *testing.T) {
	p := 8
	c := NewCounter(p)
	Run(p, func(w int) {
		for i := 0; i < 1000; i++ {
			c.Add(w, 1)
		}
	})
	if c.Sum() != 8000 {
		t.Fatalf("sum = %d, want 8000", c.Sum())
	}
	c.Reset()
	if c.Sum() != 0 {
		t.Fatalf("sum after reset = %d", c.Sum())
	}
}

// TestForSumProperty: parallel block sum equals serial sum for arbitrary
// p and n.
func TestForSumProperty(t *testing.T) {
	f := func(pRaw, nRaw uint16) bool {
		p := int(pRaw%16) + 1
		n := int(nRaw % 5000)
		var sum atomic.Int64
		For(p, n, func(_, lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		return sum.Load() == int64(n)*int64(n-1)/2 || n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClampWorkers(t *testing.T) {
	if clampWorkers(0) < 1 || clampWorkers(-3) < 1 {
		t.Fatal("clamp must return at least 1")
	}
	if clampWorkers(5) != 5 {
		t.Fatal("clamp must preserve positive values")
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
