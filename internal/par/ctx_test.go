package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCtxCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 100, 10000} {
			seen := make([]int32, n)
			if err := ForCtx(context.Background(), p, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			}); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestForDynamicCtxCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		for _, grain := range []int{0, 1, 3, 64, 1000} {
			n := 777
			seen := make([]int32, n)
			if err := ForDynamicCtx(context.Background(), p, n, grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			}); err != nil {
				t.Fatalf("p=%d grain=%d: %v", p, grain, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("p=%d grain=%d: index %d covered %d times", p, grain, i, c)
				}
			}
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	body := func(_, lo, hi int) { ran.Add(int32(hi - lo)) }
	if err := ForCtx(ctx, 4, 100000, body); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx error = %v, want context.Canceled", err)
	}
	if err := ForDynamicCtx(ctx, 4, 100000, 64, body); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForDynamicCtx error = %v, want context.Canceled", err)
	}
	if err := RunCtx(ctx, 4, func(int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran under a pre-cancelled context", ran.Load())
	}
}

// TestForCtxCancelStopsAtBlockBoundary: a cancellation raised inside a block
// stops the same worker from claiming its next block, so strictly less than
// the full range runs. The first block always completes (blocks are never
// interrupted mid-body).
func TestForCtxCancelStopsAtBlockBoundary(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n := 10 * ctxGrain
		ctx, cancel := context.WithCancel(context.Background())
		var covered atomic.Int64
		err := ForCtx(ctx, p, n, func(_, lo, hi int) {
			if lo == 0 {
				cancel() // the worker owning block 0 cancels mid-region
			}
			covered.Add(int64(hi - lo))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: error = %v, want context.Canceled", p, err)
		}
		// The cancelling worker owns at least two blocks and must skip the
		// later ones; workers never abandon an in-flight block.
		if c := covered.Load(); c == 0 || c >= int64(n) {
			t.Fatalf("p=%d: covered %d of %d, want partial coverage", p, c, n)
		}
		cancel()
	}
}

func TestForDynamicCtxCancelStopsClaims(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n := 1 << 16
		ctx, cancel := context.WithCancel(context.Background())
		var covered atomic.Int64
		err := ForDynamicCtx(ctx, p, n, 64, func(_, lo, hi int) {
			if lo == 0 {
				cancel()
			}
			covered.Add(int64(hi - lo))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: error = %v, want context.Canceled", p, err)
		}
		if c := covered.Load(); c == 0 || c >= int64(n) {
			t.Fatalf("p=%d: covered %d of %d, want partial coverage", p, c, n)
		}
		cancel()
	}
}

// TestForCtxPanicContainment: one worker of a multi-worker region panics;
// the region must drain (no deadlock, no crash) and surface a *PanicError.
func TestForCtxPanicContainment(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		n := 4 * ctxGrain
		err := ForCtx(context.Background(), p, n, func(_, lo, hi int) {
			if lo <= ctxGrain && ctxGrain < hi || lo == ctxGrain {
				panic("boom")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: error = %v, want *PanicError", p, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("p=%d: panic value = %v", p, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("p=%d: panic stack not captured", p)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("p=%d: error text %q does not name the panic", p, pe.Error())
		}
	}
}

func TestForDynamicCtxPanicContainment(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		err := ForDynamicCtx(context.Background(), p, 4096, 16, func(_, lo, _ int) {
			if lo == 256 {
				panic(errors.New("kaput"))
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: error = %v, want *PanicError", p, err)
		}
	}
}

func TestRunCtxPanicContainment(t *testing.T) {
	var others atomic.Int32
	err := RunCtx(context.Background(), 6, func(w int) {
		if w == 3 {
			panic("worker 3 down")
		}
		others.Add(1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	if others.Load() != 5 {
		t.Fatalf("%d healthy workers completed, want 5", others.Load())
	}
}

// TestPanicWinsOverCancellation: when a region both observes cancellation
// and suffers a panic, the panic (the more informative failure) is reported.
func TestPanicWinsOverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForDynamicCtx(ctx, 4, 1<<14, 16, func(_, lo, _ int) {
		if lo == 0 {
			cancel()
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *PanicError", err)
	}
	cancel()
}

// TestForRepanicsInCaller: the non-ctx variants contain worker panics and
// re-raise them in the caller's goroutine as a *PanicError — the WaitGroup
// join must complete first (no deadlock, no leaked workers).
func TestForRepanicsInCaller(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatalf("%s: expected re-panic", name)
			}
			pe, ok := v.(*PanicError)
			if !ok {
				t.Fatalf("%s: panic value %T, want *PanicError", name, v)
			}
			if pe.Value != "boom" {
				t.Fatalf("%s: wrapped value = %v", name, pe.Value)
			}
		}()
		f()
	}
	check("For", func() {
		For(4, 1000, func(_, lo, _ int) {
			if lo == 0 {
				panic("boom")
			}
		})
	})
	check("ForDynamic", func() {
		ForDynamic(4, 1000, 8, func(_, lo, _ int) {
			if lo == 0 {
				panic("boom")
			}
		})
	})
	check("Run", func() {
		Run(4, func(w int) {
			if w == 0 {
				panic("boom")
			}
		})
	})
}

func TestRunCtxCompletes(t *testing.T) {
	var count atomic.Int32
	if err := RunCtx(context.Background(), 7, func(int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 7 {
		t.Fatalf("ran %d workers, want 7", count.Load())
	}
}

func TestForCtxNilContext(t *testing.T) {
	var sum atomic.Int64
	if err := ForCtx(nil, 3, 100, func(_, lo, hi int) { //nolint:staticcheck // nil means Background by contract
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
