package par

import "testing"

func BenchmarkForStatic(b *testing.B) {
	c := NewCounter(4)
	for i := 0; i < b.N; i++ {
		For(4, 1<<16, func(w, lo, hi int) {
			var s int64
			for j := lo; j < hi; j++ {
				s += int64(j)
			}
			c.Add(w, s)
		})
	}
}

func BenchmarkForDynamic(b *testing.B) {
	c := NewCounter(4)
	for i := 0; i < b.N; i++ {
		ForDynamic(4, 1<<16, 1024, func(w, lo, hi int) {
			var s int64
			for j := lo; j < hi; j++ {
				s += int64(j)
			}
			c.Add(w, s)
		})
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}
