package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// Scheduler abstracts where the workers of a parallel region come from. The
// package-level ForCtx/ForDynamicCtx spawn fresh goroutines per call — the
// right default for a single run that owns the machine. A Pool implements the
// same contract over a fixed set of resident workers shared by many
// concurrent runs, which is what a server needs: total parallelism stays
// bounded at the pool size no matter how many requests are in flight, instead
// of every request fanning out GOMAXPROCS goroutines of its own.
//
// Both methods keep the ForCtx/ForDynamicCtx contract exactly: body is
// invoked with a region-local worker id in [0, p), every invocation of a
// given id is sequential, bodies are never interrupted mid-block, and the
// return value is nil on completion, the context's error on cancellation, or
// a *PanicError for a contained worker panic.
type Scheduler interface {
	ForCtx(ctx context.Context, p, n int, body func(worker, lo, hi int)) error
	ForDynamicCtx(ctx context.Context, p, n, grain int, body func(worker, lo, hi int)) error
}

// spawnScheduler is the default Scheduler: per-call goroutine fan-out via the
// package-level primitives.
type spawnScheduler struct{}

func (spawnScheduler) ForCtx(ctx context.Context, p, n int, body func(worker, lo, hi int)) error {
	return ForCtx(ctx, p, n, body)
}

func (spawnScheduler) ForDynamicCtx(ctx context.Context, p, n, grain int, body func(worker, lo, hi int)) error {
	return ForDynamicCtx(ctx, p, n, grain, body)
}

// SchedulerOrSpawn returns s, or the default goroutine-spawning scheduler
// when s is nil — the seam every engine routes its parallel regions through.
func SchedulerOrSpawn(s Scheduler) Scheduler {
	if s == nil {
		return spawnScheduler{}
	}
	return s
}

// Pool is a Scheduler backed by a fixed set of resident worker goroutines.
// Regions submitted by concurrent callers interleave on the same workers, so
// a process serving many simultaneous runs keeps its total compute
// parallelism at the pool size instead of multiplying it per request.
//
// Deadlock freedom: a region never *requires* a pool worker. The caller runs
// one slice of every region inline; a slice that cannot be enqueued (pool
// saturated or closed) runs inline on the caller; and once the caller
// finishes its own slice it steals back any of its slices the pool has not
// started yet (each slice carries a claim flag, so pool and caller race for
// it with a CAS and exactly one side runs it). A region therefore only ever
// waits on slices that are actively executing on a resident worker. Under
// overload execution degrades toward serial on the submitting goroutine —
// graceful degradation rather than queue collapse — and a closed or wedged
// pool still completes every region handed to it. This only works because
// region slices are independent (the ForCtx/ForDynamicCtx contract): a slice
// never blocks waiting for a sibling slice.
type Pool struct {
	workers int
	tasks   chan func()
	stop    chan struct{} // closed by Close after the closed flag is set
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed against concurrent submit/Close
	closed bool

	// queued counts tasks handed to the pool and not yet started; it lets
	// callers observe backlog (e.g. for admission decisions).
	queued atomic.Int64
}

// NewPool starts a pool of `workers` resident workers (0 means
// DefaultWorkers). Close it when done.
func NewPool(workers int) *Pool {
	workers = clampWorkers(workers)
	p := &Pool{
		workers: workers,
		// The buffer absorbs a burst of region slices without blocking
		// submitters; beyond it, slices run inline on their caller.
		tasks: make(chan func(), 4*workers),
		stop:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.queued.Add(-1)
			t()
		case <-p.stop:
			// Drain tasks enqueued before Close flipped the flag; no new
			// sends can arrive (submit checks closed under the lock).
			for {
				select {
				case t := <-p.tasks:
					p.queued.Add(-1)
					t()
				default:
					return
				}
			}
		}
	}
}

// Workers returns the pool's resident worker count.
func (p *Pool) Workers() int { return p.workers }

// Backlog returns the number of submitted slices not yet started — a cheap
// saturation signal for admission controllers.
func (p *Pool) Backlog() int { return int(p.queued.Load()) }

// Close stops the resident workers after the tasks already submitted have
// run. Regions submitted after Close still complete, executed inline on
// their callers. Close is idempotent and safe to call concurrently with
// submissions.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	p.mu.Unlock()
	p.wg.Wait()
}

// poolTask is one region slice handed to the pool. The claim flag arbitrates
// the race between a resident worker picking it off the queue and the
// submitting caller stealing it back: exactly one side wins the CAS and runs
// it, the other skips.
type poolTask struct {
	claimed atomic.Bool
	run     func()
}

// exec runs the task if this call wins the claim.
func (t *poolTask) exec() {
	if t.claimed.CompareAndSwap(false, true) {
		t.run()
	}
}

// submit hands t to a resident worker, or reports false when the caller must
// run it inline (pool saturated or closed). Never blocks.
func (p *Pool) submit(t *poolTask) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- t.exec:
		p.queued.Add(1)
		return true
	default:
		return false
	}
}

// region tracks the slices a ForCtx/ForDynamicCtx call handed to the pool so
// the caller can steal back the unstarted ones.
type region struct {
	wg        sync.WaitGroup
	submitted []*poolTask
}

// launch wraps run in a poolTask and either enqueues it or executes it
// inline when the pool will not take it.
func (r *region) launch(p *Pool, run func()) {
	r.wg.Add(1)
	t := &poolTask{run: func() {
		defer r.wg.Done()
		run()
	}}
	if p.submit(t) {
		r.submitted = append(r.submitted, t)
		return
	}
	t.exec() // saturated or closed: degrade to inline execution
}

// finish steals back every slice the pool has not started (the WaitGroup
// entries of stolen slices are released by exec) and then waits for the
// slices a resident worker did start. After finish, the region only ever
// waited on slices that were actively running.
func (r *region) finish() {
	for _, t := range r.submitted {
		t.exec()
	}
	r.wg.Wait()
}

// ForCtx implements Scheduler over the resident workers with the same
// static contiguous-block split as the package-level ForCtx. The caller's
// goroutine always executes the last slice itself, then steals back any
// unstarted sibling slices.
func (p *Pool) ForCtx(ctx context.Context, pp, n int, body func(worker, lo, hi int)) error {
	pp = clampWorkers(pp)
	if n <= 0 {
		return nil
	}
	if pp > n {
		pp = n
	}
	g := newGate(ctx)
	if pp == 1 {
		runBlocked(g, 0, 0, n, ctxGrain, body)
		return g.err()
	}
	r := &region{submitted: make([]*poolTask, 0, pp-1)}
	chunk := n / pp
	rem := n % pp
	lo := 0
	last := 0
	for w := 0; w < pp; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		if w == pp-1 {
			last = lo
			break
		}
		sw, slo, shi := w, lo, hi
		r.launch(p, func() { runBlocked(g, sw, slo, shi, ctxGrain, body) })
		lo = hi
	}
	// Caller-runs slice: guarantees region progress even when every
	// resident worker is busy with other regions.
	runBlocked(g, pp-1, last, n, ctxGrain, body)
	r.finish()
	return g.err()
}

// ForDynamicCtx implements Scheduler with dynamic chunk self-scheduling over
// the resident workers; slices claim chunks from a shared cursor exactly like
// the package-level ForDynamicCtx.
func (p *Pool) ForDynamicCtx(ctx context.Context, pp, n, grain int, body func(worker, lo, hi int)) error {
	pp = clampWorkers(pp)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	g := newGate(ctx)
	if pp == 1 {
		runBlocked(g, 0, 0, n, grain, body)
		return g.err()
	}
	cursor := new(atomic.Int64)
	claim := func(w int) {
		defer g.guard()
		for !g.stopped() {
			lo := cursor.Add(int64(grain)) - int64(grain)
			if lo >= int64(n) {
				return
			}
			hi := min(lo+int64(grain), int64(n))
			body(w, int(lo), int(hi))
		}
	}
	r := &region{submitted: make([]*poolTask, 0, pp-1)}
	for w := 0; w < pp-1; w++ {
		w := w
		r.launch(p, func() { claim(w) })
	}
	claim(pp - 1) // caller-runs slice
	r.finish()
	return g.err()
}
