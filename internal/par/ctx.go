package par

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a worker of a parallel region. The
// region's remaining workers are drained and the first panic is surfaced to
// the caller — as the error of a *Ctx variant, or re-panicked in the caller's
// goroutine by For/ForDynamic/Run — instead of crashing the process from an
// unrecoverable goroutine or hanging the region's WaitGroup.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking worker, captured at recovery
}

func (e *PanicError) Error() string { return fmt.Sprintf("par: worker panic: %v", e.Value) }

// ctxGrain is the iteration granularity at which statically scheduled
// context-aware regions poll for cancellation: large enough that the
// per-block atomic load is invisible next to the block's work, small enough
// that cancellation latency stays in the microsecond range.
const ctxGrain = 4096

// gate coordinates early stop across the workers of one parallel region:
// a worker panic or an expired context flips stop, and workers cease
// claiming blocks at the next check.
type gate struct {
	ctx  context.Context
	stop atomic.Bool
	mu   sync.Mutex
	perr *PanicError
	cerr error
}

func newGate(ctx context.Context) *gate {
	if ctx == nil {
		ctx = context.Background()
	}
	return &gate{ctx: ctx}
}

// stopped reports whether workers must stop claiming blocks, latching the
// context error on the first observation of an expired context.
func (g *gate) stopped() bool {
	if g.stop.Load() {
		return true
	}
	select {
	case <-g.ctx.Done():
		g.mu.Lock()
		if g.cerr == nil {
			g.cerr = g.ctx.Err()
		}
		g.mu.Unlock()
		g.stop.Store(true)
		return true
	default:
		return false
	}
}

// guard recovers a worker panic into the gate; call via defer at worker entry.
func (g *gate) guard() {
	if v := recover(); v != nil {
		pe := &PanicError{Value: v, Stack: debug.Stack()}
		g.mu.Lock()
		if g.perr == nil {
			g.perr = pe
		}
		g.mu.Unlock()
		g.stop.Store(true)
	}
}

// err returns the region's outcome after the join: a worker panic takes
// precedence over cancellation, and nil means the region ran to completion.
func (g *gate) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.perr != nil {
		return g.perr
	}
	return g.cerr
}

// ForCtx is For with cooperative cancellation and panic containment: workers
// poll ctx between blocks of at most ctxGrain iterations and stop claiming
// new blocks once it expires or a sibling panics. Blocks are never
// interrupted mid-body, so any invariant that holds at body boundaries holds
// when ForCtx returns. It returns nil on completion, the context's error on
// cancellation, or a *PanicError wrapping the first worker panic (which wins
// over cancellation); in every case all workers have exited.
func ForCtx(ctx context.Context, p int, n int, body func(worker, lo, hi int)) error {
	p = clampWorkers(p)
	if n <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	g := newGate(ctx)
	if p == 1 {
		runBlocked(g, 0, 0, n, ctxGrain, body)
		return g.err()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	chunk := n / p
	rem := n % p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			runBlocked(g, w, lo, hi, ctxGrain, body)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	return g.err()
}

// runBlocked executes body over [lo, hi) in sub-blocks of at most grain
// iterations, checking the gate between blocks and containing panics.
func runBlocked(g *gate, w, lo, hi, grain int, body func(worker, lo, hi int)) {
	defer g.guard()
	for s := lo; s < hi; s += grain {
		if g.stopped() {
			return
		}
		body(w, s, min(s+grain, hi))
	}
}

// ForDynamicCtx is ForDynamic with cooperative cancellation and panic
// containment, with the same contract as ForCtx: the gate is checked before
// every chunk claim, and an in-flight chunk always completes.
func ForDynamicCtx(ctx context.Context, p int, n int, grain int, body func(worker, lo, hi int)) error {
	p = clampWorkers(p)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	g := newGate(ctx)
	if p == 1 {
		runBlocked(g, 0, 0, n, grain, body)
		return g.err()
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer g.guard()
			for !g.stopped() {
				lo := cursor.Add(int64(grain)) - int64(grain)
				if lo >= int64(n) {
					return
				}
				hi := min(lo+int64(grain), int64(n))
				body(w, int(lo), int(hi))
			}
		}(w)
	}
	wg.Wait()
	return g.err()
}

// RunCtx is Run with panic containment: a panicking worker becomes a
// *PanicError after every other worker finishes. Cancellation is cooperative
// — bodies are opaque to RunCtx, so it only refuses to launch when ctx is
// already expired and reports the context error observed by that check;
// long-running bodies must watch ctx themselves.
func RunCtx(ctx context.Context, p int, body func(worker int)) error {
	p = clampWorkers(p)
	g := newGate(ctx)
	if g.stopped() {
		return g.err()
	}
	if p == 1 {
		func() {
			defer g.guard()
			body(0)
		}()
		return g.err()
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer g.guard()
			body(w)
		}(w)
	}
	wg.Wait()
	return g.err()
}
