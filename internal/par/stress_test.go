package par

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// stressSeeds are the fixed seeds each stress run cycles through: a seeded
// per-worker PRNG injects runtime.Gosched at reproducible program points, so
// -race explores perturbed interleavings without making failures flaky.
var stressSeeds = []int64{3, 11, 99, 4096}

func gosched(rng *rand.Rand) {
	if rng.Intn(8) == 0 {
		runtime.Gosched()
	}
}

// markOnce records that iteration i ran, failing the test through the
// returned checker if any iteration ran twice or not at all.
type markOnce struct {
	marks []atomic.Int32
}

func newMarkOnce(n int) *markOnce { return &markOnce{marks: make([]atomic.Int32, n)} }

func (m *markOnce) hit(t *testing.T, i int) {
	if m.marks[i].Add(1) != 1 {
		t.Errorf("iteration %d executed more than once", i)
	}
}

func (m *markOnce) verifyAll(t *testing.T) {
	t.Helper()
	for i := range m.marks {
		if got := m.marks[i].Load(); got != 1 {
			t.Errorf("iteration %d executed %d times, want 1", i, got)
		}
	}
}

// TestStressForExactlyOnce runs For under Gosched perturbation and checks
// every iteration executes exactly once and Counter sums stay exact.
func TestStressForExactlyOnce(t *testing.T) {
	const (
		p = 8
		n = 100_000
	)
	for _, seed := range stressSeeds {
		m := newMarkOnce(n)
		c := NewCounter(p)
		For(p, n, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := lo; i < hi; i++ {
				m.hit(t, i)
				c.Add(w, 1)
				if i%512 == 0 {
					gosched(rng)
				}
			}
		})
		m.verifyAll(t)
		if got := c.Sum(); got != n {
			t.Errorf("seed %d: Counter.Sum() = %d, want %d", seed, got, n)
		}
	}
}

// TestStressForDynamicExactlyOnce does the same for the self-scheduling
// loop, where a racy cursor would hand one chunk to two workers.
func TestStressForDynamicExactlyOnce(t *testing.T) {
	const (
		p     = 8
		n     = 50_000
		grain = 37 // deliberately ragged so the last chunk is partial
	)
	for _, seed := range stressSeeds {
		m := newMarkOnce(n)
		c := NewCounter(p)
		ForDynamic(p, n, grain, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed ^ int64(lo)))
			for i := lo; i < hi; i++ {
				m.hit(t, i)
				c.Add(w, 1)
			}
			gosched(rng)
		})
		m.verifyAll(t)
		if got := c.Sum(); got != n {
			t.Errorf("seed %d: Counter.Sum() = %d, want %d", seed, got, n)
		}
	}
}

// TestStressForCtxExactlyOnce verifies the context-aware loop keeps the
// exactly-once contract when the context never expires.
func TestStressForCtxExactlyOnce(t *testing.T) {
	const (
		p = 8
		n = 100_000
	)
	for _, seed := range stressSeeds {
		m := newMarkOnce(n)
		err := ForCtx(context.Background(), p, n, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := lo; i < hi; i++ {
				m.hit(t, i)
			}
			gosched(rng)
		})
		if err != nil {
			t.Fatalf("seed %d: ForCtx = %v", seed, err)
		}
		m.verifyAll(t)
	}
}

// TestStressForCtxCancelMidRun cancels while workers are mid-region and
// checks the at-most-once half of the contract plus error reporting: no
// iteration runs twice, and after the cancellation block boundary no new
// blocks start.
func TestStressForCtxCancelMidRun(t *testing.T) {
	const (
		p = 8
		n = 1 << 20
	)
	for _, seed := range stressSeeds {
		ctx, cancel := context.WithCancel(context.Background())
		marks := make([]atomic.Int32, n)
		var done atomic.Int64
		err := ForCtx(ctx, p, n, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := lo; i < hi; i++ {
				if marks[i].Add(1) != 1 {
					t.Errorf("iteration %d executed more than once", i)
				}
			}
			if done.Add(int64(hi-lo)) > n/8 {
				cancel()
			}
			gosched(rng)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: ForCtx = %v, want context.Canceled", seed, err)
		}
		executed := done.Load()
		if executed == 0 || executed == n {
			t.Errorf("seed %d: executed %d of %d iterations; cancellation should land mid-run", seed, executed, n)
		}
	}
}

// TestStressForDynamicCtxCancel is the dynamic-scheduling analogue: workers
// must stop claiming chunks after cancellation and in-flight chunks complete.
func TestStressForDynamicCtxCancel(t *testing.T) {
	const (
		p     = 8
		n     = 1 << 19
		grain = 64
	)
	for _, seed := range stressSeeds {
		ctx, cancel := context.WithCancel(context.Background())
		marks := make([]atomic.Int32, n)
		var done atomic.Int64
		err := ForDynamicCtx(ctx, p, n, grain, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed ^ int64(lo)))
			for i := lo; i < hi; i++ {
				if marks[i].Add(1) != 1 {
					t.Errorf("iteration %d executed more than once", i)
				}
			}
			if done.Add(int64(hi-lo)) > n/8 {
				cancel()
			}
			gosched(rng)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: ForDynamicCtx = %v, want context.Canceled", seed, err)
		}
		if executed := done.Load(); executed == 0 || executed == n {
			t.Errorf("seed %d: executed %d of %d iterations; cancellation should land mid-run", seed, executed, n)
		}
	}
}

// TestStressRunCtxWorkersExactlyOnce checks RunCtx launches each worker id
// exactly once and Counter totals survive the perturbed interleaving.
func TestStressRunCtxWorkersExactlyOnce(t *testing.T) {
	const (
		p      = 8
		perWkr = 10_000
	)
	for _, seed := range stressSeeds {
		started := make([]atomic.Int32, p)
		c := NewCounter(p)
		err := RunCtx(context.Background(), p, func(w int) {
			if started[w].Add(1) != 1 {
				t.Errorf("worker %d launched more than once", w)
			}
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < perWkr; i++ {
				c.Add(w, 1)
				if i%256 == 0 {
					gosched(rng)
				}
			}
		})
		if err != nil {
			t.Fatalf("seed %d: RunCtx = %v", seed, err)
		}
		for w := range started {
			if got := started[w].Load(); got != 1 {
				t.Errorf("seed %d: worker %d launched %d times, want 1", seed, w, got)
			}
		}
		if got := c.Sum(); got != p*perWkr {
			t.Errorf("seed %d: Counter.Sum() = %d, want %d", seed, got, p*perWkr)
		}
	}
}

// TestStressPanicContainment panics in one worker per seed and verifies the
// sibling drain logic under perturbation: the panic surfaces as *PanicError
// and no iteration runs twice even while the region is being torn down.
func TestStressPanicContainment(t *testing.T) {
	const (
		p = 8
		n = 1 << 16
	)
	for _, seed := range stressSeeds {
		marks := make([]atomic.Int32, n)
		err := ForCtx(context.Background(), p, n, func(w, lo, hi int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := lo; i < hi; i++ {
				if marks[i].Add(1) != 1 {
					t.Errorf("iteration %d executed more than once", i)
				}
			}
			gosched(rng)
			if w == int(seed)%p {
				panic("stress: injected worker failure")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d: ForCtx = %v, want *PanicError", seed, err)
		}
		if pe.Value != "stress: injected worker failure" {
			t.Errorf("seed %d: PanicError.Value = %v", seed, pe.Value)
		}
	}
}
