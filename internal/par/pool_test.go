package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolForCtxCoversRange checks the static split covers [0, n) exactly
// once with region-local worker ids, across pool sizes and region widths.
func TestPoolForCtxCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := NewPool(workers)
		for _, p := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 7, 100, 4097} {
				hits := make([]atomic.Int32, n)
				err := pool.ForCtx(context.Background(), p, n, func(w, lo, hi int) {
					if w < 0 || w >= p {
						t.Errorf("worker id %d outside [0,%d)", w, p)
					}
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
				})
				if err != nil {
					t.Fatalf("pool(%d) ForCtx(p=%d,n=%d): %v", workers, p, n, err)
				}
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("pool(%d) p=%d n=%d: index %d visited %d times", workers, p, n, i, got)
					}
				}
			}
		}
		pool.Close()
	}
}

// TestPoolForDynamicCtxCoversRange is the dynamic-scheduling analog.
func TestPoolForDynamicCtxCoversRange(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, p := range []int{1, 3, 8} {
		for _, grain := range []int{1, 16, 1000} {
			n := 2049
			hits := make([]atomic.Int32, n)
			err := pool.ForDynamicCtx(context.Background(), p, n, grain, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			if err != nil {
				t.Fatalf("ForDynamicCtx(p=%d,grain=%d): %v", p, grain, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("p=%d grain=%d: index %d visited %d times", p, grain, i, got)
				}
			}
		}
	}
}

// TestPoolSharedAcrossConcurrentRegions drives many regions through one pool
// at once — the serving workload — and checks each region's integrity.
func TestPoolSharedAcrossConcurrentRegions(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	const regions = 16
	var wg sync.WaitGroup
	errs := make([]error, regions)
	for r := 0; r < regions; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 500 + 37*r
			var sum atomic.Int64
			errs[r] = pool.ForCtx(context.Background(), 4, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			want := int64(n) * int64(n-1) / 2
			if got := sum.Load(); got != want {
				t.Errorf("region %d: sum %d, want %d", r, got, want)
			}
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("region %d: %v", r, err)
		}
	}
}

// TestPoolPanicContainment checks a panicking body surfaces as *PanicError
// on the submitting region only, and the pool survives to run later regions.
func TestPoolPanicContainment(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	err := pool.ForCtx(context.Background(), 4, 1000, func(w, lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	// The pool must still work.
	if err := pool.ForCtx(context.Background(), 2, 100, func(w, lo, hi int) {}); err != nil {
		t.Fatalf("pool broken after contained panic: %v", err)
	}
}

// TestPoolCancellation checks an expired context stops the region and is
// reported, on both scheduling modes.
func TestPoolCancellation(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := pool.ForCtx(ctx, 4, 1<<20, func(w, lo, hi int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx on cancelled ctx: got %v", err)
	}
	err = pool.ForDynamicCtx(ctx, 4, 1<<20, 64, func(w, lo, hi int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForDynamicCtx on cancelled ctx: got %v", err)
	}
}

// TestPoolClosedRunsInline checks regions submitted after Close still
// complete (inline on the caller), preserving the drain contract: work
// admitted during shutdown finishes instead of hanging.
func TestPoolClosedRunsInline(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	var sum atomic.Int64
	err := pool.ForCtx(context.Background(), 4, 1000, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(1)
		}
	})
	if err != nil || sum.Load() != 1000 {
		t.Fatalf("closed pool region: err=%v covered=%d", err, sum.Load())
	}
	pool.Close() // idempotent
}

// TestPoolSaturationDegradesNotDeadlocks wedges every resident worker on a
// slow region and checks another region still completes promptly via the
// caller-runs fallback.
func TestPoolSaturationDegradesNotDeadlocks(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	release := make(chan struct{})
	slowDone := make(chan error, 1)
	go func() {
		slowDone <- pool.ForCtx(context.Background(), 2, 2, func(w, lo, hi int) {
			if w == 0 {
				<-release
			}
		})
	}()
	// Give the slow region a moment to occupy the lone worker, then run a
	// fast region; it must finish without the pool's help.
	time.Sleep(10 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		done <- pool.ForCtx(context.Background(), 4, 100, func(w, lo, hi int) {})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fast region: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast region deadlocked behind saturated pool")
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow region: %v", err)
	}
}

// TestSchedulerOrSpawn pins the nil seam.
func TestSchedulerOrSpawn(t *testing.T) {
	s := SchedulerOrSpawn(nil)
	var n atomic.Int64
	if err := s.ForCtx(context.Background(), 2, 10, func(w, lo, hi int) {
		n.Add(int64(hi - lo))
	}); err != nil || n.Load() != 10 {
		t.Fatalf("spawn scheduler: err=%v n=%d", err, n.Load())
	}
	pool := NewPool(2)
	defer pool.Close()
	if got := SchedulerOrSpawn(pool); got != Scheduler(pool) {
		t.Fatal("non-nil scheduler not passed through")
	}
}
