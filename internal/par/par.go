// Package par provides the shared-memory parallel primitives used by every
// parallel matching algorithm in this repository: a blocked parallel-for,
// worker fan-out with per-worker state, and padded per-worker counters that
// avoid false sharing (the pure-Go stand-in for the paper's NUMA-aware,
// thread-pinned OpenMP runtime).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when an Options.Threads is
// zero: GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a requested worker count.
func clampWorkers(p int) int {
	if p <= 0 {
		return DefaultWorkers()
	}
	return p
}

// For runs body over [0, n) split into contiguous blocks across p workers.
// body receives the worker id and the half-open range it owns. Blocks are
// statically scheduled (contiguous, near-equal), matching the level-
// synchronous structure of the algorithms where per-element work is small
// and uniform enough that dynamic scheduling overhead is not repaid.
//
// A worker panic is contained: the remaining workers are drained (workers
// that have not started yet are skipped) and the first panic is re-raised in
// the caller's goroutine as a *PanicError, never crashing the process from
// an unrecoverable goroutine. Use ForCtx to receive it as an error instead.
func For(p int, n int, body func(worker, lo, hi int)) {
	p = clampWorkers(p)
	if n <= 0 {
		return
	}
	if p == 1 || n == 1 {
		body(0, 0, n)
		return
	}
	if p > n {
		p = n
	}
	g := newGate(nil)
	var wg sync.WaitGroup
	wg.Add(p)
	chunk := n / p
	rem := n % p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			defer g.guard()
			if !g.stop.Load() {
				body(w, lo, hi)
			}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	if err := g.err(); err != nil {
		panic(err)
	}
}

// ForDynamic runs body over [0, n) with dynamic chunk self-scheduling:
// workers repeatedly claim the next `grain`-sized block from a shared atomic
// cursor. Use when per-element cost is skewed (e.g. scanning vertices with
// power-law degrees). Worker panics are contained and re-raised in the
// caller as with For; sibling workers stop claiming chunks after a panic.
func ForDynamic(p int, n int, grain int, body func(worker, lo, hi int)) {
	p = clampWorkers(p)
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	if p == 1 {
		body(0, 0, n)
		return
	}
	g := newGate(nil)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer g.guard()
			for !g.stop.Load() {
				lo := cursor.Add(int64(grain)) - int64(grain)
				if lo >= int64(n) {
					return
				}
				hi := lo + int64(grain)
				if hi > int64(n) {
					hi = int64(n)
				}
				body(w, int(lo), int(hi))
			}
		}(w)
	}
	wg.Wait()
	if err := g.err(); err != nil {
		panic(err)
	}
}

// Run launches p workers executing body(worker) and waits for all of them.
// Worker panics are contained and re-raised in the caller as with For.
func Run(p int, body func(worker int)) {
	p = clampWorkers(p)
	if p == 1 {
		body(0)
		return
	}
	g := newGate(nil)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer g.guard()
			body(w)
		}(w)
	}
	wg.Wait()
	if err := g.err(); err != nil {
		panic(err)
	}
}

// cacheLine is the assumed cache line size for padding.
const cacheLine = 64

// Counter is a set of per-worker int64 cells padded to separate cache lines.
// Hot loops increment their own cell without synchronization; Sum is called
// after the parallel section (synchronized by the fork/join of For/Run).
type Counter struct {
	cells []paddedInt64
}

type paddedInt64 struct {
	v int64
	_ [cacheLine - 8]byte
}

// NewCounter returns a Counter with p cells.
func NewCounter(p int) *Counter {
	return &Counter{cells: make([]paddedInt64, clampWorkers(p))}
}

// Add adds delta to worker w's cell. Not atomic: each worker must only
// touch its own cell inside a parallel region.
func (c *Counter) Add(w int, delta int64) { c.cells[w].v += delta }

// Sum returns the total across workers. Call only outside parallel regions.
func (c *Counter) Sum() int64 {
	var s int64
	for i := range c.cells {
		s += c.cells[i].v
	}
	return s
}

// Reset zeroes all cells.
func (c *Counter) Reset() {
	for i := range c.cells {
		c.cells[i].v = 0
	}
}
