// Package queue implements the Graph500 omp-csr-style concurrent frontier
// queue the paper adopts (§IV-A): a preallocated global array written by
// atomic block reservation, fed by small per-worker local buffers sized to
// stay in the local cache. A worker appends to its private buffer and, when
// the buffer fills, reserves a contiguous region of the global array with a
// single fetch-and-add and copies the buffer out. This keeps contention to
// one atomic per LocalCap insertions.
package queue

import (
	"sync/atomic"

	"graftmatch/internal/obs"
)

// LocalCap is the per-worker buffer capacity. 1024 int32s = 4 KiB, small
// enough for L1 residency, large enough to amortize the atomic reservation.
const LocalCap = 1024

// Frontier is a bounded multi-producer vertex queue. Capacity must be an
// upper bound on the total number of pushes between Resets (the algorithms
// bound it by the vertex count: each vertex enters a frontier at most once
// per phase).
type Frontier struct {
	buf []int32
	n   atomic.Int64

	// resv, when set via Instrument, counts atomic block reservations — the
	// queue's one contended operation, and the quantity that tells an
	// operator whether LocalCap is amortizing contention as designed. A nil
	// counter (the default) costs one predictable branch per reservation.
	resv *obs.Counter
}

// NewFrontier returns a Frontier with the given capacity.
func NewFrontier(capacity int) *Frontier {
	return &Frontier{buf: make([]int32, capacity)}
}

// Instrument attaches a reservation counter (nil detaches). Reservations
// from any worker fold into slot 0: they happen once per LocalCap pushes,
// far off the per-vertex hot path.
func (f *Frontier) Instrument(c *obs.Counter) { f.resv = c }

// Reset empties the queue without releasing storage.
func (f *Frontier) Reset() { f.n.Store(0) }

// Len returns the number of enqueued vertices.
func (f *Frontier) Len() int { return int(f.n.Load()) }

// Slice returns the enqueued vertices. Valid only after all producers have
// flushed and synchronized (fork/join barrier).
func (f *Frontier) Slice() []int32 { return f.buf[:f.n.Load()] }

// PushBlock reserves space for and copies in a block of vertices. It is the
// flush path of Local and may also be used directly for bulk appends.
func (f *Frontier) PushBlock(vs []int32) {
	if len(vs) == 0 {
		return
	}
	end := f.n.Add(int64(len(vs)))
	start := end - int64(len(vs))
	if f.resv != nil {
		f.resv.Add(0, 1)
	}
	if end > int64(len(f.buf)) {
		// Capacity is a caller-proved bound (≤ one frontier entry per
		// vertex per phase); exceeding it is memory-corrupting, so fail
		// fast even on the hot path.
		panic("queue: frontier capacity exceeded") //lint:ignore err-checked capacity assertion guards memory safety on the lock-free hot path
	}
	copy(f.buf[start:end], vs)
}

// Push enqueues one vertex with a single atomic reservation. Prefer Local
// buffers in hot loops.
func (f *Frontier) Push(v int32) {
	i := f.n.Add(1) - 1
	if f.resv != nil {
		f.resv.Add(0, 1)
	}
	if i >= int64(len(f.buf)) {
		panic("queue: frontier capacity exceeded") //lint:ignore err-checked capacity assertion guards memory safety on the lock-free hot path
	}
	f.buf[i] = v
}

// Swap exchanges the storage of two frontiers (current/next double
// buffering) without copying.
func (f *Frontier) Swap(o *Frontier) {
	f.buf, o.buf = o.buf, f.buf
	n := f.n.Load()
	f.n.Store(o.n.Load())
	o.n.Store(n)
}

// Local is a per-worker staging buffer bound to a Frontier.
type Local struct {
	dst *Frontier
	buf [LocalCap]int32
	n   int
	// Pad the struct to a whole number of cache lines (4112 B of fields +
	// 48 B = 65 lines) so adjacent Locals in the per-worker slice never
	// split a line: the hot n/tail words of worker w and the dst/head of
	// worker w+1 would otherwise ping-pong one line between cores.
	_ [48]byte
}

// NewLocals returns p Locals all flushing into dst.
func NewLocals(p int, dst *Frontier) []Local {
	ls := make([]Local, p)
	for i := range ls {
		ls[i].dst = dst
	}
	return ls
}

// Rebind points the local buffer at a (possibly different) destination
// frontier; the buffer must be empty.
func (l *Local) Rebind(dst *Frontier) {
	if l.n != 0 {
		panic("queue: Rebind with buffered entries") //lint:ignore err-checked misuse assertion: rebinding a non-empty buffer silently drops vertices
	}
	l.dst = dst
}

// Push appends v to the local buffer, flushing to the global frontier when
// full.
func (l *Local) Push(v int32) {
	if l.n == LocalCap {
		l.dst.PushBlock(l.buf[:l.n])
		l.n = 0
	}
	l.buf[l.n] = v
	l.n++
}

// Flush drains any buffered vertices to the global frontier. Every worker
// must Flush before the join barrier.
func (l *Local) Flush() {
	if l.n > 0 {
		l.dst.PushBlock(l.buf[:l.n])
		l.n = 0
	}
}
