package queue

import (
	"sort"
	"sync"
	"testing"
)

func TestFrontierPushAndSlice(t *testing.T) {
	f := NewFrontier(10)
	f.Push(3)
	f.Push(1)
	f.Push(4)
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	got := append([]int32(nil), f.Slice()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int32{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("len after reset = %d", f.Len())
	}
}

func TestFrontierPushBlock(t *testing.T) {
	f := NewFrontier(100)
	f.PushBlock([]int32{1, 2, 3})
	f.PushBlock(nil)
	f.PushBlock([]int32{4})
	if f.Len() != 4 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestFrontierCapacityPanic(t *testing.T) {
	f := NewFrontier(2)
	f.Push(0)
	f.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on overflow")
		}
	}()
	f.Push(2)
}

func TestFrontierBlockCapacityPanic(t *testing.T) {
	f := NewFrontier(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on block overflow")
		}
	}()
	f.PushBlock([]int32{0, 1, 2})
}

func TestSwap(t *testing.T) {
	a := NewFrontier(4)
	b := NewFrontier(4)
	a.Push(7)
	a.Swap(b)
	if a.Len() != 0 || b.Len() != 1 || b.Slice()[0] != 7 {
		t.Fatalf("swap broken: a=%v b=%v", a.Slice(), b.Slice())
	}
}

func TestLocalFlushSmall(t *testing.T) {
	f := NewFrontier(10)
	ls := NewLocals(2, f)
	ls[0].Push(1)
	ls[1].Push(2)
	if f.Len() != 0 {
		t.Fatal("local pushes must not reach global before flush")
	}
	ls[0].Flush()
	ls[1].Flush()
	if f.Len() != 2 {
		t.Fatalf("len = %d, want 2", f.Len())
	}
	// Flushing empty buffers is a no-op.
	ls[0].Flush()
	if f.Len() != 2 {
		t.Fatalf("len = %d after empty flush", f.Len())
	}
}

func TestLocalAutoFlushOnFill(t *testing.T) {
	n := LocalCap*3 + 17
	f := NewFrontier(n)
	ls := NewLocals(1, f)
	for i := 0; i < n; i++ {
		ls[0].Push(int32(i))
	}
	ls[0].Flush()
	if f.Len() != n {
		t.Fatalf("len = %d, want %d", f.Len(), n)
	}
	seen := make([]bool, n)
	for _, v := range f.Slice() {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestRebind(t *testing.T) {
	a := NewFrontier(4)
	b := NewFrontier(4)
	ls := NewLocals(1, a)
	ls[0].Push(1)
	ls[0].Flush()
	ls[0].Rebind(b)
	ls[0].Push(2)
	ls[0].Flush()
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("rebind routed wrong: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestRebindPanicsWithBufferedEntries(t *testing.T) {
	a := NewFrontier(4)
	ls := NewLocals(1, a)
	ls[0].Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ls[0].Rebind(NewFrontier(4))
}

// TestConcurrentProducers checks that many goroutines pushing through
// locals lose nothing and duplicate nothing.
func TestConcurrentProducers(t *testing.T) {
	const p = 8
	const perWorker = 5000
	f := NewFrontier(p * perWorker)
	ls := NewLocals(p, f)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ls[w].Push(int32(w*perWorker + i))
			}
			ls[w].Flush()
		}(w)
	}
	wg.Wait()
	if f.Len() != p*perWorker {
		t.Fatalf("len = %d, want %d", f.Len(), p*perWorker)
	}
	seen := make([]bool, p*perWorker)
	for _, v := range f.Slice() {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}
