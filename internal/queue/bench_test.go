package queue

import (
	"sync"
	"testing"
)

// BenchmarkLocalPush measures the amortized cost of the local-buffer path
// (one atomic per LocalCap pushes).
func BenchmarkLocalPush(b *testing.B) {
	f := NewFrontier(b.N + LocalCap)
	ls := NewLocals(1, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls[0].Push(int32(i))
	}
	ls[0].Flush()
}

// BenchmarkDirectPush measures the one-atomic-per-push baseline the local
// buffers exist to avoid.
func BenchmarkDirectPush(b *testing.B) {
	f := NewFrontier(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Push(int32(i))
	}
}

// BenchmarkContendedProducers measures throughput with p goroutines pushing
// through locals into one frontier (the Graph500 queue scheme under
// contention).
func BenchmarkContendedProducers(b *testing.B) {
	const p = 4
	f := NewFrontier(b.N*p + p*LocalCap)
	ls := NewLocals(p, f)
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				ls[w].Push(int32(i))
			}
			ls[w].Flush()
		}(w)
	}
	wg.Wait()
}
