package queue

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// stressSeeds are the fixed seeds each stress run cycles through. A seeded
// per-worker PRNG decides where runtime.Gosched is injected, so every run
// perturbs the interleaving at the same program points; combined with -race
// this shakes out ordering bugs while keeping failures reproducible by seed.
var stressSeeds = []int64{1, 7, 42, 1337}

// gosched yields at a seeded ~1/8 rate to force preemption inside the push
// loops, where a torn reservation or lost flush would corrupt the frontier.
func gosched(rng *rand.Rand) {
	if rng.Intn(8) == 0 {
		runtime.Gosched()
	}
}

// TestStressLocalPush has p workers push disjoint value ranges through Local
// buffers into one Frontier and verifies the result is an exact permutation
// of the inputs: nothing lost, nothing duplicated, nothing torn.
func TestStressLocalPush(t *testing.T) {
	const (
		p         = 8
		perWorker = 3*LocalCap + 129 // several flush cycles plus a ragged tail
	)
	for _, seed := range stressSeeds {
		f := NewFrontier(p * perWorker)
		locals := NewLocals(p, f)
		var wg sync.WaitGroup
		wg.Add(p)
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				l := &locals[w]
				base := int32(w * perWorker)
				for i := int32(0); i < perWorker; i++ {
					l.Push(base + i)
					gosched(rng)
				}
				l.Flush()
			}(w)
		}
		wg.Wait()

		if got := f.Len(); got != p*perWorker {
			t.Fatalf("seed %d: Len() = %d, want %d", seed, got, p*perWorker)
		}
		seen := make([]bool, p*perWorker)
		for _, v := range f.Slice() {
			if v < 0 || int(v) >= len(seen) {
				t.Fatalf("seed %d: out-of-range value %d", seed, v)
			}
			if seen[v] {
				t.Fatalf("seed %d: duplicate value %d", seed, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("seed %d: missing value %d", seed, v)
			}
		}
	}
}

// TestStressMixedProducers mixes the three producer paths — Local staging,
// direct Push, and bulk PushBlock — against one frontier, as the grafting
// engine does when scattered writers meet a bulk rebuild.
func TestStressMixedProducers(t *testing.T) {
	const (
		p         = 6
		perWorker = 2048
	)
	for _, seed := range stressSeeds {
		f := NewFrontier(p * perWorker)
		locals := NewLocals(p, f)
		var wg sync.WaitGroup
		wg.Add(p)
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed ^ int64(w)<<16))
				base := int32(w * perWorker)
				switch w % 3 {
				case 0: // Local staging path
					l := &locals[w]
					for i := int32(0); i < perWorker; i++ {
						l.Push(base + i)
						gosched(rng)
					}
					l.Flush()
				case 1: // one-at-a-time atomic reservation
					for i := int32(0); i < perWorker; i++ {
						f.Push(base + i)
						gosched(rng)
					}
				default: // seeded-size bulk blocks
					for i := int32(0); i < perWorker; {
						n := int32(1 + rng.Intn(200))
						if i+n > perWorker {
							n = perWorker - i
						}
						block := make([]int32, n)
						for j := range block {
							block[j] = base + i + int32(j)
						}
						f.PushBlock(block)
						i += n
						gosched(rng)
					}
				}
			}(w)
		}
		wg.Wait()

		if got := f.Len(); got != p*perWorker {
			t.Fatalf("seed %d: Len() = %d, want %d", seed, got, p*perWorker)
		}
		seen := make([]bool, p*perWorker)
		for _, v := range f.Slice() {
			if v < 0 || int(v) >= len(seen) || seen[v] {
				t.Fatalf("seed %d: bad or duplicate value %d", seed, v)
			}
			seen[v] = true
		}
	}
}

// TestStressResetReuse exercises the double-buffer cycle the BFS loop uses:
// fill, swap, reset, refill — with concurrent producers on every fill.
func TestStressResetReuse(t *testing.T) {
	const (
		p         = 4
		perWorker = LocalCap + 333
		rounds    = 5
	)
	for _, seed := range stressSeeds {
		cur := NewFrontier(p * perWorker)
		next := NewFrontier(p * perWorker)
		for round := 0; round < rounds; round++ {
			locals := NewLocals(p, next)
			var wg sync.WaitGroup
			wg.Add(p)
			for w := 0; w < p; w++ {
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(round*p+w)))
					l := &locals[w]
					base := int32(w * perWorker)
					for i := int32(0); i < perWorker; i++ {
						l.Push(base + i)
						gosched(rng)
					}
					l.Flush()
				}(w)
			}
			wg.Wait()
			if got := next.Len(); got != p*perWorker {
				t.Fatalf("seed %d round %d: Len() = %d, want %d", seed, round, got, p*perWorker)
			}
			cur.Swap(next)
			next.Reset()
			if next.Len() != 0 {
				t.Fatalf("seed %d round %d: Reset left %d entries", seed, round, next.Len())
			}
		}
	}
}
