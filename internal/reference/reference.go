// Package reference provides deliberately simple, obviously-correct
// implementations used only for differential testing: a no-tricks
// single-path BFS maximum matcher and an exponential brute-force matcher
// for tiny instances. They share no code with the optimized engines, so
// agreement between the two families is strong evidence of correctness.
package reference

import (
	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

const none = matching.None

// SimpleMaximum computes a maximum matching by repeatedly running a plain
// BFS over alternating paths from all unmatched X vertices and augmenting
// along the single first path found. No pruning, no multi-source
// augmentation, no initializer — O(n·m), unoptimized on purpose.
func SimpleMaximum(g *bipartite.Graph) *matching.Matching {
	m := matching.New(g.NX(), g.NY())
	parent := make([]int32, g.NY())
	visited := make([]bool, g.NY())
	var frontier, next []int32
	for {
		for i := range visited {
			visited[i] = false
			parent[i] = none
		}
		frontier = frontier[:0]
		for x := int32(0); x < g.NX(); x++ {
			if m.MateX[x] == none {
				frontier = append(frontier, x)
			}
		}
		endY := none
	search:
		for len(frontier) > 0 {
			next = next[:0]
			for _, x := range frontier {
				for _, y := range g.NbrX(x) {
					if visited[y] {
						continue
					}
					visited[y] = true
					parent[y] = x
					if m.MateY[y] == none {
						endY = y
						break search
					}
					next = append(next, m.MateY[y])
				}
			}
			frontier, next = next, frontier
		}
		if endY == none {
			return m
		}
		y := endY
		for {
			x := parent[y]
			prev := m.MateX[x]
			m.Match(x, y)
			if prev == none {
				break
			}
			y = prev
		}
	}
}

// BruteForceMaximum computes the exact maximum matching cardinality by
// exhaustive search over edge subsets with branch-and-bound. Exponential;
// callers must keep instances tiny (≲ 25 edges).
func BruteForceMaximum(g *bipartite.Graph) int64 {
	edges := g.Edges(nil)
	usedX := make([]bool, g.NX())
	usedY := make([]bool, g.NY())
	var best int64
	var rec func(i int, size int64)
	rec = func(i int, size int64) {
		if size+int64(len(edges)-i) <= best {
			return // bound: even taking every remaining edge cannot win
		}
		if i == len(edges) {
			if size > best {
				best = size
			}
			return
		}
		e := edges[i]
		if !usedX[e.X] && !usedY[e.Y] {
			usedX[e.X], usedY[e.Y] = true, true
			rec(i+1, size+1)
			usedX[e.X], usedY[e.Y] = false, false
		}
		rec(i+1, size)
	}
	rec(0, 0)
	return best
}
