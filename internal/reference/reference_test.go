package reference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
)

func TestSimpleMaximumBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *bipartite.Graph
		want int64
	}{
		{"empty", bipartite.MustFromEdges(0, 0, nil), 0},
		{"no-edges", bipartite.MustFromEdges(3, 3, nil), 0},
		{"single", bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}), 1},
		{"path", bipartite.MustFromEdges(3, 3, []bipartite.Edge{
			{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}), 3},
	}
	for _, c := range cases {
		m := SimpleMaximum(c.g)
		if m.Cardinality() != c.want {
			t.Fatalf("%s: %d, want %d", c.name, m.Cardinality(), c.want)
		}
		if err := matching.VerifyMaximum(c.g, m); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

// TestSimpleVsBruteForce: on tiny random instances the BFS matcher and the
// exhaustive search must agree exactly.
func TestSimpleVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := int32(rng.Intn(6) + 1)
		ny := int32(rng.Intn(6) + 1)
		b := bipartite.NewBuilder(nx, ny)
		for i := 0; i < 12; i++ {
			_ = b.AddEdge(int32(rng.Intn(int(nx))), int32(rng.Intn(int(ny))))
		}
		g := b.Build()
		return SimpleMaximum(g).Cardinality() == BruteForceMaximum(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceBound(t *testing.T) {
	// Complete K_{3,3}: maximum is 3.
	var edges []bipartite.Edge
	for x := int32(0); x < 3; x++ {
		for y := int32(0); y < 3; y++ {
			edges = append(edges, bipartite.Edge{X: x, Y: y})
		}
	}
	g := bipartite.MustFromEdges(3, 3, edges)
	if got := BruteForceMaximum(g); got != 3 {
		t.Fatalf("K33 = %d, want 3", got)
	}
}
