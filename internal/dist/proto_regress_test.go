package dist

import (
	"context"
	"testing"
	"time"

	"graftmatch/internal/checkpoint"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/gen"
)

// TestFrameTypeWireValues pins the frame discriminators to their wire
// values. The iota block in proto.go is a protocol table, not a free
// enumeration: inserting or reordering a name silently renumbers every
// later frame and breaks any peer built from an older source tree.
func TestFrameTypeWireValues(t *testing.T) {
	pins := []struct {
		name string
		got  byte
		want byte
	}{
		{"fHello", fHello, 1},
		{"fWelcome", fWelcome, 2},
		{"fStep", fStep, 3},
		{"fStepDone", fStepDone, 4},
		{"fDone", fDone, 5},
		{"fAbort", fAbort, 6},
		{"fHB", fHB, 7},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want wire value %d", p.name, p.got, p.want)
		}
	}
	if fHB >= 0xF0 {
		t.Errorf("fHB = %d collides with the session layer's reserved range", fHB)
	}
}

// TestPumpUnknownFrameFailsRank asserts the coordinator declares a rank
// failed when its session delivers a frame type the protocol never
// negotiated. Versions are pinned in the handshake, so an unknown type
// mid-run is a protocol violation; it must fail the rank, not vanish into
// a silent default.
func TestPumpUnknownFrameFailsRank(t *testing.T) {
	g := gen.ER(50, 50, 200, 9)
	opts := testClusterOpts()
	opts.Ranks = 1
	c, err := NewCoordinator(g, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Dial as a worker would: raw Hello/Welcome, then attach a session.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cfg := distnet.Config{
		ReadTimeout:  500 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	}
	conn, err := distnet.DialOnce(ctx, c.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hello := encodeHello(helloFrame{
		Version: protoVersion,
		Rank:    0,
		Nonce:   workerNonce(),
		FP:      checkpoint.GraphFingerprint(g),
	})
	if err := conn.Send(fHello, hello); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != fWelcome {
		t.Fatalf("handshake answered with frame type %d, want Welcome", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetTimeouts(0, 500*time.Millisecond)
	sess := distnet.NewSession(distnet.SessionConfig{})
	defer sess.Close()
	sess.Attach(conn)

	// A type below the session-reserved range that the cluster protocol
	// never assigned.
	const bogus byte = 0x7F
	if err := sess.Send(bogus, nil); err != nil {
		t.Fatal(err)
	}

	s := c.slots[w.Rank]
	deadline := time.Now().Add(3 * time.Second)
	for !s.failed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never marked the rank failed after an unknown frame type")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
