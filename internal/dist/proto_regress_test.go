package dist

import (
	"context"
	"encoding/binary"
	"testing"
	"time"

	"graftmatch/internal/checkpoint"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/gen"
)

// TestFrameTypeWireValues pins the frame discriminators to their wire
// values. The iota block in proto.go is a protocol table, not a free
// enumeration: inserting or reordering a name silently renumbers every
// later frame and breaks any peer built from an older source tree.
func TestFrameTypeWireValues(t *testing.T) {
	pins := []struct {
		name string
		got  byte
		want byte
	}{
		{"fHello", fHello, 1},
		{"fWelcome", fWelcome, 2},
		{"fStep", fStep, 3},
		{"fStepDone", fStepDone, 4},
		{"fDone", fDone, 5},
		{"fAbort", fAbort, 6},
		{"fHB", fHB, 7},
		{"fTelemetry", fTelemetry, 8},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want wire value %d", p.name, p.got, p.want)
		}
	}
	if fTelemetry >= 0xF0 {
		t.Errorf("fTelemetry = %d collides with the session layer's reserved range", fTelemetry)
	}
}

// TestTelemetryFrameRoundTrip pins the telemetry frame encoding: header
// fields survive, span batches survive in order, and the encoder reuses the
// caller's buffer rather than allocating a fresh one per superstep.
func TestTelemetryFrameRoundTrip(t *testing.T) {
	f := telemetryFrame{
		Epoch:   3,
		Trace:   0xdeadbeefcafe0001,
		Dropped: 42,
		Steps:   17,
		MsgsOut: 9001,
		Spans: []telSpan{
			{Op: opScatter, Start: 1111, Dur: 22, Arg: 5},
			{Op: opReportMates, Start: 3333, Dur: 44, Arg: -1},
		},
	}
	buf := make([]byte, 0, 256)
	out := encodeTelemetry(buf, &f)
	if &out[0] != &buf[:1][0] {
		t.Error("encodeTelemetry did not reuse the caller's buffer")
	}
	got, err := decodeTelemetry(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != f.Epoch || got.Trace != f.Trace || got.Dropped != f.Dropped ||
		got.Steps != f.Steps || got.MsgsOut != f.MsgsOut {
		t.Errorf("header mismatch: got %+v want %+v", got, f)
	}
	if len(got.Spans) != len(f.Spans) {
		t.Fatalf("got %d spans, want %d", len(got.Spans), len(f.Spans))
	}
	for i, s := range got.Spans {
		if s != f.Spans[i] {
			t.Errorf("span %d: got %+v want %+v", i, s, f.Spans[i])
		}
	}
}

// TestTelemetryFrameTruncation asserts the decoder rejects — rather than
// panics on or over-allocates for — frames whose claimed span count exceeds
// the payload, the maxTelSpans cap, or whose header is cut short.
func TestTelemetryFrameTruncation(t *testing.T) {
	f := telemetryFrame{Epoch: 1, Trace: 7, Spans: []telSpan{{Op: opExpand, Start: 1, Dur: 2, Arg: 3}}}
	full := encodeTelemetry(nil, &f)
	for n := 0; n < len(full); n++ {
		if _, err := decodeTelemetry(full[:n]); err == nil {
			t.Errorf("decodeTelemetry accepted a frame truncated to %d/%d bytes", n, len(full))
		}
	}
	// Forge a count larger than the payload: keep the fixed header (count=1)
	// but strip the span bytes.
	header := len(full) - telSpanBytes
	if _, err := decodeTelemetry(full[:header]); err == nil {
		t.Error("decodeTelemetry accepted a span count larger than the payload")
	}
	// Allocation bomb: patch the count field to maxTelSpans+1 on a frame with
	// no span payload at all. The decoder must reject on the cap before any
	// count-sized allocation.
	bomb := append([]byte(nil), full[:header]...)
	binary.LittleEndian.PutUint32(bomb[header-4:], maxTelSpans+1)
	if _, err := decodeTelemetry(bomb); err == nil {
		t.Error("decodeTelemetry accepted a span count above maxTelSpans")
	}
}

// TestPumpUnknownFrameFailsRank asserts the coordinator declares a rank
// failed when its session delivers a frame type the protocol never
// negotiated. Versions are pinned in the handshake, so an unknown type
// mid-run is a protocol violation; it must fail the rank, not vanish into
// a silent default.
func TestPumpUnknownFrameFailsRank(t *testing.T) {
	g := gen.ER(50, 50, 200, 9)
	opts := testClusterOpts()
	opts.Ranks = 1
	c, err := NewCoordinator(g, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Dial as a worker would: raw Hello/Welcome, then attach a session.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cfg := distnet.Config{
		ReadTimeout:  500 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	}
	conn, err := distnet.DialOnce(ctx, c.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hello := encodeHello(helloFrame{
		Version: protoVersion,
		Rank:    0,
		Nonce:   workerNonce(),
		FP:      checkpoint.GraphFingerprint(g),
	})
	if err := conn.Send(fHello, hello); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != fWelcome {
		t.Fatalf("handshake answered with frame type %d, want Welcome", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetTimeouts(0, 500*time.Millisecond)
	sess := distnet.NewSession(distnet.SessionConfig{})
	defer sess.Close()
	sess.Attach(conn)

	// A type below the session-reserved range that the cluster protocol
	// never assigned.
	const bogus byte = 0x7F
	if err := sess.Send(bogus, nil); err != nil {
		t.Fatal(err)
	}

	s := c.slots[w.Rank]
	deadline := time.Now().Add(3 * time.Second)
	for !s.failed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never marked the rank failed after an unknown frame type")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
