// Package dist implements the distributed-memory MS-BFS-Graft algorithm the
// paper's conclusion proposes as future work ("The MS-BFS-Graft algorithm
// employs level synchronous BFSs for which efficient distributed algorithms
// exist. In future, we plan to develop a distributed memory MS-BFS-Graft
// algorithm").
//
// The implementation is a bulk-synchronous-parallel (BSP) simulation: the
// graph is 1-D partitioned over K ranks, each rank owns the matching and
// tree state of its vertices, and every remote access is an explicit
// message exchanged at superstep barriers — the structure an MPI
// implementation would have, with Go goroutines standing in for ranks.
// Because there is no shared state, no atomics are needed: each owner
// serializes claims on its own vertices. The engine reports supersteps and
// message volume, the quantities that would govern real network cost.
package dist

// Partition is a 1-D block partition of the X and Y vertex sets over K
// ranks. X vertex x is owned by OwnerX(x), Y vertex y by OwnerY(y).
type Partition struct {
	K  int
	nx int32
	ny int32
}

// NewPartition returns a block partition of nx X-vertices and ny Y-vertices
// over k ranks (k clamped to at least 1).
func NewPartition(k int, nx, ny int32) Partition {
	if k < 1 {
		k = 1
	}
	return Partition{K: k, nx: nx, ny: ny}
}

// blockOwner returns the owner of index i among n items in K near-equal
// contiguous blocks (the first n%K blocks have one extra item).
func (p Partition) blockOwner(i, n int32) int {
	if n == 0 {
		return 0
	}
	k := int32(p.K)
	base := n / k
	rem := n % k
	// First rem blocks have size base+1.
	cut := rem * (base + 1)
	if i < cut {
		return int(i / (base + 1))
	}
	if base == 0 {
		return int(rem - 1) // more ranks than vertices: tail owns nothing
	}
	return int(rem + (i-cut)/base)
}

// OwnerX returns the rank owning X vertex x.
func (p Partition) OwnerX(x int32) int { return p.blockOwner(x, p.nx) }

// OwnerY returns the rank owning Y vertex y.
func (p Partition) OwnerY(y int32) int { return p.blockOwner(y, p.ny) }

// RangeX returns the half-open X-vertex range owned by rank r.
func (p Partition) RangeX(r int) (lo, hi int32) { return p.blockRange(r, p.nx) }

// RangeY returns the half-open Y-vertex range owned by rank r.
func (p Partition) RangeY(r int) (lo, hi int32) { return p.blockRange(r, p.ny) }

func (p Partition) blockRange(r int, n int32) (int32, int32) {
	k := int32(p.K)
	base := n / k
	rem := n % k
	r32 := int32(r)
	var lo int32
	if r32 <= rem {
		lo = r32 * (base + 1)
	} else {
		lo = rem*(base+1) + (r32-rem)*base
	}
	size := base
	if r32 < rem {
		size = base + 1
	}
	hi := lo + size
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
