package dist

import (
	"context"
	"fmt"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/checkpoint"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
)

// ClusterOptions configures a Coordinator, the process that owns the global
// loop of a real multi-process distributed run.
type ClusterOptions struct {
	// Ranks is the cluster width K: the worker processes the run needs.
	Ranks int

	// Alpha is the graft-decision threshold, as in Options; 0 means 5.
	Alpha float64

	// Grafting toggles tree-grafting frontier reconstruction.
	Grafting bool

	// Heartbeat is the keepalive interval both directions; 0 means 500ms.
	Heartbeat time.Duration

	// Lease is the silence after which a peer is declared dead: the
	// coordinator declares a rank dead and recovers, a worker declares the
	// coordinator dead and aborts (the split-brain minority rule). 0 means
	// 8× Heartbeat.
	Lease time.Duration

	// RejoinWait bounds how long a recovery waits for the replacement worker
	// to dial in before the run fails; it also bounds the wait for the
	// initial K joins at Run. 0 means 30s.
	RejoinWait time.Duration

	// HandshakeTimeout bounds one raw Hello/Welcome exchange; 0 means 10s.
	HandshakeTimeout time.Duration

	// MaxRecoveries bounds rank-death recoveries per run; 0 means 8.
	MaxRecoveries int

	// Respawn, when non-nil, is called on the driver goroutine when a rank
	// is declared dead; it must arrange for a replacement worker to dial in
	// requesting that rank (exec a process, start a goroutine). When nil the
	// coordinator still waits RejoinWait for an externally supervised
	// replacement.
	Respawn func(rank int) error

	// CheckpointDir, when set, persists the phase-boundary matching via
	// internal/checkpoint, and resumes from the freshest compatible snapshot
	// on start.
	CheckpointDir string

	// Limits bounds inbound frames; the zero value uses the package default.
	Limits distnet.Limits

	// RTO tunes the session retransmit schedule.
	RTO distnet.BackoffConfig

	// Recorder, when non-nil, receives superstep/message counters plus the
	// cluster health metrics (reconnects, rank deaths, recoveries, recovery
	// duration). Per-rank where the counter supports slots.
	Recorder *obs.Recorder

	// OnPhase, when non-nil, runs on the driver goroutine after every phase
	// with the phase count and current cardinality.
	OnPhase func(phase, cardinality int64)
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Ranks < 1 {
		o.Ranks = 1
	}
	if o.Alpha <= 0 {
		o.Alpha = 5
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Lease <= 0 {
		o.Lease = 8 * o.Heartbeat
	}
	if o.Lease < 2*o.Heartbeat {
		o.Lease = 2 * o.Heartbeat
	}
	if o.RejoinWait <= 0 {
		o.RejoinWait = 30 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = helloTimeout
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = 8
	}
	return o
}

// ClusterStats extends the matching statistics with the distributed cost
// model and the run's failure/recovery history.
type ClusterStats struct {
	*matching.Stats
	Ranks      int
	Supersteps int64
	Messages   int64

	// Trace is the run's trace id (16-hex), minted at coordinator start and
	// propagated to every rank in the Welcome; all shipped spans carry it.
	Trace string

	// Reconnects counts session re-attaches of a live incarnation (network
	// blips); RankDeaths counts workers declared dead; Recoveries counts
	// epoch rollbacks that followed; RecoveryTime is their summed duration
	// from death declaration to restarted phase loop.
	Reconnects   int64
	RankDeaths   int64
	Recoveries   int64
	RecoveryTime time.Duration

	// Retransmits and Attaches aggregate the per-rank session counters.
	Retransmits int64
	Attaches    int64
}

// slot is the coordinator's view of one rank: whichever worker incarnation
// currently owns it, its reliable session, and the decoded responses.
type slot struct {
	rank int

	mu        sync.Mutex
	sess      *distnet.Session
	nonce     uint64 // current incarnation; 0 when the slot is vacant
	deadNonce uint64 // last incarnation declared dead; its Hellos are refused
	alive     bool
	failed    atomic.Bool // worker sent fAbort: dead regardless of heartbeats

	// frames carries decoded StepDone frames from the pump to the driver.
	// Capacity covers the lockstep protocol's maximum in-flight responses
	// plus stale leftovers across an epoch change.
	frames chan stepDoneFrame

	// retransmits/attaches accumulated from sessions this slot has closed,
	// so Stats survive incarnation turnover.
	closedRetrans, closedAttach int64

	// Telemetry state under its own mutex: the pump goroutine writes it per
	// fTelemetry frame, the /cluster exporter reads it at phase boundaries —
	// never on the driver's gather path.
	telMu      sync.Mutex
	clockOff   int64 // coordinator recv clock − worker send clock (last handshake)
	spansIn    int64 // spans ingested from this rank
	spansDrop  int64 // spans the rank reported dropping at the source
	telSteps   int64 // supersteps the rank reported executing
	stepLatSum int64 // summed shipped step durations, ns
	stepLatMax int64 // max shipped step duration, ns
}

// foldClosedLocked accumulates a retired incarnation's session counters into
// the slot so Stats survive turnover. Callers hold s.mu: the counters are
// lock-guarded state shared between handshake goroutines, recovery, and the
// stats exporter.
func (s *slot) foldClosedLocked(sess *distnet.Session) {
	st := sess.Stats()
	s.closedRetrans += st.Retransmits
	s.closedAttach += st.Attaches
}

// Coordinator drives a multi-process distributed run: it listens for worker
// joins, broadcasts superstep orders, routes the resulting messages, detects
// rank failure by heartbeat silence, and recovers by respawning the rank and
// rolling every rank back to the last phase-boundary matching. It is not
// itself a rank — ranks 0..K-1 all live in worker processes.
type Coordinator struct {
	g    *bipartite.Graph
	part Partition
	op   ops
	opts ClusterOptions
	fp   checkpoint.Fingerprint

	ln    gonet.Listener
	slots []*slot
	mu    sync.Mutex // guards handshake slot assignment
	epoch atomic.Uint64
	trace uint64 // run trace id, minted at construction, immutable after

	mon *distnet.Monitor

	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	wg         sync.WaitGroup
	closeOnce  sync.Once

	// Driver-owned superstep state (no locking: single driver goroutine).
	ssid     uint64
	inboxes  [][]message
	renewNew []int32
	stepBuf  []byte

	stats      ClusterStats
	reconnects atomic.Int64 // handshake goroutines bump this; folded into stats by the driver

	rec                                          *obs.Recorder
	mSupersteps, mMessages, mPhases              *obs.Counter
	mReconnects, mDeaths, mRecoveries, mRecMilli *obs.Counter
	mRetransmits                                 *obs.Counter
	prevRetrans                                  int64
}

// NewCoordinator starts listening on addr (TCP "host:port" or a unix socket
// path; ":0" picks a free port — see Addr). Workers can join immediately;
// the run starts at Run.
func NewCoordinator(g *bipartite.Graph, addr string, opts ClusterOptions) (*Coordinator, error) {
	opts = opts.withDefaults()
	ln, err := gonet.Listen(distnet.Network(addr), addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		g:    g,
		part: NewPartition(opts.Ranks, g.NX(), g.NY()),
		opts: opts,
		fp:   checkpoint.GraphFingerprint(g),
		ln:   ln,
		mon:  distnet.NewMonitor(opts.Heartbeat, int(opts.Lease/opts.Heartbeat)),
	}
	c.op = ops{g: g, part: c.part}
	c.slots = make([]*slot, c.part.K)
	for i := range c.slots {
		c.slots[i] = &slot{rank: i, frames: make(chan stepDoneFrame, 8)} //lint:ignore hotpath-alloc constructor setup: K slots allocated once per coordinator
	}
	c.inboxes = make([][]message, c.part.K)
	c.lifeCtx, c.lifeCancel = context.WithCancel(context.Background())
	c.trace = obs.NewTraceID()
	c.rec = opts.Recorder.WithTrace(c.trace)
	c.mSupersteps = c.rec.Counter("graftmatch_cluster_supersteps_total", "BSP superstep rounds broadcast to the cluster")
	c.mMessages = c.rec.Counter("graftmatch_cluster_messages_total", "point-to-point messages routed plus collective broadcast volume")
	c.mPhases = c.rec.Counter("graftmatch_cluster_phases_total", "completed distributed search phases")
	c.mReconnects = c.rec.Counter("graftmatch_cluster_reconnects_total", "worker session re-attaches after connection loss")
	c.mDeaths = c.rec.Counter("graftmatch_cluster_rank_deaths_total", "workers declared dead by heartbeat silence or abort")
	c.mRecoveries = c.rec.Counter("graftmatch_cluster_recoveries_total", "epoch rollbacks recovering a dead rank")
	c.mRecMilli = c.rec.Counter("graftmatch_cluster_recovery_millis_total", "milliseconds spent in rank-death recovery")
	c.mRetransmits = c.rec.Counter("graftmatch_cluster_retransmits_total", "session-layer frame retransmissions across all ranks")
	c.wg.Add(1) //lint:ignore wg-balance acceptLoop's first deferred statement is the matching Done
	go c.acceptLoop()
	return c, nil
}

// Addr is the coordinator's bound listen address — what workers dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close tears the cluster down: listener, sessions, loops.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		c.lifeCancel()
		_ = c.ln.Close()
		for _, s := range c.slots {
			s.mu.Lock()
			sess := s.sess
			s.sess = nil
			s.alive = false
			s.mu.Unlock()
			if sess != nil {
				_ = sess.Close()
			}
		}
	})
	c.wg.Wait()
	return nil
}

// --- join handshake -------------------------------------------------------

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		raw, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handshake(raw)
	}
}

// handshake runs the raw Hello/Welcome exchange on a fresh connection and
// either attaches it to a slot or refuses it with a typed Abort.
func (c *Coordinator) handshake(raw gonet.Conn) {
	defer c.wg.Done()
	conn := distnet.NewConn(raw, distnet.Config{
		Limits:       c.opts.Limits,
		ReadTimeout:  c.opts.HandshakeTimeout,
		WriteTimeout: c.opts.HandshakeTimeout,
	})
	refuse := func(reason string) {
		_ = conn.Send(fAbort, encodeAbort(reason))
		_ = conn.Close()
	}
	typ, payload, err := conn.Recv()
	if err != nil || typ != fHello {
		refuse("expected hello")
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		refuse(err.Error())
		return
	}
	if h.Version != protoVersion {
		refuse(fmt.Sprintf("protocol version %d, want %d", h.Version, protoVersion))
		return
	}
	if h.FP != c.fp {
		refuse(fmt.Sprintf("graph fingerprint %v, want %v", h.FP, c.fp))
		return
	}

	c.mu.Lock()
	s, reason := c.assign(h)
	if s == nil {
		c.mu.Unlock()
		refuse(reason)
		return
	}
	s.mu.Lock()
	c.mu.Unlock()
	if h.Nonce != 0 && h.Nonce == s.deadNonce {
		// The driver declared this incarnation dead between assignment and
		// here; its session state is unrecoverable, so it must not rejoin.
		s.mu.Unlock()
		refuse("stale incarnation: this rank was declared dead")
		return
	}
	reattach := s.alive && s.nonce == h.Nonce
	if h.SentAt != 0 {
		// Clock-offset estimate: receive time minus the worker's send stamp.
		// One-way latency biases it by the network delay, which is orders of
		// magnitude below the superstep durations the offset aligns.
		off := time.Now().UnixNano() - h.SentAt
		s.telMu.Lock()
		s.clockOff = off
		s.telMu.Unlock()
	}
	welcome := encodeWelcome(welcomeFrame{
		Rank:        int32(s.rank),
		K:           int32(c.part.K),
		Epoch:       c.epoch.Load(),
		Trace:       c.trace,
		HBMillis:    uint32(c.opts.Heartbeat / time.Millisecond),
		LeaseMillis: uint32(c.opts.Lease / time.Millisecond),
	})
	// The slot stays locked through Welcome + attach so a racing handshake
	// for the same rank cannot interleave: the write is bounded by the
	// handshake write deadline, never indefinite.
	if err := conn.Send(fWelcome, welcome); err != nil { //lint:ignore lock-discipline bounded by HandshakeTimeout; slot state must not change until the Welcome is on the wire
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	conn.SetTimeouts(0, c.opts.HandshakeTimeout) //lint:ignore lock-discipline disarms socket deadlines; setter calls, no blocking I/O
	if reattach {
		sess := s.sess
		s.mu.Unlock()
		sess.Attach(conn) // replays the unacked tail
		c.mReconnects.Add(s.rank, 1)
		c.reconnects.Add(1)
	} else {
		if s.sess != nil {
			old := s.sess
			s.foldClosedLocked(old)
			_ = old.Close() //lint:ignore err-checked,lock-discipline superseded incarnation's session; Close only closes a chan and a conn, it does not wait
		}
		sess := distnet.NewSession(distnet.SessionConfig{RTO: c.opts.RTO}) //lint:ignore lock-discipline spawns the retransmit loop and returns; nothing blocks under s.mu
		s.sess = sess
		s.nonce = h.Nonce
		s.alive = true
		s.failed.Store(false)
		s.mu.Unlock()
		sess.Attach(conn)
		c.wg.Add(2)
		go c.pump(s, sess)
		go func() {
			defer c.wg.Done()
			distnet.Heartbeat(c.lifeCtx, sess, fHB, c.opts.Heartbeat)
		}()
	}
	c.mon.Touch(s.rank)
}

// assign picks the slot for a Hello, or explains the refusal. Called with
// c.mu held; returns with the choice made but nothing mutated.
func (c *Coordinator) assign(h helloFrame) (*slot, string) {
	if h.Rank >= int32(len(c.slots)) {
		return nil, fmt.Sprintf("rank %d out of range (K=%d)", h.Rank, len(c.slots))
	}
	if h.Rank >= 0 {
		s := c.slots[h.Rank]
		s.mu.Lock()
		defer s.mu.Unlock()
		if h.Nonce != 0 && h.Nonce == s.deadNonce {
			return nil, "stale incarnation: this rank was declared dead"
		}
		if s.alive && s.nonce != h.Nonce {
			return nil, "rank already held by a live worker"
		}
		return s, ""
	}
	// A retried anonymous join (lost Welcome) already holds a slot under this
	// nonce; route it back there rather than burning a second slot.
	if h.Nonce != 0 {
		for _, s := range c.slots {
			s.mu.Lock()
			mine := s.alive && s.nonce == h.Nonce
			s.mu.Unlock()
			if mine {
				return s, ""
			}
		}
	}
	for _, s := range c.slots {
		s.mu.Lock()
		free := !s.alive && (h.Nonce == 0 || h.Nonce != s.deadNonce)
		s.mu.Unlock()
		if free {
			return s, ""
		}
	}
	return nil, "cluster full"
}

// pump drains one incarnation's session: heartbeats feed the failure
// detector, StepDone frames flow to the driver, an Abort marks the rank
// failed. Exits when the session closes (death, replacement, or shutdown).
func (c *Coordinator) pump(s *slot, sess *distnet.Session) {
	defer c.wg.Done()
	for {
		m, err := sess.Recv(c.lifeCtx)
		if err != nil {
			return
		}
		c.mon.Touch(s.rank)
		switch m.Type {
		case fHB:
			// liveness only
		case fStepDone:
			f, err := decodeStepDone(m.Payload, c.part.K)
			if err != nil {
				s.failed.Store(true) // a garbled worker is a dead worker
				return
			}
			select {
			case s.frames <- f:
			case <-c.lifeCtx.Done():
				return
			}
		case fTelemetry:
			f, err := decodeTelemetry(m.Payload)
			if err != nil {
				s.failed.Store(true) // a garbled worker is a dead worker
				return
			}
			c.ingestTelemetry(s, &f)
		case fAbort:
			s.failed.Store(true)
			return
		default:
			// A frame the coordinator never expects mid-run — a Hello after
			// the handshake, an echoed coordinator-bound frame, a type this
			// version never negotiated — is a protocol violation, not future
			// growth: versions are pinned in the handshake, so a same-epoch
			// peer can never legitimately send an unknown type. Fail the
			// rank rather than let misrouted traffic vanish.
			s.failed.Store(true)
			return
		}
	}
}

// ingestTelemetry merges one rank's shipped batch into the coordinator's
// tracer (rank-tagged lane, clock-aligned starts) and the slot's telemetry
// counters. Runs on the pump goroutine — the driver's phase loop never sees
// telemetry at all.
func (c *Coordinator) ingestTelemetry(s *slot, f *telemetryFrame) {
	s.telMu.Lock()
	off := s.clockOff
	s.spansIn += int64(len(f.Spans))
	s.spansDrop = int64(f.Dropped)
	s.telSteps += f.Steps
	for i := range f.Spans {
		if d := f.Spans[i].Dur; d > s.stepLatMax {
			s.stepLatMax = d
		}
		s.stepLatSum += f.Spans[i].Dur
	}
	s.telMu.Unlock()
	c.mMessages.Add(s.rank, f.MsgsOut)

	tr := c.rec.Tracer()
	if tr == nil || len(f.Spans) == 0 {
		return
	}
	// Pump-side ingest: one slice per shipped batch (~64 supersteps), never
	// on the driver loop, so this allocation is off every hot path.
	spans := make([]obs.Span, len(f.Spans))
	for i, ts := range f.Spans {
		spans[i] = obs.Span{
			Cat:   "rank",
			Name:  opSpanName(ts.Op),
			Start: ts.Start + off,
			Dur:   ts.Dur,
			Arg:   ts.Arg,
			Lane:  int32(s.rank) + 1,
			Trace: f.Trace,
		}
	}
	tr.Ingest(spans)
}

// exportCluster publishes the per-rank snapshot behind /cluster: liveness,
// clock offsets, the rank-indexed health counters, and the telemetry
// aggregates the pumps accumulated. Called at phase boundaries and run end.
func (c *Coordinator) exportCluster() {
	if c.rec == nil {
		return
	}
	cs := obs.ClusterSnapshot{
		Trace:      obs.TraceHex(c.trace),
		Epoch:      int64(c.epoch.Load()),
		Supersteps: c.stats.Supersteps,
		Recoveries: c.stats.Recoveries,
		Ranks:      make([]obs.RankStatus, c.part.K),
		UpdatedAt:  time.Now().UnixNano(),
	}
	for i, s := range c.slots {
		rs := &cs.Ranks[i]
		rs.Rank = i
		s.mu.Lock()
		rs.Alive = s.alive
		rs.Retransmits = s.closedRetrans
		if s.sess != nil {
			rs.Retransmits += s.sess.Stats().Retransmits
		}
		s.mu.Unlock()
		s.telMu.Lock()
		rs.ClockOffsetNS = s.clockOff
		rs.SpansIngested = s.spansIn
		rs.SpansDropped = s.spansDrop
		rs.Steps = s.telSteps
		rs.StepLatencySumNS = s.stepLatSum
		rs.StepLatencyMaxNS = s.stepLatMax
		s.telMu.Unlock()
		rs.Reconnects = c.mReconnects.ValueAt(i)
		rs.Deaths = c.mDeaths.ValueAt(i)
	}
	c.rec.SetCluster(cs)
}

// --- superstep driver -----------------------------------------------------

// errRankDead tags a gather failure with the rank to recover.
type errRankDead struct {
	rank int
	err  error
}

func (e *errRankDead) Error() string { return fmt.Sprintf("rank %d: %v", e.rank, e.err) }
func (e *errRankDead) Unwrap() error { return e.err }

// dead reports whether the failure detector currently declares rank dead.
func (c *Coordinator) dead(rank int) error {
	s := c.slots[rank]
	if s.failed.Load() {
		return &distnet.PeerDownError{Peer: rank, MissedFor: "aborted"}
	}
	if silence, ok := c.mon.Silence(rank, time.Now()); ok && silence > c.opts.Lease {
		return &distnet.PeerDownError{Peer: rank, MissedFor: silence.Truncate(time.Millisecond).String()}
	}
	return nil
}

// round broadcasts one superstep order to every rank and gathers every
// response, returning them indexed by rank. scatterM carries the matching for
// opScatter rounds. On return the routed outboxes have replaced c.inboxes
// and the renewable merge is queued for the next round.
func (c *Coordinator) round(ctx context.Context, op byte, scatterM *matching.Matching) ([]stepDoneFrame, error) {
	c.ssid++
	epoch := c.epoch.Load()
	for rank, s := range c.slots {
		f := stepFrame{
			Epoch:    epoch,
			SSID:     c.ssid,
			Trace:    c.trace,
			Op:       op,
			RenewNew: c.renewNew,
			In:       c.inboxes[rank],
		}
		if op == opScatter {
			xlo, xhi := c.part.RangeX(rank)
			ylo, yhi := c.part.RangeY(rank)
			f.MateX = scatterM.MateX[xlo:xhi]
			f.MateY = scatterM.MateY[ylo:yhi]
		}
		c.stepBuf = encodeStep(c.stepBuf, &f)
		s.mu.Lock()
		sess := s.sess
		s.mu.Unlock()
		if sess == nil {
			return nil, &errRankDead{rank: rank, err: &distnet.PeerDownError{Peer: rank, MissedFor: "no session"}} //lint:ignore hotpath-alloc error exit, taken at most once per round
		}
		if err := sess.Send(fStep, c.stepBuf); err != nil {
			return nil, &errRankDead{rank: rank, err: err} //lint:ignore hotpath-alloc error exit, taken at most once per round
		}
	}
	c.stats.Messages += int64(len(c.renewNew) * (c.part.K - 1))
	c.mMessages.Add(0, int64(len(c.renewNew)*(c.part.K-1)))
	c.renewNew = c.renewNew[:0]

	results := make([]stepDoneFrame, c.part.K)
	for rank := range c.slots {
		f, err := c.gather(ctx, rank, epoch, c.ssid)
		if err != nil {
			return nil, &errRankDead{rank: rank, err: err} //lint:ignore hotpath-alloc error exit, taken at most once per round
		}
		results[rank] = f
	}

	// Route: rank d's next inbox is the concatenation of out[s][d] in source
	// order — the same deterministic alltoallv as the simulation.
	var msgs int64
	for dst := range c.inboxes {
		c.inboxes[dst] = c.inboxes[dst][:0]
	}
	for _, f := range results {
		for dst, box := range f.Out {
			c.inboxes[dst] = append(c.inboxes[dst], box...)
			msgs += int64(len(box))
		}
		c.renewNew = append(c.renewNew, f.NewRenew...)
	}
	c.stats.Supersteps++
	c.stats.Messages += msgs
	c.mSupersteps.Add(0, 1)
	c.mMessages.Add(0, msgs)
	return results, nil
}

// gather waits for rank's response to (epoch, ssid), discarding stale frames
// and watching the failure detector while it waits.
func (c *Coordinator) gather(ctx context.Context, rank int, epoch, ssid uint64) (stepDoneFrame, error) {
	s := c.slots[rank]
	tick := time.NewTicker(c.opts.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case f := <-s.frames:
			if f.Epoch != epoch || f.SSID != ssid {
				continue // leftover from a pre-recovery order
			}
			return f, nil
		case <-tick.C:
			if err := c.dead(rank); err != nil {
				return stepDoneFrame{}, err
			}
		case <-ctx.Done():
			return stepDoneFrame{}, ctx.Err()
		}
	}
}

// frontierTotal sums the frontier sizes a round reported.
func frontierTotal(results []stepDoneFrame) int64 {
	var n int64
	for i := range results {
		n += results[i].Info[0]
	}
	return n
}

// outboxTotal counts the messages a round routed (already merged into
// c.inboxes): the augmentation live() test.
func (c *Coordinator) outboxTotal() int64 {
	var n int64
	for _, in := range c.inboxes {
		n += int64(len(in))
	}
	return n
}

// Run executes the distributed matching over the connected (and still
// joining) workers, writing the final matching into m. It blocks until the
// run completes, the context expires, or recovery is exhausted. The partial
// matching gathered at the last completed phase is always left in m.
func (c *Coordinator) Run(ctx context.Context, m *matching.Matching) (ClusterStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.stats.Stats = &matching.Stats{
		Algorithm: "Cluster-MS-BFS-Graft",
		Threads:   c.part.K,
	}
	c.stats.Ranks = c.part.K
	c.stats.Trace = obs.TraceHex(c.trace)
	c.stats.InitialCardinality = m.Cardinality()
	start := time.Now()

	lastGood := m.Clone()
	if c.opts.CheckpointDir != "" {
		if snap, _, err := checkpoint.LoadLatest(c.opts.CheckpointDir, c.fp); err == nil && snap.Cardinality > lastGood.Cardinality() {
			copy(lastGood.MateX, snap.MateX)
			copy(lastGood.MateY, snap.MateY)
		}
	}

	err := c.awaitCluster(ctx)
	if err == nil {
		err = c.drive(ctx, lastGood)
	}

	copy(m.MateX, lastGood.MateX)
	copy(m.MateY, lastGood.MateY)
	c.finishStats(start, m, err)
	if err == nil {
		c.broadcastDone()
	}
	return c.stats, err
}

// awaitCluster waits (up to RejoinWait) for all K ranks to have joined, so a
// straggling first join reads as startup, not as a rank death to recover.
func (c *Coordinator) awaitCluster(ctx context.Context) error {
	deadline := time.Now().Add(c.opts.RejoinWait)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		joined := 0
		for _, s := range c.slots {
			s.mu.Lock()
			if s.alive {
				joined++
			}
			s.mu.Unlock()
		}
		if joined == c.part.K {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: %d of %d ranks joined within %v", joined, c.part.K, c.opts.RejoinWait) //lint:ignore hotpath-alloc error exit of a 10ms-tick wait loop
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// drive loops epochs: each attempt runs the phase loop from lastGood; a rank
// death rolls back here, recovers the rank, and retries. lastGood advances
// monotonically at every completed phase, so progress survives any number of
// rollbacks within the recovery budget.
func (c *Coordinator) drive(ctx context.Context, lastGood *matching.Matching) error {
	for {
		err := c.runEpoch(ctx, lastGood)
		if err == nil {
			return nil
		}
		var rd *errRankDead
		if !asRankDead(err, &rd) || ctx.Err() != nil {
			return err
		}
		if c.stats.Recoveries >= int64(c.opts.MaxRecoveries) {
			return fmt.Errorf("dist: recovery budget (%d) exhausted: %w", c.opts.MaxRecoveries, err) //lint:ignore hotpath-alloc error exit; the loop body is an entire epoch
		}
		if rerr := c.recoverRank(ctx, rd.rank); rerr != nil {
			return fmt.Errorf("dist: recovering rank %d: %w", rd.rank, rerr) //lint:ignore hotpath-alloc error exit; the loop body is an entire epoch
		}
	}
}

// asRankDead unwraps err into an *errRankDead if one is in the chain.
func asRankDead(err error, target **errRankDead) bool {
	for err != nil {
		if rd, ok := err.(*errRankDead); ok {
			*target = rd
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// recoverRank replaces a dead rank: bury the old incarnation, bump the
// epoch (in-flight traffic from before is now stale by construction),
// request a respawn, and wait for the replacement to join.
func (c *Coordinator) recoverRank(ctx context.Context, rank int) error {
	began := time.Now()
	c.stats.RankDeaths++
	c.stats.Recoveries++
	c.mDeaths.Add(rank, 1)
	c.mRecoveries.Add(rank, 1)
	c.epoch.Add(1)

	s := c.slots[rank]
	s.mu.Lock()
	sess := s.sess
	s.sess = nil
	s.deadNonce = s.nonce
	s.nonce = 0
	s.alive = false
	// The closed-session counters are s.mu state (handshake and
	// exportSessionStats touch them under the lock); fold them in before
	// releasing it.
	if sess != nil {
		s.foldClosedLocked(sess)
	}
	s.mu.Unlock()
	if sess != nil {
		_ = sess.Close()
	}
	c.mon.Forget(rank)
	c.drainFrames(s)

	if c.opts.Respawn != nil {
		if err := c.opts.Respawn(rank); err != nil {
			return err
		}
	}

	deadline := time.Now().Add(c.opts.RejoinWait)
	tick := time.NewTicker(c.opts.Heartbeat / 2)
	defer tick.Stop()
	for {
		s.mu.Lock()
		alive := s.alive
		s.mu.Unlock()
		if alive {
			d := time.Since(began)
			c.stats.RecoveryTime += d
			c.mRecMilli.Add(rank, d.Milliseconds())
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replacement for rank %d did not join within %v", rank, c.opts.RejoinWait) //lint:ignore hotpath-alloc error exit of a heartbeat-tick wait loop
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// drainFrames empties a slot's response queue so a new epoch starts clean.
func (c *Coordinator) drainFrames(s *slot) {
	for {
		select {
		case <-s.frames:
		default:
			return
		}
	}
}

// runEpoch runs the phase loop from lastGood until the matching is maximum,
// updating lastGood (and the checkpoint) at every phase boundary. Any error
// unwinds to drive for recovery.
func (c *Coordinator) runEpoch(ctx context.Context, lastGood *matching.Matching) error {
	// Fresh epoch: every rank reloads lastGood and full derived-state reset.
	for i := range c.inboxes {
		c.inboxes[i] = c.inboxes[i][:0]
	}
	c.renewNew = c.renewNew[:0]
	if _, err := c.round(ctx, opScatter, lastGood); err != nil {
		return err
	}
	results, err := c.round(ctx, opSeed, nil)
	if err != nil {
		return err
	}
	frontier := frontierTotal(results)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		phaseStart := time.Now()

		// BFS: expand/claim/apply per level until the global frontier drains.
		for frontier > 0 {
			if _, err := c.round(ctx, opExpand, nil); err != nil {
				return err
			}
			c.stats.EdgesTraversed += c.outboxTotal()
			if _, err := c.round(ctx, opClaim, nil); err != nil {
				return err
			}
			results, err = c.round(ctx, opApply, nil)
			if err != nil {
				return err
			}
			frontier = frontierTotal(results)
		}

		// Augment: token passing until no walk traffic remains.
		results, err = c.round(ctx, opAugInit, nil)
		if err != nil {
			return err
		}
		paths := frontierTotal(results)
		for c.outboxTotal() > 0 {
			if _, err := c.round(ctx, opAugStep, nil); err != nil {
				return err
			}
		}
		c.stats.AugPaths += paths
		c.stats.Phases++

		if err := c.phaseBoundary(ctx, lastGood, phaseStart); err != nil {
			return err
		}
		if paths == 0 {
			return nil
		}

		// Graft or rebuild, per the census.
		results, err = c.round(ctx, opCensus, nil)
		if err != nil {
			return err
		}
		var activeX, renewY int64
		for i := range results {
			activeX += results[i].Info[0]
			renewY += results[i].Info[1]
		}
		if c.opts.Grafting && float64(activeX) > float64(renewY)/c.opts.Alpha {
			c.stats.Grafts++
			if _, err := c.round(ctx, opGraftQuery, nil); err != nil {
				return err
			}
			c.stats.EdgesTraversed += c.outboxTotal()
			if _, err := c.round(ctx, opGraftAccept, nil); err != nil {
				return err
			}
			if _, err := c.round(ctx, opGraftAdopt, nil); err != nil {
				return err
			}
			results, err = c.round(ctx, opGraftApply, nil)
			if err != nil {
				return err
			}
		} else {
			c.stats.Rebuilds++
			results, err = c.round(ctx, opRebuild, nil)
			if err != nil {
				return err
			}
		}
		frontier = frontierTotal(results)
	}
}

// phaseBoundary gathers the now-consistent mate arrays into lastGood, saves
// the checkpoint, and exports the phase observability. This is the recovery
// anchor: everything after a rank death rolls back to the matching gathered
// here, which monotonicity makes safe.
func (c *Coordinator) phaseBoundary(ctx context.Context, lastGood *matching.Matching, phaseStart time.Time) error {
	results, err := c.round(ctx, opReportMates, nil)
	if err != nil {
		return err
	}
	for rank := range results {
		xlo, xhi := c.part.RangeX(rank)
		ylo, yhi := c.part.RangeY(rank)
		if len(results[rank].MateX) != int(xhi-xlo) || len(results[rank].MateY) != int(yhi-ylo) {
			return &ProtoError{Frame: "stepdone", Reason: fmt.Sprintf("rank %d mate sizes (%d,%d)", rank, len(results[rank].MateX), len(results[rank].MateY))} //lint:ignore hotpath-alloc protocol-violation exit, never taken on a healthy run
		}
		copy(lastGood.MateX[xlo:xhi], results[rank].MateX)
		copy(lastGood.MateY[ylo:yhi], results[rank].MateY)
	}
	card := lastGood.Cardinality()

	if c.opts.CheckpointDir != "" {
		snap := &checkpoint.Snapshot{
			Fingerprint: c.fp,
			Engine:      c.stats.Algorithm,
			Phase:       c.stats.Phases,
			Cardinality: card,
			Stats: checkpoint.CumulativeStats{
				Phases:             c.stats.Phases,
				EdgesTraversed:     c.stats.EdgesTraversed,
				AugPaths:           c.stats.AugPaths,
				InitialCardinality: c.stats.InitialCardinality,
				Grafts:             c.stats.Grafts,
				Rebuilds:           c.stats.Rebuilds,
			},
			MateX: lastGood.MateX,
			MateY: lastGood.MateY,
		}
		if _, err := checkpoint.Save(c.opts.CheckpointDir, snap); err != nil {
			return fmt.Errorf("dist: phase checkpoint: %w", err)
		}
	}

	c.mPhases.Add(0, 1)
	c.exportSessionStats()
	c.exportCluster()
	c.rec.Span("cluster", "phase", phaseStart, time.Since(phaseStart), card)
	c.rec.PhaseDone(c.stats.Algorithm, c.stats.Phases, card)
	if c.opts.OnPhase != nil {
		c.opts.OnPhase(c.stats.Phases, card)
	}
	return nil
}

// exportSessionStats folds the per-rank session counters into the stats and
// the retransmit delta into the metrics.
func (c *Coordinator) exportSessionStats() {
	var retrans, attach int64
	for _, s := range c.slots {
		s.mu.Lock()
		retrans += s.closedRetrans
		attach += s.closedAttach
		if s.sess != nil {
			st := s.sess.Stats()
			retrans += st.Retransmits
			attach += st.Attaches
		}
		s.mu.Unlock()
	}
	c.stats.Retransmits = retrans
	c.stats.Attaches = attach
	c.stats.Reconnects = c.reconnects.Load()
	if d := retrans - c.prevRetrans; d > 0 {
		c.mRetransmits.Add(0, d)
		c.prevRetrans = retrans
	}
}

// finishStats closes out the run-level statistics.
func (c *Coordinator) finishStats(start time.Time, m *matching.Matching, err error) {
	c.stats.Runtime = time.Since(start)
	c.stats.FinalCardinality = m.Cardinality()
	c.stats.Complete = err == nil
	c.exportSessionStats()
	c.exportCluster()
}

// broadcastDone tells every worker the run is complete and gives the final
// frames a moment to flush before teardown.
func (c *Coordinator) broadcastDone() {
	for _, s := range c.slots {
		s.mu.Lock()
		sess := s.sess
		s.mu.Unlock()
		if sess != nil {
			_ = sess.Send(fDone, nil)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, s := range c.slots {
		s.mu.Lock()
		sess := s.sess
		s.mu.Unlock()
		if sess == nil {
			continue
		}
		for sess.Pending() > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}
}
