package dist

import (
	"context"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
	"graftmatch/internal/par"
)

const none = matching.None

// Options configures the distributed engine.
type Options struct {
	// Ranks is the number of simulated distributed-memory ranks (K).
	Ranks int
	// Alpha is the graft-decision threshold (|activeX| > |renewableY|/α),
	// as in the shared-memory engine; 0 means 5.
	Alpha float64
	// Grafting toggles the tree-grafting frontier reconstruction; off,
	// every phase restarts from the unmatched X vertices.
	Grafting bool
	// Workers caps the goroutines driving rank supersteps; 0 means
	// GOMAXPROCS. Purely an execution detail of the simulation.
	Workers int

	// Faults, when non-nil, injects deterministic seeded network faults
	// (drops, duplicates, stalls) recovered by the retransmit/ack
	// transport; see Faults. The computed matching, superstep count, and
	// logical message count are identical to a fault-free run.
	Faults *Faults

	// OnPhase, when non-nil, is invoked on the driver goroutine after every
	// completed phase (augmentation done, mate arrays consistent) with the
	// phase count and the current cardinality.
	OnPhase func(phase, cardinality int64)

	// Recorder, when non-nil, receives superstep/message/retransmit
	// counters, per-superstep and per-phase spans, and phase status updates.
	// All recording happens on the driver goroutine between supersteps; the
	// nil default is a no-op.
	Recorder *obs.Recorder
}

// Stats extends the common matching statistics with the distributed cost
// model: superstep count (network rounds) and message volume.
type Stats struct {
	*matching.Stats
	Ranks      int
	Supersteps int64
	Messages   int64 // logical point-to-point messages (retransmits excluded)

	// Faults reports injected-fault and recovery counters; nil unless
	// Options.Faults enabled injection.
	Faults *FaultStats
}

// message kinds exchanged between ranks.
const (
	mClaim       uint8 = iota // a,b,c = y, x, root      → owner(y)
	mAddFrontier              // a,b   = x, root         → owner(x)
	mSetLeaf                  // a,b   = root, y         → owner(root)
	mWalkY                    // a,b   = y, root         → owner(y)
	mMatchReq                 // a,b,c = x, y, root      → owner(x)
	mMateAck                  // a,b   = y, x            → owner(y)
	mQuery                    // a,b   = x, y            → owner(x)
	mAccept                   // a,b,c = y, x, root      → owner(y)
)

type message struct {
	kind    uint8
	a, b, c int32
}

// rank holds the state a physical node would hold: its block of X and Y
// vertex state plus the replicated renewable-root bitmap.
type rank struct {
	id       int
	xlo, xhi int32
	ylo, yhi int32

	rootX []int32 // local X: tree root (global id)
	mateX []int32 // local X: mate (global Y id)
	leaf  []int32 // local X: augmenting-path leaf for owned roots

	visited []bool
	parentY []int32
	rootY   []int32
	mateY   []int32 // local Y: mate (global X id)

	renewable []bool // replicated: root → has an augmenting path

	frontier []int32 // owned X vertices in the current frontier

	newRenewable []int32 // owned roots turned renewable this superstep
	paths        int64   // augmenting walks initiated by this rank

	// Census scratch, reset and refilled by graft each phase so the
	// per-phase census appends reuse capacity instead of growing fresh
	// slices inside the parallel superstep body.
	renewY  []int32 // owned Y vertices in renewable (dead) trees
	activeY []int32 // owned Y vertices in still-active trees

	out [][]message // outboxes indexed by destination rank
	in  []message   // merged inbox for the current superstep
}

func (r *rank) send(dst int, m message) { r.out[dst] = append(r.out[dst], m) }

func (r *rank) lx(x int32) int32 { return x - r.xlo }
func (r *rank) ly(y int32) int32 { return y - r.ylo }

// active reports whether global X vertex x (owned by r) is in an active
// tree under the replicated renewable bitmap.
func (r *rank) active(x int32) bool {
	root := r.rootX[r.lx(x)]
	return root != none && !r.renewable[root]
}

// Engine runs the distributed MS-BFS-Graft simulation.
type Engine struct {
	g    *bipartite.Graph
	part Partition
	opts Options
	op   ops // shared per-rank superstep bodies (see ops.go)

	ranks []*rank
	tr    *transport // nil: the network is reliable

	// census accumulators indexed by rank id, reused across phases.
	censusAX, censusRY []int64

	stats Stats

	// Observability handles; all nil-safe (nil Recorder → nil counters →
	// no-op Add). lastSS anchors per-superstep spans; prevFaults is the cut
	// against which fault-counter deltas are exported at phase boundaries.
	rec                                *obs.Recorder
	mSupersteps, mMessages, mPhases    *obs.Counter
	mRetransmits, mAcksLost, mTimeouts *obs.Counter
	lastSS                             time.Time
	prevFaults                         FaultStats
}

// New prepares a distributed run over g with an initial matching m (the
// mate arrays are scattered to their owners; m is not mutated until Run).
func New(g *bipartite.Graph, opts Options) *Engine {
	if opts.Ranks < 1 {
		opts.Ranks = 1
	}
	if opts.Alpha <= 0 {
		opts.Alpha = 5
	}
	if opts.Workers <= 0 {
		opts.Workers = par.DefaultWorkers()
	}
	e := &Engine{
		g:    g,
		part: NewPartition(opts.Ranks, g.NX(), g.NY()),
		opts: opts,
	}
	e.op = ops{g: g, part: e.part}
	e.ranks = make([]*rank, e.part.K)
	for i := range e.ranks {
		e.ranks[i] = newRank(e.part, g.NX(), i)
	}
	e.censusAX = make([]int64, e.part.K)
	e.censusRY = make([]int64, e.part.K)
	if opts.Faults != nil {
		e.stats.Faults = &FaultStats{}
		e.tr = newTransport(*opts.Faults, e.stats.Faults)
	}
	e.rec = opts.Recorder
	e.mSupersteps = e.rec.Counter("graftmatch_dist_supersteps_total", "BSP supersteps (network rounds) executed")
	e.mMessages = e.rec.Counter("graftmatch_dist_messages_total", "logical point-to-point messages plus collective broadcast volume")
	e.mPhases = e.rec.Counter("graftmatch_dist_phases_total", "completed distributed search phases")
	e.mRetransmits = e.rec.Counter("graftmatch_dist_retransmits_total", "transport retransmits recovering dropped packets")
	e.mAcksLost = e.rec.Counter("graftmatch_dist_acks_lost_total", "acknowledgements lost in transit (sender retransmits a delivered packet)")
	e.mTimeouts = e.rec.Counter("graftmatch_dist_timeouts_total", "per-packet delivery attempts that exhausted the retransmit budget")
	return e
}

// Run computes a maximum cardinality matching of g starting from m,
// updating m in place, and returns the distributed execution statistics.
func Run(g *bipartite.Graph, m *matching.Matching, opts Options) Stats {
	stats, err := RunCtx(context.Background(), g, m, opts)
	if err != nil {
		// Background is never cancelled, so RunCtx cannot fail here;
		// preserve the invariant loudly rather than return bogus stats.
		panic(err) //lint:ignore err-checked unreachable guard: Background context cannot expire
	}
	return stats
}

// RunCtx is Run under a cancellation context, checked at superstep-safe
// points: between BFS levels and at phase boundaries, where the scattered
// mate arrays are consistent (augmentation walks are never interrupted
// mid-flight). On expiry the partial matching gathered into m is valid and
// contains everything matched at the last safe point — the monotonicity the
// shared-memory engine also guarantees — and the returned stats have
// Complete=false alongside the context's error.
func RunCtx(ctx context.Context, g *bipartite.Graph, m *matching.Matching, opts Options) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := New(g, opts)
	e.stats.Stats = &matching.Stats{
		Algorithm: "Dist-MS-BFS-Graft",
		Threads:   e.part.K,
	}
	e.stats.Ranks = e.part.K
	e.stats.InitialCardinality = m.Cardinality()
	start := time.Now()
	e.scatter(m)
	err := e.run(ctx)
	e.gather(m)
	e.stats.Runtime = time.Since(start)
	e.stats.FinalCardinality = m.Cardinality()
	e.stats.Complete = err == nil
	return e.stats, err
}

// scatter distributes the initial matching and resets per-rank state.
func (e *Engine) scatter(m *matching.Matching) {
	e.eachRank(func(r *rank) {
		e.op.scatter(r, m.MateX[r.xlo:r.xhi], m.MateY[r.ylo:r.yhi])
	})
}

// gather collects the final mate arrays back into m.
func (e *Engine) gather(m *matching.Matching) {
	for _, r := range e.ranks {
		for x := r.xlo; x < r.xhi; x++ {
			m.MateX[x] = r.mateX[r.lx(x)]
		}
		for y := r.ylo; y < r.yhi; y++ {
			m.MateY[y] = r.mateY[r.ly(y)]
		}
	}
}

// eachRank runs body on every rank concurrently and waits (one superstep's
// compute part).
func (e *Engine) eachRank(body func(*rank)) {
	par.ForDynamic(e.opts.Workers, len(e.ranks), 1, func(_ int, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(e.ranks[i])
		}
	})
}

// exchange delivers all outboxes: rank d's inbox becomes the concatenation
// of out[s][d] in source order (a deterministic alltoallv), and the
// replicated renewable bitmap absorbs every rank's newRenewable roots (a
// collective, always on the reliable channel). Under fault injection the
// point-to-point deliveries route through the retransmit/ack transport,
// which reassembles each inbox in the exact same order.
func (e *Engine) exchange() {
	e.stats.Supersteps++
	var allNew []int32
	for _, r := range e.ranks {
		allNew = takeNewRenewable(r, allNew)
	}
	var msgs int64
	for _, s := range e.ranks {
		for dst := range s.out {
			msgs += int64(len(s.out[dst]))
		}
	}
	total := msgs + int64(len(allNew)*(e.part.K-1))
	e.stats.Messages += total
	e.mSupersteps.Add(0, 1)
	e.mMessages.Add(0, total)
	if e.rec != nil {
		// One span per superstep: compute since the previous exchange plus
		// this delivery, with the message volume as the argument. The nil
		// guard keeps time.Now out of unobserved runs entirely.
		now := time.Now()
		if !e.lastSS.IsZero() {
			e.rec.Span("dist", "superstep", e.lastSS, now.Sub(e.lastSS), total)
		}
		e.lastSS = now
	}

	if e.tr != nil {
		e.tr.deliver(e.ranks) // fills every inbox, clears every outbox
		e.eachRank(func(d *rank) {
			e.op.mergeRenewable(d, allNew)
		})
		return
	}
	e.eachRank(func(d *rank) {
		d.in = d.in[:0]
		for _, s := range e.ranks {
			d.in = append(d.in, s.out[d.id]...)
		}
		e.op.mergeRenewable(d, allNew)
	})
	for _, s := range e.ranks {
		for dst := range s.out {
			s.out[dst] = s.out[dst][:0]
		}
	}
}

// netErr surfaces a tripped transport outage (Faults.FailAfterTimeouts).
// Polled at the same safe points as the context — never mid-augmentation —
// so the gathered matching is always consistent when it fires.
func (e *Engine) netErr() error {
	if e.tr != nil && e.tr.failed {
		return &TransientError{Timeouts: e.stats.Faults.Timeouts}
	}
	return nil
}

func (e *Engine) run(ctx context.Context) error {
	e.seedFromUnmatched()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.netErr(); err != nil {
			return err
		}
		phaseStart := time.Now()
		if err := e.bfs(ctx); err != nil {
			return err
		}
		paths := e.augment()
		e.stats.Phases++
		e.phaseDone(phaseStart)
		if paths == 0 {
			return nil
		}
		e.graft()
	}
}

// phaseDone exports the phase boundary: fault-counter deltas since the last
// cut, one phase span, the recorder status update, and the OnPhase hook. The
// mate arrays are consistent here (augmentation walks have drained), so the
// reported cardinality is the matching a gather at this instant would see.
func (e *Engine) phaseDone(phaseStart time.Time) {
	card := e.stats.InitialCardinality + e.stats.AugPaths
	e.mPhases.Add(0, 1)
	if f := e.stats.Faults; f != nil {
		e.mRetransmits.Add(0, f.Retransmits-e.prevFaults.Retransmits)
		e.mAcksLost.Add(0, f.AcksLost-e.prevFaults.AcksLost)
		e.mTimeouts.Add(0, f.Timeouts-e.prevFaults.Timeouts)
		e.prevFaults = *f
	}
	e.rec.Span("dist", "phase", phaseStart, time.Since(phaseStart), card)
	e.rec.PhaseDone(e.stats.Algorithm, e.stats.Phases, card)
	if e.opts.OnPhase != nil {
		e.opts.OnPhase(e.stats.Phases, card)
	}
}

// seedFromUnmatched roots a fresh singleton tree at every owned unmatched X.
func (e *Engine) seedFromUnmatched() {
	e.eachRank(e.op.seed)
}

// frontierEmpty checks global frontier emptiness (an allreduce in MPI).
func (e *Engine) frontierEmpty() bool {
	for _, r := range e.ranks {
		if len(r.frontier) > 0 {
			return false
		}
	}
	return true
}

// bfs grows the alternating forest level-synchronously: an expand superstep
// sends claims to Y owners, a claim superstep resolves ownership and routes
// frontier additions and leaf discoveries, an apply superstep installs them.
// The context is polled between levels — forest state is partial there, but
// the mate arrays are untouched, so stopping is always safe.
func (e *Engine) bfs(ctx context.Context) error {
	// The superstep bodies are loop-invariant; binding them once per bfs
	// call keeps the level loop free of per-iteration closure allocations.
	expand := e.op.expand
	claim := func(r *rank) { e.op.claim(r, r.in) }
	apply := func(r *rank) { e.op.apply(r, r.in) }
	for !e.frontierEmpty() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.netErr(); err != nil {
			return err
		}
		e.eachRank(expand)
		e.countEdges()
		e.exchange()

		e.eachRank(claim)
		e.exchange()

		e.eachRank(apply)
		e.exchange()
	}
	return nil
}

// countEdges folds the expand superstep's traversal volume into the stats.
func (e *Engine) countEdges() {
	// Edge counting happens inline above via closures writing local vars;
	// recompute cheaply instead: traversal equals claims sent this round.
	var claims int64
	for _, r := range e.ranks {
		for dst := range r.out {
			claims += int64(len(r.out[dst]))
		}
	}
	e.stats.EdgesTraversed += claims
}

// augment walks every discovered augmenting path by token passing:
// a Y-side token asks parentY's owner to rematch, an X-side token flips the
// mate and forwards the walk toward the root.
func (e *Engine) augment() int64 {
	// Initiate a walk per owned renewable root.
	e.eachRank(e.op.augInit)

	live := func() bool {
		for _, r := range e.ranks {
			for dst := range r.out {
				if len(r.out[dst]) > 0 {
					return true
				}
			}
		}
		return false
	}

	// Loop-invariant token-passing body, hoisted so each walk round does
	// not allocate a fresh closure.
	step := func(r *rank) { e.op.augStep(r, r.in) }
	for live() {
		e.exchange()
		e.eachRank(step)
	}

	var total int64
	for _, r := range e.ranks {
		total += r.paths
		r.paths = 0
	}
	e.stats.AugPaths += total
	return total
}

// graft is the distributed Algorithm 7: census by allreduce, renewable-Y
// reset, and either an offer/accept grafting exchange or a full restart
// from the unmatched X vertices.
func (e *Engine) graft() {
	e.eachRank(func(r *rank) {
		e.censusAX[r.id], e.censusRY[r.id] = e.op.census(r)
	})
	var activeX, renewYTotal int64
	for i := range e.ranks {
		activeX += e.censusAX[i]
		renewYTotal += e.censusRY[i]
	}

	if e.opts.Grafting && float64(activeX) > float64(renewYTotal)/e.opts.Alpha {
		// Offer/accept grafting: freed Y vertices query the owners of
		// their neighbors; owners of active X vertices accept; each Y
		// adopts its first acceptance.
		e.stats.Grafts++
		e.eachRank(e.op.graftQuery)
		e.countEdges()
		e.exchange()
		e.eachRank(func(r *rank) { e.op.graftAccept(r, r.in) })
		e.exchange()
		e.eachRank(func(r *rank) { e.op.graftAdopt(r, r.in) })
		e.exchange()
		e.eachRank(func(r *rank) { e.op.graftApply(r, r.in) })
		e.exchange()
		return
	}

	// Rebuild: destroy active trees and restart from unmatched X.
	e.stats.Rebuilds++
	e.eachRank(e.op.rebuild)
}
