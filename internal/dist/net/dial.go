package net

import (
	"context"
	gonet "net"
	"strings"
	"time"
)

// Network guesses the network for an address: paths ("/run/x.sock", "./x")
// are unix sockets, everything else is TCP — so one -dist-listen/-dist-join
// flag covers both transports.
func Network(addr string) string {
	if strings.HasPrefix(addr, "/") || strings.HasPrefix(addr, "./") || strings.HasPrefix(addr, "@") {
		return "unix"
	}
	return "tcp"
}

// DialOnce makes a single connection attempt.
func DialOnce(ctx context.Context, addr string, cfg Config) (*Conn, error) {
	var d gonet.Dialer
	c, err := d.DialContext(ctx, Network(addr), addr)
	if err != nil {
		return nil, classify("dial", err)
	}
	return NewConn(c, cfg), nil
}

// Dial connects to addr, retrying with jittered capped backoff until it
// succeeds or ctx expires — the reconnect path a rank takes when its
// coordinator restarts, or the first join of a cluster that is still coming
// up. bo may be shared across calls to preserve escalation; nil uses a
// fresh default schedule.
func Dial(ctx context.Context, addr string, cfg Config, bo *Backoff) (*Conn, error) {
	if bo == nil {
		bo = &Backoff{}
	}
	var lastErr error
	for {
		c, err := DialOnce(ctx, addr, cfg)
		if err == nil {
			bo.Reset()
			return c, nil
		}
		lastErr = err
		t := time.NewTimer(bo.Next())
		select {
		case <-ctx.Done():
			t.Stop()
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, classify("dial", ctx.Err())
		case <-t.C:
		}
	}
}
