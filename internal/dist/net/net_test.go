package net

import (
	"errors"
	gonet "net"
	"testing"
	"time"
)

// connPair returns two framed conns over a real loopback TCP connection.
func connPair(t *testing.T, cfg Config) (*Conn, *Conn) {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   gonet.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	cl, err := gonet.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	c1, c2 := NewConn(cl, cfg), NewConn(a.c, cfg)
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return c1, c2
}

func TestFrameRoundTrip(t *testing.T) {
	c1, c2 := connPair(t, Config{})
	payload := []byte("tree grafting")
	if err := c1.Send(7, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != 7 || string(got) != string(payload) {
		t.Fatalf("got type %d payload %q", typ, got)
	}
	// Empty payloads are legal frames (heartbeats).
	if err := c2.Send(9, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err = c1.Recv()
	if err != nil || typ != 9 || len(got) != 0 {
		t.Fatalf("empty frame: type %d payload %q err %v", typ, got, err)
	}
}

func TestOversizedFrameRejectedTyped(t *testing.T) {
	// The receiver caps frames below what the sender emits: the length
	// header alone must reject the frame before any allocation.
	c1, c2 := connPair(t, Config{})
	c2.cfg.Limits = Limits{MaxFrame: 16}
	if err := c1.Send(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	_, _, err := c2.Recv()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FrameError", err)
	}
	if fe.Size != 64 {
		t.Fatalf("FrameError.Size = %d, want 64", fe.Size)
	}
}

func TestMalformedHeaderIsError(t *testing.T) {
	// A peer that writes garbage shorter than a header yields an I/O error,
	// not a hang or panic.
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write([]byte{0x01, 0x00}) //lint:ignore err-checked test peer writes a deliberately truncated header
		c.Close()
	}()
	cl, err := gonet.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := NewConn(cl, Config{})
	if _, _, err := c.Recv(); err == nil {
		t.Fatal("truncated header did not error")
	}
	<-done
}

func TestReservedTypeRejectedOnSend(t *testing.T) {
	c1, _ := connPair(t, Config{})
	var fe *FrameError
	if err := c1.Send(typeAck, nil); !errors.As(err, &fe) {
		t.Fatalf("reserved-type send: got %v, want *FrameError", err)
	}
}

func TestReadDeadlineSurfacesTransient(t *testing.T) {
	c1, _ := connPair(t, Config{ReadTimeout: 30 * time.Millisecond})
	_, _, err := c1.Recv()
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want *TransportError", err)
	}
	if !te.Timeout || !te.Transient() {
		t.Fatalf("deadline expiry should be a transient timeout, got %+v", te)
	}
}

func TestBackoffJitteredAndCapped(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 1}
	want := []time.Duration{10, 20, 40, 80, 80, 80} // nominal (pre-jitter) ladder, ms
	for i, nominal := range want {
		nominal *= time.Millisecond
		d := b.Next()
		if d < nominal/2 || d > nominal {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, nominal/2, nominal)
		}
	}
	b.Reset()
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("after Reset, delay %v exceeds base", d)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := &Backoff{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: seed}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMonitorExpiry(t *testing.T) {
	m := NewMonitor(50*time.Millisecond, 4) // deadline: 200ms of silence
	m.Touch(0)
	m.Touch(1)
	if dead := m.Expired(time.Now()); len(dead) != 0 {
		t.Fatalf("fresh peers reported dead: %v", dead)
	}
	// Keep peer 1 chatty while peer 0 goes silent well past the deadline.
	for start := time.Now(); time.Since(start) < 250*time.Millisecond; {
		time.Sleep(20 * time.Millisecond)
		m.Touch(1)
	}
	dead := m.Expired(time.Now())
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("expired = %v, want [0]", dead)
	}
	if s, ok := m.Silence(0, time.Now()); !ok || s < m.Deadline() {
		t.Fatalf("Silence(0) = %v, %v; want >= %v", s, ok, m.Deadline())
	}
	m.Forget(0)
	if dead := m.Expired(time.Now().Add(time.Hour)); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("after Forget(0), expired = %v, want [1]", dead)
	}
}

func TestNetworkGuess(t *testing.T) {
	for addr, want := range map[string]string{
		"127.0.0.1:9000": "tcp",
		"host:1":         "tcp",
		"/tmp/x.sock":    "unix",
		"./rank0.sock":   "unix",
		"@abstract":      "unix",
	} {
		if got := Network(addr); got != want {
			t.Fatalf("Network(%q) = %q, want %q", addr, got, want)
		}
	}
}
