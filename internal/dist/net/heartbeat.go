package net

import (
	"context"
	"sync"
	"time"
)

// Monitor is the heartbeat-based failure detector: the owner calls Touch on
// every frame received from a peer (heartbeats included), and Expired
// reports peers silent past Interval*Miss. Pure bookkeeping — the owner
// decides what death means (respawn a rank, abort a minority partition).
type Monitor struct {
	interval time.Duration
	miss     int

	mu   sync.Mutex
	last map[int]time.Time
}

// NewMonitor tracks peers with the given heartbeat interval, declaring a
// peer dead after miss consecutive intervals of silence (miss < 2 means 2,
// so one delayed heartbeat is never a death sentence).
func NewMonitor(interval time.Duration, miss int) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	if miss < 2 {
		miss = 2
	}
	return &Monitor{interval: interval, miss: miss, last: make(map[int]time.Time)}
}

// Deadline is the silence duration past which a peer is declared dead.
func (m *Monitor) Deadline() time.Duration {
	return m.interval * time.Duration(m.miss)
}

// Interval is the expected heartbeat period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// Touch records life from peer id.
func (m *Monitor) Touch(id int) {
	now := time.Now()
	m.mu.Lock()
	m.last[id] = now
	m.mu.Unlock()
}

// Forget stops tracking peer id (it left cleanly or was replaced).
func (m *Monitor) Forget(id int) {
	m.mu.Lock()
	delete(m.last, id)
	m.mu.Unlock()
}

// Expired returns the tracked peers whose silence has passed the deadline,
// in ascending id order is NOT guaranteed; callers sort if they care.
func (m *Monitor) Expired(now time.Time) []int {
	dl := m.Deadline()
	m.mu.Lock()
	defer m.mu.Unlock()
	var dead []int
	for id, t := range m.last {
		if now.Sub(t) > dl {
			dead = append(dead, id)
		}
	}
	return dead
}

// Silence reports how long peer id has been quiet; ok is false for an
// untracked peer.
func (m *Monitor) Silence(id int, now time.Time) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.last[id]
	if !ok {
		return 0, false
	}
	return now.Sub(t), true
}

// Heartbeat sends unreliable frames of type typ on s every interval until
// ctx is done. It runs on the caller's goroutine choice; typical use is
//
//	go net.Heartbeat(ctx, sess, fHB, interval)
//
// and the ctx cancellation is the join signal.
func Heartbeat(ctx context.Context, s *Session, typ byte, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.SendUnreliable(typ, nil); err != nil {
				return // session closed; nothing left to keep alive
			}
		}
	}
}
