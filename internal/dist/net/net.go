// Package net is the wire transport under the distributed matching runtime:
// length-framed messages over TCP or unix sockets, a reliable in-order
// session layer (sequence numbers, cumulative acks, retransmit with jittered
// capped backoff, reconnect-and-replay), heartbeat-based peer-failure
// detection, and a frame-aware chaos proxy that extends the in-process fault
// injection of internal/dist/faults to the wire.
//
// The package knows nothing about matching: it moves (type, payload) frames
// between peers and tells its owner when a peer has gone quiet. The
// superstep protocol, recovery state machine, and checkpoint integration
// live one layer up, in internal/dist.
//
// Failure surfaces as typed errors at well-defined points instead of wedges:
// a hung peer trips a read/write deadline (*TransportError, transient), a
// malformed or oversized frame is rejected before any size-dependent
// allocation (*FrameError, the mmio.Limits allocation-bomb pattern), and a
// peer that stops heartbeating is reported by the Monitor so the owner can
// abort or recover at a superstep barrier.
package net

import (
	"fmt"
)

// DefaultMaxFrame bounds an inbound frame's payload when Limits.MaxFrame is
// zero: large enough for a full superstep exchange on big instances, small
// enough that a hostile or corrupt length header cannot drive an
// allocation bomb.
const DefaultMaxFrame = 256 << 20 // 256 MiB

// Limits bounds what the framing layer accepts, checked before any
// size-dependent allocation so corrupt or hostile length headers fail fast
// instead of exhausting memory — the same policy-before-allocation pattern
// as mmio.Limits. The zero value applies the package defaults.
type Limits struct {
	// MaxFrame caps one frame's payload in bytes; 0 means DefaultMaxFrame.
	MaxFrame int
}

func (l Limits) maxFrame() int {
	if l.MaxFrame > 0 {
		return l.MaxFrame
	}
	return DefaultMaxFrame
}

// FrameError reports a malformed or oversized inbound frame: a length header
// beyond Limits.MaxFrame, a reserved frame type from the application, or a
// truncated header. It is not transient — the stream is unsynchronized and
// the connection must be torn down.
type FrameError struct {
	Reason string
	Size   int // declared payload size, when the error is about size
}

func (e *FrameError) Error() string {
	if e.Size > 0 {
		return fmt.Sprintf("distnet: bad frame: %s (%d bytes)", e.Reason, e.Size)
	}
	return "distnet: bad frame: " + e.Reason
}

// TransportError wraps an I/O failure on the wire: a read/write deadline
// expiry (Timeout), a broken connection, a dial failure. It is transient —
// the session layer reconnects and replays — so a supervisor retries rather
// than degrading.
type TransportError struct {
	Op      string // "read", "write", "dial", "accept"
	Timeout bool
	Err     error
}

func (e *TransportError) Error() string {
	if e.Timeout {
		return fmt.Sprintf("distnet: %s deadline exceeded: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("distnet: %s: %v", e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Transient marks the error retryable (see supervise.Transient).
func (e *TransportError) Transient() bool { return true }

// PeerDownError reports a peer declared dead by heartbeat monitoring: no
// frame arrived for MissedFor, past the monitor's deadline. For a worker
// rank this is the split-brain guard — a rank cut off from its coordinator
// must abort rather than compute on alone.
type PeerDownError struct {
	Peer      int
	MissedFor string // human-readable silence duration
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("distnet: peer %d down (no frame for %s)", e.Peer, e.MissedFor)
}

// Transient marks the error retryable at the cluster level: the peer may be
// respawned and the run recovered from a checkpoint.
func (e *PeerDownError) Transient() bool { return true }
