package net

import (
	"math/rand"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos configures the proxy's fault injection, the wire-level counterpart
// of dist.Faults: probabilities are per frame per direction, all randomness
// is drawn from Seed so a failing schedule replays.
type Chaos struct {
	// Seed drives the fault schedule; 0 seeds from the clock.
	Seed int64

	// Drop is the probability a forwarded frame is silently discarded.
	Drop float64

	// Duplicate is the probability a forwarded frame is sent twice.
	Duplicate float64

	// Latency delays every forwarded frame; Jitter adds a uniform random
	// extra on top. Because frames in one direction forward serially, high
	// latency also models a slow (throttled) rank.
	Latency time.Duration
	Jitter  time.Duration
}

// Proxy is a frame-aware man-in-the-middle for chaos testing: it listens on
// a local address, forwards framed traffic to a target, and injects drops,
// duplication, latency, and full partitions at frame granularity. Framing
// awareness is what makes drops meaningful — discarding raw bytes would
// desynchronize the stream, whereas dropping whole frames exercises exactly
// the retransmit/replay machinery the session layer exists for.
type Proxy struct {
	target string
	chaos  Chaos
	lim    Limits

	ln          gonet.Listener
	partitioned atomic.Bool
	closed      atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	conns []gonet.Conn

	wg sync.WaitGroup

	nDropped, nDuplicated, nForwarded atomic.Int64
}

// ChaosStats counts what the proxy did to the traffic.
type ChaosStats struct {
	Forwarded, Dropped, Duplicated int64
}

// NewProxy starts a chaos proxy on a fresh loopback address in front of
// target ("host:port", or a unix socket path). Close shuts it down.
func NewProxy(target string, chaos Chaos, lim Limits) (*Proxy, error) {
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, &TransportError{Op: "accept", Err: err}
	}
	seed := chaos.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &Proxy{
		target: target,
		chaos:  chaos,
		lim:    lim,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
	}
	p.wg.Add(1) //lint:ignore wg-balance acceptLoop's first deferred statement is the matching Done
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; peers dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPartition toggles a full partition: while on, every frame in both
// directions is black-holed (connections stay open — the network is down,
// not the peer). Heartbeats stop flowing, so monitors on both sides expire.
func (p *Proxy) SetPartition(on bool) { p.partitioned.Store(on) }

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() ChaosStats {
	return ChaosStats{
		Forwarded:  p.nForwarded.Load(),
		Dropped:    p.nDropped.Load(),
		Duplicated: p.nDuplicated.Load(),
	}
}

// Close stops the proxy and severs every proxied connection.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	conns := append([]gonet.Conn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		out, err := gonet.Dial(Network(p.target), p.target)
		if err != nil {
			_ = in.Close()
			continue
		}
		p.track(in, out)
		p.wg.Add(2)
		go p.pipe(in, out)
		go p.pipe(out, in)
	}
}

func (p *Proxy) track(cs ...gonet.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, cs...)
	p.mu.Unlock()
}

// roll draws from the shared seeded source.
func (p *Proxy) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

func (p *Proxy) jitter() time.Duration {
	if p.chaos.Jitter <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.Int63n(int64(p.chaos.Jitter)))
}

// pipe forwards frames src→dst, injecting the configured faults. It exits
// when either side closes; closing src makes the sibling pipe exit too.
func (p *Proxy) pipe(src, dst gonet.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = src.Close()
		_ = dst.Close()
	}()
	var buf []byte
	var wbuf []byte
	for {
		typ, payload, newBuf, err := readFrame(src, p.lim, buf)
		buf = newBuf
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			p.nDropped.Add(1)
			continue // black hole: the bytes died on the wire
		}
		if p.chaos.Drop > 0 && p.roll() < p.chaos.Drop {
			p.nDropped.Add(1)
			continue
		}
		if d := p.chaos.Latency + p.jitter(); d > 0 {
			time.Sleep(d)
		}
		wbuf = appendFrame(wbuf[:0], typ, payload)
		if _, err := dst.Write(wbuf); err != nil {
			return
		}
		p.nForwarded.Add(1)
		if p.chaos.Duplicate > 0 && p.roll() < p.chaos.Duplicate {
			if _, err := dst.Write(wbuf); err != nil {
				return
			}
			p.nDuplicated.Add(1)
		}
	}
}
