package net

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// unreliableSeq marks a frame outside the reliable stream (heartbeats):
// delivered if it arrives, never buffered, retransmitted, or acked.
const unreliableSeq = ^uint64(0)

// ErrSessionClosed is returned by Send and Recv after Close.
var ErrSessionClosed = errors.New("distnet: session closed")

// ErrBacklog is returned by Send when the unacked buffer is full: the peer
// has been unreachable for long enough that reliable delivery would need
// unbounded memory. The cluster layer treats the peer as failed.
var ErrBacklog = errors.New("distnet: session backlog full (peer unreachable)")

// Msg is one application frame delivered by a Session. The payload is owned
// by the receiver.
type Msg struct {
	Type    byte
	Payload []byte
}

// SessionStats counts the session's reliability work.
type SessionStats struct {
	FramesSent  int64 // first transmissions of reliable frames
	FramesRecv  int64 // frames delivered to the application
	Retransmits int64 // second-and-later transmissions
	Attaches    int64 // connections attached (first attach included)
	Discarded   int64 // duplicate or out-of-order frames dropped by go-back-N
}

// SessionConfig tunes a Session.
type SessionConfig struct {
	// RTO is the retransmit backoff schedule (jittered, capped). The zero
	// value uses the Backoff defaults.
	RTO BackoffConfig

	// MaxUnacked bounds the buffered unacked frames before Send fails with
	// ErrBacklog; 0 means 1<<16.
	MaxUnacked int

	// RecvBuffer is the delivered-message channel capacity; 0 means 1024.
	RecvBuffer int
}

// Session is a reliable, in-order, exactly-once frame stream over a
// replaceable connection. Every reliable frame carries a sequence number;
// the receiver delivers in order, discards duplicates, and acks
// cumulatively; the sender buffers frames until acked, retransmits on a
// jittered capped backoff (go-back-N), and replays the unacked tail when a
// fresh connection is attached after a drop — so a chaos proxy losing
// frames, a TCP reset, or a brief partition delays the stream but never
// corrupts it.
//
// One goroutine owns Recv; Send is safe for concurrent use. The owner
// learns about a lost connection via Detached and decides whether to
// re-dial (workers) or await a re-accept (the coordinator).
type Session struct {
	cfg SessionConfig
	rto *Backoff

	mu      sync.Mutex
	conn    *Conn
	gen     int // attach generation; readLoops from older conns are ignored
	out     []outFrame
	nextSeq uint64 // seq assigned to the next reliable Send
	acked   uint64 // highest cumulatively acked outbound seq
	expect  uint64 // next inbound seq to deliver
	closed  bool

	recvCh   chan Msg
	detachCh chan struct{}
	closeCh  chan struct{}
	wg       sync.WaitGroup

	nSent, nRecv, nRetrans, nAttach, nDiscard atomic.Int64
}

// outFrame is one unacked reliable frame in wire form (seq-prefixed
// payload), kept for retransmission and reconnect replay.
type outFrame struct {
	seq  uint64
	typ  byte
	wire []byte // 8-byte seq + application payload
}

// NewSession creates a detached session; Attach connects it. Close releases
// its retransmit goroutine.
func NewSession(cfg SessionConfig) *Session {
	if cfg.MaxUnacked <= 0 {
		cfg.MaxUnacked = 1 << 16
	}
	if cfg.RecvBuffer <= 0 {
		cfg.RecvBuffer = 1024
	}
	s := &Session{
		cfg:      cfg,
		rto:      cfg.RTO.New(),
		nextSeq:  1,
		expect:   1,
		recvCh:   make(chan Msg, cfg.RecvBuffer),
		detachCh: make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
	}
	s.wg.Add(1) //lint:ignore wg-balance retransmitLoop's first deferred statement is the matching Done
	go s.retransmitLoop()
	return s
}

// Attach puts a live connection under the session and replays every unacked
// frame. The previous connection, if any, is closed. Safe to call from any
// goroutine; typically the dial/accept path.
func (s *Session) Attach(c *Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = c.Close()
		return
	}
	if s.conn != nil {
		_ = s.conn.Close() //lint:ignore err-checked,lock-discipline superseded connection; Close tears down a socket without waiting
	}
	s.conn = c
	s.gen++
	gen := s.gen
	replay := make([]outFrame, len(s.out))
	copy(replay, s.out)
	s.mu.Unlock()
	s.nAttach.Add(1)

	for _, f := range replay {
		if err := c.Send(f.typ, f.wire); err != nil {
			break // conn already dead again; retransmit loop will retry
		}
		s.nRetrans.Add(1)
	}
	s.wg.Add(1) //lint:ignore wg-balance readLoop's first deferred statement is the matching Done
	go s.readLoop(c, gen)
}

// Send transmits one reliable application frame (type below the reserved
// range). A dead connection is not an error: the frame is buffered and
// replayed on the next attach. Send fails only when the session is closed,
// the backlog is full, or the type is reserved.
func (s *Session) Send(typ byte, payload []byte) error {
	if typ >= typeReserved {
		return &FrameError{Reason: "application frame type in reserved range"}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if len(s.out) >= s.cfg.MaxUnacked {
		s.mu.Unlock()
		return ErrBacklog
	}
	seq := s.nextSeq
	s.nextSeq++
	wire := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(wire, seq)
	copy(wire[8:], payload)
	s.out = append(s.out, outFrame{seq: seq, typ: typ, wire: wire})
	conn := s.conn
	s.mu.Unlock()

	s.nSent.Add(1)
	if conn != nil {
		if err := conn.Send(typ, wire); err != nil {
			s.detach(conn) // buffered; replay recovers it
		}
	}
	return nil
}

// SendUnreliable transmits one frame outside the reliable stream — lost if
// the link is down or a chaos proxy drops it. Heartbeats use this: a stale
// heartbeat is worthless, so buffering them would only delay real traffic.
func (s *Session) SendUnreliable(typ byte, payload []byte) error {
	if typ >= typeReserved {
		return &FrameError{Reason: "application frame type in reserved range"}
	}
	s.mu.Lock()
	conn := s.conn
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrSessionClosed
	}
	if conn == nil {
		return nil // detached: unreliable frames are droppable by contract
	}
	wire := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(wire, unreliableSeq)
	copy(wire[8:], payload)
	if err := conn.Send(typ, wire); err != nil {
		s.detach(conn)
	}
	return nil
}

// Recv delivers the next in-order application frame. It blocks until a
// frame arrives, the context expires, or the session closes. Messages
// buffered before a detach keep flowing — losing a connection never loses
// delivered data.
func (s *Session) Recv(ctx context.Context) (Msg, error) {
	select {
	case m := <-s.recvCh:
		return m, nil
	case <-ctx.Done():
		return Msg{}, ctx.Err()
	case <-s.closeCh:
		// Drain-then-closed: a racing deliver may have landed a message.
		select {
		case m := <-s.recvCh:
			return m, nil
		default:
			return Msg{}, ErrSessionClosed
		}
	}
}

// Detached signals (capacity-1, coalescing) each time the session loses its
// connection; the owner re-dials or awaits a re-accept, then calls Attach.
func (s *Session) Detached() <-chan struct{} { return s.detachCh }

// Connected reports whether a connection is currently attached.
func (s *Session) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// Pending reports the unacked reliable frames buffered for replay.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.out)
}

// Stats snapshots the session's reliability counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		FramesSent:  s.nSent.Load(),
		FramesRecv:  s.nRecv.Load(),
		Retransmits: s.nRetrans.Load(),
		Attaches:    s.nAttach.Load(),
		Discarded:   s.nDiscard.Load(),
	}
}

// Close tears the session down: the connection is closed, loops drain, and
// pending Recvs return ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conn := s.conn
	s.conn = nil
	close(s.closeCh)
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	s.wg.Wait()
	return nil
}

// detach drops conn if it is still the session's current connection and
// signals the owner. Later attaches are untouched (generation check).
func (s *Session) detach(conn *Conn) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	s.mu.Unlock()
	_ = conn.Close()
	select {
	case s.detachCh <- struct{}{}:
	default: // a detach signal is already pending; one is enough
	}
}

// readLoop drains one attached connection: acks advance the send window,
// reliable frames are delivered in order (go-back-N: exactly seq == expect,
// everything else is discarded and re-acked), unreliable frames are
// delivered as-is.
func (s *Session) readLoop(c *Conn, gen int) {
	defer s.wg.Done()
	var ackBuf [8]byte
	for {
		typ, payload, err := c.Recv()
		if err != nil {
			s.mu.Lock()
			stale := s.gen != gen || s.closed
			s.mu.Unlock()
			if !stale {
				s.detach(c)
			}
			return
		}
		if typ == typeAck {
			if len(payload) != 8 {
				s.detach(c)
				return
			}
			s.handleAck(binary.LittleEndian.Uint64(payload))
			continue
		}
		if len(payload) < 8 {
			s.detach(c) // stream desync: every session frame is seq-prefixed
			return
		}
		seq := binary.LittleEndian.Uint64(payload)
		body := payload[8:]
		if seq == unreliableSeq {
			s.deliver(Msg{Type: typ, Payload: append([]byte(nil), body...)})
			continue
		}
		s.mu.Lock()
		inOrder := seq == s.expect
		if inOrder {
			s.expect++
		}
		ack := s.expect - 1
		s.mu.Unlock()
		if inOrder {
			s.deliver(Msg{Type: typ, Payload: append([]byte(nil), body...)})
		} else {
			s.nDiscard.Add(1)
		}
		// Cumulative ack either confirms the new frame or re-tells the
		// sender where the stream stands (duplicate / gap).
		binary.LittleEndian.PutUint64(ackBuf[:], ack)
		if err := c.sendReserved(typeAck, ackBuf[:]); err != nil {
			s.detach(c)
			return
		}
	}
}

// deliver hands a message to Recv, blocking (backpressure) unless the
// session closes first.
func (s *Session) deliver(m Msg) {
	s.nRecv.Add(1)
	select {
	case s.recvCh <- m:
	case <-s.closeCh:
	}
}

// handleAck advances the send window and drops acked frames.
func (s *Session) handleAck(ack uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ack <= s.acked {
		return
	}
	s.acked = ack
	i := 0
	for i < len(s.out) && s.out[i].seq <= ack {
		i++
	}
	if i > 0 {
		s.out = append(s.out[:0], s.out[i:]...)
	}
	s.rto.Reset() // forward progress: rewind the retransmit schedule
}

// retransmitLoop rewrites the unacked tail whenever an RTO elapses without
// ack progress, escalating the RTO on the jittered capped schedule and
// rewinding it when acks move again.
func (s *Session) retransmitLoop() {
	defer s.wg.Done()
	var lastAcked uint64
	timer := time.NewTimer(s.rto.Next())
	defer timer.Stop()
	for {
		select {
		case <-s.closeCh:
			return
		case <-timer.C:
		}
		s.mu.Lock()
		acked := s.acked
		conn := s.conn
		var frames []outFrame
		if len(s.out) > 0 && conn != nil && acked == lastAcked {
			frames = make([]outFrame, len(s.out)) //lint:ignore hotpath-alloc retransmission is the rare recovery path, never steady state
			copy(frames, s.out)
		}
		lastAcked = acked
		s.mu.Unlock()

		for _, f := range frames {
			if err := conn.Send(f.typ, f.wire); err != nil {
				s.detach(conn)
				break
			}
			s.nRetrans.Add(1)
		}
		timer.Reset(s.rto.Next())
	}
}
