package net

import (
	"encoding/binary"
	"io"
)

// Wire format: every frame is a 5-byte header — 1 type byte, 4-byte
// big-endian payload length — followed by the payload. Application frame
// types must stay below typeReserved; the session layer owns the rest for
// its acknowledgement traffic.
const (
	headerSize = 5

	// typeReserved is the first frame type reserved for the transport
	// itself; applications must use types below it.
	typeReserved byte = 0xF0

	// typeAck is the session layer's cumulative acknowledgement frame.
	typeAck byte = 0xF0
)

// appendFrame appends one encoded frame to dst and returns it.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// readFrame reads one frame from r, reusing buf for the payload when it has
// capacity. The returned payload aliases the (possibly grown) buffer, which
// is also returned for reuse. A length header beyond lim.MaxFrame or a
// reserved type seen where the caller forbids it is a *FrameError; transport
// failures are returned as-is for the caller to classify.
func readFrame(r io.Reader, lim Limits, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	typ = hdr[0]
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > lim.maxFrame() {
		return 0, nil, buf, &FrameError{Reason: "payload exceeds frame limit", Size: n}
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A truncated payload after a valid header: the stream died
		// mid-frame. Report as I/O, the conn layer classifies it.
		return 0, nil, buf, err
	}
	return typ, buf, buf, nil
}
