package net

import (
	"bufio"
	"errors"
	gonet "net"
	"sync"
	"time"
)

// Config tunes a framed connection.
type Config struct {
	// Limits bounds inbound frames; the zero value applies defaults.
	Limits Limits

	// ReadTimeout is the per-frame read deadline: a peer that goes silent
	// for longer surfaces as a transient *TransportError instead of a
	// wedged Recv. Heartbeats keep a healthy link under the deadline.
	// 0 disables the deadline.
	ReadTimeout time.Duration

	// WriteTimeout is the per-frame write deadline: a peer that stops
	// draining its socket surfaces as a transient *TransportError instead
	// of a blocked Send. 0 disables the deadline.
	WriteTimeout time.Duration
}

// Conn is a framed, deadline-guarded connection: Send writes one typed
// frame, Recv reads one. Send is safe for concurrent use (heartbeaters and
// the protocol driver share the link); Recv is owned by a single reader.
type Conn struct {
	c   gonet.Conn
	cfg Config
	br  *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte

	rbuf []byte
}

// NewConn wraps an accepted or dialed connection.
func NewConn(c gonet.Conn, cfg Config) *Conn {
	return &Conn{c: c, cfg: cfg, br: bufio.NewReaderSize(c, 64<<10)}
}

// Send writes one frame. Frame types at or above the reserved range are the
// session layer's; application callers get a *FrameError before any bytes
// move. Write failures and deadline expiries are transient
// *TransportErrors.
func (c *Conn) Send(typ byte, payload []byte) error {
	return c.send(typ, payload, false)
}

// sendReserved is Send for the session layer's own control frames.
func (c *Conn) sendReserved(typ byte, payload []byte) error {
	return c.send(typ, payload, true)
}

func (c *Conn) send(typ byte, payload []byte, reserved bool) error {
	if !reserved && typ >= typeReserved {
		return &FrameError{Reason: "application frame type in reserved range"}
	}
	// wmu exists to serialize whole-frame writes: the I/O under it is the
	// point, and the write deadline bounds how long the lock can be held.
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.cfg.WriteTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil { //lint:ignore lock-discipline deadline setter; wmu serializes frame writes by design
			return &TransportError{Op: "write", Err: err}
		}
	}
	c.wbuf = appendFrame(c.wbuf[:0], typ, payload)
	if _, err := c.c.Write(c.wbuf); err != nil { //lint:ignore lock-discipline the serialized frame write itself, bounded by the write deadline
		return classify("write", err) //lint:ignore lock-discipline error classification on the exit path, no I/O
	}
	return nil
}

// Recv reads one frame. The payload aliases an internal buffer and is valid
// only until the next Recv. Deadline expiry (a silent peer) is a transient
// *TransportError; an oversized or malformed frame is a *FrameError and the
// connection must be closed — the stream is unsynchronized.
func (c *Conn) Recv() (byte, []byte, error) {
	if c.cfg.ReadTimeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout)); err != nil {
			return 0, nil, &TransportError{Op: "read", Err: err}
		}
	}
	typ, payload, buf, err := readFrame(c.br, c.cfg.Limits, c.rbuf)
	c.rbuf = buf
	if err != nil {
		var fe *FrameError
		if errors.As(err, &fe) {
			return 0, nil, fe
		}
		return 0, nil, classify("read", err)
	}
	return typ, payload, nil
}

// SetTimeouts replaces the per-frame deadlines (0 disables one). Handshakes
// want tight deadlines while a silent peer means "gone"; once lease-based
// watchdogs own liveness the read deadline usually comes off. Not safe
// concurrently with an active Send or Recv — call it between protocol
// stages, before handing the conn to a session.
func (c *Conn) SetTimeouts(read, write time.Duration) {
	// Disabling a timeout must also disarm any deadline the previous stage
	// left on the socket — Send/Recv only arm deadlines when a timeout is
	// configured, so a stale one would fire mid-session otherwise.
	if read <= 0 && c.cfg.ReadTimeout > 0 {
		_ = c.c.SetReadDeadline(time.Time{})
	}
	if write <= 0 && c.cfg.WriteTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Time{})
	}
	c.cfg.ReadTimeout, c.cfg.WriteTimeout = read, write //lint:ignore shared-race staged reconfiguration: the documented contract forbids overlap with Send/Recv, and callers retune between protocol phases before the session's goroutines own the conn
}

// Close tears the connection down; pending Sends and Recvs unblock with
// errors.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr names the peer, for logs.
func (c *Conn) RemoteAddr() string {
	if a := c.c.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// classify wraps an I/O error as a transient *TransportError, tagging
// deadline expiries so callers can distinguish "peer silent" from "peer
// gone".
func classify(op string, err error) error {
	var ne gonet.Error
	timeout := errors.As(err, &ne) && ne.Timeout()
	return &TransportError{Op: op, Timeout: timeout, Err: err}
}
