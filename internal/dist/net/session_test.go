package net

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	gonet "net"
	"testing"
	"time"
)

// sessionServer accepts connections on a loopback listener and attaches each
// to sess, recording the raw conns so tests can sever links on demand.
type sessionServer struct {
	ln   gonet.Listener
	sess *Session

	rawCh chan gonet.Conn
}

func newSessionServer(t *testing.T, sess *Session, cfg Config) *sessionServer {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := &sessionServer{ln: ln, sess: sess, rawCh: make(chan gonet.Conn, 8)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			select {
			case sv.rawCh <- c:
			default:
			}
			sess.Attach(NewConn(c, cfg))
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return sv
}

func (sv *sessionServer) addr() string { return sv.ln.Addr().String() }

func dialSession(t *testing.T, addr string, sess *Session, cfg Config) {
	t.Helper()
	c, err := DialOnce(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.Attach(c)
}

func payloadFor(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

// recvN drains n reliable frames and checks they arrive in order with the
// payloads payloadFor(0..n-1) — the exactly-once, in-order contract.
func recvN(t *testing.T, s *Session, n int, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for i := 0; i < n; i++ {
		m, err := s.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d/%d: %v", i, n, err)
		}
		if len(m.Payload) != 8 {
			t.Fatalf("frame %d: payload %x", i, m.Payload)
		}
		if got := binary.LittleEndian.Uint64(m.Payload); got != uint64(i) {
			t.Fatalf("frame %d: out of order or duplicated, got seq %d", i, got)
		}
	}
}

func TestSessionInOrderDelivery(t *testing.T) {
	cfg := Config{}
	rto := BackoffConfig{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 7}
	server := NewSession(SessionConfig{RTO: rto})
	client := NewSession(SessionConfig{RTO: rto})
	defer server.Close()
	defer client.Close()
	sv := newSessionServer(t, server, cfg)
	dialSession(t, sv.addr(), client, cfg)

	const n = 100
	for i := 0; i < n; i++ {
		if err := client.Send(1, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, server, n, 5*time.Second)
	// Full duplex: the other direction shares the link.
	for i := 0; i < n; i++ {
		if err := server.Send(2, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, client, n, 5*time.Second)

	if st := client.Stats(); st.FramesSent != n || st.FramesRecv != n {
		t.Fatalf("client stats %+v, want %d sent / %d recv", st, n, n)
	}
	if p := client.Pending(); p != 0 {
		t.Fatalf("client still has %d unacked frames after full ack", p)
	}
}

func TestSessionChaosDropDupLatency(t *testing.T) {
	cfg := Config{}
	rto := BackoffConfig{Base: 15 * time.Millisecond, Max: 120 * time.Millisecond, Seed: 3}
	server := NewSession(SessionConfig{RTO: rto})
	client := NewSession(SessionConfig{RTO: rto})
	defer server.Close()
	defer client.Close()
	sv := newSessionServer(t, server, cfg)

	proxy, err := NewProxy(sv.addr(), Chaos{
		Seed:      11,
		Drop:      0.15,
		Duplicate: 0.15,
		Latency:   time.Millisecond,
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	dialSession(t, proxy.Addr(), client, cfg)

	const n = 200
	for i := 0; i < n; i++ {
		if err := client.Send(1, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, server, n, 30*time.Second)

	ps := proxy.Stats()
	if ps.Dropped == 0 && ps.Duplicated == 0 {
		t.Fatalf("chaos proxy injected nothing: %+v", ps)
	}
	// Dropped frames force retransmits; duplicated frames force discards.
	cs, ss := client.Stats(), server.Stats()
	if ps.Dropped > 0 && cs.Retransmits == 0 {
		t.Fatalf("frames were dropped (%d) but nothing was retransmitted: %+v", ps.Dropped, cs)
	}
	if ss.FramesRecv != n {
		t.Fatalf("server delivered %d frames, want exactly %d", ss.FramesRecv, n)
	}
}

func TestSessionPartitionHeals(t *testing.T) {
	cfg := Config{}
	rto := BackoffConfig{Base: 15 * time.Millisecond, Max: 120 * time.Millisecond, Seed: 5}
	server := NewSession(SessionConfig{RTO: rto})
	client := NewSession(SessionConfig{RTO: rto})
	defer server.Close()
	defer client.Close()
	sv := newSessionServer(t, server, cfg)
	proxy, err := NewProxy(sv.addr(), Chaos{Seed: 9}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	dialSession(t, proxy.Addr(), client, cfg)

	proxy.SetPartition(true)
	const n = 20
	for i := 0; i < n; i++ {
		if err := client.Send(1, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing crosses a partition; frames sit unacked on the sender.
	time.Sleep(100 * time.Millisecond)
	if got := server.Stats().FramesRecv; got != 0 {
		t.Fatalf("%d frames crossed an active partition", got)
	}
	proxy.SetPartition(false)
	recvN(t, server, n, 10*time.Second) // retransmits push them through
	if client.Stats().Retransmits == 0 {
		t.Fatal("partition healed without any retransmission")
	}
}

func TestSessionReconnectReplaysUnacked(t *testing.T) {
	cfg := Config{}
	rto := BackoffConfig{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 13}
	server := NewSession(SessionConfig{RTO: rto})
	client := NewSession(SessionConfig{RTO: rto})
	defer server.Close()
	defer client.Close()
	sv := newSessionServer(t, server, cfg)
	dialSession(t, sv.addr(), client, cfg)
	raw := <-sv.rawCh

	// Warm up across the first connection.
	if err := client.Send(1, payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	recvN(t, server, 1, 5*time.Second)

	// Sever the link server-side: the client sees EOF and detaches.
	raw.Close()
	select {
	case <-client.Detached():
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the severed connection")
	}

	// Sends while detached buffer silently...
	const n = 10
	for i := 0; i < n; i++ {
		if err := client.Send(1, payloadFor(i+1)); err != nil {
			t.Fatalf("detached Send should buffer, got %v", err)
		}
	}
	if p := client.Pending(); p != n {
		t.Fatalf("pending = %d, want %d buffered while detached", p, n)
	}

	// ...and replay on the next attach, continuing the stream in order.
	dialSession(t, sv.addr(), client, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		m, err := s2recv(ctx, server)
		if err != nil {
			t.Fatalf("post-reconnect Recv %d: %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(m.Payload); got != uint64(i+1) {
			t.Fatalf("post-reconnect frame %d: got seq %d", i, got)
		}
	}
	if st := client.Stats(); st.Attaches != 2 {
		t.Fatalf("attaches = %d, want 2", st.Attaches)
	}
}

// s2recv is Recv with the error already shaped for test use.
func s2recv(ctx context.Context, s *Session) (Msg, error) {
	m, err := s.Recv(ctx)
	if err != nil {
		return Msg{}, fmt.Errorf("recv: %w", err)
	}
	return m, nil
}

func TestSessionBacklogBound(t *testing.T) {
	s := NewSession(SessionConfig{MaxUnacked: 4})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Send(1, payloadFor(i)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := s.Send(1, payloadFor(4)); !errors.Is(err, ErrBacklog) {
		t.Fatalf("overfull Send: got %v, want ErrBacklog", err)
	}
}

func TestSessionCloseUnblocksRecv(t *testing.T) {
	s := NewSession(SessionConfig{})
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Recv(context.Background())
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("Recv after Close: got %v, want ErrSessionClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Send after Close fails fast too.
	if err := s.Send(1, nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Send after Close: got %v, want ErrSessionClosed", err)
	}
}

func TestHeartbeatFlows(t *testing.T) {
	cfg := Config{}
	server := NewSession(SessionConfig{})
	client := NewSession(SessionConfig{})
	defer server.Close()
	defer client.Close()
	sv := newSessionServer(t, server, cfg)
	dialSession(t, sv.addr(), client, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Heartbeat(ctx, client, 0x20, 10*time.Millisecond)
	}()

	rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer rcancel()
	for i := 0; i < 3; i++ {
		m, err := server.Recv(rctx)
		if err != nil {
			t.Fatalf("heartbeat %d never arrived: %v", i, err)
		}
		if m.Type != 0x20 || len(m.Payload) != 0 {
			t.Fatalf("heartbeat %d: type %d payload %q", i, m.Type, m.Payload)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Heartbeat goroutine did not exit on ctx cancel")
	}
}
