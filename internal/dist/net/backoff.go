package net

import (
	"math/rand"
	"sync"
	"time"
)

// BackoffConfig is the copyable tuning for a Backoff; the zero value selects
// the defaults (20ms base, 2s cap, clock-seeded jitter).
type BackoffConfig struct {
	Base time.Duration
	Max  time.Duration
	Seed int64
}

// New builds a Backoff on this schedule.
func (c BackoffConfig) New() *Backoff {
	return &Backoff{Base: c.Base, Max: c.Max, Seed: c.Seed}
}

// Backoff is a jittered, capped exponential backoff schedule: the nth delay
// is drawn uniformly from [d/2, d] where d = min(Base<<(n-1), Max). The
// half-window jitter decorrelates peers that fail together (every rank
// re-dialing a restarted coordinator at once), while the cap keeps recovery
// latency bounded. The zero value is usable; Reset rewinds the schedule
// after a success.
type Backoff struct {
	Base time.Duration // first delay; 0 means 20ms
	Max  time.Duration // delay cap; 0 means 2s
	Seed int64         // jitter source seed; 0 seeds from the clock

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

func (b *Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 20 * time.Millisecond
}

func (b *Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 2 * time.Second
}

// Next returns the next delay in the schedule and advances it.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng == nil {
		seed := b.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		b.rng = rand.New(rand.NewSource(seed))
	}
	d := b.base()
	for i := 0; i < b.attempt && d < b.max(); i++ {
		d *= 2
	}
	if d > b.max() {
		d = b.max()
	}
	b.attempt++
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Reset rewinds the schedule to the first delay.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}
