package dist

import (
	"graftmatch/internal/bipartite"
)

// ops is the per-rank compute half of every BSP superstep, shared verbatim by
// the in-process simulation (Engine) and the multi-process runtime
// (Coordinator/Worker): one method per superstep body, reading and mutating a
// single rank's state and writing outbound messages into its outboxes. What
// differs between the two runtimes is only how outboxes become inboxes — a
// slice concatenation in the simulation, framed sessions over sockets in the
// cluster — so keeping the bodies here is what makes "the worker computes
// exactly what the simulated rank computes" a structural fact rather than a
// test hope.
type ops struct {
	g    *bipartite.Graph
	part Partition
}

// newRank allocates the state one rank owns under part. K outboxes are
// sized for the partition; nx is the global X count (the replicated
// renewable bitmap covers every possible root).
func newRank(part Partition, nx int32, id int) *rank {
	xlo, xhi := part.RangeX(id)
	ylo, yhi := part.RangeY(id)
	return &rank{
		id: id, xlo: xlo, xhi: xhi, ylo: ylo, yhi: yhi,
		rootX:     make([]int32, xhi-xlo),
		mateX:     make([]int32, xhi-xlo),
		leaf:      make([]int32, xhi-xlo),
		visited:   make([]bool, yhi-ylo),
		parentY:   make([]int32, yhi-ylo),
		rootY:     make([]int32, yhi-ylo),
		mateY:     make([]int32, yhi-ylo),
		renewable: make([]bool, nx),
		out:       make([][]message, part.K),
	}
}

// scatter installs the mate arrays for r's block (slices indexed from
// r.xlo/r.ylo) and resets every piece of derived search state — the full
// "load a matching and forget everything else" reset a recovery rescatter
// needs. Fresh ranks pass their initial matching through the same path.
func (o ops) scatter(r *rank, mateX, mateY []int32) {
	for i := range r.mateX {
		r.mateX[i] = mateX[i]
		r.rootX[i] = none
		r.leaf[i] = none
	}
	for i := range r.mateY {
		r.mateY[i] = mateY[i]
		r.rootY[i] = none
		r.parentY[i] = none
		r.visited[i] = false
	}
	for i := range r.renewable {
		r.renewable[i] = false
	}
	r.frontier = r.frontier[:0]
	r.newRenewable = r.newRenewable[:0]
	r.renewY = r.renewY[:0]
	r.activeY = r.activeY[:0]
	r.paths = 0
	for dst := range r.out {
		r.out[dst] = r.out[dst][:0]
	}
	r.in = r.in[:0]
}

// seed roots a fresh singleton tree at every owned unmatched X vertex.
func (o ops) seed(r *rank) {
	r.frontier = r.frontier[:0]
	for x := r.xlo; x < r.xhi; x++ {
		if r.mateX[r.lx(x)] == none {
			r.rootX[r.lx(x)] = x
			r.leaf[r.lx(x)] = none
			r.frontier = append(r.frontier, x)
		}
	}
}

// expand (top-down BFS): offer every neighbor of active frontier vertices to
// its owner as an mClaim.
func (o ops) expand(r *rank) {
	for _, x := range r.frontier {
		if !r.active(x) {
			continue
		}
		root := r.rootX[r.lx(x)]
		for _, y := range o.g.NbrX(x) {
			r.send(o.part.OwnerY(y), message{mClaim, y, x, root})
		}
	}
	r.frontier = r.frontier[:0]
}

// claim: owners resolve first-come claims on their Y vertices, routing
// frontier additions (matched Y) or leaf discoveries (unmatched Y).
func (o ops) claim(r *rank, in []message) {
	for _, msg := range in {
		y, x, root := msg.a, msg.b, msg.c
		if r.visited[r.ly(y)] || r.renewable[root] {
			continue
		}
		r.visited[r.ly(y)] = true
		r.parentY[r.ly(y)] = x
		r.rootY[r.ly(y)] = root
		if mate := r.mateY[r.ly(y)]; mate != none {
			r.send(o.part.OwnerX(mate), message{mAddFrontier, mate, root, 0})
		} else {
			r.send(o.part.OwnerX(root), message{mSetLeaf, root, y, 0})
		}
	}
}

// apply installs frontier additions and leaf discoveries from a claim round.
func (o ops) apply(r *rank, in []message) {
	for _, msg := range in {
		//lint:ignore proto-exhaustive per-phase dispatch: each superstep routes only its own message kinds here, and decodeStep already rejected any kind outside the block
		switch msg.kind {
		case mAddFrontier:
			x, root := msg.a, msg.b
			r.rootX[r.lx(x)] = root
			r.frontier = append(r.frontier, x)
		case mSetLeaf:
			root, y := msg.a, msg.b
			if r.leaf[r.lx(root)] == none || r.renewable[root] {
				r.leaf[r.lx(root)] = y
			}
			if !r.renewable[root] {
				r.newRenewable = append(r.newRenewable, root)
			}
		}
	}
}

// augInit starts one augmenting walk per owned renewable root with a
// discovered leaf, counting the initiated paths into r.paths.
func (o ops) augInit(r *rank) {
	for x := r.xlo; x < r.xhi; x++ {
		if r.mateX[r.lx(x)] == none && r.rootX[r.lx(x)] == x && r.renewable[x] && r.leaf[r.lx(x)] != none {
			r.paths++
			y := r.leaf[r.lx(x)]
			r.send(o.part.OwnerY(y), message{mWalkY, y, x, 0})
		}
	}
}

// augStep advances token-passing walks: a Y token asks its parent's owner to
// rematch, an X token flips the mate and forwards toward the root.
func (o ops) augStep(r *rank, in []message) {
	for _, msg := range in {
		//lint:ignore proto-exhaustive per-phase dispatch: each superstep routes only its own message kinds here, and decodeStep already rejected any kind outside the block
		switch msg.kind {
		case mWalkY:
			y, root := msg.a, msg.b
			x := r.parentY[r.ly(y)]
			r.send(o.part.OwnerX(x), message{mMatchReq, x, y, root})
		case mMatchReq:
			x, y, root := msg.a, msg.b, msg.c
			prev := r.mateX[r.lx(x)]
			r.mateX[r.lx(x)] = y
			r.send(o.part.OwnerY(y), message{mMateAck, y, x, 0})
			if x != root {
				r.send(o.part.OwnerY(prev), message{mWalkY, prev, root, 0})
			}
		case mMateAck:
			y, x := msg.a, msg.b
			r.mateY[r.ly(y)] = x
		}
	}
}

// census classifies r's claimed Y vertices into renewable (dead tree) and
// active lists, resets the renewable ones for reuse, and returns the local
// census the graft decision sums globally: owned X vertices in active trees
// and owned renewable Y vertices.
func (o ops) census(r *rank) (activeX, renewY int64) {
	r.renewY = r.renewY[:0]
	r.activeY = r.activeY[:0]
	for y := r.ylo; y < r.yhi; y++ {
		root := r.rootY[r.ly(y)]
		if root == none {
			continue
		}
		if r.renewable[root] {
			r.renewY = append(r.renewY, y)
		} else {
			r.activeY = append(r.activeY, y)
		}
	}
	for x := r.xlo; x < r.xhi; x++ {
		if r.active(x) {
			activeX++
		}
	}
	for _, y := range r.renewY {
		r.visited[r.ly(y)] = false
		r.rootY[r.ly(y)] = none
		r.parentY[r.ly(y)] = none
	}
	return activeX, int64(len(r.renewY))
}

// graftQuery: freed Y vertices ask the owners of their neighbors whether any
// is in an active tree.
func (o ops) graftQuery(r *rank) {
	for _, y := range r.renewY {
		for _, x := range o.g.NbrY(y) {
			r.send(o.part.OwnerX(x), message{mQuery, x, y, 0})
		}
	}
}

// graftAccept: owners of active X vertices accept queries against them.
func (o ops) graftAccept(r *rank, in []message) {
	for _, msg := range in {
		x, y := msg.a, msg.b
		if r.active(x) {
			r.send(o.part.OwnerY(y), message{mAccept, y, x, r.rootX[r.lx(x)]})
		}
	}
}

// graftAdopt: each freed Y adopts its first acceptance, grafting itself onto
// the accepting tree and routing the follow-on frontier/leaf traffic.
func (o ops) graftAdopt(r *rank, in []message) {
	for _, msg := range in {
		y, x, root := msg.a, msg.b, msg.c
		if r.visited[r.ly(y)] || r.renewable[root] {
			continue // already adopted this round, or tree died
		}
		r.visited[r.ly(y)] = true
		r.parentY[r.ly(y)] = x
		r.rootY[r.ly(y)] = root
		if mate := r.mateY[r.ly(y)]; mate != none {
			r.send(o.part.OwnerX(mate), message{mAddFrontier, mate, root, 0})
		} else {
			r.send(o.part.OwnerX(root), message{mSetLeaf, root, y, 0})
		}
	}
}

// graftApply installs the post-adoption frontier additions and leaf
// discoveries. Unlike apply, an adopted leaf overwrites unconditionally: the
// adopting tree is live and this is its freshest path.
func (o ops) graftApply(r *rank, in []message) {
	for _, msg := range in {
		//lint:ignore proto-exhaustive per-phase dispatch: each superstep routes only its own message kinds here, and decodeStep already rejected any kind outside the block
		switch msg.kind {
		case mAddFrontier:
			x, root := msg.a, msg.b
			r.rootX[r.lx(x)] = root
			r.frontier = append(r.frontier, x)
		case mSetLeaf:
			root, y := msg.a, msg.b
			r.leaf[r.lx(root)] = y
			if !r.renewable[root] {
				r.newRenewable = append(r.newRenewable, root)
			}
		}
	}
}

// rebuild destroys r's active trees (renewable ones were reset by census) and
// reseeds from the owned unmatched X vertices.
func (o ops) rebuild(r *rank) {
	for _, y := range r.activeY {
		r.visited[r.ly(y)] = false
		r.rootY[r.ly(y)] = none
		r.parentY[r.ly(y)] = none
	}
	for x := r.xlo; x < r.xhi; x++ {
		r.rootX[r.lx(x)] = none
	}
	o.seed(r)
}

// mergeRenewable applies a round's gathered newly-renewable roots to r's
// replicated bitmap — the collective half of an exchange.
func (o ops) mergeRenewable(r *rank, roots []int32) {
	for _, root := range roots {
		r.renewable[root] = true
	}
}

// takeNewRenewable drains r's newly-renewable roots into dst and clears the
// per-round accumulator.
func takeNewRenewable(r *rank, dst []int32) []int32 {
	dst = append(dst, r.newRenewable...)
	r.newRenewable = r.newRenewable[:0]
	return dst
}
