package dist

import (
	"context"
	"errors"
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
	"graftmatch/internal/supervise"
)

// transientFaults trips an outage fast: every unreliable transmission drops,
// each superstep times out after one round, and the second timeout fails
// the network.
func transientFaults(seed int64) *Faults {
	return &Faults{Seed: seed, Drop: 1.0, MaxRetries: 50, TimeoutRounds: 1, FailAfterTimeouts: 2}
}

// TestTransientFailureSurfaces: FailAfterTimeouts must abort the run with a
// typed, transient-marked error — and the matching gathered alongside it
// must still be a valid (partial) matching, never a torn mid-augmentation
// state.
func TestTransientFailureSurfaces(t *testing.T) {
	g := gen.ER(200, 200, 800, 9)
	m := matchinit.Greedy(g)
	initial := m.Cardinality()
	s, err := RunCtx(context.Background(), g, m, Options{Ranks: 4, Grafting: true, Faults: transientFaults(6)})
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want *TransientError", err)
	}
	if !supervise.IsTransient(err) {
		t.Fatal("TransientError not recognized by supervise.IsTransient")
	}
	if te.Timeouts < 2 {
		t.Fatalf("error reports %d timeouts, want >= FailAfterTimeouts", te.Timeouts)
	}
	if s.Complete {
		t.Fatal("failed run marked complete")
	}
	if err := m.Verify(g); err != nil {
		t.Fatalf("partial matching after outage is invalid: %v", err)
	}
	if m.Cardinality() < initial {
		t.Fatalf("outage lost matched edges: %d < initial %d", m.Cardinality(), initial)
	}
}

// TestTransientRetryCompletes drives RunCtx under supervise.Retry: the first
// attempts hit the outage, the network "heals" (injection removed), and the
// retried run — seeded with the partial matching the failed attempts left
// behind — must converge to the same maximum cardinality as a clean solver.
func TestTransientRetryCompletes(t *testing.T) {
	g := gen.ER(200, 200, 800, 9)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)

	m := matchinit.Greedy(g)
	attempts := 0
	err := supervise.Retry(context.Background(), supervise.Backoff{Attempts: 5, Base: 1},
		func(ctx context.Context) error {
			attempts++
			opts := Options{Ranks: 4, Grafting: true}
			if attempts <= 2 {
				opts.Faults = transientFaults(int64(attempts))
			}
			_, err := RunCtx(ctx, g, m, opts)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 2 outages + 1 success", attempts)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != ref.Cardinality() {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), ref.Cardinality())
	}
}

// TestTransientDisabledByDefault: fault injection without FailAfterTimeouts
// must behave exactly as before — timeouts escalate, the run completes.
func TestTransientDisabledByDefault(t *testing.T) {
	g := gen.ER(120, 120, 500, 9)
	m := matchinit.Greedy(g)
	s, err := RunCtx(context.Background(), g, m,
		Options{Ranks: 4, Grafting: true, Faults: &Faults{Seed: 6, Drop: 0.9, MaxRetries: 50, TimeoutRounds: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults.Timeouts == 0 {
		t.Fatalf("expected superstep timeouts: %+v", *s.Faults)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
}
