package dist

import (
	"encoding/binary"
	"fmt"

	"graftmatch/internal/checkpoint"
)

// protoVersion gates the cluster wire protocol; a worker and coordinator
// must agree exactly (the Hello/Welcome handshake checks). v2 added the
// run-trace context (Hello send timestamp, Welcome trace id, trace ids on
// superstep frames) and the fTelemetry span-shipping frame.
const protoVersion = 2

// Frame types on a cluster link. Hello and Welcome travel raw on the conn
// before the reliable session attaches (they negotiate the session's
// identity); everything else rides the session. All types stay below the
// session layer's reserved range (0xF0+).
const (
	fHello     byte = iota + 1 // 1: worker → coordinator: version, rank wanted, nonce, graph fingerprint
	fWelcome                   // 2: coordinator → worker: assigned rank, K, epoch, heartbeat/lease terms
	fStep                      // 3: coordinator → worker: one superstep order with routed inbox
	fStepDone                  // 4: worker → coordinator: outboxes, census info, new renewable roots
	fDone                      // 5: coordinator → worker: run complete, exit cleanly
	fAbort                     // 6: either direction: fatal condition, carries the reason
	fHB                        // 7: unreliable heartbeat, empty payload
	fTelemetry                 // 8: worker → coordinator: batched spans + metric deltas, best-effort
)

// Superstep op codes, the coordinator-driven counterpart of the ops methods.
// The worker is entirely op-driven: it holds rank state and executes what it
// is told, while every global decision (frontier emptiness, the graft/rebuild
// choice, termination, recovery) lives on the coordinator.
const (
	opScatter     byte = iota + 1 // load mate arrays, reset all derived state
	opSeed                        // root trees at owned unmatched X
	opExpand                      // BFS expand: frontier → claims
	opClaim                       // BFS claim: resolve Y ownership
	opApply                       // BFS apply: install frontier/leaf updates
	opAugInit                     // start augmenting walks at renewable roots
	opAugStep                     // advance token-passing walks
	opCensus                      // classify Y vertices, report graft census
	opGraftQuery                  // freed Y query neighbors' owners
	opGraftAccept                 // active X owners accept queries
	opGraftAdopt                  // freed Y adopt first acceptance
	opGraftApply                  // install post-adoption frontier/leaf updates
	opRebuild                     // destroy active trees, reseed from unmatched
	opReportMates                 // return the rank's mate arrays (phase boundary)
)

// opNames maps op codes to the span names the cluster trace uses, so the
// telemetry frame ships one byte per span instead of a string. Index 0 and
// out-of-range ops render as "op?" rather than faulting on a garbage byte.
var opNames = [...]string{
	opScatter:     "scatter",
	opSeed:        "seed",
	opExpand:      "expand",
	opClaim:       "claim",
	opApply:       "apply",
	opAugInit:     "aug-init",
	opAugStep:     "aug-step",
	opCensus:      "census",
	opGraftQuery:  "graft-query",
	opGraftAccept: "graft-accept",
	opGraftAdopt:  "graft-adopt",
	opGraftApply:  "graft-apply",
	opRebuild:     "rebuild",
	opReportMates: "report-mates",
}

// opSpanName returns the trace span name for an op code.
func opSpanName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// ProtoError reports a malformed cluster frame: truncated, oversized counts,
// unknown discriminators. It is terminal for the link that produced it — a
// peer speaking garbage is not retried against.
type ProtoError struct {
	Frame  string
	Reason string
}

func (e *ProtoError) Error() string {
	return fmt.Sprintf("dist: malformed %s frame: %s", e.Frame, e.Reason)
}

// helloFrame opens a worker's connection, raw on the conn: who it is (nonce
// distinguishes a reconnect of the same process from a respawned
// incarnation), which rank it wants (-1 for any), and the fingerprint of the
// graph it loaded — both sides must be looking at the same problem.
type helloFrame struct {
	Version uint16
	Rank    int32 // requested rank; -1 means "assign me one"
	Nonce   uint64
	SentAt  int64 // worker wall clock (UnixNano) at send; clock-offset estimate
	FP      checkpoint.Fingerprint
}

// welcomeFrame answers a Hello: the assigned rank, the cluster width, the
// epoch the worker joins at, the run trace id every spilled span inherits,
// and the failure-detection terms the worker must obey.
type welcomeFrame struct {
	Rank        int32
	K           int32
	Epoch       uint64
	Trace       uint64 // run/trace id minted by the coordinator
	HBMillis    uint32 // heartbeat send interval
	LeaseMillis uint32 // coordinator silence after which the worker aborts
}

// stepFrame orders one superstep: the op to run, the renewable roots merged
// since the worker's last step, and the routed inbox. Scatter steps carry
// the mate arrays for the worker's block instead of an inbox. Trace echoes
// the run trace id so a captured frame is self-identifying.
type stepFrame struct {
	Epoch    uint64
	SSID     uint64
	Trace    uint64
	Op       byte
	RenewNew []int32
	In       []message
	MateX    []int32 // opScatter only
	MateY    []int32 // opScatter only
}

// stepDoneFrame reports a superstep: per-destination outboxes, the roots that
// turned renewable, and the op's scalar results in Info (frontier size,
// paths, census counts). ReportMates steps carry the block's mate arrays.
type stepDoneFrame struct {
	Epoch    uint64
	SSID     uint64
	Trace    uint64
	Op       byte
	Info     [2]int64
	NewRenew []int32
	Out      [][]message
	MateX    []int32 // opReportMates only
	MateY    []int32 // opReportMates only
}

// telSpan is one shipped span: the op it timed, worker-local wall-clock
// start, duration, and one scalar (the op's Info[0]). Op-coded so the wire
// cost is a fixed 25 bytes and encoding allocates nothing.
type telSpan struct {
	Op    byte
	Start int64 // worker wall clock, UnixNano; coordinator applies clock offset
	Dur   int64
	Arg   int64
}

// telSpanBytes is the wire size of one telSpan (1 + 3×8).
const telSpanBytes = 25

// maxTelSpans bounds one telemetry frame; the worker's shipper buffer is
// sized to it, so anything beyond is dropped-oldest at the source.
const maxTelSpans = 512

// telemetryFrame ships a worker's batched spans and metric deltas to the
// coordinator at superstep boundaries. Entirely best-effort: the coordinator
// ingests it off the pump goroutine and the driver never waits for one.
type telemetryFrame struct {
	Epoch   uint64
	Trace   uint64
	Dropped uint64 // spans lost to the shipper's bounded buffer so far
	Steps   int64  // supersteps executed since the last telemetry frame
	MsgsOut int64  // messages emitted since the last telemetry frame
	Spans   []telSpan
}

// --- encoding -------------------------------------------------------------

func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putI32(b []byte, v int32) []byte  { return putU32(b, uint32(v)) }
func putI64(b []byte, v int64) []byte  { return putU64(b, uint64(v)) }

func putI32s(b []byte, s []int32) []byte {
	b = putU32(b, uint32(len(s)))
	for _, v := range s {
		b = putI32(b, v)
	}
	return b
}

func putMsgs(b []byte, ms []message) []byte {
	b = putU32(b, uint32(len(ms)))
	for _, m := range ms {
		b = append(b, m.kind)
		b = putI32(b, m.a)
		b = putI32(b, m.b)
		b = putI32(b, m.c)
	}
	return b
}

func encodeHello(h helloFrame) []byte {
	b := make([]byte, 0, 48)
	b = putU16(b, h.Version)
	b = putI32(b, h.Rank)
	b = putU64(b, h.Nonce)
	b = putI64(b, h.SentAt)
	b = putI32(b, h.FP.NX)
	b = putI32(b, h.FP.NY)
	b = putI64(b, h.FP.NNZ)
	b = putU64(b, h.FP.AdjHash)
	return b
}

func encodeWelcome(w welcomeFrame) []byte {
	b := make([]byte, 0, 32)
	b = putI32(b, w.Rank)
	b = putI32(b, w.K)
	b = putU64(b, w.Epoch)
	b = putU64(b, w.Trace)
	b = putU32(b, w.HBMillis)
	b = putU32(b, w.LeaseMillis)
	return b
}

// encodeStep appends into buf (reused across supersteps by the coordinator).
func encodeStep(buf []byte, f *stepFrame) []byte {
	b := buf[:0]
	b = putU64(b, f.Epoch)
	b = putU64(b, f.SSID)
	b = putU64(b, f.Trace)
	b = append(b, f.Op)
	b = putI32s(b, f.RenewNew)
	b = putMsgs(b, f.In)
	b = putI32s(b, f.MateX)
	b = putI32s(b, f.MateY)
	return b
}

// encodeStepDone appends into buf (reused across supersteps by the worker).
func encodeStepDone(buf []byte, f *stepDoneFrame) []byte {
	b := buf[:0]
	b = putU64(b, f.Epoch)
	b = putU64(b, f.SSID)
	b = putU64(b, f.Trace)
	b = append(b, f.Op)
	b = putI64(b, f.Info[0])
	b = putI64(b, f.Info[1])
	b = putI32s(b, f.NewRenew)
	b = putU32(b, uint32(len(f.Out)))
	for _, box := range f.Out {
		b = putMsgs(b, box)
	}
	b = putI32s(b, f.MateX)
	b = putI32s(b, f.MateY)
	return b
}

// encodeTelemetry appends into buf (reused across ships by the worker's
// telemetry shipper — the encode itself allocates nothing).
func encodeTelemetry(buf []byte, f *telemetryFrame) []byte {
	b := buf[:0]
	b = putU64(b, f.Epoch)
	b = putU64(b, f.Trace)
	b = putU64(b, f.Dropped)
	b = putI64(b, f.Steps)
	b = putI64(b, f.MsgsOut)
	b = putU32(b, uint32(len(f.Spans)))
	for i := range f.Spans {
		s := &f.Spans[i]
		b = append(b, s.Op)
		b = putI64(b, s.Start)
		b = putI64(b, s.Dur)
		b = putI64(b, s.Arg)
	}
	return b
}

func encodeAbort(reason string) []byte {
	b := make([]byte, 0, 4+len(reason))
	b = putU32(b, uint32(len(reason)))
	return append(b, reason...)
}

// --- decoding -------------------------------------------------------------

// pr is a bounds-latched little-endian reader: the first short read trips
// bad, every later read returns zero values, and finish reports one typed
// error for the whole frame. Element counts are validated against the bytes
// actually present before any count-sized allocation happens — the same
// allocation-bomb discipline as mmio.Limits, applied to the wire.
type pr struct {
	b    []byte
	off  int
	bad  bool
	why  string
	name string
}

func newPR(name string, b []byte) *pr { return &pr{b: b, name: name} }

func (r *pr) fail(why string) {
	if !r.bad {
		r.bad = true
		r.why = why
	}
}

func (r *pr) need(n int) bool {
	if r.bad {
		return false
	}
	if len(r.b)-r.off < n {
		r.fail("truncated")
		return false
	}
	return true
}

func (r *pr) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *pr) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *pr) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *pr) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *pr) i32() int32 { return int32(r.u32()) }
func (r *pr) i64() int64 { return int64(r.u64()) }

func (r *pr) i32s() []int32 {
	n := int(r.u32())
	if r.bad {
		return nil
	}
	if len(r.b)-r.off < 4*n {
		r.fail("element count exceeds frame")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}

func (r *pr) msgs() []message {
	n := int(r.u32())
	if r.bad {
		return nil
	}
	if len(r.b)-r.off < 13*n {
		r.fail("message count exceeds frame")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]message, n)
	for i := range out {
		out[i] = message{kind: r.u8(), a: r.i32(), b: r.i32(), c: r.i32()}
	}
	return out
}

// finish validates the frame consumed exactly: trailing garbage is as
// malformed as truncation.
func (r *pr) finish() error {
	if !r.bad && r.off != len(r.b) {
		r.fail("trailing bytes")
	}
	if r.bad {
		return &ProtoError{Frame: r.name, Reason: r.why}
	}
	return nil
}

func decodeHello(b []byte) (helloFrame, error) {
	r := newPR("hello", b)
	h := helloFrame{
		Version: r.u16(),
		Rank:    r.i32(),
		Nonce:   r.u64(),
		SentAt:  r.i64(),
		FP: checkpoint.Fingerprint{
			NX: r.i32(), NY: r.i32(), NNZ: r.i64(), AdjHash: r.u64(),
		},
	}
	return h, r.finish()
}

func decodeWelcome(b []byte) (welcomeFrame, error) {
	r := newPR("welcome", b)
	w := welcomeFrame{
		Rank:        r.i32(),
		K:           r.i32(),
		Epoch:       r.u64(),
		Trace:       r.u64(),
		HBMillis:    r.u32(),
		LeaseMillis: r.u32(),
	}
	return w, r.finish()
}

func decodeStep(b []byte) (stepFrame, error) {
	r := newPR("step", b)
	f := stepFrame{
		Epoch:    r.u64(),
		SSID:     r.u64(),
		Trace:    r.u64(),
		Op:       r.u8(),
		RenewNew: r.i32s(),
		In:       r.msgs(),
		MateX:    r.i32s(),
		MateY:    r.i32s(),
	}
	if !r.bad && (f.Op < opScatter || f.Op > opReportMates) {
		r.fail("unknown op")
	}
	return f, r.finish()
}

// decodeStepDone validates the outbox fan-out against the cluster width K.
func decodeStepDone(b []byte, k int) (stepDoneFrame, error) {
	r := newPR("stepdone", b)
	f := stepDoneFrame{
		Epoch: r.u64(),
		SSID:  r.u64(),
		Trace: r.u64(),
		Op:    r.u8(),
	}
	f.Info[0] = r.i64()
	f.Info[1] = r.i64()
	f.NewRenew = r.i32s()
	nOut := int(r.u32())
	if !r.bad && nOut != k {
		r.fail(fmt.Sprintf("outbox fan-out %d, want %d", nOut, k))
	}
	if !r.bad {
		f.Out = make([][]message, nOut)
		for i := range f.Out {
			f.Out[i] = r.msgs()
		}
	}
	f.MateX = r.i32s()
	f.MateY = r.i32s()
	return f, r.finish()
}

// decodeTelemetry validates the span count against the bytes actually
// present (and the maxTelSpans cap) before allocating — a telemetry frame is
// the only worker-originated frame besides StepDone, so it gets the same
// allocation-bomb discipline.
func decodeTelemetry(b []byte) (telemetryFrame, error) {
	r := newPR("telemetry", b)
	f := telemetryFrame{
		Epoch:   r.u64(),
		Trace:   r.u64(),
		Dropped: r.u64(),
		Steps:   r.i64(),
		MsgsOut: r.i64(),
	}
	n := int(r.u32())
	if !r.bad && n > maxTelSpans {
		r.fail("span count exceeds cap")
	}
	if !r.bad && len(r.b)-r.off < telSpanBytes*n {
		r.fail("span count exceeds frame")
	}
	if !r.bad && n > 0 {
		f.Spans = make([]telSpan, n)
		for i := range f.Spans {
			f.Spans[i] = telSpan{Op: r.u8(), Start: r.i64(), Dur: r.i64(), Arg: r.i64()}
		}
	}
	return f, r.finish()
}

func decodeAbort(b []byte) (string, error) {
	r := newPR("abort", b)
	n := int(r.u32())
	if !r.bad && len(r.b)-r.off < n {
		r.fail("reason length exceeds frame")
	}
	if r.bad {
		return "", r.finish()
	}
	reason := string(r.b[r.off : r.off+n])
	r.off += n
	return reason, r.finish()
}
