package dist

import (
	"fmt"
	"math/rand"
)

// Faults configures deterministic fault injection on the simulated network.
// Point-to-point messages may be dropped, duplicated, or delayed by rank
// stalls; the transport recovers with a retransmit/ack protocol (jittered,
// capped exponential backoff, receiver-side deduplication) and escalates to a
// reliable channel after MaxRetries transmissions per message or
// TimeoutRounds delivery rounds per superstep. Collectives (the renewable
// bitmap allreduce and the frontier-emptiness check) always use the
// reliable channel, as MPI collectives would.
//
// All randomness is drawn from a single seeded source on the exchange
// driver goroutine, so a given (graph, options, Seed) triple replays the
// exact same fault schedule regardless of Workers — and because recovered
// inboxes are reassembled in (source rank, sequence) order, a faulty run
// computes bit-identical mate arrays, supersteps, and logical message
// counts to a fault-free run.
type Faults struct {
	// Seed drives the fault schedule; runs with equal seeds are identical.
	Seed int64

	// Drop is the probability that one transmission of a message — or of
	// its acknowledgement — is lost in flight.
	Drop float64

	// Duplicate is the probability that a delivered message arrives twice;
	// the receiver deduplicates by (source, sequence number).
	Duplicate float64

	// Stall is the per-round probability that a rank stalls, transmitting
	// nothing for that delivery round.
	Stall float64

	// MaxRetries bounds the unreliable transmissions per message before the
	// transport escalates it to the reliable channel; 0 means 8.
	MaxRetries int

	// TimeoutRounds bounds the delivery rounds per superstep before every
	// undelivered message escalates at once (a superstep timeout);
	// 0 means 64.
	TimeoutRounds int

	// FailAfterTimeouts, when > 0, declares the network transiently down
	// once that many superstep timeouts have accumulated. The superstep in
	// flight still completes reliably — state on every rank stays
	// consistent — and the engine then surfaces a *TransientError at its
	// next cancellation-safe point instead of computing on. A retry (e.g.
	// supervise.Retry) resumes from the gathered partial matching.
	FailAfterTimeouts int
}

func (f Faults) withDefaults() Faults {
	if f.MaxRetries <= 0 {
		f.MaxRetries = 8
	}
	if f.TimeoutRounds <= 0 {
		f.TimeoutRounds = 64
	}
	return f
}

// maxBackoff caps the exponential retransmit backoff, in delivery rounds.
const maxBackoff = 16

// nextBackoff advances a message's retransmit schedule after a loss: the wait
// until its next attempt is drawn uniformly from [⌈b/2⌉, b] delivery rounds,
// and the backoff doubles up to maxBackoff. The jitter decorrelates messages
// dropped in the same round — under a deterministic schedule they would all
// retransmit in lockstep forever, reproducing the very burst that got them
// dropped — while the cap keeps worst-case recovery latency bounded.
// Randomness comes from the transport's seeded source, so a given Seed still
// replays the exact same schedule.
func nextBackoff(rng *rand.Rand, backoff int) (wait, next int) {
	lo := (backoff + 1) / 2
	wait = lo + rng.Intn(backoff-lo+1)
	return wait, min(backoff*2, maxBackoff)
}

// TransientError is the engine's report of a simulated network outage
// (Faults.FailAfterTimeouts reached). It marks itself transient so a
// supervisor retries the run in place rather than degrading engines; the
// matching gathered alongside it is a valid partial state to retry from.
type TransientError struct {
	// Timeouts is the superstep-timeout count that tripped the outage.
	Timeouts int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("dist: transient network failure after %d superstep timeouts", e.Timeouts)
}

// Transient marks the error retryable (see supervise.Transient).
func (e *TransientError) Transient() bool { return true }

// FaultStats counts the injected faults and the recovery work they caused.
type FaultStats struct {
	// Dropped and AcksLost count lost transmissions of messages and of
	// their acknowledgements; Duplicated counts duplicate deliveries
	// absorbed by receiver-side dedup.
	Dropped    int64
	AcksLost   int64
	Duplicated int64

	// Stalls counts rank-rounds in which a rank transmitted nothing.
	Stalls int64

	// Retransmits counts second-and-later transmissions of a message.
	Retransmits int64

	// Escalated counts messages force-delivered over the reliable channel
	// after MaxRetries; Timeouts counts supersteps that hit TimeoutRounds
	// and escalated wholesale.
	Escalated int64
	Timeouts  int64

	// DeliveryRounds is the total extra network rounds spent recovering
	// (1 per superstep is the fault-free minimum).
	DeliveryRounds int64
}

// transport is the unreliable network simulation behind Engine.exchange.
type transport struct {
	faults Faults
	rng    *rand.Rand
	fstats *FaultStats

	// failed is set once FailAfterTimeouts trips; the transport keeps
	// delivering reliably so the in-flight superstep completes, and the
	// engine polls this flag at its safe points.
	failed bool

	// Per-superstep scratch reused across deliver calls so the recovery
	// loop allocates nothing at steady state: the in-flight message table,
	// the per-rank dedup maps (cleared, not rebuilt), and the stall flags.
	pend    []pendMsg
	recv    []map[recvKey]message
	stalled []bool
}

func newTransport(f Faults, fs *FaultStats) *transport {
	f = f.withDefaults()
	return &transport{faults: f, rng: rand.New(rand.NewSource(f.Seed)), fstats: fs}
}

// pendMsg is one in-flight message awaiting acknowledgement.
type pendMsg struct {
	src, dst int
	seq      int32
	msg      message
	attempts int
	wait     int // rounds until the next transmission attempt
	backoff  int // current jittered backoff window, doubling up to maxBackoff
	acked    bool
}

type recvKey struct {
	src int
	seq int32
}

// deliver plays every outbox through the faulty network until all messages
// are acknowledged, then reassembles each inbox in (source rank, sequence)
// order — exactly the fault-free concatenation order — and clears the
// outboxes. Runs single-threaded on the exchange driver.
func (t *transport) deliver(ranks []*rank) {
	t.pend = t.pend[:0]
	for _, s := range ranks {
		for dst := range s.out {
			for i, m := range s.out[dst] {
				t.pend = append(t.pend, pendMsg{src: s.id, dst: dst, seq: int32(i), msg: m, backoff: 1})
			}
		}
	}
	pending := t.pend
	K := len(ranks)
	if len(t.recv) != K {
		t.recv = make([]map[recvKey]message, K)
		for i := range t.recv {
			t.recv[i] = make(map[recvKey]message) //lint:ignore hotpath-alloc one-time scratch build on the first superstep, reused (cleared) afterwards
		}
		t.stalled = make([]bool, K)
	} else {
		for i := range t.recv {
			clear(t.recv[i])
		}
	}
	recv, stalled := t.recv, t.stalled
	remaining := len(pending)
	for round := 1; remaining > 0; round++ {
		t.fstats.DeliveryRounds++
		escalate := round > t.faults.TimeoutRounds
		if escalate && round == t.faults.TimeoutRounds+1 {
			t.fstats.Timeouts++
			if t.faults.FailAfterTimeouts > 0 && t.fstats.Timeouts >= int64(t.faults.FailAfterTimeouts) {
				t.failed = true // flag only: this superstep still completes
			}
		}
		for i := range stalled {
			stalled[i] = !escalate && t.rng.Float64() < t.faults.Stall
			if stalled[i] {
				t.fstats.Stalls++
			}
		}
		for i := range pending {
			p := &pending[i]
			if p.acked {
				continue
			}
			if !escalate {
				if stalled[p.src] {
					continue
				}
				if p.wait > 0 {
					p.wait--
					continue
				}
			}
			p.attempts++
			if p.attempts > 1 {
				t.fstats.Retransmits++
			}
			reliable := escalate || p.attempts > t.faults.MaxRetries
			if reliable && !escalate {
				t.fstats.Escalated++
			}
			if !reliable && t.rng.Float64() < t.faults.Drop {
				t.fstats.Dropped++
				p.wait, p.backoff = nextBackoff(t.rng, p.backoff)
				continue
			}
			k := recvKey{p.src, p.seq}
			if _, seen := recv[p.dst][k]; !seen {
				recv[p.dst][k] = p.msg
			}
			if !reliable && t.rng.Float64() < t.faults.Duplicate {
				t.fstats.Duplicated++ // second copy absorbed by dedup
			}
			if !reliable && t.rng.Float64() < t.faults.Drop {
				// The ack is lost: the sender retransmits a message the
				// receiver already has; dedup makes that harmless.
				t.fstats.AcksLost++
				p.wait, p.backoff = nextBackoff(t.rng, p.backoff)
				continue
			}
			p.acked = true
			remaining--
		}
	}

	for _, d := range ranks {
		d.in = d.in[:0]
		for src := 0; src < K; src++ {
			n := len(ranks[src].out[d.id])
			for seq := int32(0); seq < int32(n); seq++ {
				d.in = append(d.in, recv[d.id][recvKey{src, seq}])
			}
		}
	}
	for _, s := range ranks {
		for dst := range s.out {
			s.out[dst] = s.out[dst][:0]
		}
	}
}
