package dist

import (
	"context"
	"testing"
	"testing/quick"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

func TestPartitionCoversAllVertices(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int32{0, 1, 5, 100, 101} {
			p := NewPartition(k, n, n)
			// Ranges tile [0, n) exactly.
			var covered int32
			for r := 0; r < p.K; r++ {
				lo, hi := p.RangeX(r)
				if lo > hi {
					t.Fatalf("k=%d n=%d r=%d: lo %d > hi %d", k, n, r, lo, hi)
				}
				covered += hi - lo
				for v := lo; v < hi; v++ {
					if p.OwnerX(v) != r {
						t.Fatalf("k=%d n=%d: vertex %d in range of %d but owned by %d", k, n, v, r, p.OwnerX(v))
					}
				}
			}
			if covered != n {
				t.Fatalf("k=%d n=%d: covered %d", k, n, covered)
			}
		}
	}
}

func TestPartitionOwnerInRange(t *testing.T) {
	f := func(kRaw uint8, nRaw uint16, vRaw uint16) bool {
		k := int(kRaw%32) + 1
		n := int32(nRaw) + 1
		v := int32(vRaw) % n
		p := NewPartition(k, n, n)
		o := p.OwnerX(v)
		lo, hi := p.RangeX(o)
		return o >= 0 && o < k && v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func distSuite() map[string]*bipartite.Graph {
	return map[string]*bipartite.Graph{
		"empty":     bipartite.MustFromEdges(0, 0, nil),
		"no-edges":  bipartite.MustFromEdges(4, 4, nil),
		"single":    bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}}),
		"path":      bipartite.MustFromEdges(3, 3, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}),
		"er":        gen.ER(200, 180, 800, 1),
		"grid":      gen.StripDiagonal(gen.Grid(12, 12)),
		"weblike":   gen.WebLike(9, 5, 0.35, 2),
		"deficient": gen.RankDeficient(300, 300, 100, 3, 3),
		"rmat":      gen.RMAT(8, 8, 0.57, 0.19, 0.19, 4),
	}
}

// TestDistMatchesShared: the distributed engine must reach the same
// (maximum) cardinality as the reference across rank counts, with and
// without grafting, from both empty and greedy initial matchings.
func TestDistMatchesShared(t *testing.T) {
	for name, g := range distSuite() {
		ref := matching.New(g.NX(), g.NY())
		hk.Run(g, ref)
		want := ref.Cardinality()
		for _, k := range []int{1, 2, 4, 9} {
			for _, grafting := range []bool{false, true} {
				m := matchinit.Greedy(g)
				Run(g, m, Options{Ranks: k, Grafting: grafting})
				if m.Cardinality() != want {
					t.Fatalf("%s k=%d graft=%v: %d, want %d", name, k, grafting, m.Cardinality(), want)
				}
				if err := matching.VerifyMaximum(g, m); err != nil {
					t.Fatalf("%s k=%d graft=%v: %v", name, k, grafting, err)
				}
			}
		}
	}
}

// TestDeterministicAcrossSchedulers: the BSP exchange is deterministic, so
// two runs with the same rank count must produce identical mate arrays even
// though supersteps execute on different goroutines.
func TestDeterministicAcrossSchedulers(t *testing.T) {
	g := gen.ER(300, 300, 1200, 7)
	a := matchinit.Greedy(g)
	b := matchinit.Greedy(g)
	sa := Run(g, a, Options{Ranks: 4, Grafting: true, Workers: 1})
	sb := Run(g, b, Options{Ranks: 4, Grafting: true, Workers: 8})
	for i := range a.MateX {
		if a.MateX[i] != b.MateX[i] {
			t.Fatal("distributed run not deterministic")
		}
	}
	if sa.Messages != sb.Messages || sa.Supersteps != sb.Supersteps {
		t.Fatalf("cost model not deterministic: %+v vs %+v",
			sa.Messages, sb.Messages)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.WebLike(9, 5, 0.35, 5)
	m := matching.New(g.NX(), g.NY())
	s := Run(g, m, Options{Ranks: 4, Grafting: true})
	if s.Supersteps == 0 || s.Messages == 0 || s.Phases == 0 {
		t.Fatalf("missing accounting: %+v", s)
	}
	if s.Ranks != 4 || s.Algorithm != "Dist-MS-BFS-Graft" {
		t.Fatalf("header: %+v", s)
	}
	if s.FinalCardinality != m.Cardinality() {
		t.Fatal("cardinality mismatch")
	}
	if s.AugPaths != s.FinalCardinality {
		t.Fatalf("from empty matching, paths %d must equal |M| %d", s.AugPaths, s.FinalCardinality)
	}
}

// TestGraftingReducesClaimTraffic: on a multi-phase instance, grafting
// should not increase total claim traffic dramatically, and must engage.
func TestGraftingEngages(t *testing.T) {
	g := gen.WebLike(10, 5, 0.35, 6)
	m := matchinit.Greedy(g)
	s := Run(g, m, Options{Ranks: 4, Grafting: true})
	if s.Grafts == 0 {
		t.Fatalf("grafting never engaged: %+v", s)
	}
}

// TestMoreRanksThanVertices exercises the degenerate partition.
func TestMoreRanksThanVertices(t *testing.T) {
	g := bipartite.MustFromEdges(2, 2, []bipartite.Edge{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	m := matching.New(2, 2)
	Run(g, m, Options{Ranks: 16, Grafting: true})
	if m.Cardinality() != 2 {
		t.Fatalf("cardinality %d, want 2", m.Cardinality())
	}
}

// TestSuperstepsScaleWithPathLength: a long path graph needs supersteps
// proportional to its depth (the latency cost the paper's intro warns
// about for long augmenting paths).
func TestSuperstepsScaleWithPathLength(t *testing.T) {
	mk := func(n int32) *bipartite.Graph {
		var edges []bipartite.Edge
		for i := int32(0); i < n; i++ {
			edges = append(edges, bipartite.Edge{X: i, Y: i})
			if i+1 < n {
				edges = append(edges, bipartite.Edge{X: i + 1, Y: i})
			}
		}
		return bipartite.MustFromEdges(n, n, edges)
	}
	short := mk(8)
	long := mk(256)
	pre := func(g *bipartite.Graph, n int32) *matching.Matching {
		m := matching.New(n, n)
		for i := int32(0); i+1 < n; i++ {
			m.Match(i+1, i)
		}
		return m
	}
	sShort := Run(short, pre(short, 8), Options{Ranks: 4})
	sLong := Run(long, pre(long, 256), Options{Ranks: 4})
	if sLong.Supersteps <= sShort.Supersteps {
		t.Fatalf("superstep count insensitive to path length: %d vs %d",
			sLong.Supersteps, sShort.Supersteps)
	}
}

// TestGraftingSuperstepTradeoff pins the distributed trade-off shown by
// examples/distributed on its exact (deterministic) instance: grafting
// reduces supersteps (network rounds) and pays with extra messages. The
// direction of the trade-off is instance-dependent in general — on smaller
// webs the extra graft exchanges outweigh the saved rebuild rounds — so
// this is a regression pin on one instance, not a universal law.
func TestGraftingSuperstepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("medium instance")
	}
	g := gen.WebLike(13, 5, 0.35, 7)
	mA := matchinit.Greedy(g)
	noGraft := Run(g, mA, Options{Ranks: 4})
	mB := matchinit.Greedy(g)
	graft := Run(g, mB, Options{Ranks: 4, Grafting: true})
	if graft.FinalCardinality != noGraft.FinalCardinality {
		t.Fatalf("cardinality %d vs %d", graft.FinalCardinality, noGraft.FinalCardinality)
	}
	if graft.Grafts == 0 {
		t.Fatal("grafting never engaged on the pinned instance")
	}
	if graft.Supersteps >= noGraft.Supersteps {
		t.Errorf("grafting no longer reduces supersteps on the pinned instance: %d vs %d",
			graft.Supersteps, noGraft.Supersteps)
	}
	if graft.Messages <= noGraft.Messages {
		t.Errorf("expected grafting to cost extra messages: %d vs %d",
			graft.Messages, noGraft.Messages)
	}
}

// TestPartitionRangeYConsistency mirrors the X-side range test on Y.
func TestPartitionRangeYConsistency(t *testing.T) {
	p := NewPartition(5, 13, 31)
	var covered int32
	for r := 0; r < p.K; r++ {
		lo, hi := p.RangeY(r)
		covered += hi - lo
		for v := lo; v < hi; v++ {
			if p.OwnerY(v) != r {
				t.Fatalf("y=%d owned by %d, in range of %d", v, p.OwnerY(v), r)
			}
		}
	}
	if covered != 31 {
		t.Fatalf("covered %d", covered)
	}
}

// TestRunCtxCompletes: with a live context RunCtx must match Run exactly —
// maximum cardinality, Complete=true, nil error.
func TestRunCtxCompletes(t *testing.T) {
	g := gen.WebLike(9, 5, 0.35, 2)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	m := matchinit.Greedy(g)
	s, err := RunCtx(context.Background(), g, m, Options{Ranks: 4, Grafting: true})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if !s.Complete {
		t.Fatal("Complete=false on an uncancelled run")
	}
	if m.Cardinality() != ref.Cardinality() {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), ref.Cardinality())
	}
}

// TestRunCtxAlreadyCancelled: an expired context stops the engine at the
// first superstep boundary; the gathered matching must still be a valid
// matching no smaller than the initial one, with Complete=false.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	g := gen.ER(200, 180, 800, 1)
	m := matchinit.Greedy(g)
	initial := m.Cardinality()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := RunCtx(ctx, g, m, Options{Ranks: 4, Grafting: true})
	if err == nil {
		t.Fatal("RunCtx returned nil error under a cancelled context")
	}
	if s.Complete {
		t.Fatal("Complete=true on a cancelled run")
	}
	if err := m.Verify(g); err != nil {
		t.Fatalf("partial matching invalid: %v", err)
	}
	if m.Cardinality() < initial {
		t.Fatalf("cancellation shrank the matching: %d < %d", m.Cardinality(), initial)
	}
}

// TestRunCtxNilContext: a nil context behaves as context.Background.
func TestRunCtxNilContext(t *testing.T) {
	g := bipartite.MustFromEdges(1, 1, []bipartite.Edge{{X: 0, Y: 0}})
	m := matching.New(1, 1)
	s, err := RunCtx(nil, g, m, Options{Ranks: 2}) //nolint:staticcheck // nil-tolerance is part of the contract under test
	if err != nil || !s.Complete {
		t.Fatalf("nil ctx: err=%v complete=%v", err, s.Complete)
	}
	if m.Cardinality() != 1 {
		t.Fatalf("cardinality %d, want 1", m.Cardinality())
	}
}
