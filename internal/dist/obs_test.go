package dist

import (
	"testing"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/gen"
	"graftmatch/internal/matching"
	"graftmatch/internal/obs"
)

// A run with a live recorder must export superstep/message/phase counters
// that agree exactly with the final Stats, one span per phase plus
// per-superstep spans, and a status snapshot at the final phase.
func TestRecorderMatchesStats(t *testing.T) {
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 9)
	rec := obs.New(obs.Config{Workers: 4, TraceCapacity: 65536})
	m := matching.New(g.NX(), g.NY())
	s := RunRec(t, g, m, rec, Options{Ranks: 4, Grafting: true})

	counters := map[string]int64{
		"graftmatch_dist_supersteps_total": s.Supersteps,
		"graftmatch_dist_messages_total":   s.Messages,
		"graftmatch_dist_phases_total":     s.Phases,
	}
	for name, want := range counters {
		if got := rec.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d (stats)", name, got, want)
		}
	}

	spans, dropped := rec.Tracer().Snapshot()
	if dropped != 0 {
		t.Fatalf("trace ring dropped %d spans; raise TraceCapacity", dropped)
	}
	var phaseSpans, ssSpans int64
	for _, sp := range spans {
		if sp.Cat != "dist" {
			t.Errorf("unexpected span category %q", sp.Cat)
		}
		switch sp.Name {
		case "phase":
			phaseSpans++
		case "superstep":
			ssSpans++
		}
	}
	if phaseSpans != s.Phases {
		t.Errorf("phase spans = %d, want %d", phaseSpans, s.Phases)
	}
	// The first exchange has no predecessor to measure from, so exactly one
	// superstep goes unspanned.
	if ssSpans != s.Supersteps-1 {
		t.Errorf("superstep spans = %d, want %d", ssSpans, s.Supersteps-1)
	}

	st := rec.Status()
	if st.Phase != s.Phases {
		t.Errorf("status phase = %d, want %d", st.Phase, s.Phases)
	}
	if st.Cardinality != s.FinalCardinality {
		t.Errorf("status cardinality = %d, want %d", st.Cardinality, s.FinalCardinality)
	}
	if st.Algorithm != s.Algorithm {
		t.Errorf("status algorithm = %q, want %q", st.Algorithm, s.Algorithm)
	}
}

// Fault-recovery counters are exported as per-phase deltas; after the run
// the totals must equal the FaultStats the engine reports.
func TestRecorderExportsFaultDeltas(t *testing.T) {
	g := gen.ER(600, 600, 2400, 11)
	rec := obs.New(obs.Config{Workers: 4})
	m := matching.New(g.NX(), g.NY())
	s := RunRec(t, g, m, rec, Options{
		Ranks: 4, Grafting: true,
		Faults: &Faults{Seed: 11, Drop: 0.25, Duplicate: 0.2, Stall: 0.1},
	})
	if s.Faults == nil {
		t.Fatal("no fault stats")
	}
	if s.Faults.Retransmits == 0 {
		t.Skip("fault schedule produced no retransmits")
	}
	deltas := map[string]int64{
		"graftmatch_dist_retransmits_total": s.Faults.Retransmits,
		"graftmatch_dist_acks_lost_total":   s.Faults.AcksLost,
		"graftmatch_dist_timeouts_total":    s.Faults.Timeouts,
	}
	for name, want := range deltas {
		if got := rec.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d (FaultStats)", name, got, want)
		}
	}
}

// A recorder must not perturb the computed matching.
func TestRecorderDoesNotPerturbRun(t *testing.T) {
	g := gen.ER(500, 500, 2000, 3)
	base := matching.New(g.NX(), g.NY())
	baseStats := Run(g, base, Options{Ranks: 4, Grafting: true})

	rec := obs.New(obs.Config{Workers: 2})
	m := matching.New(g.NX(), g.NY())
	s := RunRec(t, g, m, rec, Options{Ranks: 4, Grafting: true})
	if s.FinalCardinality != baseStats.FinalCardinality {
		t.Errorf("cardinality %d != %d", s.FinalCardinality, baseStats.FinalCardinality)
	}
	if s.Supersteps != baseStats.Supersteps {
		t.Errorf("supersteps %d != %d", s.Supersteps, baseStats.Supersteps)
	}
}

// RunRec runs with opts.Recorder = rec and asserts completion.
func RunRec(t *testing.T, g *bipartite.Graph, m *matching.Matching, rec *obs.Recorder, opts Options) Stats {
	t.Helper()
	opts.Recorder = rec
	s := Run(g, m, opts)
	if !s.Complete {
		t.Fatal("run incomplete")
	}
	return s
}
