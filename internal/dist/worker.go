package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/checkpoint"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/obs"
)

// WorkerOptions configures one rank process of a multi-process cluster run.
type WorkerOptions struct {
	// Addr is the coordinator's listen address (TCP "host:port" or a unix
	// socket path).
	Addr string

	// Rank requests a specific rank id; -1 lets the coordinator assign one.
	// Respawned replacements request the rank they replace.
	Rank int

	// G is the worker's copy of the graph. Every process loads the same
	// input; the Hello/Welcome handshake cross-checks fingerprints.
	G *bipartite.Graph

	// Limits bounds inbound frames; the zero value uses the package default.
	Limits distnet.Limits

	// RTO tunes the session retransmit schedule.
	RTO distnet.BackoffConfig

	// HandshakeTimeout bounds one raw Hello/Welcome exchange; 0 means 10s.
	// A lossy network drops handshake frames too — the exchange is retried,
	// so this only sets how fast a dead attempt is abandoned.
	HandshakeTimeout time.Duration

	// JoinWait bounds the initial join as a whole (dialing plus handshake,
	// retried on transient failure, so a worker may start before its
	// coordinator); 0 means 2m.
	JoinWait time.Duration

	// OnAttach, when non-nil, is called after every successful handshake
	// (first join and reconnects) with the assigned rank. Tests use it;
	// the CLI logs it.
	OnAttach func(rank int)

	// Recorder, when non-nil, records per-op spans locally and turns on the
	// telemetry shipper: batched spans ride fTelemetry frames to the
	// coordinator at superstep boundaries, drop-oldest and best-effort. A
	// nil Recorder keeps the step loop exactly as allocation-free as before.
	Recorder *obs.Recorder
}

// telShipThreshold is how many buffered spans trigger a ship even before a
// phase boundary forces one.
const telShipThreshold = 64

// telShipper batches a worker's spans and metric deltas between fTelemetry
// ships. Bounded drop-oldest: a full buffer evicts its oldest span rather
// than growing or blocking, so a partitioned coordinator can never stall the
// step loop through its own telemetry.
type telShipper struct {
	trace   uint64
	spans   []telSpan // len ≤ maxTelSpans; oldest first
	dropped uint64
	steps   int64
	msgsOut int64
	buf     []byte // reused wire encoding
	frame   telemetryFrame
}

func newTelShipper(trace uint64) *telShipper {
	return &telShipper{trace: trace, spans: make([]telSpan, 0, maxTelSpans)}
}

// add buffers one span, evicting the oldest when full.
func (t *telShipper) add(s telSpan) {
	if len(t.spans) == maxTelSpans {
		copy(t.spans, t.spans[1:])
		t.spans = t.spans[:maxTelSpans-1]
		t.dropped++
	}
	t.spans = append(t.spans, s)
}

// ship encodes the buffered batch and sends it on the session. Best-effort:
// a send error is swallowed (the session is dying; the step loop will see
// it) and the batch is discarded either way.
func (t *telShipper) ship(sess *distnet.Session, epoch uint64) {
	if len(t.spans) == 0 && t.steps == 0 {
		return
	}
	t.frame = telemetryFrame{
		Epoch:   epoch,
		Trace:   t.trace,
		Dropped: t.dropped,
		Steps:   t.steps,
		MsgsOut: t.msgsOut,
		Spans:   t.spans,
	}
	t.buf = encodeTelemetry(t.buf, &t.frame)
	_ = sess.Send(fTelemetry, t.buf)
	t.spans = t.spans[:0]
	t.steps = 0
	t.msgsOut = 0
}

// workerLink is the handshake result: a connected conn plus the terms the
// coordinator granted.
type workerLink struct {
	conn    *distnet.Conn
	welcome welcomeFrame
}

// helloTimeout bounds one raw handshake exchange; a coordinator that accepts
// the TCP connection but never answers the Hello is treated as down.
const helloTimeout = 10 * time.Second

// workerNonce distinguishes this process incarnation from any other worker
// that ever held the same rank. Uniqueness across processes is what matters,
// not unpredictability.
func workerNonce() uint64 {
	return uint64(time.Now().UnixNano()) ^ (uint64(os.Getpid()) << 32)
}

// join dials the coordinator and runs the raw Hello/Welcome handshake on the
// fresh conn, before any session traffic.
func join(ctx context.Context, opts WorkerOptions, nonce uint64, fp checkpoint.Fingerprint, bo *distnet.Backoff) (workerLink, error) {
	ht := opts.HandshakeTimeout
	if ht <= 0 {
		ht = helloTimeout
	}
	cfg := distnet.Config{
		Limits:       opts.Limits,
		ReadTimeout:  ht,
		WriteTimeout: ht,
	}
	conn, err := distnet.Dial(ctx, opts.Addr, cfg, bo)
	if err != nil {
		return workerLink{}, err
	}
	hello := encodeHello(helloFrame{
		Version: protoVersion,
		Rank:    int32(opts.Rank),
		Nonce:   nonce,
		SentAt:  time.Now().UnixNano(),
		FP:      fp,
	})
	if err := conn.Send(fHello, hello); err != nil {
		_ = conn.Close()
		return workerLink{}, err
	}
	deadline := time.Now().Add(ht)
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			return workerLink{}, err
		}
		//lint:ignore proto-exhaustive handshake loop: anything but Welcome/Abort is pre-session noise, skipped until the dial deadline expires
		switch typ {
		case fWelcome:
			w, err := decodeWelcome(payload)
			if err != nil {
				_ = conn.Close()
				return workerLink{}, err
			}
			// Handshake done: the lease watchdog owns liveness from here, so
			// the tight per-frame read deadline comes off before the session
			// attaches.
			conn.SetTimeouts(0, ht)
			return workerLink{conn: conn, welcome: w}, nil
		case fAbort:
			reason, derr := decodeAbort(payload)
			_ = conn.Close()
			if derr != nil {
				return workerLink{}, derr
			}
			return workerLink{}, fmt.Errorf("dist: coordinator refused join: %s", reason) //lint:ignore hotpath-alloc refusal exit of the handshake wait loop
		default:
			// Not garbage but early: on a lossy network our Welcome can be
			// lost while session traffic (heartbeats, replayed steps) already
			// flows on this conn. Skip it — the session layer retransmits
			// anything discarded here — and keep waiting for the Welcome
			// until the handshake deadline, then redial as a transient
			// failure (the same nonce makes the retry idempotent).
			if time.Now().After(deadline) {
				_ = conn.Close()
				return workerLink{}, &distnet.TransportError{Op: "handshake", Timeout: true, Err: fmt.Errorf("no welcome within %v", ht)} //lint:ignore hotpath-alloc timeout exit of the handshake wait loop
			}
		}
	}
}

// transientErr reports whether err marks itself transient (the
// supervise.Transient convention, matched structurally to avoid the import).
func transientErr(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// initialJoin retries the first join for up to JoinWait as long as failures
// stay transient: the coordinator may not be listening yet, and on a lossy
// network the handshake frames themselves can be lost. A refusal (wrong
// fingerprint, rank taken, stale incarnation) is final and returns at once.
// Retrying with the same nonce is idempotent: if a lost Welcome left the
// coordinator believing this worker already joined, the retry lands on the
// reattach path.
func initialJoin(ctx context.Context, opts WorkerOptions, nonce uint64, fp checkpoint.Fingerprint) (workerLink, error) {
	jw := opts.JoinWait
	if jw <= 0 {
		jw = 2 * time.Minute
	}
	joinCtx, cancel := context.WithTimeout(ctx, jw)
	defer cancel()
	bo := opts.RTO.New()
	for {
		link, err := join(joinCtx, opts, nonce, fp, bo)
		if err == nil {
			return link, nil
		}
		if !transientErr(err) || joinCtx.Err() != nil {
			return workerLink{}, err
		}
		select {
		case <-joinCtx.Done():
			return workerLink{}, err
		case <-time.After(bo.Next()):
		}
	}
}

// RunWorker joins the cluster at opts.Addr and executes superstep orders
// until the coordinator declares the run complete (nil), aborts it (error),
// or falls silent past its own granted lease — in which case the worker
// aborts with a *net.PeerDownError rather than computing on in a minority
// partition. Reconnects with backoff on connection loss, replaying unacked
// frames, for as long as the lease holds.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.G == nil {
		return fmt.Errorf("dist: worker needs a graph")
	}
	fp := checkpoint.GraphFingerprint(opts.G)
	nonce := workerNonce()
	link, err := initialJoin(ctx, opts, nonce, fp)
	if err != nil {
		return err
	}
	w := link.welcome
	if w.K < 1 || w.Rank < 0 || w.Rank >= w.K {
		_ = link.conn.Close()
		return &ProtoError{Frame: "welcome", Reason: fmt.Sprintf("rank %d of %d", w.Rank, w.K)}
	}
	if opts.OnAttach != nil {
		opts.OnAttach(int(w.Rank))
	}

	part := NewPartition(int(w.K), opts.G.NX(), opts.G.NY())
	r := newRank(part, opts.G.NX(), int(w.Rank))
	o := ops{g: opts.G, part: part}

	hb := time.Duration(w.HBMillis) * time.Millisecond
	lease := time.Duration(w.LeaseMillis) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	if lease < 2*hb {
		lease = 2 * hb
	}

	sess := distnet.NewSession(distnet.SessionConfig{RTO: opts.RTO})
	defer func() { _ = sess.Close() }()
	sess.Attach(link.conn)

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// lastHeard is the lease clock: any frame from the coordinator renews it.
	// The watchdog goroutine aborts the run when the lease expires — the
	// split-brain guard: a worker cut off from the coordinator kills itself
	// while the majority side recovers, so two live processes never both
	// believe they are rank w.Rank.
	var heardMu sync.Mutex
	lastHeard := time.Now()
	heard := func() {
		heardMu.Lock()
		lastHeard = time.Now()
		heardMu.Unlock()
	}
	silence := func() time.Duration {
		heardMu.Lock()
		defer heardMu.Unlock()
		return time.Since(lastHeard)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	defer wg.Wait()

	go func() { // heartbeats keep the coordinator's failure detector fed
		defer wg.Done()
		distnet.Heartbeat(runCtx, sess, fHB, hb)
	}()

	go func() { // lease watchdog
		defer wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				if s := silence(); s > lease {
					cancel(&distnet.PeerDownError{Peer: -1, MissedFor: s.String()}) //lint:ignore hotpath-alloc lease-expiry exit, at most once per run
					return
				}
			}
		}
	}()

	go func() { // redial on connection loss, same nonce → session replay
		defer wg.Done()
		bo := opts.RTO.New()
		reopts := opts
		reopts.Rank = int(w.Rank)
		for {
			select {
			case <-runCtx.Done():
				return
			case <-sess.Detached():
			}
			link, err := join(runCtx, reopts, nonce, fp, bo)
			if err != nil {
				if runCtx.Err() != nil {
					return
				}
				if transientErr(err) {
					// Lossy handshake or coordinator mid-restart: keep
					// trying; the lease watchdog bounds how long.
					continue
				}
				// The coordinator refused (rank reassigned, protocol error):
				// this incarnation is finished.
				cancel(err)
				return
			}
			sess.Attach(link.conn)
			heard()
			if opts.OnAttach != nil {
				opts.OnAttach(int(w.Rank))
			}
		}
	}()

	// Telemetry is entirely optional: with a nil Recorder the step loop below
	// is byte-for-byte the pre-telemetry path (shipper stays nil, every hook
	// is one nil check), preserving the zero-alloc contract.
	var shipper *telShipper
	rec := opts.Recorder
	if rec != nil {
		rec = rec.WithTrace(w.Trace)
		shipper = newTelShipper(w.Trace)
	}

	epoch := w.Epoch
	var doneBuf []byte
	for {
		m, err := sess.Recv(runCtx)
		if err != nil {
			if cause := context.Cause(runCtx); cause != nil && cause != runCtx.Err() {
				return cause
			}
			return err
		}
		heard()
		switch m.Type {
		case fHB:
			// lease renewal only
		case fDone:
			return nil
		case fAbort:
			reason, derr := decodeAbort(m.Payload)
			if derr != nil {
				return derr
			}
			return fmt.Errorf("dist: coordinator aborted run: %s", reason) //lint:ignore hotpath-alloc abort exit of the step loop
		case fStep:
			f, err := decodeStep(m.Payload)
			if err != nil {
				return err
			}
			if f.Epoch < epoch {
				continue // stale order from before a recovery; already superseded
			}
			epoch = f.Epoch
			var t0 time.Time
			if shipper != nil {
				t0 = time.Now()
			}
			done, err := execStep(o, r, &f)
			if err != nil {
				return err
			}
			if shipper != nil {
				d := time.Since(t0)
				rec.Span("rank", opSpanName(f.Op), t0, d, done.Info[0])
				shipper.add(telSpan{Op: f.Op, Start: t0.UnixNano(), Dur: int64(d), Arg: done.Info[0]})
				shipper.steps++
				for _, box := range done.Out {
					shipper.msgsOut += int64(len(box))
				}
			}
			doneBuf = encodeStepDone(doneBuf, done)
			clearOutboxes(r) // done.Out aliases r.out; encoded, so safe to reset
			if err := sess.Send(fStepDone, doneBuf); err != nil {
				return err
			}
			// Ship after the StepDone so telemetry never delays the barrier
			// the coordinator is gathering; phase boundaries always flush.
			if shipper != nil && (len(shipper.spans) >= telShipThreshold || f.Op == opReportMates) {
				shipper.ship(sess, epoch)
			}
		default:
			return &ProtoError{Frame: "step", Reason: fmt.Sprintf("unexpected frame type %d", m.Type)} //lint:ignore hotpath-alloc protocol-violation exit, never taken on a healthy run
		}
	}
}

// execStep runs one superstep order against the rank state and assembles the
// response: outboxes drained from the rank, newly-renewable roots, and the
// op's scalar results.
func execStep(o ops, r *rank, f *stepFrame) (*stepDoneFrame, error) {
	o.mergeRenewable(r, f.RenewNew)
	done := &stepDoneFrame{Epoch: f.Epoch, SSID: f.SSID, Trace: f.Trace, Op: f.Op}
	switch f.Op {
	case opScatter:
		if len(f.MateX) != int(r.xhi-r.xlo) || len(f.MateY) != int(r.yhi-r.ylo) {
			return nil, &ProtoError{
				Frame:  "step",
				Reason: fmt.Sprintf("scatter sizes (%d,%d), want (%d,%d)", len(f.MateX), len(f.MateY), r.xhi-r.xlo, r.yhi-r.ylo),
			}
		}
		o.scatter(r, f.MateX, f.MateY)
	case opSeed:
		o.seed(r)
		done.Info[0] = int64(len(r.frontier))
	case opExpand:
		o.expand(r)
	case opClaim:
		o.claim(r, f.In)
	case opApply:
		o.apply(r, f.In)
		done.Info[0] = int64(len(r.frontier))
	case opAugInit:
		o.augInit(r)
		done.Info[0] = r.paths
		r.paths = 0
	case opAugStep:
		o.augStep(r, f.In)
	case opCensus:
		done.Info[0], done.Info[1] = o.census(r)
	case opGraftQuery:
		o.graftQuery(r)
	case opGraftAccept:
		o.graftAccept(r, f.In)
	case opGraftAdopt:
		o.graftAdopt(r, f.In)
	case opGraftApply:
		o.graftApply(r, f.In)
		done.Info[0] = int64(len(r.frontier))
	case opRebuild:
		o.rebuild(r)
		done.Info[0] = int64(len(r.frontier))
	case opReportMates:
		done.MateX = r.mateX
		done.MateY = r.mateY
	default:
		return nil, &ProtoError{Frame: "step", Reason: fmt.Sprintf("unknown op %d", f.Op)}
	}
	done.NewRenew = takeNewRenewable(r, nil)
	done.Out = r.out
	return done, nil
}

// clearOutboxes resets the rank's outboxes after their content is encoded.
func clearOutboxes(r *rank) {
	for dst := range r.out {
		r.out[dst] = r.out[dst][:0]
	}
}
