package dist

import (
	"math/rand"
	"testing"

	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
	"graftmatch/internal/matchinit"
)

// TestFaultyRunMatchesReliable: the retransmit/ack transport must make a
// faulty network indistinguishable from a reliable one — identical mate
// arrays, supersteps, and logical message counts — across the whole suite
// and a spread of fault intensities.
func TestFaultyRunMatchesReliable(t *testing.T) {
	faultSets := []Faults{
		{Seed: 1, Drop: 0.2},
		{Seed: 2, Drop: 0.3, Duplicate: 0.3},
		{Seed: 3, Drop: 0.2, Duplicate: 0.1, Stall: 0.2},
		{Seed: 4, Stall: 0.5},
	}
	for name, g := range distSuite() {
		base := matchinit.Greedy(g)
		ref := Run(g, base.Clone(), Options{Ranks: 4, Grafting: true})
		for _, f := range faultSets {
			f := f
			m := base.Clone()
			s := Run(g, m, Options{Ranks: 4, Grafting: true, Faults: &f})
			if err := matching.VerifyMaximum(g, m); err != nil {
				t.Fatalf("%s faults=%+v: %v", name, f, err)
			}
			if s.FinalCardinality != ref.FinalCardinality {
				t.Fatalf("%s faults=%+v: cardinality %d, want %d", name, f, s.FinalCardinality, ref.FinalCardinality)
			}
			if s.Supersteps != ref.Supersteps || s.Messages != ref.Messages {
				t.Fatalf("%s faults=%+v: cost model diverged: supersteps %d vs %d, messages %d vs %d",
					name, f, s.Supersteps, ref.Supersteps, s.Messages, ref.Messages)
			}
			if !s.Complete {
				t.Fatalf("%s: faulty run not marked complete", name)
			}
		}
	}
}

// TestFaultyMatesIdentical: beyond matching cardinality, the recovered
// inbox order must reproduce the exact mate arrays of the reliable run.
func TestFaultyMatesIdentical(t *testing.T) {
	g := gen.ER(300, 300, 1200, 7)
	a := matchinit.Greedy(g)
	b := a.Clone()
	Run(g, a, Options{Ranks: 4, Grafting: true})
	Run(g, b, Options{Ranks: 4, Grafting: true, Faults: &Faults{Seed: 11, Drop: 0.25, Duplicate: 0.2, Stall: 0.1}})
	for i := range a.MateX {
		if a.MateX[i] != b.MateX[i] {
			t.Fatalf("mateX[%d]: %d (reliable) vs %d (faulty)", i, a.MateX[i], b.MateX[i])
		}
	}
	for i := range a.MateY {
		if a.MateY[i] != b.MateY[i] {
			t.Fatalf("mateY[%d]: %d (reliable) vs %d (faulty)", i, a.MateY[i], b.MateY[i])
		}
	}
}

// TestFaultScheduleDeterministic: equal seeds must replay the identical
// fault schedule regardless of the worker count driving the supersteps.
func TestFaultScheduleDeterministic(t *testing.T) {
	g := gen.WebLike(9, 5, 0.35, 2)
	f := Faults{Seed: 42, Drop: 0.3, Duplicate: 0.2, Stall: 0.15}
	run := func(workers int) (*matching.Matching, *FaultStats) {
		fc := f
		m := matchinit.Greedy(g)
		s := Run(g, m, Options{Ranks: 4, Grafting: true, Workers: workers, Faults: &fc})
		return m, s.Faults
	}
	m1, fs1 := run(1)
	m8, fs8 := run(8)
	if *fs1 != *fs8 {
		t.Fatalf("fault schedule depends on workers:\n1: %+v\n8: %+v", *fs1, *fs8)
	}
	for i := range m1.MateX {
		if m1.MateX[i] != m8.MateX[i] {
			t.Fatal("faulty run not deterministic across workers")
		}
	}
	if fs1.Dropped == 0 || fs1.Duplicated == 0 || fs1.Stalls == 0 || fs1.Retransmits == 0 {
		t.Fatalf("fault counters flat — injection not exercised: %+v", *fs1)
	}
}

// TestTotalDropConverges: Drop=1 loses every unreliable transmission, so
// every message must ride the MaxRetries escalation path — and the run must
// still reach a maximum matching.
func TestTotalDropConverges(t *testing.T) {
	g := gen.ER(120, 120, 500, 3)
	ref := matching.New(g.NX(), g.NY())
	hk.Run(g, ref)
	m := matchinit.Greedy(g)
	s := Run(g, m, Options{Ranks: 4, Grafting: true, Faults: &Faults{Seed: 5, Drop: 1.0, MaxRetries: 3}})
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != ref.Cardinality() {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), ref.Cardinality())
	}
	if s.Faults.Escalated == 0 {
		t.Fatalf("expected escalations under total drop: %+v", *s.Faults)
	}
}

// TestSuperstepTimeoutEscalation: a tiny TimeoutRounds with heavy drops
// forces whole-superstep escalations; convergence must survive them.
func TestSuperstepTimeoutEscalation(t *testing.T) {
	g := gen.ER(120, 120, 500, 9)
	m := matchinit.Greedy(g)
	s := Run(g, m, Options{Ranks: 4, Grafting: true,
		Faults: &Faults{Seed: 6, Drop: 0.9, MaxRetries: 50, TimeoutRounds: 2}})
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if s.Faults.Timeouts == 0 {
		t.Fatalf("expected superstep timeouts: %+v", *s.Faults)
	}
}

// TestReliableRunHasNoFaultStats: without injection the transport is
// bypassed entirely.
func TestReliableRunHasNoFaultStats(t *testing.T) {
	g := gen.ER(50, 50, 200, 1)
	m := matchinit.Greedy(g)
	s := Run(g, m, Options{Ranks: 2})
	if s.Faults != nil {
		t.Fatalf("fault stats on a reliable run: %+v", *s.Faults)
	}
}

// TestDeliverSteadyStateAllocs: the retransmit/ack recovery loop reuses the
// transport's scratch (pending table, per-rank dedup maps, stall flags), so
// a steady-state superstep — same rank count, same message volume — must
// not allocate at all. deliver runs single-threaded on the exchange driver,
// which makes the measurement deterministic.
func TestDeliverSteadyStateAllocs(t *testing.T) {
	tr := newTransport(Faults{Seed: 7, Drop: 0.2, Duplicate: 0.1, Stall: 0.1}, &FaultStats{})
	const K = 3
	ranks := make([]*rank, K)
	for i := range ranks {
		ranks[i] = &rank{id: i, out: make([][]message, K)}
	}
	fill := func() {
		for _, s := range ranks {
			for dst := 0; dst < K; dst++ {
				for seq := int32(0); seq < 8; seq++ {
					s.send(dst, message{mClaim, seq, int32(s.id), 0})
				}
			}
		}
	}
	// AllocsPerRun's warm-up call grows all scratch to capacity; the
	// measured runs must then be allocation-free.
	if avg := testing.AllocsPerRun(50, func() {
		fill()
		tr.deliver(ranks)
	}); avg > 0 {
		t.Errorf("deliver allocated %.1f times per steady-state superstep, want 0", avg)
	}
}

// TestNextBackoffJitteredAndCapped: the per-message retransmit schedule must
// draw each wait from the jitter window [⌈b/2⌉, b], double the window up to
// maxBackoff and no further, and replay identically for an equal seed —
// that determinism is what keeps whole faulty runs replayable.
func TestNextBackoffJitteredAndCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	backoff := 1
	for step := 0; step < 20; step++ {
		lo := (backoff + 1) / 2
		wait, next := nextBackoff(rng, backoff)
		if wait < lo || wait > backoff {
			t.Fatalf("step %d: wait %d outside jitter window [%d, %d]", step, wait, lo, backoff)
		}
		if want := min(backoff*2, maxBackoff); next != want {
			t.Fatalf("step %d: next backoff %d, want %d", step, next, want)
		}
		if backoff == maxBackoff && next != maxBackoff {
			t.Fatalf("step %d: cap not held, next = %d", step, next)
		}
		backoff = next
	}

	// Same seed, same schedule.
	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	ba, bb := 1, 1
	for step := 0; step < 50; step++ {
		wa, na := nextBackoff(a, ba)
		wb, nb := nextBackoff(b, bb)
		if wa != wb || na != nb {
			t.Fatalf("step %d: equal seeds diverged: (%d,%d) vs (%d,%d)", step, wa, na, wb, nb)
		}
		ba, bb = na, nb
	}
}
