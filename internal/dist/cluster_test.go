package dist

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graftmatch/internal/bipartite"
	"graftmatch/internal/checkpoint"
	distnet "graftmatch/internal/dist/net"
	"graftmatch/internal/gen"
	"graftmatch/internal/hk"
	"graftmatch/internal/matching"
)

// refCardinality is the differential oracle: Hopcroft–Karp's maximum.
func refCardinality(g *bipartite.Graph) int64 {
	m := matching.New(g.NX(), g.NY())
	hk.Run(g, m)
	return m.Cardinality()
}

// testClusterOpts shrinks every failure-detection interval so death and
// recovery fit in test time: 25ms heartbeats, a 200ms lease.
func testClusterOpts() ClusterOptions {
	return ClusterOptions{
		Ranks:            4,
		Grafting:         true,
		Heartbeat:        25 * time.Millisecond,
		HandshakeTimeout: 500 * time.Millisecond,
	}
}

func testWorkerOpts(addr string, rank int, g *bipartite.Graph) WorkerOptions {
	return WorkerOptions{
		Addr:             addr,
		Rank:             rank,
		G:                g,
		HandshakeTimeout: 500 * time.Millisecond,
		JoinWait:         20 * time.Second,
	}
}

// startWorker launches RunWorker on its own goroutine; the error lands in
// errs (never t directly — workers may outlive a failing test body).
func startWorker(ctx context.Context, wg *sync.WaitGroup, errs chan<- error, opts WorkerOptions) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- RunWorker(ctx, opts)
	}()
}

// runCluster drives a full multi-process-shaped run — coordinator plus
// opts.Ranks goroutine workers over real sockets at addr — and requires every
// worker to exit clean.
func runCluster(t *testing.T, g *bipartite.Graph, addr string, opts ClusterOptions) (*matching.Matching, ClusterStats) {
	t.Helper()
	c, err := NewCoordinator(g, addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, opts.Ranks)
	for i := 0; i < opts.Ranks; i++ {
		startWorker(ctx, &wg, errs, testWorkerOpts(c.Addr(), -1, g))
	}
	m := matching.New(g.NX(), g.NY())
	s, err := c.Run(ctx, m)
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatalf("cluster run: %v", err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if e != nil {
			t.Errorf("worker exited with error: %v", e)
		}
	}
	return m, s
}

// TestClusterHappyPath: 4 workers over real TCP must reproduce the reference
// maximum and leave a phase-boundary checkpoint at the final cardinality.
func TestClusterHappyPath(t *testing.T) {
	g := gen.ER(400, 400, 1600, 21)
	want := refCardinality(g)
	dir := t.TempDir()
	opts := testClusterOpts()
	opts.CheckpointDir = dir

	m, s := runCluster(t, g, "127.0.0.1:0", opts)
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != want {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), want)
	}
	if !s.Complete || s.Phases == 0 || s.Supersteps == 0 || s.Messages == 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.Ranks != 4 {
		t.Fatalf("ranks %d, want 4", s.Ranks)
	}
	snap, _, err := checkpoint.LoadLatest(dir, checkpoint.GraphFingerprint(g))
	if err != nil {
		t.Fatalf("no checkpoint after run: %v", err)
	}
	if snap.Cardinality != want {
		t.Fatalf("checkpoint cardinality %d, want %d", snap.Cardinality, want)
	}
}

// TestClusterUnixSocket: the same protocol must run over unix domain sockets
// (the Network address heuristic picks them for path-shaped addrs).
func TestClusterUnixSocket(t *testing.T) {
	g := gen.ER(150, 150, 600, 3)
	want := refCardinality(g)
	opts := testClusterOpts()
	opts.Ranks = 2
	m, _ := runCluster(t, g, filepath.Join(t.TempDir(), "graft.sock"), opts)
	if m.Cardinality() != want {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), want)
	}
}

// TestClusterKillRespawnRecovers is the headline fault drill: a rank dies
// mid-run (its process context is cut with no farewell), the coordinator
// detects the death by heartbeat silence, respawns the rank, rolls every
// rank back to the last phase-boundary matching, and still finishes with a
// verified maximum matching at the reference cardinality.
func TestClusterKillRespawnRecovers(t *testing.T) {
	g := gen.ER(500, 500, 1500, 33)
	want := refCardinality(g)
	const victim = 2

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	var addr string
	opts := testClusterOpts()
	opts.Respawn = func(rank int) error {
		startWorker(ctx, &wg, errs, testWorkerOpts(addr, rank, g))
		return nil
	}
	var killOnce sync.Once
	opts.OnPhase = func(phase, card int64) {
		killOnce.Do(killVictim)
	}

	c, err := NewCoordinator(g, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr = c.Addr()
	for i := 0; i < 4; i++ {
		wctx := ctx
		if i == victim {
			wctx = victimCtx
		}
		startWorker(wctx, &wg, errs, testWorkerOpts(addr, i, g))
	}

	m := matching.New(g.NX(), g.NY())
	s, err := c.Run(ctx, m)
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatalf("cluster run: %v", err)
	}
	wg.Wait()
	close(errs)
	var failed int
	for e := range errs {
		if e != nil {
			failed++
		}
	}

	if failed != 1 {
		t.Errorf("%d workers exited with errors, want exactly the killed one", failed)
	}
	if s.RankDeaths != 1 || s.Recoveries != 1 {
		t.Errorf("deaths=%d recoveries=%d, want 1 and 1", s.RankDeaths, s.Recoveries)
	}
	if s.RecoveryTime <= 0 {
		t.Errorf("recovery time not recorded: %v", s.RecoveryTime)
	}
	if s.Phases < 2 {
		t.Fatalf("run finished in %d phases — the kill never hit a live run", s.Phases)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != want {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), want)
	}
}

// TestClusterChaosConverges: with every worker connected through a chaos
// proxy injecting frame drops, duplication, and latency, the session layer's
// retransmit/ack protocol must still deliver a verified maximum matching.
func TestClusterChaosConverges(t *testing.T) {
	g := gen.ER(250, 250, 1000, 5)
	want := refCardinality(g)
	opts := testClusterOpts()
	// Retransmit bursts behind the proxy's serialized per-frame latency can
	// starve heartbeats for stretches, so the lease is generous here — and a
	// Respawn handler stands by in case congestion still earns a rank a
	// (spurious but legitimate) death sentence.
	opts.Lease = time.Second
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var proxyAddr string
	opts.Respawn = func(rank int) error {
		startWorker(ctx, &wg, errs, testWorkerOpts(proxyAddr, rank, g))
		return nil
	}
	c, err := NewCoordinator(g, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy, err := distnet.NewProxy(c.Addr(), distnet.Chaos{
		Seed:      9,
		Drop:      0.08,
		Duplicate: 0.08,
		Latency:   2 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
	}, distnet.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyAddr = proxy.Addr()

	for i := 0; i < 4; i++ {
		startWorker(ctx, &wg, errs, testWorkerOpts(proxyAddr, -1, g))
	}
	m := matching.New(g.NX(), g.NY())
	s, err := c.Run(ctx, m)
	if err != nil {
		cancel()
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Logf("worker error: %v", e)
		}
		t.Fatalf("cluster run under chaos: %v", err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if e == nil {
			continue
		}
		// A worker whose own lease expired during a congestion burst is the
		// failure detector working as designed, not a test failure.
		var pd *distnet.PeerDownError
		if !errors.As(e, &pd) {
			t.Errorf("worker exited with error: %v", e)
		}
	}

	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != want {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), want)
	}
	ps := proxy.Stats()
	if ps.Dropped == 0 || ps.Duplicated == 0 {
		t.Errorf("chaos not exercised: %+v", ps)
	}
	if s.Retransmits == 0 {
		t.Errorf("drops without retransmits: %+v", ps)
	}
}

// TestClusterSplitBrainMinorityAborts (the partition drill): a network
// partition isolates one rank of four. The minority side's lease expires and
// it aborts with a typed *net.PeerDownError rather than computing on; the
// majority side declares the rank dead, respawns it on the healed network,
// and completes a verified maximum matching — so no two processes ever both
// act as the same rank.
func TestClusterSplitBrainMinorityAborts(t *testing.T) {
	g := gen.ER(400, 400, 1200, 17)
	want := refCardinality(g)
	const victim = 3

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	var addr string
	var proxy *distnet.Proxy
	var partOnce sync.Once
	opts := testClusterOpts()
	opts.Respawn = func(rank int) error {
		startWorker(ctx, &wg, errs, testWorkerOpts(addr, rank, g))
		return nil
	}
	opts.OnPhase = func(phase, card int64) {
		partOnce.Do(func() { proxy.SetPartition(true) })
	}

	c, err := NewCoordinator(g, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr = c.Addr()
	proxy, err = distnet.NewProxy(addr, distnet.Chaos{}, distnet.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	for i := 0; i < 4; i++ {
		waddr := addr
		if i == victim {
			waddr = proxy.Addr()
		}
		startWorker(ctx, &wg, errs, testWorkerOpts(waddr, i, g))
	}

	m := matching.New(g.NX(), g.NY())
	s, err := c.Run(ctx, m)
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatalf("cluster run across partition: %v", err)
	}
	wg.Wait()
	close(errs)
	var aborted, other int
	for e := range errs {
		if e == nil {
			continue
		}
		var pd *distnet.PeerDownError
		if errors.As(e, &pd) {
			aborted++
		} else {
			other++
			t.Errorf("unexpected worker error: %v", e)
		}
	}

	if aborted != 1 {
		t.Errorf("%d minority aborts, want exactly 1 (the partitioned rank)", aborted)
	}
	if s.RankDeaths < 1 || s.Recoveries < 1 {
		t.Errorf("majority never recovered the partitioned rank: %+v", s)
	}
	if s.Phases < 2 {
		t.Fatalf("run finished in %d phases — the partition never hit a live run", s.Phases)
	}
	if err := matching.VerifyMaximum(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != want {
		t.Fatalf("cardinality %d, want %d", m.Cardinality(), want)
	}
}

// TestClusterCheckpointResume: a second run over the same checkpoint
// directory must pick up the saved matching instead of starting over — one
// phase to confirm maximality and done.
func TestClusterCheckpointResume(t *testing.T) {
	g := gen.ER(300, 300, 1200, 7)
	want := refCardinality(g)
	dir := t.TempDir()
	opts := testClusterOpts()
	opts.Ranks = 2
	opts.CheckpointDir = dir

	_, s1 := runCluster(t, g, "127.0.0.1:0", opts)
	m2, s2 := runCluster(t, g, "127.0.0.1:0", opts)

	if m2.Cardinality() != want {
		t.Fatalf("resumed cardinality %d, want %d", m2.Cardinality(), want)
	}
	if s2.InitialCardinality != 0 {
		t.Fatalf("resume test needs an empty starting matching, got %d", s2.InitialCardinality)
	}
	if s1.Phases < 2 {
		t.Skipf("first run converged in %d phases; resume adds nothing to check", s1.Phases)
	}
	if s2.Phases != 1 {
		t.Errorf("resumed run took %d phases, want 1 (checkpoint already maximum)", s2.Phases)
	}
}

// TestClosedCounterFoldIsLocked pins a race fix: recoverRank used to fold a
// retired session's counters into the slot after releasing s.mu, racing the
// handshake path and the stats exporter, which both treat closedRetrans and
// closedAttach as lock-guarded state. The fold now lives in
// slot.foldClosedLocked and runs inside the critical section; this test
// drives the real fold and the real exporter concurrently so `go test -race`
// fails if the discipline regresses.
func TestClosedCounterFoldIsLocked(t *testing.T) {
	c := &Coordinator{slots: []*slot{{rank: 0, frames: make(chan stepDoneFrame, 1)}}}
	s := c.slots[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			sess := distnet.NewSession(distnet.SessionConfig{})
			s.mu.Lock()
			s.foldClosedLocked(sess)
			s.mu.Unlock()
			_ = sess.Close()
		}
	}()
	for i := 0; i < 500; i++ {
		c.exportSessionStats()
	}
	<-done
	if c.stats.Attaches != 0 || c.stats.Retransmits != 0 {
		t.Fatalf("idle sessions exported attaches=%d retransmits=%d, want 0",
			c.stats.Attaches, c.stats.Retransmits)
	}
}
