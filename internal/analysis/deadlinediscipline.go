package analysis

import (
	"go/ast"
	"sort"

	"graftmatch/internal/analysis/flow"
)

// DeadlineDiscipline is the deadline-discipline check: a function that both
// arms a connection deadline (SetReadDeadline/SetWriteDeadline/SetDeadline
// with a non-zero time) and disarms one (the same call with time.Time{})
// manages that deadline's lifecycle — and then every CFG path out of the
// function, error exits included, must leave the deadline disarmed or the
// connection closed. Arming on one path and forgetting the disarm on
// another is how a handshake deadline survives into the session and fires
// mid-run.
//
// Functions that only arm are the per-frame I/O pattern (each call re-arms
// before its read or write, a later stage disarms) and are not flagged;
// functions that only disarm are the stage-transition helpers. A deferred
// disarm covers every exit.
func DeadlineDiscipline() Check {
	return Check{
		Name:  "deadline-discipline",
		Doc:   "functions managing conn deadlines disarm them on every exit path",
		Level: "error",
		Run:   runDeadlineDiscipline,
	}
}

// deadlineKey is one tracked deadline: the receiver chain and the side.
type deadlineKey struct {
	key  string // exprKey of the conn expression
	mode string // "read" or "write"
}

func (k deadlineKey) String() string { return k.key + " (" + k.mode + ")" }

// deadlineOp is one classified call: arm or disarm of one or both sides,
// or a close of the conn.
type deadlineOp struct {
	keys  []deadlineKey
	arm   bool
	close bool
}

func runDeadlineDiscipline(prog *Program) []Diagnostic {
	fs := prog.flowInfo()
	var out []Diagnostic
	for _, fn := range fs.cg.Funcs() {
		pkg := fs.pkgOf[fn]
		out = append(out, deadlineCheckFunc(prog, fs, pkg, fn)...)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lf := &flow.Func{Info: pkg.Info, Node: lit, Body: lit.Body, Name: funcLabel(lit)}
				out = append(out, deadlineCheckFunc(prog, fs, pkg, lf)...)
			}
			return true
		})
	}
	return out
}

func deadlineCheckFunc(prog *Program, fs *flowState, pkg *Package, fn *flow.Func) []Diagnostic {
	arms := map[deadlineKey]bool{}
	disarms := map[deadlineKey]bool{}
	deferred := map[deadlineKey]bool{}
	scanOwn(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if op := deadlineOpOf(pkg, n); op != nil && !op.close {
				for _, k := range op.keys {
					if op.arm {
						arms[k] = true
					} else {
						disarms[k] = true
					}
				}
			}
		case *ast.DeferStmt:
			if op := deadlineOpOf(pkg, n.Call); op != nil && !op.arm && !op.close {
				for _, k := range op.keys {
					disarms[k] = true
					deferred[k] = true
				}
			}
		}
	})
	// Only keys whose full lifecycle (arm AND disarm) is managed here are
	// checked; see the check doc for why arm-only functions pass.
	var keys []deadlineKey
	for k := range arms {
		if disarms[k] && !deferred[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	idx := map[deadlineKey]int{}
	for i, k := range keys {
		idx[k] = i
	}

	g := fn.CFG(fs.cg)
	transfer := func(b *flow.Block, in flow.BitSet) flow.BitSet {
		out := in.Copy()
		for _, node := range b.Nodes {
			applyDeadlineOps(pkg, fn.Node, node, idx, out)
		}
		return out
	}
	// May-analysis: armed on SOME path into the exit is already the defect —
	// the contract is "disarmed on every path out".
	p := flow.Problem{Bits: len(keys), Entry: flow.NewBitSet(len(keys)), Transfer: transfer}
	may := p.Solve(g)

	var out []Diagnostic
	reported := map[deadlineKey]bool{}
	for _, b := range g.Reachable() {
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		in, ok := may.In[b]
		if !ok {
			continue
		}
		facts := in.Copy()
		for _, node := range b.Nodes {
			applyDeadlineOps(pkg, fn.Node, node, idx, facts)
		}
		for _, k := range keys {
			if facts.Has(idx[k]) && !reported[k] {
				reported[k] = true
				pos := b.Pos()
				if !pos.IsValid() {
					pos = fn.Body.Pos()
				}
				out = append(out, prog.diag(pos, "deadline-discipline",
					"%s deadline of %s is disarmed on some paths of %s but still armed when this exit is reached",
					k.mode, k.key, funcLabel(fn.Node)))
			}
		}
	}
	return out
}

// applyDeadlineOps mutates facts with the arm/disarm/close effect of one
// CFG node. Deferred calls run at exit, not here.
func applyDeadlineOps(pkg *Package, fnNode ast.Node, root ast.Node, idx map[deadlineKey]int, facts flow.BitSet) {
	if _, isDefer := root.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == fnNode
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			op := deadlineOpOf(pkg, n)
			if op == nil {
				return true
			}
			for _, k := range op.keys {
				if i, ok := idx[k]; ok {
					if op.arm {
						facts.Set(i)
					} else {
						facts.Clear(i)
					}
				}
			}
		}
		return true
	})
}

// deadlineOpOf classifies a call as a deadline arm/disarm or a conn close.
// The receiver's identity is its exprKey; a Close on the same chain clears
// both sides (a closed socket's deadlines are moot).
func deadlineOpOf(pkg *Package, call *ast.CallExpr) *deadlineOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	key := exprKey(sel.X)
	if key == "" {
		return nil
	}
	switch sel.Sel.Name {
	case "SetReadDeadline", "SetWriteDeadline", "SetDeadline":
		if len(call.Args) != 1 {
			return nil
		}
		var keys []deadlineKey
		switch sel.Sel.Name {
		case "SetReadDeadline":
			keys = []deadlineKey{{key, "read"}}
		case "SetWriteDeadline":
			keys = []deadlineKey{{key, "write"}}
		default:
			keys = []deadlineKey{{key, "read"}, {key, "write"}}
		}
		return &deadlineOp{keys: keys, arm: !isZeroTime(pkg, call.Args[0])}
	case "Close":
		if len(call.Args) != 0 {
			return nil
		}
		return &deadlineOp{
			keys:  []deadlineKey{{key, "read"}, {key, "write"}},
			close: true,
		}
	}
	return nil
}

// isZeroTime recognizes the disarm argument time.Time{} (parenthesized or
// via a conversion-free composite literal).
func isZeroTime(pkg *Package, e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 0 {
		return false
	}
	tv, ok := pkg.Info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	n := namedType(tv.Type)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
