package analysis

import (
	"go/ast"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// The directive silences the named checks on its own line and on the
// following line, so it can annotate the flagged statement directly
// (trailing comment) or sit on the line just above it. The reason is
// mandatory: a suppression without a justification is itself a finding
// (reported under the pseudo-check "lint-directive").
const ignorePrefix = "//lint:ignore"

// suppressions indexes parsed //lint:ignore directives by file and line.
type suppressions struct {
	// byLine maps filename -> line -> set of suppressed check names.
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

// parseSuppressions scans every comment of every file in the program.
func parseSuppressions(prog *Program) *suppressions {
	s := &suppressions{byLine: map[string]map[int]map[string]bool{}}
	known := map[string]bool{}
	for _, name := range CheckNames() {
		known[name] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.parseComment(prog, known, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) parseComment(prog *Program, known map[string]bool, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, ignorePrefix)
	if !ok {
		return
	}
	bad := func(format string, args ...any) {
		s.malformed = append(s.malformed, prog.diag(c.Pos(), "lint-directive", format, args...))
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		bad("malformed %s: missing check name and reason", ignorePrefix)
		return
	}
	if len(fields) < 2 {
		bad("malformed %s %s: missing reason", ignorePrefix, fields[0])
		return
	}
	checks := strings.Split(fields[0], ",")
	for _, name := range checks {
		if !known[name] {
			bad("%s names unknown check %q (have %s)", ignorePrefix, name, strings.Join(CheckNames(), ", "))
			return
		}
	}
	pos := prog.Fset.Position(c.Pos())
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s.byLine[pos.Filename] = lines
	}
	// A directive covers its own line (trailing-comment form) and the next
	// line (standalone-comment-above form). Both forms are deterministic and
	// keep the annotation adjacent to the code it justifies.
	for _, ln := range []int{pos.Line, pos.Line + 1} {
		set := lines[ln]
		if set == nil {
			set = map[string]bool{}
			lines[ln] = set
		}
		for _, name := range checks {
			set[name] = true
		}
	}
}

// suppressed reports whether d is silenced by a directive.
func (s *suppressions) suppressed(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Check]
}
