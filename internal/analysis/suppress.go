package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// The directive silences the named checks on its own line and on the
// following line, so it can annotate the flagged statement directly
// (trailing comment) or sit on the line just above it. The reason is
// mandatory: a suppression without a justification is itself a finding
// (reported under the pseudo-check "lint-directive").
const ignorePrefix = "//lint:ignore"

// Directive is one parsed //lint:ignore with its audit state: where it sits,
// what it names, why, and how many findings it has silenced in the runs
// performed so far. A directive whose Hits stay empty after a full run is
// suppression debt — the code it justified has moved on.
type Directive struct {
	File   string
	Line   int
	Checks []string
	Reason string
	Hits   map[string]int // check name -> findings silenced
}

// Silenced sums Hits across checks.
func (d *Directive) Silenced() int {
	n := 0
	for _, h := range d.Hits {
		n += h
	}
	return n
}

// suppressions indexes parsed //lint:ignore directives by file and line.
type suppressions struct {
	// byLine maps filename -> line -> check name -> the directives that
	// silence it there, so a hit can be charged back to its directive.
	byLine     map[string]map[int]map[string][]*Directive
	directives []*Directive
	malformed  []Diagnostic
}

// parseSuppressions scans every comment of every file in the program.
func parseSuppressions(prog *Program) *suppressions {
	s := &suppressions{byLine: map[string]map[int]map[string][]*Directive{}}
	known := map[string]bool{}
	for _, name := range CheckNames() {
		known[name] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.parseComment(prog, known, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) parseComment(prog *Program, known map[string]bool, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, ignorePrefix)
	if !ok {
		return
	}
	bad := func(format string, args ...any) {
		s.malformed = append(s.malformed, prog.diag(c.Pos(), "lint-directive", format, args...))
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		bad("malformed %s: missing check name and reason", ignorePrefix)
		return
	}
	if len(fields) < 2 {
		bad("malformed %s %s: missing reason", ignorePrefix, fields[0])
		return
	}
	checks := strings.Split(fields[0], ",")
	for _, name := range checks {
		if !known[name] {
			bad("%s names unknown check %q (have %s)", ignorePrefix, name, strings.Join(CheckNames(), ", "))
			return
		}
	}
	pos := prog.Fset.Position(c.Pos())
	d := &Directive{
		File:   pos.Filename,
		Line:   pos.Line,
		Checks: checks,
		Reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0])),
		Hits:   map[string]int{},
	}
	s.directives = append(s.directives, d)
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int]map[string][]*Directive{}
		s.byLine[pos.Filename] = lines
	}
	// A directive covers its own line (trailing-comment form) and the next
	// line (standalone-comment-above form). Both forms are deterministic and
	// keep the annotation adjacent to the code it justifies.
	for _, ln := range []int{pos.Line, pos.Line + 1} {
		set := lines[ln]
		if set == nil {
			set = map[string][]*Directive{}
			lines[ln] = set
		}
		for _, name := range checks {
			set[name] = append(set[name], d)
		}
	}
}

// suppressed reports whether d is silenced by a directive, charging the hit
// back to every directive that covers it.
func (s *suppressions) suppressed(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	ds := lines[d.Pos.Line][d.Check]
	for _, dir := range ds {
		dir.Hits[d.Check]++
	}
	return len(ds) > 0
}

// Suppressions returns the program's parsed //lint:ignore directives sorted
// by file and line, with the hit counts accumulated by the Run calls made so
// far. Audit debt by calling it after a full (unfiltered) Run: a directive
// with no hits silenced nothing.
func (prog *Program) Suppressions() []Directive {
	out := make([]Directive, 0, len(prog.supp.directives))
	for _, d := range prog.supp.directives {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
