package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strings"

	"graftmatch/internal/analysis/flow"
)

// SharedRace is the shared-race check: an Eraser-style lockset rule over the
// points-to/escape tier. Every read and write of a tracked abstract location
// is collected together with the set of mutexes must-held at that point;
// locations reachable from more than one goroutine context whose accesses
// include a write with an empty intersected lockset against some other
// access are reported as data races.
//
// Lock identity is resolved through the points-to layer, so `s.mu` guarding
// `s.cache` is recognized across methods, closures, and mutex aliases
// (`m := &s.mu`). Several orderings keep the check quiet where the runtime
// is actually sequential: accesses in the allocating function before its
// first spawn site (construction), accesses ordered after a WaitGroup.Wait
// join, synchronously joined par regions against main-context code, and
// per-instance objects allocated inside the multi-instance context itself.
func SharedRace() Check {
	return Check{
		Name:  "shared-race",
		Doc:   "reads and writes of goroutine-shared locations hold a common lock",
		Level: "error",
		Run:   runSharedRace,
	}
}

// raceLoc is a comparable rendering of a flow.Loc, used as a group key.
type raceLoc struct {
	obj  *flow.Object
	path string
}

// raceAccess is one read or write of a tracked location.
type raceAccess struct {
	fn     *flow.Func
	pos    token.Pos
	write  bool
	atomic bool
	locks  map[string]bool // canonical mutex IDs must-held at the access
	text   string          // rendered source expression, for the message
}

// callRec is one direct, synchronous module-local call with the lockset held
// at the call site; the basis of caller-held lock inheritance.
type callRec struct {
	caller, callee *flow.Func
	held           map[string]bool
}

func runSharedRace(prog *Program) []Diagnostic {
	fs := prog.ptInfo()
	groups := map[raceLoc][]*raceAccess{}
	var calls []*callRec
	for _, fn := range fs.valueFuncs() {
		pkg := fs.pkgFor(fn)
		if pkg == nil {
			continue
		}
		collectRaceAccesses(fs, pkg, fn, groups, &calls)
	}
	inherited := inheritCallerLocks(calls)

	keys := make([]raceLoc, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj.ID != keys[j].obj.ID {
			return keys[i].obj.ID < keys[j].obj.ID
		}
		return keys[i].path < keys[j].path
	})

	var out []Diagnostic
	for _, k := range keys {
		if d, ok := raceInGroup(prog, fs, k, groups[k], inherited); ok {
			out = append(out, d)
		}
	}
	return out
}

// walkWithLocks drives visit over every CFG node of fn in block order,
// passing the must-held lockset (as canonical mutex IDs plus name-based
// fallbacks) flowing into that node. Deferred statements are visited with
// the lockset at the defer site: their arguments evaluate there, and the
// common `mu.Lock(); defer mu.Unlock(); defer f()` shape runs f before the
// unlock anyway.
func walkWithLocks(fs *flowState, pkg *Package, fn *flow.Func, visit func(node ast.Node, held map[string]bool)) {
	keys, _ := collectLockKeys(pkg, fn.Body)
	idx := map[lockKey]int{}
	canon := map[lockKey]map[string]bool{}
	for i, k := range keys {
		idx[k] = i
	}
	// Map each syntactic key to canonical IDs via its first receiver expr.
	if len(keys) > 0 {
		scanOwn(fn.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			m, ok := lockOp(pkg, call)
			if !ok {
				return
			}
			if _, seen := canon[m.lockKey]; seen {
				return
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			canon[m.lockKey] = canonMutexIDs(fs, pkg, sel.X)
		})
	}
	g := fn.CFG(fs.cg)
	var must *flow.Solution
	if len(keys) > 0 {
		p := flow.Problem{
			Bits:  len(keys),
			Entry: flow.NewBitSet(len(keys)),
			Must:  true,
			Transfer: func(b *flow.Block, in flow.BitSet) flow.BitSet {
				out := in.Copy()
				for _, node := range b.Nodes {
					applyLockOps(pkg, fn.Node, node, idx, out)
				}
				return out
			},
		}
		must = p.Solve(g)
	}
	heldIDs := func(facts flow.BitSet) map[string]bool {
		var ids map[string]bool
		for k, i := range idx {
			if !facts.Has(i) || !k.write { // read locks do not order writes
				continue
			}
			for id := range canon[k] {
				if ids == nil {
					ids = map[string]bool{}
				}
				ids[id] = true
			}
		}
		return ids
	}
	for _, b := range g.Reachable() {
		var facts flow.BitSet
		if must != nil {
			facts = must.In[b].Copy()
		}
		for i, node := range b.Nodes {
			// A select comm statement is duplicated as the first node of its
			// case block; the SelectStmt head node is skipped by consumers,
			// so the case copy is the one that counts.
			_ = i
			var held map[string]bool
			if must != nil {
				held = heldIDs(facts)
			}
			visit(node, held)
			if must != nil {
				applyLockOps(pkg, fn.Node, node, idx, facts)
			}
		}
	}
}

// canonMutexIDs resolves a mutex receiver expression to canonical identities:
// the points-to location when it is unambiguous, always joined by a
// name-based fallback ("~mu") so imprecisely resolved receivers with the
// same field name still count as the same lock. The fallback biases toward
// treating accesses as guarded — quiet over noisy.
func canonMutexIDs(fs *flowState, pkg *Package, x ast.Expr) map[string]bool {
	ids := map[string]bool{}
	var loc *flow.Loc
	tv, ok := pkg.Info.Types[x]
	if ok && tv.Type != nil {
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			if objs := fs.pts.PointeesOf(pkg.Info, x); len(objs) == 1 {
				loc = &flow.Loc{Obj: objs[0]}
			}
		} else if locs := fs.pts.LocsOf(pkg.Info, x); len(locs) == 1 {
			loc = &locs[0]
		}
	}
	if loc != nil {
		ids[loc.String()] = true
	}
	k := exprKey(x)
	if i := strings.LastIndex(k, "."); i >= 0 {
		k = k[i+1:]
	}
	if k != "" {
		ids["~"+k] = true
	}
	return ids
}

// raceScanner collects the accesses of one function.
type raceScanner struct {
	fs     *flowState
	pkg    *Package
	fn     *flow.Func
	held   map[string]bool
	groups map[raceLoc][]*raceAccess
	calls  *[]*callRec
	seen   map[raceSeenKey]*raceAccess
}

type raceSeenKey struct {
	loc   raceLoc
	pos   token.Pos
	write bool
}

func collectRaceAccesses(fs *flowState, pkg *Package, fn *flow.Func, groups map[raceLoc][]*raceAccess, calls *[]*callRec) {
	sc := &raceScanner{fs: fs, pkg: pkg, fn: fn, groups: groups, calls: calls, seen: map[raceSeenKey]*raceAccess{}}
	walkWithLocks(fs, pkg, fn, func(node ast.Node, held map[string]bool) {
		sc.held = held
		sc.node(node)
	})
}

// node classifies one CFG node. SelectStmt heads are skipped (their comm
// statements and bodies live in the case blocks); RangeStmt nodes carry only
// the per-iteration key/value bind.
func (sc *raceScanner) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.SelectStmt:
	case *ast.RangeStmt:
		if n.Key != nil {
			sc.expr(n.Key, true, false)
		}
		if n.Value != nil {
			sc.expr(n.Value, true, false)
		}
	case *ast.GoStmt:
		// Arguments evaluate in the spawner; the spawned body is its own
		// Func and the caller's lockset does not transfer.
		for _, a := range n.Call.Args {
			sc.expr(a, false, false)
		}
	case *ast.DeferStmt:
		for _, a := range n.Call.Args {
			sc.expr(a, false, false)
		}
	case ast.Stmt:
		sc.stmt(n)
	case ast.Expr:
		sc.expr(n, false, false)
	}
}

func (sc *raceScanner) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			sc.expr(l, true, false)
		}
		for _, r := range s.Rhs {
			sc.expr(r, false, false)
		}
	case *ast.IncDecStmt:
		sc.expr(s.X, true, false)
	case *ast.SendStmt:
		sc.expr(s.Chan, false, false)
		sc.expr(s.Value, false, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.expr(r, false, false)
		}
	case *ast.ExprStmt:
		sc.expr(s.X, false, false)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				sc.expr(v, false, false)
			}
		}
	}
}

// expr records accesses within one expression. write applies to the
// outermost lvalue only; atomic marks accesses inside sync/atomic argument
// lists.
func (sc *raceScanner) expr(e ast.Expr, write, atomic bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		sc.record(e, write, atomic)
	case *ast.SelectorExpr:
		if isPkgQualifier(sc.pkg.Info, e.X) {
			sc.record(e, write, atomic)
			return
		}
		sc.record(e, write, atomic)
		sc.expr(e.X, false, atomic)
	case *ast.IndexExpr:
		sc.record(e, write, atomic)
		sc.expr(e.X, false, atomic)
		sc.expr(e.Index, false, atomic)
	case *ast.StarExpr:
		sc.record(e, write, atomic)
		sc.expr(e.X, false, atomic)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking an address is not an access of the value; under a
			// sync/atomic call it IS the atomic access of the pointee.
			if atomic {
				sc.record(e.X, true, true)
			}
			if sub, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				sc.expr(sub.X, false, atomic)
			}
			return
		}
		sc.expr(e.X, false, atomic)
	case *ast.BinaryExpr:
		sc.expr(e.X, false, atomic)
		sc.expr(e.Y, false, atomic)
	case *ast.CallExpr:
		sc.call(e, atomic)
	case *ast.CompositeLit:
		isMap := false
		if tv, ok := sc.pkg.Info.Types[e]; ok && tv.Type != nil {
			_, isMap = tv.Type.Underlying().(*types.Map)
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if isMap {
					sc.expr(kv.Key, false, atomic)
				}
				sc.expr(kv.Value, false, atomic)
				continue
			}
			sc.expr(el, false, atomic)
		}
	case *ast.SliceExpr:
		sc.expr(e.X, false, atomic)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				sc.expr(ix, false, atomic)
			}
		}
	case *ast.TypeAssertExpr:
		sc.expr(e.X, false, atomic)
	case *ast.KeyValueExpr:
		sc.expr(e.Value, false, atomic)
	case *ast.FuncLit:
		// Analyzed as its own Func.
	}
}

// call handles call expressions: sync/atomic argument marking, sync method
// skipping, caller-lockset call records, and receiver/argument reads.
func (sc *raceScanner) call(call *ast.CallExpr, atomic bool) {
	obj := flow.CalleeObj(sc.pkg.Info, call)
	if obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "sync/atomic":
			for _, a := range call.Args {
				sc.expr(a, false, true)
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isPkgQualifier(sc.pkg.Info, sel.X) {
				// Method on an atomic.* value: the receiver IS the access,
				// already excluded from tracking by type.
				sc.expr(sel.X, false, true)
			}
			return
		case "sync":
			return // Lock/Unlock/Wait/Do receivers are synchronization, not data
		}
	}
	if obj != nil {
		if callee := sc.fs.cg.ByObj(obj); callee != nil {
			*sc.calls = append(*sc.calls, &callRec{caller: sc.fn, callee: callee, held: cloneIDSet(sc.held)})
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isPkgQualifier(sc.pkg.Info, sel.X) {
		sc.expr(sel.X, false, atomic)
	}
	for _, a := range call.Args {
		sc.expr(a, false, atomic)
	}
}

// record enters one access of e's location(s) into the group map.
func (sc *raceScanner) record(e ast.Expr, write, atomic bool) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	tv, ok := sc.pkg.Info.Types[e]
	if !ok || tv.Type == nil || untrackedType(tv.Type) {
		return
	}
	for _, loc := range sc.fs.pts.LocsOf(sc.pkg.Info, e) {
		if loc.Obj == nil || loc.Obj.Kind == flow.ObjFunc {
			continue
		}
		k := raceSeenKey{loc: raceLoc{loc.Obj, loc.Path}, pos: e.Pos(), write: write}
		if prev := sc.seen[k]; prev != nil {
			prev.atomic = prev.atomic || atomic
			continue
		}
		a := &raceAccess{
			fn:     sc.fn,
			pos:    e.Pos(),
			write:  write,
			atomic: atomic,
			locks:  cloneIDSet(sc.held),
			text:   types.ExprString(e),
		}
		sc.seen[k] = a
		sc.groups[k.loc] = append(sc.groups[k.loc], a)
	}
}

// untrackedType excludes types whose sharing is owned by other checks or by
// the runtime: synchronization primitives, atomics, contexts, channels, and
// function values.
func untrackedType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Chan, *types.Signature, *types.Tuple:
		return true
	}
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic", "context":
		return true
	}
	return false
}

// isPkgQualifier reports whether e names a package (the X of pkg.Sym).
func isPkgQualifier(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.PkgName)
	return ok
}

func cloneIDSet(s map[string]bool) map[string]bool {
	if len(s) == 0 {
		return nil
	}
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// inheritCallerLocks propagates locks held at every observed call site into
// the callee's accesses: a helper only ever invoked under s.mu is guarded by
// s.mu. Two rounds carry the property one call level deeper.
func inheritCallerLocks(calls []*callRec) map[*flow.Func]map[string]bool {
	inherit := map[*flow.Func]map[string]bool{}
	for round := 0; round < 2; round++ {
		next := map[*flow.Func]map[string]bool{}
		seen := map[*flow.Func]bool{}
		for _, cr := range calls {
			eff := cloneIDSet(cr.held)
			for id := range inherit[cr.caller] {
				if eff == nil {
					eff = map[string]bool{}
				}
				eff[id] = true
			}
			if !seen[cr.callee] {
				seen[cr.callee] = true
				next[cr.callee] = eff
				continue
			}
			cur := next[cr.callee]
			for id := range cur {
				if !eff[id] {
					delete(cur, id)
				}
			}
		}
		inherit = next
	}
	return inherit
}

// effectiveLocks is an access's own lockset plus what every caller holds.
func effectiveLocks(a *raceAccess, inherited map[*flow.Func]map[string]bool) map[string]bool {
	inh := inherited[a.fn]
	if len(inh) == 0 {
		return a.locks
	}
	eff := cloneIDSet(a.locks)
	if eff == nil {
		eff = map[string]bool{}
	}
	for id := range inh {
		eff[id] = true
	}
	return eff
}

func locksIntersect(a, b map[string]bool) bool {
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// raceInGroup applies the group filters and pairwise concurrency test to one
// location's accesses, returning the first confirmed race.
func raceInGroup(prog *Program, fs *flowState, key raceLoc, accs []*raceAccess, inherited map[*flow.Func]map[string]bool) (Diagnostic, bool) {
	root, _ := key.obj.Root()
	owner := ownerFuncOf(fs, root)

	// Local variables only become interesting once a closure or another
	// function touches them.
	if root.Kind == flow.ObjVar {
		distinct := map[*flow.Func]bool{}
		for _, a := range accs {
			distinct[a.fn] = true
		}
		if len(distinct) < 2 {
			return Diagnostic{}, false
		}
	}
	for _, a := range accs {
		if a.atomic {
			return Diagnostic{}, false // atomic discipline is mixed-access's domain
		}
	}

	// Construction window: accesses in the allocating function before its
	// first own spawn site are single-threaded.
	firstSpawn := token.Pos(math.MaxInt)
	if owner != nil {
		firstSpawn = firstSpawnPos(fs, owner)
	}
	live := accs[:0:0]
	for _, a := range accs {
		if owner != nil && a.fn == owner && a.pos < firstSpawn {
			continue
		}
		if isInitFunc(a.fn.Node) {
			continue
		}
		live = append(live, a)
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].pos != live[j].pos {
			return live[i].pos < live[j].pos
		}
		return live[i].write && !live[j].write
	})

	var ownerCtxs flow.CtxSet
	if owner != nil {
		ownerCtxs = fs.escape.Contexts(owner)
	}
	for _, w := range live {
		if !w.write {
			continue
		}
		for _, a := range live {
			desc, ok := concurrentPair(fs, ownerCtxs, root, w, a, inherited)
			if !ok {
				continue
			}
			other := "read"
			if a.write {
				other = "write"
			}
			if a == w {
				return prog.diag(w.pos, "shared-race",
					"write to %s in %s races with itself across instances of %s with no lock held: guard it with a mutex or make it atomic",
					w.text, w.fn.Name, desc), true
			}
			return prog.diag(w.pos, "shared-race",
				"write to %s in %s races with the %s at %s in %s (%s; no common lock held): guard both accesses with one mutex",
				w.text, w.fn.Name, other, prog.shortPos(a.pos), a.fn.Name, desc), true
		}
	}
	return Diagnostic{}, false
}

// concurrentPair decides whether two accesses of the same location can run
// concurrently, returning a human-readable context description.
//
// Two deliberate unsoundnesses keep the rule usable (§9.3 of DESIGN.md):
// fork-join par regions are treated as fully ordered — their workers
// partition writes by index or rank, which no lockset can see, and the pool
// tier carries its own -race tests — and a context only races on an object
// it can actually see (SiteSees), so functions reachable from both main and
// a handler do not conflate the distinct instances each caller operates on.
func concurrentPair(fs *flowState, ownerCtxs flow.CtxSet, root *flow.Object, w, a *raceAccess, inherited map[*flow.Func]map[string]bool) (string, bool) {
	if locksIntersect(effectiveLocks(w, inherited), effectiveLocks(a, inherited)) {
		return "", false
	}
	cw := fs.escape.AccessContexts(w.fn, w.pos)
	ca := fs.escape.AccessContexts(a.fn, a.pos)
	ew := fs.escape.ExcludedSites(w.fn, w.pos)
	ea := fs.escape.ExcludedSites(a.fn, a.pos)
	for _, i := range cw.IDs() {
		if ea[i] {
			continue // a is ordered after the join of w's context
		}
		si := fs.escape.Site(i)
		if si.Sync {
			continue // fork-join region: joined before the caller resumes
		}
		if !fs.escape.SiteSees(i, root) {
			continue
		}
		for _, j := range ca.IDs() {
			if ew[j] {
				continue
			}
			sj := fs.escape.Site(j)
			if i == j {
				// Same context: racy only across multiple instances of an
				// object that outlives one instance.
				if !si.Multi {
					continue
				}
				if ownerCtxs != nil && ownerCtxs[i] {
					continue // allocated per instance: each has its own
				}
				return "multiple instances of " + si.Label, true
			}
			if sj.Sync || !fs.escape.SiteSees(j, root) {
				continue
			}
			if a == w || w.fn == a.fn {
				// Within one function (or one access against itself), two
				// different context IDs describe different calls, not two
				// goroutines racing on the same instance's execution.
				continue
			}
			return "contexts " + si.Label + " and " + sj.Label, true
		}
	}
	return "", false
}

// ownerFuncOf returns the function an object's storage belongs to: the
// allocating function for heap objects, the innermost declaring function for
// locals, nil for globals.
func ownerFuncOf(fs *flowState, root *flow.Object) *flow.Func {
	if root.Fn != nil {
		return root.Fn
	}
	if root.Kind != flow.ObjVar || root.Var == nil {
		return nil
	}
	return enclosingFuncAt(fs, root.Var.Pos())
}

// enclosingFuncAt finds the innermost Func whose node spans pos.
func enclosingFuncAt(fs *flowState, pos token.Pos) *flow.Func {
	var best *flow.Func
	for _, f := range fs.valueFuncs() {
		n := f.Node
		if n == nil || pos < n.Pos() || pos >= n.End() {
			continue
		}
		if best == nil || n.Pos() > best.Node.Pos() {
			best = f
		}
	}
	return best
}

// firstSpawnPos returns the position of the first spawn point in fn's own
// body (go statement, or a call registered as a par/handler spawn site);
// MaxInt when the body spawns nothing, which exempts every access in fn.
func firstSpawnPos(fs *flowState, fn *flow.Func) token.Pos {
	sitePos := map[token.Pos]bool{}
	for _, s := range fs.escape.Sites()[1:] {
		sitePos[s.Pos] = true
	}
	first := token.Pos(math.MaxInt)
	scanOwn(fn.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			if n.Pos() < first {
				first = n.Pos()
			}
		case *ast.CallExpr:
			if sitePos[n.Pos()] && n.Pos() < first {
				first = n.Pos()
			}
		}
	})
	return first
}
