package analysis

import (
	"go/ast"
	"go/types"

	"graftmatch/internal/analysis/flow"
)

// GoroutineLeak is the goroutine-leak check: every `go` statement must
// spawn a body that some join point can observe finishing — otherwise the
// goroutine is fire-and-forget and, under the engine's phase structure, a
// silent leak that accumulates across phases. A body counts as observable
// when any CFG-reachable statement (in the body or, transitively, in a
// statically resolved module callee):
//
//   - sends on or closes a channel, or receives/selects/ranges on one
//     (cancellation observation and join signalling both look like this —
//     ctx.Done() is a channel receive);
//   - calls Done or Add on a sync.WaitGroup;
//   - calls context.Context.Err or .Deadline (polling cancellation);
//   - calls an unresolvable function passing a context, channel, or
//     *sync.WaitGroup (or invokes a method on one) — the callee may
//     observe on the goroutine's behalf, so the check stays conservative.
//
// Statements that are unreachable in the CFG (dead code after return)
// do not count: "has a path that observes" is the contract.
func GoroutineLeak() Check {
	return Check{
		Name:  "goroutine-leak",
		Doc:   "every spawned goroutine signals a join point or observes cancellation",
		Level: "warning",
		Run:   runGoroutineLeak,
	}
}

func runGoroutineLeak(prog *Program) []Diagnostic {
	fs := prog.flowInfo()
	var out []Diagnostic
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		walkShallow(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			target := fs.cg.Callee(pkg.Info, gs.Call)
			if target == nil {
				// Spawning through a function value or out-of-module callee:
				// not statically resolvable. If the call hands over a
				// context/channel/WaitGroup, assume the callee observes it;
				// otherwise report — a bare opaque spawn is unobservable by
				// construction.
				if callPassesObservable(pkg, gs.Call) {
					return true
				}
				out = append(out, prog.diag(gs.Pos(), "goroutine-leak",
					"goroutine body is not statically resolvable and receives no context, channel, or WaitGroup; no join point can observe it finishing"))
				return true
			}
			seen := map[*flow.Func]bool{}
			if !fs.observesJoin(pkg, target, 4, seen) {
				out = append(out, prog.diag(gs.Pos(), "goroutine-leak",
					"goroutine %s never signals a join point: no channel send/close/receive, no WaitGroup.Done, no ctx observation on any path", targetName(target)))
			}
			return true
		})
	})
	return out
}

func targetName(f *flow.Func) string {
	if f.Obj != nil {
		return f.Name
	}
	return "body"
}

// observesJoin reports whether fn contains a CFG-reachable join-observable
// operation, following module-local static callees to the given depth.
func (fs *flowState) observesJoin(pkg *Package, fn *flow.Func, depth int, seen map[*flow.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	if p := fs.pkgOf[fn]; p != nil {
		pkg = p
	}
	g := fn.CFG(fs.cg)
	for _, b := range g.Reachable() {
		for _, node := range b.Nodes {
			if fs.nodeObserves(pkg, node, fn, depth, seen) {
				return true
			}
		}
	}
	return false
}

// nodeObserves scans one CFG node (statement) for an observable operation.
func (fs *flowState) nodeObserves(pkg *Package, root ast.Node, fn *flow.Func, depth int, seen map[*flow.Func]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != fn.Node {
				return false // nested literal: runs on its own schedule
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fs.callObserves(pkg, n, depth, seen) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callObserves classifies one call as join-observable.
func (fs *flowState) callObserves(pkg *Package, call *ast.CallExpr, depth int, seen map[*flow.Func]bool) bool {
	// close(ch)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "close"
		}
	}
	// WaitGroup.Done/Add/Wait and ctx.Err/Done/Deadline.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pkg.Info.Types[sel.X]; ok {
			if isSyncType(tv.Type, "WaitGroup") {
				switch sel.Sel.Name {
				case "Done", "Add", "Wait":
					return true
				}
			}
			if isContextType(tv.Type) {
				switch sel.Sel.Name {
				case "Err", "Done", "Deadline", "Value":
					return true
				}
			}
		}
	}
	obj := flow.CalleeObj(pkg.Info, call)
	if obj != nil {
		if callee := fs.cg.ByObj(obj); callee != nil {
			if depth > 0 && fs.observesJoin(pkg, callee, depth-1, seen) {
				return true
			}
			return false
		}
	}
	// Unresolvable (function value, interface method, stdlib): conservative
	// if it is handed something observable.
	return callPassesObservable(pkg, call)
}

// callPassesObservable reports whether a call's receiver or arguments carry
// a context, channel, or *sync.WaitGroup — evidence the callee can observe
// a join on the goroutine's behalf.
func callPassesObservable(pkg *Package, call *ast.CallExpr) bool {
	exprs := make([]ast.Expr, 0, len(call.Args)+1)
	exprs = append(exprs, call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, a := range exprs {
		tv, ok := pkg.Info.Types[a]
		if !ok {
			continue
		}
		t := tv.Type
		if isContextType(t) || isSyncType(t, "WaitGroup") {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			if _, isChan := p.Elem().Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	return false
}
