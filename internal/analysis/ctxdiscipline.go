package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxDiscipline is the ctx-discipline check for the resilient execution
// layer: the engines must stay cancellable end to end, or a deadline on the
// facade silently stops propagating into a phase and partial-result
// semantics rot. Three rules:
//
//   - A *Ctx function (exported, name ending in "Ctx") must accept a
//     context.Context as its first parameter and return an error: the suffix
//     is this repo's contract for "cancellable entry point".
//
//   - In the engine packages (Config.CtxPackages), an exported Run* entry
//     point must either take a context itself or have a sibling *Ctx
//     variant, so no engine is runnable only in uncancellable form.
//
//   - The error of a context-taking call must not be discarded (used as a
//     bare statement, go, or defer): that error is how cancellation
//     propagates. Assigning to _ is allowed as an explicit, visible waiver.
func CtxDiscipline() Check {
	return Check{
		Name:  "ctx-discipline",
		Doc:   "entry points propagate context.Context and never swallow its error",
		Level: "warning",
		Run:   runCtxDiscipline,
	}
}

func runCtxDiscipline(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		exported := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.IsExported() {
					exported[fd.Name.Name] = true
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				name := fd.Name.Name
				sig := funcSignature(pkg, fd)
				if sig == nil {
					continue
				}
				if strings.HasSuffix(name, "Ctx") {
					if !firstParamIsContext(sig) {
						out = append(out, prog.diag(fd.Name.Pos(), "ctx-discipline",
							"%s is named as a context-aware entry point but its first parameter is not context.Context", name))
					}
					if !resultsIncludeError(sig) {
						out = append(out, prog.diag(fd.Name.Pos(), "ctx-discipline",
							"%s takes a context but returns no error; cancellation would be unobservable", name))
					}
					continue
				}
				if fd.Recv == nil && strings.HasPrefix(name, "Run") &&
					inSuffixList(pkg.Path, prog.Config.CtxPackages) &&
					!signatureTakesContext(sig) && !exported[name+"Ctx"] {
					out = append(out, prog.diag(fd.Name.Pos(), "ctx-discipline",
						"exported entry point %s in %s has no context parameter and no %sCtx sibling; the engine cannot be cancelled",
						name, pkg.Path, name))
				}
			}
		}
	}
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		walkShallow(body, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			sig := callSignature(pkg, call)
			if sig == nil || !signatureTakesContext(sig) || !resultsIncludeError(sig) {
				return true
			}
			out = append(out, prog.diag(call.Pos(), "ctx-discipline",
				"error result of context-taking call discarded; cancellation cannot propagate (assign it, or _ = it with a reason)"))
			return true
		})
	})
	return out
}

// funcSignature returns the declared signature of fd.
func funcSignature(pkg *Package, fd *ast.FuncDecl) *types.Signature {
	obj := pkg.Info.Defs[fd.Name]
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// callSignature returns the signature of the called function, or nil for
// conversions and builtins.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func firstParamIsContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// resultsIncludeError reports whether any result of sig is error.
func resultsIncludeError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
