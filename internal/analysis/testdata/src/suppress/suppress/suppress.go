// Package suppress exercises //lint:ignore parsing: trailing and
// line-above directive forms, multi-check directives, directives naming the
// wrong check, and malformed directives.
package suppress

import "errors"

func fail() error { return errors.New("x") }

// Trailing is suppressed by a directive on the flagged line itself.
func Trailing() {
	fail() //lint:ignore err-checked fixture: trailing-form suppression
}

// Above is suppressed by a directive on the line above.
func Above() {
	//lint:ignore err-checked fixture: line-above-form suppression
	fail()
}

// Unsuppressed must be diagnosed: no directive.
func Unsuppressed() {
	fail()
}

// WrongCheck must still be diagnosed: the directive names a different
// check, so the err-checked finding stays live.
func WrongCheck() {
	//lint:ignore falseshare fixture: wrong check name leaves the finding live
	fail()
}

// Multi is suppressed through the comma-separated form.
func Multi() {
	//lint:ignore err-checked,falseshare fixture: multi-check directive
	fail()
}

// MissingReason sits under a directive with no reason: the directive itself
// must be diagnosed (lint-directive) and suppresses nothing.
func MissingReason() {
	//lint:ignore err-checked
	fail()
}

// UnknownCheck sits under a directive naming a check that does not exist.
func UnknownCheck() {
	//lint:ignore no-such-check fixture: unknown check name
	fail()
}

// Bare exercises the totally empty directive form.
func Bare() {
	//lint:ignore
	fail()
}
