// Package pos holds ctx-discipline positive cases. The fixture config lists
// this package in CtxPackages, making it an engine package whose Run entry
// points must be cancellable.
package pos

import "context"

// BadCtx must be diagnosed twice: the Ctx suffix promises a context first
// parameter and an error result, and it has neither.
func BadCtx(n int) { _ = n }

// Run must be diagnosed: no context parameter and no RunCtx sibling.
func Run() {}

// DoCtx is a compliant context-aware helper used below.
func DoCtx(ctx context.Context) error { return ctx.Err() }

// Swallow must be diagnosed: the error carrying cancellation out of DoCtx
// is dropped on the floor.
func Swallow(ctx context.Context) {
	DoCtx(ctx)
}
