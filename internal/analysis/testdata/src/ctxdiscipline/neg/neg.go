// Package neg holds ctx-discipline negative cases: the Run/RunCtx pairing
// every engine package in this repo uses.
package neg

import "context"

// RunCtx is the cancellable entry point.
func RunCtx(ctx context.Context) error { return ctx.Err() }

// Run is the convenience wrapper; the RunCtx sibling keeps the engine
// cancellable, so Run itself needs no context parameter.
func Run() error { return RunCtx(context.Background()) }

// RunWith carries the context directly instead of via a sibling.
func RunWith(ctx context.Context) error { return RunCtx(ctx) }
