// Package neg holds global-mutable negatives: init-time writes, main-only
// writes, and mutex-guarded writes.
package neg

import "sync"

var n int

var mu sync.Mutex

var guarded = map[string]int{}

// init happens-before everything.
func init() { n = 1 }

// A function that never leaves the main goroutine may write freely.
func MainOnly() { n = 2 }

// The lock makes the concurrent write safe.
func Locked() {
	go func() {
		mu.Lock()
		guarded["k"] = 1
		mu.Unlock()
	}()
}

// Reads never trigger, wherever they run.
func Reader() int {
	ch := make(chan int, 1)
	go func() { ch <- n }()
	return <-ch
}
