// Package pos holds global-mutable positives.
package pos

var hits int

var table = map[string]int{}

// Spawned writers mutate package state with no lock.
func Spawn() {
	go func() {
		hits++
	}()
	go func() {
		table["k"] = 1
	}()
}

// A helper reached from a goroutine inherits its context.
var last string

func record(s string) { last = s }

func Chain() {
	go func() {
		record("x")
	}()
}
