// Package par is a minimal stand-in for the repo's internal/par package:
// the hotpath-alloc fixture needs entry points whose import path ends in
// internal/par so literals handed to them become hot regions.
package par

// For runs body over [0, n); the fixture only needs the signature shape.
func For(n, procs int, body func(lo, hi int)) { body(0, n) }

// Run invokes fn once per worker.
func Run(procs int, fn func(w int)) { fn(0) }
