// Package pos holds hotpath-alloc positive cases. The fixture config lists
// this package in HotPackages, so every loop body here is a hot region, and
// literals handed to fix/internal/par entry points (directly or through the
// wrapper/forwarding patterns below) are hot regions anywhere.
package pos

import "fix/internal/par"

var sink []int
var total int

func observe(v any) { _ = v }

// LoopAllocs must be diagnosed once per allocating construct in the loop.
func LoopAllocs(n int) {
	for i := 0; i < n; i++ {
		buf := make([]int, 8)       // make in hot loop
		pair := []int{i, i + 1}     // slice literal
		idx := map[int]int{i: i}    // map literal
		box := &struct{ v int }{i}  // pointer literal
		local := []int{}            // declared in region...
		local = append(local, i)    // ...so append reallocates every pass
		total += buf[0] + pair[0] + idx[i] + box.v + len(local)
	}
}

// CapturedClosure must be diagnosed: the literal captures acc, so each
// iteration allocates a closure.
func CapturedClosure(n int) {
	acc := 0
	for i := 0; i < n; i++ {
		add := func(v int) { acc += v }
		add(i)
	}
	total += acc
}

// Boxing must be diagnosed: i is boxed into the any parameter every pass.
func Boxing(n int) {
	for i := 0; i < n; i++ {
		observe(i)
	}
}

// ParallelBody must be diagnosed: the literal handed to par.For is a hot
// region even though it sits in no loop.
func ParallelBody(n int) {
	par.For(n, 4, func(lo, hi int) {
		scratch := make([]int, hi-lo)
		total += len(scratch)
	})
}

// pfor forwards its body parameter straight into par.For, which makes it a
// hot wrapper: literals at its call sites are hot regions.
func pfor(n int, body func(lo, hi int)) {
	par.For(n, 4, body)
}

// ThroughWrapper must be diagnosed via the wrapper fixpoint.
func ThroughWrapper(n int) {
	pfor(n, func(lo, hi int) {
		tmp := map[int]bool{lo: true}
		total += len(tmp)
	})
}

// each invokes its parameter inside a literal handed to par.For — the
// eachRank pattern; its call-site literals are hot regions too.
func each(n int, f func(i int)) {
	par.For(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ThroughInvoker must be diagnosed via the invocation rule.
func ThroughInvoker(n int) {
	each(n, func(i int) {
		tmp := []int{i}
		sink = append(sink, tmp[0])
	})
}
