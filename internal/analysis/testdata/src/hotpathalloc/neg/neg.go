// Package neg holds hotpath-alloc negative cases. The package is listed in
// HotPackages, so its loop bodies are hot regions — every construct below
// is allocation-free per iteration and must not be flagged.
package neg

import "fix/internal/par"

var total int

type item struct {
	id, weight int
}

func observe(v any) { _ = v }

// HoistedScratch: the buffer is allocated once, outside the loop, and
// reused; appending to it amortizes because it is declared outside the
// region.
func HoistedScratch(n int) {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
		total += buf[len(buf)-1]
	}
}

// ValueLiterals: struct and array value literals live on the stack.
func ValueLiterals(n int) {
	for i := 0; i < n; i++ {
		it := item{id: i, weight: i * 2}
		coords := [2]int{i, -i}
		total += it.weight + coords[0]
	}
}

// PointerShaped: pointers and constants cross into interface parameters
// without boxing.
func PointerShaped(n int) {
	x := 7
	for i := 0; i < n; i++ {
		observe(&x)
		observe(42)
		observe(nil)
	}
}

// PanicPath: allocation on the panic path is not a per-iteration cost.
func PanicPath(n int) {
	for i := 0; i < n; i++ {
		if i < 0 {
			panic(i)
		}
		total += i
	}
}

// FreeClosure: a literal with no captured locals does not allocate per
// iteration.
func FreeClosure(n int) {
	for i := 0; i < n; i++ {
		double := func(v int) int { return v * 2 }
		total += double(i)
	}
}

// CleanParallelBody: the hot literal only reads and indexes.
func CleanParallelBody(xs []int) {
	par.For(len(xs), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]
		}
	})
}
