// Package neg holds deadline-discipline negative cases: the per-frame
// arm-only pattern, disarm-only stage transitions, deferred disarms, and
// lifecycles that are disarmed on every path.
package neg

import (
	"net"
	"time"
)

// SendFrame is clean: arm-only is the per-frame I/O pattern — every send
// re-arms its own deadline and a later stage transition disarms.
func SendFrame(c net.Conn, b []byte) error {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := c.Write(b)
	return err
}

// Detach is clean: disarm-only is the stage-transition helper.
func Detach(c net.Conn) {
	_ = c.SetReadDeadline(time.Time{})
	_ = c.SetWriteDeadline(time.Time{})
}

// Deferred is clean: the deferred disarm covers every exit, error paths
// included.
func Deferred(c net.Conn, buf []byte) error {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	defer c.SetReadDeadline(time.Time{})
	if _, err := c.Read(buf); err != nil {
		return err
	}
	return nil
}

// AllPaths is clean: both exits disarm before returning.
func AllPaths(c net.Conn, buf []byte) error {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.Read(buf); err != nil {
		_ = c.SetReadDeadline(time.Time{})
		return err
	}
	_ = c.SetReadDeadline(time.Time{})
	return nil
}

// CloseOnError is clean: the error path closes the conn instead of
// disarming, which retires the deadline with the socket.
func CloseOnError(c net.Conn, buf []byte) error {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.Read(buf); err != nil {
		_ = c.Close()
		return err
	}
	_ = c.SetReadDeadline(time.Time{})
	return nil
}
