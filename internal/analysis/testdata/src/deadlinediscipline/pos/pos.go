// Package pos holds deadline-discipline positive cases: functions that
// manage a deadline's full lifecycle (arm and disarm) but leave it armed on
// some exit path, usually the error one.
package pos

import (
	"net"
	"time"
)

// Handshake must be diagnosed: the read deadline armed for the hello frame
// is disarmed only on the success path; the early error return leaves it
// ticking into the session.
func Handshake(c net.Conn, buf []byte) error {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.Read(buf); err != nil {
		return err
	}
	_ = c.SetReadDeadline(time.Time{})
	return nil
}

// SplitExit must be diagnosed once: one error path closes the conn (a closed
// socket's deadlines are moot) but the other returns with the write deadline
// still armed.
func SplitExit(c net.Conn, b []byte) error {
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	if _, err := c.Write(b); err != nil {
		if len(b) > 0 {
			_ = c.Close()
			return err
		}
		return err
	}
	_ = c.SetWriteDeadline(time.Time{})
	return nil
}

// BothSides must be diagnosed for each side: SetDeadline arms read and write
// together and the error exit disarms neither.
func BothSides(c net.Conn, b []byte) error {
	_ = c.SetDeadline(time.Now().Add(time.Second))
	if _, err := c.Write(b); err != nil {
		return err
	}
	_ = c.SetDeadline(time.Time{})
	return nil
}
