// Package neg holds shared-race negatives: consistently locked, joined, or
// single-threaded access patterns the check must stay quiet on.
package neg

import (
	"sync"
	"sync/atomic"
)

// Both sides hold the same mutex — including through the alias in getVia.
type store struct {
	mu    sync.Mutex
	cache map[string]int
}

func newStore() *store { return &store{cache: map[string]int{}} }

func (s *store) put(k string, v int) {
	s.mu.Lock()
	s.cache[k] = v
	s.mu.Unlock()
}

func (s *store) get(k string) int {
	m := &s.mu
	m.Lock()
	defer m.Unlock()
	return s.cache[k]
}

func Locked() int {
	s := newStore()
	go func() { s.put("a", 1) }()
	return s.get("a")
}

// Spawn-then-Wait: the read is ordered after the join.
func Joined() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		n = 41
		wg.Done()
	}()
	wg.Wait()
	return n + 1
}

// Construction before the spawn is single-threaded; the goroutine only
// reads afterwards.
type box struct {
	mu  sync.Mutex
	val int
}

func Constructed() {
	b := &box{}
	b.val = 40
	b.val++
	go func() {
		b.mu.Lock()
		b.val++
		b.mu.Unlock()
	}()
}

// Atomic counters are mixed-access's domain, not a lockset race.
type meter struct {
	n int64
}

func Atomic() int64 {
	m := &meter{}
	go func() { atomic.AddInt64(&m.n, 1) }()
	return atomic.LoadInt64(&m.n)
}

// A synchronously joined pool region: the caller's read cannot overlap the
// worker bodies.
type WorkerPool struct{ width int }

func (p *WorkerPool) Run(f func(i int)) {
	for i := 0; i < p.width; i++ {
		f(i)
	}
}

func Pooled() int {
	sum := 0
	var mu sync.Mutex
	p := &WorkerPool{width: 4}
	p.Run(func(i int) {
		mu.Lock()
		sum += i
		mu.Unlock()
	})
	return sum
}
