// Package pos holds shared-race positives: every finding in this package is
// expected by the golden file.
package pos

import "sync"

// counter: a heap object mutated by a goroutine and read by the spawner
// with no lock on either side.
type counter struct {
	hits int
}

func newCounter() *counter { return &counter{} }

func PlainRace() int {
	c := newCounter()
	go func() {
		c.hits++
	}()
	return c.hits
}

// store: the classic inconsistent-locking bug — the writer locks, the
// reader does not.
type store struct {
	mu    sync.Mutex
	cache map[string]int
}

func newStore() *store { return &store{cache: map[string]int{}} }

func (s *store) put(k string, v int) {
	s.mu.Lock()
	s.cache[k] = v
	s.mu.Unlock()
}

func (s *store) get(k string) int { return s.cache[k] }

func HalfLocked() int {
	s := newStore()
	go func() { s.put("a", 1) }()
	return s.get("a")
}

// Fan-out without a join: every loop iteration spawns a writer against one
// shared local.
func FanOut(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		go func() {
			total++
		}()
	}
	return total
}
