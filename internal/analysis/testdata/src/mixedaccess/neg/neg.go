// Package neg holds mixed-access negative cases: consistent atomic use,
// plus the sanctioned plain forms (init, composite-literal keys, and
// cross-function phase separation).
package neg

import "sync/atomic"

type state struct {
	flag int32
	gen  int32
}

func Set(s *state) { atomic.StoreInt32(&s.flag, 1) }

func Get(s *state) int32 { return atomic.LoadInt32(&s.flag) }

// New writes flag through a composite-literal key, which runs before any
// goroutine can observe the word.
func New() *state { return &state{flag: 0, gen: 1} }

var phase int32

// init runs before main; plain access is allowed.
func init() { phase = 0 }

func Bump() { atomic.AddInt32(&phase, 1) }

// Claim uses atomics on visited's elements during the parallel phase.
func Claim(visited []int32, y int) bool {
	return atomic.CompareAndSwapInt32(&visited[y], 0, 1)
}

// Reset runs after the fork/join barrier, in a different function: plain
// element stores are legal there.
func Reset(visited []int32) {
	for i := range visited {
		visited[i] = 0
	}
}
