// Package pos holds mixed-access positive cases: words reached through
// sync/atomic somewhere and plainly elsewhere.
package pos

import "sync/atomic"

type state struct {
	flag int32
}

// SetAtomic establishes flag as an atomically accessed word.
func SetAtomic(s *state) { atomic.StoreInt32(&s.flag, 1) }

// ReadPlain must be diagnosed: plain read of an atomic word.
func ReadPlain(s *state) int32 { return s.flag }

// ClearPlain must be diagnosed: plain write of an atomic word.
func ClearPlain(s *state) { s.flag = 0 }

// phase is a package-level word accessed atomically below.
var phase int32

func NextPhase() { atomic.AddInt32(&phase, 1) }

// ResetPhase must be diagnosed: plain write of an atomic package var.
func ResetPhase() { phase = 0 }

// Sweep must be diagnosed once: inside a single function, element accesses
// of visited mix CAS and a plain store.
func Sweep(visited []int32) {
	for i := range visited {
		if atomic.CompareAndSwapInt32(&visited[i], 0, 1) {
			continue
		}
		visited[i] = 2
	}
}
