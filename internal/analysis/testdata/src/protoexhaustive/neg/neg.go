// Package neg holds proto-exhaustive negative cases: full coverage, failing
// defaults, and switches outside the check's scope.
package neg

import "errors"

type op byte

const (
	opHello op = iota + 1
	opData
	opAck
)

// Not an iota block: plain-valued constants are outside the check's scope
// even when switched over partially.
const (
	legacyA byte = 1
	legacyB byte = 2
)

// Full is clean: every op of the block is covered.
func Full(o op) int {
	switch o {
	case opHello:
		return 1
	case opData:
		return 2
	case opAck:
		return 3
	}
	return 0
}

// FailingDefault is clean: unknown ops cannot pass the switch silently.
func FailingDefault(o op) (int, error) {
	switch o {
	case opHello:
		return 1, nil
	default:
		return 0, errors.New("unknown op")
	}
}

// PanickingDefault is clean: the default cannot fall through.
func PanickingDefault(o op) int {
	switch o {
	case opHello:
		return 1
	default:
		panic("unknown op")
	}
}

// LegacyConstants is clean: the discriminator's constants are not an iota
// block, so this is not an op-set dispatch.
func LegacyConstants(b byte) int {
	switch b {
	case legacyA:
		return 1
	}
	return 0
}

// NonConstant is clean: a case guarded by a variable is not an op dispatch.
func NonConstant(o op, cutoff op) int {
	switch o {
	case cutoff:
		return 1
	}
	return 0
}
