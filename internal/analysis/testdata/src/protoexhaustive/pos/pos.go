// Package pos holds proto-exhaustive positive cases: partial switches over
// an iota-block op set with no default, or with a default that can fall
// through into post-switch code.
package pos

type op byte

const (
	opHello op = iota + 1
	opData
	opAck
	opClose
)

// PartialNoDefault must be diagnosed: two of four ops covered and nothing
// catches the rest.
func PartialNoDefault(o op) int {
	switch o {
	case opHello:
		return 1
	case opData:
		return 2
	}
	return 0
}

var dropped int

// SilentDefault must be diagnosed: the default counts the frame and falls
// through, so an unknown op passes silently.
func SilentDefault(o op) {
	switch o {
	case opHello:
	case opData:
	case opAck:
	default:
		dropped++
	}
}

// BreakingDefault must be diagnosed: break leaves the switch into the very
// fall-through path the check exists to close.
func BreakingDefault(o op) {
	switch o {
	case opHello:
	default:
		break
	}
	dropped++
}
