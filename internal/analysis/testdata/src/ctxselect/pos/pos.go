// Package pos holds ctx-select positive cases: goroutines in an engine
// package whose channel operations cannot observe cancellation. The test
// harness lists this package in CtxPackages.
package pos

import "context"

// Pump must be diagnosed twice: the goroutine's receive and send both block
// with no way to see ctx fall.
func Pump(ctx context.Context, work, out chan int) {
	go func() {
		v := <-work
		out <- v
	}()
	_ = ctx
}

// Shuffle must be diagnosed: the select blocks on two data channels and has
// neither a default nor a done-channel case.
func Shuffle(ctx context.Context, a, b chan int) {
	go func() {
		select {
		case v := <-a:
			_ = v
		case w := <-b:
			_ = w
		}
	}()
	_ = ctx
}

// Drain must be diagnosed: ranging over events parks forever once the
// producer stops without closing the channel.
func Drain(ctx context.Context, events chan string) {
	go func() {
		for e := range events {
			_ = e
		}
	}()
	_ = ctx
}

func relay(in, out chan int) {
	out <- 1
	<-in
}

// SpawnNamed must be diagnosed inside relay: a handler dispatched by name is
// held to the same rule as an inline literal.
func SpawnNamed(in, out chan int) {
	go relay(in, out)
}
