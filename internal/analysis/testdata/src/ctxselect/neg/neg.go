// Package neg holds ctx-select negative cases: selects that observe a done
// channel, direct done-channel waits, non-blocking defaults, and goroutines
// with no channel traffic at all.
package neg

import "context"

// PumpSelect is clean: every channel op sits in a select with a ctx.Done
// case.
func PumpSelect(ctx context.Context, work, out chan int) {
	go func() {
		for {
			select {
			case v := <-work:
				select {
				case out <- v:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
}

// WaitClose is clean: receiving from a struct{} channel IS waiting for
// cancellation, whatever the channel is called.
func WaitClose(closeCh chan struct{}, n *int) {
	go func() {
		<-closeCh
		*n = 0
	}()
}

// NonBlocking is clean: the default arm makes the select unable to park.
func NonBlocking(events chan int) {
	go func() {
		select {
		case events <- 1:
		default:
		}
	}()
}

// PureCompute is clean: no channel operations in the goroutine at all.
func PureCompute(xs []int, done chan struct{}) {
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s
		close(done)
	}()
}
