// Package neg holds lock-discipline negative cases: disciplined lock usage
// the check must stay quiet about.
package neg

import "sync"

type guarded struct {
	mu sync.RWMutex
	n  int
}

// DeferUnlock: the canonical pattern.
func DeferUnlock(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// StraightLine: explicit unlock on the single path.
func StraightLine(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// ReadLock: RLock/RUnlock balanced, including an early return under defer.
func ReadLock(g *guarded, bail bool) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if bail {
		return 0
	}
	return g.n
}

// BlockAfterUnlock: the send happens after the lock is released.
func BlockAfterUnlock(g *guarded, ch chan int) {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	ch <- v
}

// NonBlockingSelect: a select with a default never blocks, so holding the
// lock across it is fine.
func NonBlockingSelect(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- g.n:
	default:
	}
}

// BalancedBranches: both arms lock and unlock; the merge point agrees.
func BalancedBranches(g *guarded, fast bool) {
	if fast {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	} else {
		g.mu.Lock()
		g.n += 2
		g.mu.Unlock()
	}
	g.n--
}

// LiteralIndependence: the spawned literal blocks on the channel, but it
// runs on its own schedule — the outer function's lock state does not apply
// to it, and it holds no lock of its own.
func LiteralIndependence(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		<-ch
	}()
	g.n++
}
