// Package pos holds lock-discipline positive cases: blocking under a held
// mutex, double locking, leaking a lock past a return, and branch-imbalanced
// lock state.
package pos

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// SendUnderLock must be diagnosed: the channel send can block forever with
// g.mu held.
func SendUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n
	g.mu.Unlock()
}

// SleepUnderLock must be diagnosed: time.Sleep is a blocking stdlib call.
func SleepUnderLock(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond)
	g.mu.Unlock()
}

func waitForSignal(ch chan struct{}) { <-ch }

// TransitiveBlock must be diagnosed: waitForSignal blocks on a channel
// receive while g.mu is held.
func TransitiveBlock(g *guarded, ch chan struct{}) {
	g.mu.Lock()
	waitForSignal(ch)
	g.mu.Unlock()
}

// DoubleLock must be diagnosed: the second Lock self-deadlocks.
func DoubleLock(g *guarded) {
	g.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
}

// LeakOnEarlyReturn must be diagnosed: the early return leaves g.mu held
// with no defer to release it.
func LeakOnEarlyReturn(g *guarded, bad bool) {
	g.mu.Lock()
	if bad {
		return
	}
	g.mu.Unlock()
}

// Imbalanced must be diagnosed: after the if, g.mu is held on one path and
// free on the other.
func Imbalanced(g *guarded, cond bool) {
	if cond {
		g.mu.Lock()
	}
	g.n++
	if cond {
		g.mu.Unlock()
	}
}
