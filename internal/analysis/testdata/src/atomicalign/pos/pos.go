// Package pos holds atomic-align positive cases: every atomic call below
// reaches a 64-bit word that is only 4-byte aligned under GOARCH=386
// layout.
package pos

import "sync/atomic"

// counters puts the atomic word after a bool: offset 4 on 386.
type counters struct {
	ready bool
	hits  int64
}

// Bump must be diagnosed: hits sits at 32-bit offset 4.
func Bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// slot is 12 bytes on 386, so slots[1].n is 4 mod 8 from the base.
type slot struct {
	n   int64
	tag int32
}

// Drain must be diagnosed: the element stride breaks alignment.
func Drain(slots []slot) int64 {
	var total int64
	for i := range slots {
		total += atomic.LoadInt64(&slots[i].n)
	}
	return total
}

// nested reaches an aligned-offset field through a misaligned enclosing
// struct field.
type nested struct {
	pad  int32
	body struct {
		first int64
	}
}

// Nest must be diagnosed: first is at offset 0 of body, but body itself is
// at offset 4.
func Nest(n *nested) {
	atomic.StoreInt64(&n.body.first, 7)
}
