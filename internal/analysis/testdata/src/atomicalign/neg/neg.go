// Package neg holds atomic-align negative cases: every atomic access below
// is 8-byte aligned on every GOARCH and must produce no diagnostics.
package neg

import "sync/atomic"

// counters keeps the atomic word first: offset 0 anchors on the allocation.
type counters struct {
	hits  int64
	ready bool
}

func Bump(c *counters) { atomic.AddInt64(&c.hits, 1) }

// padded reaches offset 8 by explicit padding.
type padded struct {
	flag int32
	_    int32
	hits int64
}

func BumpPadded(p *padded) { atomic.AddInt64(&p.hits, 1) }

// global package-level words are 8-aligned by the sync/atomic contract.
var global int64

func BumpGlobal() { atomic.AddInt64(&global, 1) }

// typed wrappers carry a runtime alignment guarantee on every GOARCH, even
// at an odd offset.
type typed struct {
	flag bool
	n    atomic.Int64
}

func BumpTyped(t *typed) { t.n.Add(1) }

// Words has an 8-byte element stride from an allocated (8-aligned) base.
func Words(words []uint64, i int) uint64 {
	return atomic.LoadUint64(&words[i])
}

// Local vars that escape through an atomic call are heap allocations.
func Local() int64 {
	var n int64
	return atomic.LoadInt64(&n)
}
