// Package neg holds goroutine-leak negative cases: every spawn here is
// observable at a join point, directly or transitively.
package neg

import (
	"context"
	"sync"
)

var counter int

func work() { counter++ }

// WaitGroupJoin: Done inside the body is the join signal.
func WaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ChannelJoin: the send is the join signal.
func ChannelJoin() {
	done := make(chan struct{})
	go func() {
		work()
		done <- struct{}{}
	}()
	<-done
}

// ContextAware: selecting on ctx.Done observes cancellation.
func ContextAware(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				counter += v
			}
		}
	}()
}

func pump(ch chan int) {
	for v := range ch {
		counter += v
	}
}

// NamedRange: ranging over the channel in the resolvable callee observes
// close(ch).
func NamedRange(ch chan int) {
	go pump(ch)
}

func outer(ch chan int) { inner(ch) }
func inner(ch chan int) { close(ch) }

// Transitive: the close happens two static calls deep.
func Transitive(ch chan int) {
	go outer(ch)
}

// OpaqueWithChannel: the function value is not resolvable, but it receives
// a channel, so the callee is assumed to observe it.
func OpaqueWithChannel(fn func(chan int), ch chan int) {
	go fn(ch)
}

// PollingCtx: ctx.Err polling counts as observing cancellation.
func PollingCtx(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}
