// Package pos holds goroutine-leak positive cases: every `go` statement
// here spawns a body that no join point can ever observe finishing.
package pos

var counter int

func work() { counter++ }

// SpinForever must be diagnosed: the literal loops without touching a
// channel, WaitGroup, or context.
func SpinForever() {
	go func() {
		for {
			work()
		}
	}()
}

func leaky() {
	for i := 0; i < 100; i++ {
		work()
	}
}

// SpawnNamed must be diagnosed: leaky is statically resolvable and never
// observes anything.
func SpawnNamed() {
	go leaky()
}

// SpawnOpaque must be diagnosed: the function value is not statically
// resolvable and the call passes nothing a callee could observe on.
func SpawnOpaque(fn func()) {
	go fn()
}

func deadObserver(ch chan int) {
	work()
	return
	ch <- 1 // unreachable: does not count as an observation
}

// SpawnDead must be diagnosed: the only channel send in deadObserver sits
// after a return, on a CFG-unreachable path.
func SpawnDead(ch chan int) {
	go deadObserver(ch)
}
