// Package pos holds wg-balance positive cases: Add racing Wait from inside
// a goroutine, and constant Add/Done counts that cannot balance.
package pos

import "sync"

var sink int

func work() { sink++ }

// AddInsideGoroutine must be diagnosed (rule A): Wait can run before the
// goroutine's Add, observe a zero counter, and return immediately.
func AddInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// OverAdd must be diagnosed (rule B): two added, one completion — Wait
// blocks forever.
func OverAdd() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// UnderAdd must be diagnosed (rule B): one added, two completions — the
// second Done panics on a negative counter.
func UnderAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
