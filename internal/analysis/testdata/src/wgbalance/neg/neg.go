// Package neg holds wg-balance negative cases: balanced accounting and the
// shapes where the count is not statically knowable, so the check must stay
// quiet.
package neg

import "sync"

var sink int

func work() { sink++ }

// Balanced: one Add before the spawn, one Done inside it.
func Balanced() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// TwoByTwo: constant Adds summing to the completion count.
func TwoByTwo() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// AddPerIteration: Add inside a loop — the total depends on n, so the
// constant rule must bail.
func AddPerIteration(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// NonConstantAdd: the argument is not a constant, so the rule bails.
func NonConstantAdd(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func helper(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// Escapes: the WaitGroup is handed to another function, so local accounting
// cannot see every Add/Done and the rule bails.
func Escapes() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helper(&wg)
	wg.Wait()
}
