// Package pos holds falseshare positive cases: per-worker slots whose
// neighbors share a cache line.
package pos

// counter is 8 bytes: eight workers' counters per cache line.
type counter struct {
	v int64
}

// Pool indexes counters by worker id.
type Pool struct {
	cells []counter
}

// Add must be diagnosed: counter is not cache-line padded.
func (p *Pool) Add(w int, d int64) {
	p.cells[w].v += d
}

// Tally must be diagnosed: in-place writes to a bare int64 slot indexed by
// worker id are the canonical false-sharing bug.
func Tally(counts []int64, w int) {
	counts[w]++
}
