// Package neg holds falseshare negative cases.
package neg

// padded is one full cache line; adjacent workers never share one.
type padded struct {
	v int64
	_ [56]byte
}

type Pool struct {
	cells []padded
}

func (p *Pool) Add(w int, d int64) { p.cells[w].v += d }

// Limit only reads its slot: read-sharing does not ping-pong lines.
func Limit(limits []int64, w int) int64 { return limits[w] }

// Sum indexes by a loop variable, not a worker id: sequential fold after
// the join barrier.
func Sum(vals []int64) int64 {
	var s int64
	for i := range vals {
		s += vals[i]
	}
	return s
}
