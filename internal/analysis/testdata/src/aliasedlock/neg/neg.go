// Package neg holds aliased-lock negatives: pointer receivers, pointer
// loop variables, fresh values, and distinct mutexes.
package neg

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Pointer receiver locks the shared mutex.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Ranging over pointers copies only the pointer.
func RangePtrs(cs []*counter) {
	for _, c := range cs {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// A composite literal is a fresh value, not a copy of anything shared.
func Fresh() int {
	c := counter{}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// An alias locked exactly once is fine; so are two distinct mutexes.
type pair struct {
	a, b sync.Mutex
}

func Alias(p *counter) {
	m := &p.mu
	m.Lock()
	m.Unlock()
}

func TwoLocks(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func use() {
	c := &counter{}
	Alias(c)
	TwoLocks(&pair{})
}
