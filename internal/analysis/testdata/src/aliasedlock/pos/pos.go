// Package pos holds aliased-lock positives.
package pos

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Value receiver: every call locks a private copy.
func (c counter) IncByValue() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Range-by-value: the loop variable copies each element, mutex included.
func RangeCopy(cs []counter) {
	for _, c := range cs {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// Dereference copy: c is a snapshot of *p, with a snapshot mutex.
func DerefCopy(p *counter) {
	c := *p
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// By-value parameter: the caller's mutex never moves with the copy.
func ByValueParam(c counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Alias double-lock: m and p.mu are the same mutex under two names.
func AliasDouble(p *counter) {
	m := &p.mu
	p.mu.Lock()
	m.Lock()
	m.Unlock()
	p.mu.Unlock()
}

func use() {
	c := &counter{}
	AliasDouble(c)
	DerefCopy(c)
}
