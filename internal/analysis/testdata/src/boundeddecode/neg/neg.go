// Package neg holds bounded-decode negative cases: latched bounds, append
// growth, len-sized copies, and sizes that never touched the wire.
package neg

// Limits is the decode bound configuration.
type Limits struct{ MaxVerts int }

func u32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

// decodeBounded is clean: the comparison against the Limits-derived bound
// dominates the allocation.
func decodeBounded(body []byte, lim Limits) []int32 {
	n := int(u32(body, 0))
	if n > lim.MaxVerts {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(u32(body, 4+4*i))
	}
	return out
}

// decodeLatched is clean: equality against the expected count is exactly the
// latch a framed decoder uses.
func decodeLatched(body []byte, k int) []uint32 {
	n := int(u32(body, 0))
	if n != k {
		return nil
	}
	return make([]uint32, n)
}

// decodeAppend is clean: append growth is bounded by the bytes already
// admitted through the framed reader, so no up-front reservation exists.
func decodeAppend(body []byte) []int32 {
	var out []int32
	for off := 0; off+4 <= len(body); off += 4 {
		out = append(out, int32(u32(body, off)))
	}
	return out
}

// decodeOwnedCopy is clean: len of held data bounds the allocation by
// memory the process already admitted.
func decodeOwnedCopy(body []byte) []byte {
	buf := make([]byte, len(body))
	copy(buf, body)
	return buf
}

// Fresh is clean: the size never touched the wire.
func Fresh(n int) []int32 {
	return make([]int32, n)
}
