// Package pos holds bounded-decode positive cases: allocations sized by a
// count that came off the wire with no bound comparison dominating them.
package pos

// Limits is the decode bound configuration a real decoder latches against.
type Limits struct{ MaxVerts int }

func u32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

// decodeUnbounded must be diagnosed: n is read straight off the wire and
// sizes the allocation with no comparison anywhere.
func decodeUnbounded(body []byte) []int32 {
	n := int(u32(body, 0))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(u32(body, 4+4*i))
	}
	return out
}

// decodeGuardWrongArm must be diagnosed: the bound comparison sits on one
// branch only, so a path without it still reaches the allocation.
func decodeGuardWrongArm(body []byte, lim Limits) [][]byte {
	n := int(u32(body, 0))
	if lim.MaxVerts > 0 {
		if n > lim.MaxVerts {
			return nil
		}
	}
	return make([][]byte, n)
}

type sess struct{ data []byte }

func (s *sess) Recv() []byte { return s.data }

// AllocFromRecv must be diagnosed: the element count parsed out of a
// received frame sizes the allocation unguarded — taint flows through the
// module-local Recv and u32 summaries.
func AllocFromRecv(s *sess) []uint32 {
	frame := s.Recv()
	n := int(u32(frame, 0))
	return make([]uint32, n)
}
