// Package pos holds err-checked positive cases: dropped internal errors in
// every statement position, and a panic outside the containment layer.
package pos

import "errors"

func fail() error { return errors.New("boom") }

// Drop must be diagnosed: bare statement call discards the error.
func Drop() {
	fail()
}

// DropGo must be diagnosed: the goroutine's error vanishes with it.
func DropGo() {
	go fail()
}

// DropDefer must be diagnosed: the deferred error is unobservable.
func DropDefer() {
	defer fail()
}

// Explode must be diagnosed: this package is not in PanicPackages.
func Explode() {
	panic("boom")
}
