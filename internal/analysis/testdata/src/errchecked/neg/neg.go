// Package neg holds err-checked negative cases. The fixture config lists
// this package in PanicPackages, standing in for the containment layer.
package neg

import (
	"errors"
	"strings"
)

func fail() error { return errors.New("boom") }

// Handled propagates the error.
func Handled() error { return fail() }

// Waived discards explicitly: visible in review, allowed by the check.
func Waived() {
	_ = fail()
}

// External error-returning callees are go vet's business, not this check's.
func External(b *strings.Builder) {
	b.WriteString("x")
}

// guard panics inside the containment layer, which is allowed.
func guard() {
	panic("contained")
}

var _ = guard
