package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"graftmatch/internal/analysis/flow"
)

// flowState is the lazily built whole-program substrate shared by the
// flow-sensitive checks: every declared function as a flow.Func, the
// module-local call graph, a Func→Package index, and memoized transitive
// properties (blocking, observing) over the call graph. The points-to and
// escape layers on top are built separately (ptInfo) — only the value-flow
// checks pay their cost.
type flowState struct {
	cg       *flow.CallGraph
	pkgOf    map[*flow.Func]*Package
	byInfo   map[*types.Info]*Package
	blocking map[*types.Func]bool // memo: module function blocks (transitively)
	observes map[*types.Func]int  // memo: 0 unknown, 1 yes, -1 no

	pts    *flow.PointsTo
	escape *flow.Escape
}

// flowInfo builds (once) and returns the flow substrate.
func (prog *Program) flowInfo() *flowState {
	if prog.fs != nil {
		return prog.fs
	}
	fs := &flowState{
		pkgOf:    map[*flow.Func]*Package{},
		byInfo:   map[*types.Info]*Package{},
		blocking: map[*types.Func]bool{},
		observes: map[*types.Func]int{},
	}
	var funcs []*flow.Func
	for _, pkg := range prog.Pkgs {
		fs.byInfo[pkg.Info] = pkg
		for _, f := range flow.CollectFuncs(pkg.Types.Name(), pkg.Info, pkg.Files) {
			funcs = append(funcs, f)
			fs.pkgOf[f] = pkg
		}
	}
	fs.cg = flow.NewCallGraph(funcs)
	prog.fs = fs
	return fs
}

// ptInfo builds (once) the points-to and goroutine-escape layers on top of
// the flow substrate: every package-level var becomes a Global root, the
// whole-module constraint system is solved, and contexts are assigned.
func (prog *Program) ptInfo() *flowState {
	fs := prog.flowInfo()
	if fs.pts != nil {
		return fs
	}
	var globals []flow.Global
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						globals = append(globals, flow.Global{Info: pkg.Info, Spec: vs})
					}
				}
			}
		}
	}
	fs.pts = flow.BuildPointsTo(prog.Fset, fs.cg, globals)
	fs.escape = flow.BuildEscape(fs.pts, fs.cg)
	return fs
}

// valueFuncs returns every function the points-to substrate knows — declared
// functions first, then literals — paired with its package.
func (fs *flowState) valueFuncs() []*flow.Func {
	out := append([]*flow.Func{}, fs.cg.Funcs()...)
	out = append(out, fs.pts.LitFuncs()...)
	return out
}

// pkgFor resolves the package a flow.Func belongs to (literals resolve
// through their type-checker Info).
func (fs *flowState) pkgFor(f *flow.Func) *Package {
	if pkg := fs.pkgOf[f]; pkg != nil {
		return pkg
	}
	return fs.byInfo[f.Info]
}

// namedType returns the named type behind t after stripping one pointer,
// or nil.
func namedType(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isSyncType reports whether t (or *t) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// recvOfSyncCall matches a call of the form X.<method>() where X's type is
// sync.<typeName> (possibly through a pointer), returning X.
func recvOfSyncCall(pkg *Package, call *ast.CallExpr, typeName string, methods ...string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	found := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || !isSyncType(tv.Type, typeName) {
		return nil
	}
	return sel.X
}

// exprKey canonicalizes an ident/selector chain ("lg.mu", "w.s.mu") for use
// as a lock or wait-group identity. Expressions with calls, indexing, or
// other shapes return "" — those identities are not trackable and the
// checks skip them.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return exprKey(e.X) // &x aliases x
	case *ast.StarExpr:
		return exprKey(e.X) // *p aliases p for our purposes
	}
	return ""
}

// stdlibBlocking classifies an out-of-module callee as a blocking
// operation: synchronization waits, sleeps, and I/O. The list is the
// deny-list the lock-discipline check reasons with; it under-approximates
// (unlisted stdlib calls pass), which keeps the check quiet rather than
// noisy.
func stdlibBlocking(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	name := obj.Name()
	switch pkg.Path() {
	case "sync":
		if name == "Wait" { // (*WaitGroup).Wait, (*Cond).Wait
			return "sync." + recvName(obj) + ".Wait"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		switch name {
		case "ReadFile", "WriteFile", "Open", "OpenFile", "Create", "ReadDir",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll":
			return "os." + name
		case "Read", "Write", "Sync", "Close", "ReadAt", "WriteAt", "Seek":
			if recvName(obj) == "File" {
				return "(*os.File)." + name
			}
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "ReadAll", "ReadFull":
			return "io." + name
		}
	case "net", "net/http":
		return pkg.Path() + "." + name // any networking call blocks
	case "bufio":
		switch name {
		case "Flush", "ReadString", "ReadBytes", "ReadLine", "Read", "Write", "WriteString":
			return "bufio." + name
		}
	}
	return ""
}

// recvName returns the receiver type name of a method object ("WaitGroup"
// for (*sync.WaitGroup).Wait), or "".
func recvName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	n := namedType(sig.Recv().Type())
	if n == nil {
		return ""
	}
	return n.Obj().Name()
}

// blockingCall classifies call as a blocking operation, directly (a
// blocking stdlib callee) or transitively (a module-local callee whose body
// blocks). Returns a human-readable description or "".
func (fs *flowState) blockingCall(pkg *Package, call *ast.CallExpr, depth int) string {
	obj := flow.CalleeObj(pkg.Info, call)
	if obj == nil {
		return ""
	}
	if desc := stdlibBlocking(obj); desc != "" {
		return desc
	}
	if depth <= 0 {
		return ""
	}
	callee := fs.cg.ByObj(obj)
	if callee == nil {
		return ""
	}
	if blocked, ok := fs.blocking[obj]; ok {
		if blocked {
			return obj.Name() + " (blocks transitively)"
		}
		return ""
	}
	fs.blocking[obj] = false // cycle guard: assume non-blocking while visiting
	desc := ""
	cpkg := fs.pkgOf[callee]
	ast.Inspect(callee.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal defined here runs elsewhere
		case *ast.SendStmt:
			desc = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				desc = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc = "select"
			}
		case *ast.CallExpr:
			if d := fs.blockingCall(cpkg, n, depth-1); d != "" {
				desc = d
			}
		}
		return true
	})
	if desc != "" {
		fs.blocking[obj] = true
		return obj.Name() + " (calls " + desc + ")"
	}
	return ""
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
