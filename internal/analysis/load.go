// Package analysis implements graftlint, a repo-specific static-analysis
// suite for the concurrency invariants the matching kernels depend on:
// 64-bit atomic alignment on 32-bit targets, atomic-only access to shared
// words, cache-line padding of per-worker state, context discipline of the
// resilient entry points, and error/panic hygiene. It is built entirely on
// the standard library (go/parser, go/ast, go/types, go/token, go/importer)
// so the lint wall needs nothing the toolchain does not already ship.
//
// The unit of analysis is a Program: every package of the module, parsed
// with comments and fully typechecked. Checks are whole-program — a field
// written atomically in one package and plainly in another is exactly the
// bug class a per-package pass cannot see.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked module package.
type Package struct {
	Path  string // import path (module path + "/" + relative dir)
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole-module input to every check.
type Program struct {
	Fset    *token.FileSet
	ModPath string     // module path; packages under it are "internal APIs"
	Pkgs    []*Package // sorted by import path

	// Sizes64 models the primary 64-bit target (gc/amd64); Sizes32 models
	// the strictest 32-bit target (gc/386), where 64-bit atomics require
	// explicit 8-byte alignment. atomic-align reasons under Sizes32,
	// falseshare under Sizes64.
	Sizes64 types.Sizes
	Sizes32 types.Sizes

	Config Config

	supp *suppressions
	fs   *flowState // lazily built flow substrate (flowInfo)
}

// Config scopes the package-sensitive rules.
type Config struct {
	// CtxPackages are import-path suffixes of the packages whose exported
	// Run* entry points must have a context-aware variant (ctx-discipline).
	CtxPackages []string
	// PanicPackages are import-path suffixes of the packages allowed to
	// panic: the containment layer that converts worker panics into errors.
	PanicPackages []string

	// HotPackages are import-path suffixes of the packages whose loop
	// bodies are allocation-sensitive (the BFS/superstep inner loops);
	// hotpath-alloc flags per-iteration allocations inside them, in
	// addition to the bodies of func literals handed to the internal/par
	// entry points anywhere in the module.
	HotPackages []string
}

// DefaultConfig returns the repo's production configuration.
func DefaultConfig() Config {
	return Config{
		CtxPackages: []string{
			"internal/par", "internal/core", "internal/pf",
			"internal/pushrelabel", "internal/dist", "internal/dist/net",
			"internal/supervise", "internal/obs", "internal/serve",
		},
		PanicPackages: []string{"internal/par"},
		HotPackages: []string{
			"internal/core", "internal/msbfs", "internal/queue",
			"internal/dist", "internal/dist/net", "internal/pf",
			"internal/pushrelabel", "internal/obs", "internal/serve",
		},
	}
}

// inSuffixList reports whether pkgPath equals or ends with "/"+one of the
// configured suffixes.
func inSuffixList(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// LoadModule loads the Go module rooted at dir (the directory containing
// go.mod) with the default configuration.
func LoadModule(dir string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(dir, modPath, DefaultConfig())
}

// LoadTree loads every package under root, assigning import path
// modPath+"/"+relative-dir (modPath for the root itself). Directories named
// "testdata", hidden directories, and _test.go files are skipped. Packages
// may import one another through modPath-prefixed paths; all other imports
// resolve from source via go/importer.
func LoadTree(root, modPath string, cfg Config) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		parsed:  map[string]*parsedPkg{},
		checked: map[string]*Package{},
	}
	paths, err := ld.discover()
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    fset,
		ModPath: modPath,
		Sizes64: types.SizesFor("gc", "amd64"),
		Sizes32: types.SizesFor("gc", "386"),
		Config:  cfg,
	}
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.supp = parseSuppressions(prog)
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
}

// loader typechecks module packages on demand, resolving module-internal
// imports from the parsed tree and everything else (the standard library)
// from source via go/importer.
type loader struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.Importer
	parsed  map[string]*parsedPkg // import path -> parsed source
	checked map[string]*Package   // import path -> typechecked package
	stack   []string              // import cycle detection
}

// discover walks the tree, parses every candidate directory that contains
// non-test Go files, and returns the discovered import paths sorted.
func (ld *loader) discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		pp, err := ld.parseDir(path)
		if err != nil {
			return err
		}
		if pp != nil {
			ld.parsed[pp.path] = pp
			paths = append(paths, pp.path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// parseDir parses the non-test Go files of one directory, returning nil if
// the directory holds no Go package.
func (ld *loader) parseDir(dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return nil, err
	}
	path := ld.modPath
	if rel != "." {
		path = ld.modPath + "/" + filepath.ToSlash(rel)
	}
	return &parsedPkg{path: path, dir: dir, files: files}, nil
}

// check typechecks the module package with the given import path, resolving
// its module-internal imports recursively.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	for _, p := range ld.stack {
		if p == path {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
	}
	pp, ok := ld.parsed[path]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown module package %q", path)
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if ipath == "unsafe" {
				return types.Unsafe, nil
			}
			if ipath == ld.modPath || strings.HasPrefix(ipath, ld.modPath+"/") {
				sub, err := ld.check(ipath)
				if err != nil {
					return nil, err
				}
				return sub.Types, nil
			}
			return ld.std.Import(ipath)
		}),
		Sizes: types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(path, ld.fset, pp.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: pp.dir, Files: pp.files, Types: tpkg, Info: info}
	ld.checked[path] = pkg
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
