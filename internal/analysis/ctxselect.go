package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"graftmatch/internal/analysis/flow"
)

// CtxSelect is the ctx-select check: inside goroutines spawned from the
// engine packages (Config.CtxPackages), a blocking channel operation must
// sit in a select that can observe cancellation — one with a done-channel
// receive case (any `chan struct{}` source: ctx.Done(), a close channel) or
// a default arm. A bare send, bare receive, channel range, or done-less
// select is a goroutine that outlives its context: cancellation fires, the
// supervisor moves on, and the goroutine stays parked on a channel nobody
// will touch again.
//
// Receiving directly from a done-like channel is exempt (that IS waiting
// for cancellation), and the scan follows `go f()` into module-local
// callees two levels deep, so handlers dispatched by name are held to the
// same rule as inline literals.
func CtxSelect() Check {
	return Check{
		Name:  "ctx-select",
		Doc:   "channel ops in engine goroutines select on a done channel",
		Level: "error",
		Run:   runCtxSelect,
	}
}

func runCtxSelect(prog *Program) []Diagnostic {
	s := &ctxSelectScan{
		prog: prog,
		fs:   prog.flowInfo(),
		seen: map[token.Pos]bool{},
	}
	for _, pkg := range prog.Pkgs {
		if !inSuffixList(pkg.Path, prog.Config.CtxPackages) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						s.spawn(pkg, fd, gs)
					}
					return true
				})
			}
		}
	}
	return s.out
}

// goFollowDepth is how many static call hops the scan follows from the go
// statement into module-local callees.
const goFollowDepth = 2

type ctxSelectScan struct {
	prog *Program
	fs   *flowState
	seen map[token.Pos]bool // offending ops already reported (shared spawn paths)
	out  []Diagnostic
}

// spawn analyzes one go statement found in an engine package.
func (s *ctxSelectScan) spawn(pkg *Package, encl *ast.FuncDecl, gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		label := "goroutine in " + funcLabel(encl)
		s.scanBody(pkg.Info, lit.Body, label, goFollowDepth, map[*flow.Func]bool{})
		return
	}
	obj := flow.CalleeObj(pkg.Info, gs.Call)
	if obj == nil {
		return
	}
	fn := s.fs.cg.ByObj(obj)
	if fn == nil {
		return
	}
	s.scanBody(fn.Info, fn.Body, "goroutine "+fn.Name, goFollowDepth, map[*flow.Func]bool{fn: true})
}

// scanBody walks one body (nested literals and nested goroutines excluded —
// each spawn is judged on its own) reporting channel ops that can block past
// cancellation, and follows static module-local calls depth levels further.
func (s *ctxSelectScan) scanBody(info *types.Info, body *ast.BlockStmt, label string, depth int, visited map[*flow.Func]bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectObservesDone(info, n) {
				s.report(n.Pos(), "select in %s has neither a default nor a done-channel case: it blocks past cancellation", label)
			}
			// The comm clauses themselves are covered by the select; their
			// bodies are scanned for further bare ops.
			for _, c := range n.Body.List {
				for _, st := range c.(*ast.CommClause).Body {
					ast.Inspect(st, walk)
				}
			}
			return false
		case *ast.SendStmt:
			s.report(n.Pos(), "%s sends on %s outside a select: cancellation cannot interrupt the send", label, types.ExprString(n.Chan))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !doneLike(info, n.X) {
				s.report(n.Pos(), "%s receives from %s outside a select with a done channel", label, types.ExprString(n.X))
			}
		case *ast.RangeStmt:
			if isChannelExpr(info, n.X) && !doneLike(info, n.X) {
				s.report(n.Pos(), "%s ranges over channel %s with no cancellation path", label, types.ExprString(n.X))
			}
		case *ast.CallExpr:
			if depth > 0 {
				if obj := flow.CalleeObj(info, n); obj != nil {
					if fn := s.fs.cg.ByObj(obj); fn != nil && !visited[fn] {
						visited[fn] = true
						s.scanBody(fn.Info, fn.Body, label+" via "+fn.Name, depth-1, visited)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (s *ctxSelectScan) report(pos token.Pos, format string, a ...any) {
	if s.seen[pos] {
		return
	}
	s.seen[pos] = true
	s.out = append(s.out, s.prog.diag(pos, "ctx-select", format, a...))
}

// selectObservesDone reports whether a select can always make progress under
// cancellation: it has a default arm, or some case receives from a done-like
// channel.
func selectObservesDone(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true
		}
		if ch := commRecvChan(cc.Comm); ch != nil && doneLike(info, ch) {
			return true
		}
	}
	return false
}

// commRecvChan extracts the channel of a receive comm clause (`<-ch`,
// `v := <-ch`, `v, ok = <-ch`); nil for sends.
func commRecvChan(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch st := comm.(type) {
	case *ast.ExprStmt:
		e = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			e = st.Rhs[0]
		}
	}
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue.X
	}
	return nil
}

// doneLike reports whether e's static type is a struct{}-element channel —
// the shape of every cancellation signal in the module (ctx.Done(), session
// close channels, detach notifications).
func doneLike(info *types.Info, e ast.Expr) bool {
	ch := chanType(info, e)
	if ch == nil {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isChannelExpr reports whether e's static type is a channel.
func isChannelExpr(info *types.Info, e ast.Expr) bool {
	return chanType(info, e) != nil
}

func chanType(info *types.Info, e ast.Expr) *types.Chan {
	if e == nil {
		return nil
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	ch, _ := tv.Type.Underlying().(*types.Chan)
	return ch
}
