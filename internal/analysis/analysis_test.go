package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graftmatch/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixtureCases pairs each check with its fixture tree and the configuration
// the fixture assumes. Every fixture holds a pos package (all findings) and
// a neg package (no findings), which the runner enforces structurally on
// top of the golden comparison.
var fixtureCases = []struct {
	name   string
	checks []string
	cfg    analysis.Config
}{
	{"atomicalign", []string{"atomic-align"}, analysis.Config{}},
	{"mixedaccess", []string{"mixed-access"}, analysis.Config{}},
	{"falseshare", []string{"falseshare"}, analysis.Config{}},
	{"ctxdiscipline", []string{"ctx-discipline"}, analysis.Config{CtxPackages: []string{"pos", "neg"}}},
	{"errchecked", []string{"err-checked"}, analysis.Config{PanicPackages: []string{"neg"}}},
	{"goroutineleak", []string{"goroutine-leak"}, analysis.Config{}},
	{"lockdiscipline", []string{"lock-discipline"}, analysis.Config{}},
	{"wgbalance", []string{"wg-balance"}, analysis.Config{}},
	{"hotpathalloc", []string{"hotpath-alloc"}, analysis.Config{HotPackages: []string{"pos", "neg"}}},
	{"protoexhaustive", []string{"proto-exhaustive"}, analysis.Config{}},
	{"deadlinediscipline", []string{"deadline-discipline"}, analysis.Config{}},
	{"boundeddecode", []string{"bounded-decode"}, analysis.Config{}},
	{"ctxselect", []string{"ctx-select"}, analysis.Config{CtxPackages: []string{"pos", "neg"}}},
	{"sharedrace", []string{"shared-race"}, analysis.Config{}},
	{"aliasedlock", []string{"aliased-lock"}, analysis.Config{}},
	{"globalmutable", []string{"global-mutable"}, analysis.Config{CtxPackages: []string{"pos", "neg"}}},
	{"suppress", nil, analysis.Config{}},
}

func TestGolden(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			root := filepath.Join("testdata", "src", tc.name)
			prog, err := analysis.LoadTree(root, "fix", tc.cfg)
			if err != nil {
				t.Fatalf("LoadTree(%s): %v", root, err)
			}
			diags, err := prog.Run(tc.checks)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			absRoot, err := filepath.Abs(root)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range diags {
				rel, err := filepath.Rel(absRoot, d.Pos.Filename)
				if err != nil {
					t.Fatalf("diagnostic outside fixture root: %s", d.Pos.Filename)
				}
				rel = filepath.ToSlash(rel)
				if strings.HasPrefix(rel, "neg/") {
					t.Errorf("finding in negative fixture package: %s:%d: %s: %s", rel, d.Pos.Line, d.Check, d.Message)
				}
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
			}
			got := b.String()
			if got == "" {
				t.Errorf("fixture %s produced no findings; every fixture must have positives", tc.name)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestRepoIsClean loads the real module and requires zero findings: the
// acceptance bar the CI graftlint job enforces, kept inside go test so a
// plain test run catches regressions too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	prog, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags, err := prog.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestRunUnknownCheck(t *testing.T) {
	prog, err := analysis.LoadTree(filepath.Join("testdata", "src", "falseshare"), "fix", analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run([]string{"no-such-check"}); err == nil {
		t.Fatal("Run accepted an unknown check name")
	}
}

func TestCheckNames(t *testing.T) {
	want := []string{
		"atomic-align", "mixed-access", "falseshare", "ctx-discipline", "err-checked",
		"goroutine-leak", "lock-discipline", "wg-balance", "hotpath-alloc",
		"proto-exhaustive", "deadline-discipline", "bounded-decode", "ctx-select",
		"shared-race", "aliased-lock", "global-mutable",
	}
	got := analysis.CheckNames()
	if len(got) != len(want) {
		t.Fatalf("CheckNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CheckNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSuppressionAudit pins the Directive accounting behind graftlint
// -suppressions: well-formed directives are recorded with their reasons,
// hits are charged per check after a run, and a directive that silences
// nothing is visible as such. Malformed directives (missing reason, unknown
// check) become lint-directive findings instead and must not be recorded.
func TestSuppressionAudit(t *testing.T) {
	prog, err := analysis.LoadTree(filepath.Join("testdata", "src", "suppress"), "fix", analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(nil); err != nil {
		t.Fatal(err)
	}
	dirs := prog.Suppressions()
	// Trailing, Above, WrongCheck, Multi; the malformed three are findings,
	// not directives.
	if len(dirs) != 4 {
		t.Fatalf("Suppressions() returned %d directives, want 4: %+v", len(dirs), dirs)
	}
	type want struct {
		checks   string
		silenced int
	}
	wants := []want{
		{"err-checked", 1},            // Trailing
		{"err-checked", 1},            // Above
		{"falseshare", 0},             // WrongCheck: names the wrong check, silences nothing
		{"err-checked,falseshare", 1}, // Multi: only the err-checked half fires
	}
	for i, d := range dirs {
		if got := strings.Join(d.Checks, ","); got != wants[i].checks {
			t.Errorf("directive %d checks = %s, want %s", i, got, wants[i].checks)
		}
		if got := d.Silenced(); got != wants[i].silenced {
			t.Errorf("directive %d (line %d) silenced %d findings, want %d", i, d.Line, got, wants[i].silenced)
		}
		if d.Reason == "" {
			t.Errorf("directive %d has an empty reason; the parser requires one", i)
		}
	}
	if h := dirs[3].Hits["err-checked"]; h != 1 {
		t.Errorf("multi-check directive charged %d err-checked hits, want 1", h)
	}
	if h := dirs[3].Hits["falseshare"]; h != 0 {
		t.Errorf("multi-check directive charged %d falseshare hits, want 0", h)
	}
}
