package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"graftmatch/internal/analysis/flow"
)

// AliasedLock is the aliased-lock check: mutexes locked through the wrong
// identity. Two families of defects are reported:
//
//   - mutex-by-value: a value copy of a struct containing a sync.Mutex or
//     sync.RWMutex is locked — through a value receiver, a range-by-value
//     loop variable, a by-value parameter, or a local struct copy. The copy
//     has its own (unlocked) mutex, so the "critical section" excludes
//     nobody.
//   - alias double-lock: X.Lock() runs while the same underlying mutex is
//     already must-held under a different syntactic name (`m := &s.mu;
//     s.mu.Lock(); m.Lock()`). Same-name double locks belong to
//     lock-discipline; this rule closes the alias gap using the points-to
//     layer.
func AliasedLock() Check {
	return Check{
		Name:  "aliased-lock",
		Doc:   "mutexes are locked through their one true identity, never a copy or a conflicting alias",
		Level: "error",
		Run:   runAliasedLock,
	}
}

func runAliasedLock(prog *Program) []Diagnostic {
	fs := prog.ptInfo()
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, copiedMutexDefects(prog, pkg, fd)...)
			}
		}
	}
	for _, fn := range fs.valueFuncs() {
		pkg := fs.pkgFor(fn)
		if pkg == nil {
			continue
		}
		out = append(out, aliasDoubleLockDefects(prog, fs, pkg, fn)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

// hasMutexField reports whether t (a non-pointer type) contains a
// sync.Mutex/sync.RWMutex by value, directly or through nested structs
// (depth-limited).
func hasMutexField(t types.Type, depth int) bool {
	if isSyncType(t, "Mutex") || isSyncType(t, "RWMutex") {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	if depth == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if hasMutexField(st.Field(i).Type(), depth-1) {
			return true
		}
	}
	return false
}

// copyOrigin describes why a variable holds a copy of a mutex-bearing value.
type copyOrigin struct {
	why string // "value receiver", "range-by-value loop variable", ...
	pos token.Pos
}

// copiedMutexDefects scans one declared function (literals included) for
// lock operations whose receiver chain roots at a variable known to hold a
// by-value copy of a mutex-bearing struct.
func copiedMutexDefects(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	copies := map[*types.Var]copyOrigin{}
	addVar := func(id *ast.Ident, why string) {
		v, _ := pkg.Info.Defs[id].(*types.Var)
		if v == nil || v.Name() == "_" {
			return
		}
		if hasMutexField(v.Type(), 3) {
			copies[v] = copyOrigin{why: why, pos: id.Pos()}
		}
	}
	params := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, fld := range ft.Params.List {
			if _, isPtr := fld.Type.(*ast.StarExpr); isPtr {
				continue
			}
			for _, name := range fld.Names {
				addVar(name, "by-value parameter")
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		fld := fd.Recv.List[0]
		if _, isPtr := fld.Type.(*ast.StarExpr); !isPtr {
			for _, name := range fld.Names {
				addVar(name, "value receiver")
			}
		}
	}
	params(fd.Type)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			params(n.Type)
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Value.(*ast.Ident); ok {
					addVar(id, "range-by-value loop variable")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				// Copies, not fresh values: dereferences, plain variable
				// reads, and element loads. Composite literals and call
				// results are new values whose mutex nobody else holds.
				switch ast.Unparen(n.Rhs[i]).(type) {
				case *ast.StarExpr, *ast.Ident, *ast.IndexExpr, *ast.SelectorExpr:
					if n.Tok == token.DEFINE {
						addVar(id, "struct copy")
					}
				}
			}
		}
		return true
	})
	if len(copies) == 0 {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		m, ok := lockOp(pkg, call)
		if !ok || !m.acquire {
			return true
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		base := chainRootVar(pkg.Info, sel.X)
		if base == nil {
			return true
		}
		if origin, isCopy := copies[base]; isCopy {
			out = append(out, prog.diag(call.Pos(), "aliased-lock",
				"%s locks a mutex inside %s, a %s (%s): the copy's mutex guards nothing shared; use a pointer",
				m.lockKey, base.Name(), origin.why, prog.shortPos(origin.pos)))
		}
		return true
	})
	return out
}

// chainRootVar resolves the base variable of an ident/selector chain
// ("c.mu" → c); nil for chains through calls or indexing.
func chainRootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// aliasDoubleLockDefects reports write-mode Lock acquisitions of a mutex
// whose points-to location is already must-held under a different syntactic
// key in the same function.
func aliasDoubleLockDefects(prog *Program, fs *flowState, pkg *Package, fn *flow.Func) []Diagnostic {
	keys, _ := collectLockKeys(pkg, fn.Body)
	if len(keys) < 2 {
		return nil // an alias pair needs two syntactic identities
	}
	idx := map[lockKey]int{}
	for i, k := range keys {
		idx[k] = i
	}
	// Precise points-to identity per syntactic key, from its first receiver
	// occurrence; keys without a unique location are not compared.
	precise := map[lockKey]string{}
	scanOwn(fn.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		m, ok := lockOp(pkg, call)
		if !ok {
			return
		}
		if _, seen := precise[m.lockKey]; seen {
			return
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		precise[m.lockKey] = preciseMutexID(fs, pkg, sel.X)
	})
	g := fn.CFG(fs.cg)
	p := flow.Problem{
		Bits:  len(keys),
		Entry: flow.NewBitSet(len(keys)),
		Must:  true,
		Transfer: func(b *flow.Block, in flow.BitSet) flow.BitSet {
			out := in.Copy()
			for _, node := range b.Nodes {
				applyLockOps(pkg, fn.Node, node, idx, out)
			}
			return out
		},
	}
	must := p.Solve(g)

	var out []Diagnostic
	for _, b := range g.Reachable() {
		facts := must.In[b].Copy()
		for _, node := range b.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); !isDefer {
				ast.Inspect(node, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncLit:
						return n == fn.Node
					case *ast.DeferStmt:
						return false
					case *ast.CallExpr:
						m, ok := lockOp(pkg, n)
						if !ok || !m.acquire || !m.write {
							return true
						}
						id := precise[m.lockKey]
						if id == "" {
							return true
						}
						for other, i := range idx {
							if other == m.lockKey || !other.write || !facts.Has(i) {
								continue
							}
							if precise[other] == id {
								out = append(out, prog.diag(n.Pos(), "aliased-lock",
									"%s locks the mutex already held as %s (same location %s): self-deadlock through an alias in %s",
									m.lockKey, other, id, funcLabel(fn.Node)))
							}
						}
					}
					return true
				})
			}
			applyLockOps(pkg, fn.Node, node, idx, facts)
		}
	}
	return out
}

// preciseMutexID resolves a mutex receiver to its unique points-to location
// string, or "" when the substrate cannot pin it to exactly one location.
func preciseMutexID(fs *flowState, pkg *Package, x ast.Expr) string {
	tv, ok := pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return ""
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		if objs := fs.pts.PointeesOf(pkg.Info, x); len(objs) == 1 {
			return objs[0].String()
		}
		return ""
	}
	if locs := fs.pts.LocsOf(pkg.Info, x); len(locs) == 1 {
		return locs[0].String()
	}
	return ""
}
