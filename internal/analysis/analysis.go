package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical "file:line:col: check: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one named, independently runnable invariant.
type Check struct {
	Name string
	Doc  string
	// Level is the severity a finding of this check carries in reporting
	// backends (SARIF): "error" for correctness invariants, "warning" for
	// discipline rules, "note" for performance advice.
	Level string
	// HelpURI points at the check's documentation; filled in by Checks().
	HelpURI string
	Run     func(prog *Program) []Diagnostic
}

// helpURIBase is the documentation root each check's HelpURI anchors into.
const helpURIBase = "https://graftmatch.dev/graftlint/checks#"

// Checks returns the full suite in canonical order.
func Checks() []Check {
	cs := []Check{
		AtomicAlign(),
		MixedAccess(),
		FalseShare(),
		CtxDiscipline(),
		ErrChecked(),
		GoroutineLeak(),
		LockDiscipline(),
		WGBalance(),
		HotPathAlloc(),
		ProtoExhaustive(),
		DeadlineDiscipline(),
		BoundedDecode(),
		CtxSelect(),
		SharedRace(),
		AliasedLock(),
		GlobalMutable(),
	}
	for i := range cs {
		cs[i].HelpURI = helpURIBase + cs[i].Name
	}
	return cs
}

// CheckNames returns the names of every check in the suite.
func CheckNames() []string {
	cs := Checks()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Run executes the named checks (all of them when names is empty) over the
// program, filters suppressed findings, and returns the rest sorted by
// position. Unknown check names are an error. Malformed //lint:ignore
// directives are reported under the pseudo-check "lint-directive", which
// cannot be suppressed and runs regardless of the selection.
func (prog *Program) Run(names []string) ([]Diagnostic, error) {
	byName := map[string]Check{}
	for _, c := range Checks() {
		byName[c.Name] = c
	}
	var selected []Check
	if len(names) == 0 {
		selected = Checks()
	} else {
		for _, n := range names {
			c, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown check %q (have %s)", n, strings.Join(CheckNames(), ", "))
			}
			selected = append(selected, c)
		}
	}
	var out []Diagnostic
	for _, c := range selected {
		for _, d := range c.Run(prog) {
			if !prog.supp.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	out = append(out, prog.supp.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out, nil
}

// shortPos renders pos as "file.go:line" (base name only), for embedding a
// cross-reference inside a message without machine-specific path prefixes.
func (prog *Program) shortPos(pos token.Pos) string {
	p := prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// diag constructs a Diagnostic at pos.
func (prog *Program) diag(pos token.Pos, check, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     prog.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// eachFunc invokes fn for every function or method body in the program,
// including function literals: fn receives the package and the function
// node (*ast.FuncDecl or *ast.FuncLit) with a non-nil body. Nested literals
// get their own invocation.
func (prog *Program) eachFunc(fn func(pkg *Package, node ast.Node, body *ast.BlockStmt)) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fd := n.(type) {
				case *ast.FuncDecl:
					if fd.Body != nil {
						fn(pkg, fd, fd.Body)
					}
				case *ast.FuncLit:
					fn(pkg, fd, fd.Body)
				}
				return true
			})
		}
	}
}

// walkShallow walks the statements of one function body without descending
// into nested function literals, so "same function" means the innermost one.
func walkShallow(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == nil || n == body {
			return true
		}
		return fn(n)
	})
}
