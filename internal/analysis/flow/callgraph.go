package flow

import (
	"go/ast"
	"go/types"
)

// Func is one analyzable function: a declared function/method or a function
// literal, paired with the type info of its package.
type Func struct {
	Info *types.Info
	Node ast.Node        // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt  // non-nil
	Obj  *types.Func     // declared object; nil for literals
	Name string          // qualified diagnostic label ("pkg.Recv.Method" or "pkg.func@line")

	cfg *Graph
}

// CFG returns the function's control-flow graph, built on first use with
// the call graph's terminating-call classifier.
func (f *Func) CFG(cg *CallGraph) *Graph {
	if f.cfg == nil {
		f.cfg = BuildCFG(f.Body, func(call *ast.CallExpr) bool {
			return cg.Terminates(f.Info, call)
		})
	}
	return f.cfg
}

// CallGraph resolves module-local calls statically: a call whose callee
// identifier or method selection names a *types.Func whose body is in the
// module resolves to that Func. Calls through function values, interface
// methods, and out-of-module functions resolve to nil. That is exactly the
// soundness boundary documented in DESIGN.md §9: the call graph
// under-approximates (it never invents an edge), so checks built on it must
// treat an unresolved callee conservatively.
type CallGraph struct {
	byObj map[*types.Func]*Func
	funcs []*Func
}

// NewCallGraph indexes funcs (declared functions; literals may be included
// but are only reachable through Funcs()).
func NewCallGraph(funcs []*Func) *CallGraph {
	cg := &CallGraph{byObj: map[*types.Func]*Func{}, funcs: funcs}
	for _, f := range funcs {
		if f.Obj != nil {
			cg.byObj[f.Obj] = f
		}
	}
	return cg
}

// Funcs returns every indexed function.
func (cg *CallGraph) Funcs() []*Func { return cg.funcs }

// ByObj returns the module Func declared by obj, or nil.
func (cg *CallGraph) ByObj(obj *types.Func) *Func { return cg.byObj[obj] }

// CalleeObj resolves the called *types.Func of a call expression, module-
// local or not; nil for calls through function values, builtins, and
// conversions.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Callee resolves a call to its module-local Func, or nil: the static
// resolution the flow checks traverse. An immediately invoked function
// literal resolves to a synthetic Func for the literal.
func (cg *CallGraph) Callee(info *types.Info, call *ast.CallExpr) *Func {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return &Func{Info: info, Node: lit, Body: lit.Body, Name: "func-literal"}
	}
	obj := CalleeObj(info, call)
	if obj == nil {
		return nil
	}
	return cg.byObj[obj]
}

// Terminates reports whether a statement-position call never returns:
// the panic builtin, os.Exit, runtime.Goexit, and log.Fatal*.
func (cg *CallGraph) Terminates(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Builtin); ok {
			return obj.Name() == "panic"
		}
	}
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "os":
		return obj.Name() == "Exit"
	case "runtime":
		return obj.Name() == "Goexit"
	case "log":
		switch obj.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch obj.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// CollectFuncs enumerates every function and method with a body in the
// given files (function literals excluded; checks reach those through the
// AST of their enclosing function), labeled pkgName-qualified.
func CollectFuncs(pkgName string, info *types.Info, files []*ast.File) []*Func {
	var out []*Func
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			name := pkgName + "." + fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = pkgName + "." + recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
			}
			out = append(out, &Func{
				Info: info,
				Node: fd,
				Body: fd.Body,
				Obj:  obj,
				Name: name,
			})
		}
	}
	return out
}

// recvTypeName renders a receiver type expression's base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return "?"
		}
	}
}
