// Package flow is the dataflow substrate under graftlint's flow-sensitive
// checks: per-function control-flow graphs built from go/ast, a small
// forward dataflow framework (gen/kill facts over CFG blocks with worklist
// iteration), and a module-local call graph keyed by static callee
// resolution. Like the rest of internal/analysis it is stdlib-only.
//
// The CFG is statement-granular: each basic block carries the ast.Node
// statements it executes in order, and checks apply their per-node transfer
// inside a block themselves (the framework converges block-level IN/OUT
// facts; re-walking a block from its IN fact recovers the fact at every
// interior node). Branching constructs are lowered conservatively:
//
//   - if/else, for, range, switch, type switch, and select fan out to the
//     successor blocks that their runtime semantics permit;
//   - break/continue/goto (labeled or not) and fallthrough become edges,
//     resolved against an enclosing-construct stack and a label table;
//   - return edges to the single synthetic Exit block;
//   - a statement-position call to panic, os.Exit, runtime.Goexit,
//     (*testing.common).Fatal* or log.Fatal* terminates its block with an
//     edge to Exit (the statements after it are unreachable).
//
// Range over a function (Go 1.23 iterators) is treated as an ordinary
// range: body executes zero or more times, then control continues.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal single-entry straight-line statement
// sequence. Nodes holds the statements (and for condition-bearing
// constructs, the controlling expression's statement node) in execution
// order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Kind labels synthetic blocks for debugging and tests.
	Kind string
}

// Pos returns the position of the block's first statement, or token.NoPos
// for synthetic blocks with no statements of their own.
func (b *Block) Pos() token.Pos {
	if len(b.Nodes) == 0 {
		return token.NoPos
	}
	return b.Nodes[0].Pos()
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // single synthetic exit; returns and panics edge here
	Blocks []*Block
}

// Reachable reports the blocks reachable from Entry, in index order.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	stack = append(stack, g.Entry)
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// builder constructs a Graph from a function body.
type builder struct {
	g *Graph

	// breaks/continues are stacks of (label, target) for enclosing
	// breakable/continuable constructs; "" matches an unlabeled branch.
	breaks    []branchTarget
	continues []branchTarget

	// labels maps a label name to the block a goto to it should reach.
	// Forward gotos are resolved in a second pass via pending edges.
	labels  map[string]*Block
	gotos   []pendingGoto
	fallsTo *Block // fallthrough target inside a switch clause

	// pendingLabel carries the label of the innermost enclosing LabeledStmt
	// into the loop/switch/select statement that consumes it.
	pendingLabel string

	// isTerminatingCall classifies a call expression as non-returning
	// (panic and friends). Injected so the builder stays types-free.
	isTerminatingCall func(*ast.CallExpr) bool
}

type branchTarget struct {
	label  string
	target *Block
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

// BuildCFG constructs the CFG of body. terminating, when non-nil,
// classifies statement-position calls that never return (panic, os.Exit);
// pass nil to treat every call as returning.
func BuildCFG(body *ast.BlockStmt, terminating func(*ast.CallExpr) bool) *Graph {
	if terminating == nil {
		terminating = func(*ast.CallExpr) bool { return false }
	}
	b := &builder{
		g:                 &Graph{},
		labels:            map[string]*Block{},
		isTerminatingCall: terminating,
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	last := b.stmtList(b.g.Entry, body.List)
	if last != nil {
		b.edge(last, b.g.Exit) // fall off the end
	}
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, t)
		} else {
			// Undefined label: the source would not compile; edge to Exit
			// so the graph stays well-formed anyway.
			b.edge(pg.from, b.g.Exit)
		}
	}
	return b.g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmtList lowers stmts starting in cur; returns the live trailing block,
// or nil when control cannot fall off the end of the list.
func (b *builder) stmtList(cur *Block, stmts []ast.Stmt) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Dead code after a terminator still gets blocks (so its
			// statements exist in the graph for position lookups), but no
			// incoming edges — Reachable() excludes them.
			cur = b.newBlock("dead")
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt lowers one statement; returns the live successor block or nil.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		b.edge(cur, then)
		if t := b.stmtList(then, s.Body.List); t != nil {
			b.edge(t, join)
		}
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cur, els)
			if t := b.stmt(els, s.Else); t != nil {
				b.edge(t, join)
			}
		} else {
			b.edge(cur, join)
		}
		if len(join.Preds) == 0 {
			return nil
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		post := b.newBlock("for.post")
		exit := b.newBlock("for.exit")
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, exit)
		}
		b.edge(head, body)
		label := b.takeLabel(s)
		b.pushLoop(label, exit, post)
		if t := b.stmtList(body, s.Body.List); t != nil {
			b.edge(t, post)
		}
		b.popLoop()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		if s.Cond == nil && len(exit.Preds) == 0 {
			return nil // for {} with no break never exits
		}
		return exit

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		exit := b.newBlock("range.exit")
		b.edge(cur, head)
		b.edge(head, body)
		b.edge(head, exit)
		if s.Key != nil || s.Value != nil {
			body.Nodes = append(body.Nodes, s) // the per-iteration bind
		}
		label := b.takeLabel(s)
		b.pushLoop(label, exit, head)
		if t := b.stmtList(body, s.Body.List); t != nil {
			b.edge(t, head)
		}
		b.popLoop()
		return exit

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body, b.takeLabel(s))

	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		return b.switchStmt(cur, s.Init, tag, s.Body, b.takeLabel(s))

	case *ast.SelectStmt:
		// The select head is the blocking point; checks look for the
		// SelectStmt node itself there.
		cur.Nodes = append(cur.Nodes, s)
		join := b.newBlock("select.join")
		label := b.takeLabel(s)
		b.breaks = append(b.breaks, branchTarget{label, join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(cur, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			if t := b.stmtList(blk, cc.Body); t != nil {
				b.edge(t, join)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		if len(join.Preds) == 0 {
			return nil
		}
		return join

	case *ast.LabeledStmt:
		// Give the label its own block so goto/continue/break can target it;
		// loop/switch statements consume the label via takeLabel.
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(cur, lb)
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		out := b.stmt(lb, s.Stmt)
		b.pendingLabel = ""
		return out

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.Exit)
			}
			return nil
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.g.Exit)
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: label, pos: s.Pos()})
			return nil
		default: // FALLTHROUGH
			if b.fallsTo != nil {
				b.edge(cur, b.fallsTo)
			}
			return nil
		}

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminatingCall(call) {
			b.edge(cur, b.g.Exit)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, go, defer, send, incdec, empty: one
		// node, straight-line control.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			cur.Nodes = append(cur.Nodes, s)
		}
		return cur
	}
}

// switchStmt lowers expression and type switches (tag may be nil).
func (b *builder) switchStmt(cur *Block, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) *Block {
	if init != nil {
		cur.Nodes = append(cur.Nodes, init)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	join := b.newBlock("switch.join")
	b.breaks = append(b.breaks, branchTarget{label, join})

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.edge(cur, blocks[i])
	}
	savedFall := b.fallsTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if i+1 < len(blocks) {
			b.fallsTo = blocks[i+1]
		} else {
			b.fallsTo = nil
		}
		if t := b.stmtList(blocks[i], cc.Body); t != nil {
			b.edge(t, join)
		}
	}
	b.fallsTo = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		b.edge(cur, join) // no case matched
	}
	if len(join.Preds) == 0 {
		return nil
	}
	return join
}

func (b *builder) takeLabel(ast.Stmt) string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
	b.continues = append(b.continues, branchTarget{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a branch label against a target stack: "" matches the
// innermost entry, a name matches the innermost entry carrying it.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			if label == "" && stack[i].target == nil {
				continue
			}
			return stack[i].target
		}
	}
	return nil
}
