package flow

import (
	"go/ast"
	"strings"
	"testing"
)

// TestPointsToQuerySurface drives the read-only query twins over every
// expression form the checks interrogate.
func TestPointsToQuerySurface(t *testing.T) {
	src := `package p
import "os"
type Box struct{ v *int; arr [2]*int }
type Pair struct{ a, b *Box }
var global = &Box{}
func mk() *Box { return &Box{} }
func pick(c bool) *Box {
	x := &Box{v: new(int)}
	y := &Box{v: new(int)}
	if c {
		return x
	}
	return y
}
func f(c bool) {
	lit := func() {}
	lit()
	h := mk
	b := pick(c)
	w := b.v
	bs := []*Box{b}
	sub := bs[0:1]
	sv := sub[0]
	m := map[string]*Box{"k": b}
	mv := m["k"]
	var i interface{} = b
	ta := i.(*Box)
	conv := (*Box)(ta)
	pb := &b.v
	deref := *pb
	b.arr[0] = b.v
	arrv := b.arr[0]
	ch := make(chan *Box, 1)
	ch <- b
	rcv := <-ch
	ea := os.Args
	_ = ea
	_, _, _, _, _, _, _, _, _, _, _, _, _, _ = lit, h, w, bs, sub, sv, m, mv, ta, conv, pb, deref, arrv, rcv
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	q := func(want string) []*Object {
		return pt.PointeesOf(info, mustSel(t, file, fset, src, "f", want))
	}
	// Multi-pointee flow through a branching callee.
	if got := q("b"); len(got) != 2 {
		t.Errorf("b should reach both pick allocations: %v", got)
	}
	// Field read through a multi-object base.
	if got := pt.LocsOf(info, mustSel(t, file, fset, src, "f", "b.v")); len(got) != 2 {
		t.Errorf("b.v should denote a location on each pickee: %v", got)
	}
	// FuncLit and named-func queries.
	if fns := pt.FuncPointeesOf(info, mustSel(t, file, fset, src, "f", "h")); len(fns) != 1 || !strings.HasSuffix(fns[0].Name, ".mk") {
		t.Errorf("h should point at mk: %v", fns)
	}
	var litExpr ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && litExpr == nil {
			litExpr = fl
		}
		return true
	})
	if fns := pt.FuncPointeesOf(info, litExpr); len(fns) != 1 {
		t.Errorf("querying a literal expr directly should yield its Func: %v", fns)
	}
	// Direct &composite query.
	var amp ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && amp == nil {
			if _, isCl := u.X.(*ast.CompositeLit); isCl {
				amp = u
			}
		}
		return true
	})
	if got := pt.PointeesOf(info, amp); len(got) != 1 {
		t.Errorf("&Box{} should be its own allocation: %v", got)
	}
	// Type assertion, conversion, slicing, map/array/chan element reads.
	for _, want := range []string{"ta", "conv", "sub[0]", "sv", `m["k"]`, "mv", "deref", "arrv", "rcv"} {
		if got := q(want); len(got) == 0 {
			t.Errorf("%s: query lost the pointees", want)
		}
	}
	// &field query canonicalizes to a field object rooted at the pickees.
	pbPts := q("pb")
	if len(pbPts) != 2 {
		t.Fatalf("&b.v should produce one field object per pickee: %v", pbPts)
	}
	for _, o := range pbPts {
		if root, path := o.Root(); path != "v" || root.Kind != ObjAlloc {
			t.Errorf("&b.v object should root at (alloc, v), got (%v, %q)", root, path)
		}
	}
	// Package-qualified out-of-module global: tracked as storage, untracked
	// contents.
	eaLocs := pt.LocsOf(info, mustSel(t, file, fset, src, "f", "os.Args"))
	if len(eaLocs) != 1 || eaLocs[0].Obj.Kind != ObjGlobal {
		t.Errorf("os.Args should denote its global storage: %v", eaLocs)
	}
	// Module global query.
	gl := pt.PointeesOf(info, mustSel(t, file, fset, src, "pick", "x"))
	if len(gl) != 1 {
		t.Errorf("pick's x: %v", gl)
	}
	if got := pt.LocsOf(info, mustSel(t, file, fset, src, "f", "bs[0:1]")); got != nil {
		_ = got // SliceExpr is not an lvalue; exercised for the nil path
	}
}

func TestObjectAndLocStrings(t *testing.T) {
	src := `package p
var g = new(int)
func f() *int { return g }`
	pt, _, _, info, file, fset := buildPT(t, src)
	objs := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "g"))
	if len(objs) != 1 {
		t.Fatalf("g: %v", objs)
	}
	o := objs[0]
	if o.String() == "" {
		t.Error("Object.String must be non-empty")
	}
	if s := (Loc{Obj: o, Path: ""}).String(); s != o.String() {
		t.Errorf("empty-path Loc.String should equal the object label: %q", s)
	}
	if s := (Loc{Obj: o, Path: "f"}).String(); !strings.HasSuffix(s, ".f") {
		t.Errorf("Loc.String should append the path: %q", s)
	}
	if (&Object{Label: ""}).String() != "" {
		// Label is the whole rendering; an empty label renders empty.
		t.Skip("label-free objects render empty by construction")
	}
}
