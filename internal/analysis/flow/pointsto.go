package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the points-to substrate of the fourth analysis tier:
// a flow-insensitive, field-sensitive, context-insensitive Andersen-style
// inclusion analysis over the whole module. Abstract objects are allocation
// sites (composite literals, new, make, append growth), the storage of
// named variables, package-level variables, and function values. Points-to
// sets propagate along copy edges (assignments, parameter/result linking
// through the module-local call graph, including calls through tracked
// function values) and through field load/store constraints, iterated to a
// fixpoint with a worklist.
//
// Soundness boundary (DESIGN.md §9.3): the analysis under-approximates.
// Calls into out-of-module code neither create nor merge points-to sets,
// interface method dispatch is not resolved, and a query on an expression
// the substrate does not track returns the empty set. Checks built on top
// must treat "no objects" as "unknown", never as "provably unaliased".

// ObjKind classifies an abstract object.
type ObjKind int

const (
	// ObjAlloc is a heap allocation site: &T{...}, new(T), make(...), a
	// composite literal in value position, or append growth.
	ObjAlloc ObjKind = iota
	// ObjVar is the storage of a named local variable or parameter.
	ObjVar
	// ObjGlobal is the storage of a package-level variable.
	ObjGlobal
	// ObjFunc is a function value: a declared function or a literal.
	ObjFunc
	// ObjField is the storage of one field path inside a parent object,
	// materialized when a field's address is taken.
	ObjField
)

// Object is one abstract memory object.
type Object struct {
	ID    int
	Kind  ObjKind
	Pos   token.Pos
	Type  types.Type  // allocated/variable type; nil when unknown
	Var   *types.Var  // for ObjVar/ObjGlobal
	Fn    *Func       // for ObjFunc: the function value; otherwise the allocating function (nil for globals)
	Label string      // stable diagnostic label
	Parent *Object    // for ObjField
	Path  string      // for ObjField: field path within Parent
}

// Root returns the non-field object this object lives in, and the field
// path from that root ("" for the root itself).
func (o *Object) Root() (*Object, string) {
	if o.Kind == ObjField {
		return o.Parent, o.Path
	}
	return o, ""
}

func (o *Object) String() string { return o.Label }

// Loc is one abstract location: a field path inside a root object. A path
// of "" denotes the object's own storage; "[]" denotes the elements of a
// slice/array/map/channel object.
type Loc struct {
	Obj  *Object
	Path string
}

func (l Loc) String() string {
	if l.Path == "" {
		return l.Obj.Label
	}
	return l.Obj.Label + "." + l.Path
}

// pnode is one points-to set in the constraint graph.
type pnode struct {
	pts    map[*Object]bool
	delta  []*Object
	succs  []*pnode
	loads  []complexC // dst ⊇ pts of (o, path) for o ∈ pts(this)
	stores []complexC // (o, path) ⊇ pts of src for o ∈ pts(this)
	addrs  []complexC // dst ∋ fieldObject(o, path) for o ∈ pts(this)
	calls  []*callSite
}

type complexC struct {
	path string
	node *pnode // dst for loads/addrs, src for stores
}

// callSite is an indirect call through a tracked function value: once a
// function object flows into the callee node the site's arguments and
// results are linked to that function's parameters and results.
type callSite struct {
	args    []*pnode
	results []*pnode
	spread  bool // last argument was xs... (passes the slice itself)
	linked  map[*Func]bool
}

// Global is one package-level var spec handed to the builder.
type Global struct {
	Info *types.Info
	Spec *ast.ValueSpec
}

// PointsTo is the solved substrate.
type PointsTo struct {
	fset *token.FileSet
	cg   *CallGraph

	objs    []*Object
	varObjs map[*types.Var]*Object
	fldObjs map[fieldObjKey]*Object
	allocs  map[ast.Node]*Object
	fnObjs  map[*Func]*Object

	varNodes  map[*types.Var]*pnode
	fldNodes  map[fieldNodeKey]*pnode
	retNodes  map[*Func][]*pnode
	litFuncs  map[*ast.FuncLit]*Func
	parentFn  map[*ast.FuncLit]ast.Node // enclosing FuncDecl/FuncLit of each literal

	work   []*pnode
	inWork map[*pnode]bool

	heapAdj map[*Object][]*Object // lazy, built by Reachable after Solve

	solved bool
}

type fieldObjKey struct {
	root *Object
	path string
}

type fieldNodeKey struct {
	root *Object
	path string
}

// NewPointsTo returns an unsolved substrate over the call graph's functions.
func NewPointsTo(fset *token.FileSet, cg *CallGraph) *PointsTo {
	return &PointsTo{
		fset:     fset,
		cg:       cg,
		varObjs:  map[*types.Var]*Object{},
		fldObjs:  map[fieldObjKey]*Object{},
		allocs:   map[ast.Node]*Object{},
		fnObjs:   map[*Func]*Object{},
		varNodes: map[*types.Var]*pnode{},
		fldNodes: map[fieldNodeKey]*pnode{},
		retNodes: map[*Func][]*pnode{},
		litFuncs: map[*ast.FuncLit]*Func{},
		parentFn: map[*ast.FuncLit]ast.Node{},
		inWork:   map[*pnode]bool{},
	}
}

// BuildPointsTo generates constraints for every function in the call graph
// and every package-level variable, solves to a fixpoint, and returns the
// substrate ready for queries.
func BuildPointsTo(fset *token.FileSet, cg *CallGraph, globals []Global) *PointsTo {
	pt := NewPointsTo(fset, cg)
	for _, g := range globals {
		pt.genGlobal(g.Info, g.Spec)
	}
	for _, f := range cg.Funcs() {
		pt.genFunc(f)
	}
	pt.Solve()
	return pt
}

// posLabel renders a stable basename:line anchor for object labels.
func (pt *PointsTo) posLabel(pos token.Pos) string {
	if !pos.IsValid() {
		return "?"
	}
	p := pt.fset.Position(pos)
	base := p.Filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return fmt.Sprintf("%s:%d", base, p.Line)
}

func (pt *PointsTo) newObject(kind ObjKind, pos token.Pos, t types.Type, label string) *Object {
	o := &Object{ID: len(pt.objs), Kind: kind, Pos: pos, Type: t, Label: label}
	pt.objs = append(pt.objs, o)
	return o
}

// storageObj returns (creating on first use) the storage object of a named
// variable.
func (pt *PointsTo) storageObj(v *types.Var) *Object {
	if o, ok := pt.varObjs[v]; ok {
		return o
	}
	kind := ObjVar
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		kind = ObjGlobal
	}
	label := "var " + v.Name()
	if kind == ObjGlobal && v.Pkg() != nil {
		label = "var " + v.Pkg().Name() + "." + v.Name()
	} else {
		label = fmt.Sprintf("var %s@%s", v.Name(), pt.posLabel(v.Pos()))
	}
	o := pt.newObject(kind, v.Pos(), v.Type(), label)
	o.Var = v
	pt.varObjs[v] = o
	return o
}

// fieldObject returns the object representing the storage of (root, path),
// canonicalizing chains of field objects to a non-field root.
func (pt *PointsTo) fieldObject(root *Object, path string) *Object {
	if path == "" {
		return root
	}
	if root.Kind == ObjField {
		return pt.fieldObject(root.Parent, root.Path+"."+path)
	}
	k := fieldObjKey{root, path}
	if o, ok := pt.fldObjs[k]; ok {
		return o
	}
	o := pt.newObject(ObjField, root.Pos, nil, root.Label+"."+path)
	o.Parent = root
	o.Path = path
	pt.fldObjs[k] = o
	return o
}

// funcObject returns the function-value object for a module function.
func (pt *PointsTo) funcObject(f *Func) *Object {
	if o, ok := pt.fnObjs[f]; ok {
		return o
	}
	o := pt.newObject(ObjFunc, f.Body.Pos(), nil, "func "+f.Name)
	o.Fn = f
	pt.fnObjs[f] = o
	return o
}

func (pt *PointsTo) newNode() *pnode { return &pnode{pts: map[*Object]bool{}} }

func (pt *PointsTo) varNode(v *types.Var) *pnode {
	n, ok := pt.varNodes[v]
	if !ok {
		n = pt.newNode()
		pt.varNodes[v] = n
	}
	return n
}

// nodeForLoc returns the points-to node holding the VALUE stored at (obj,
// path): the var node for plain variable storage, a field node otherwise.
func (pt *PointsTo) nodeForLoc(obj *Object, path string) *pnode {
	if obj.Kind == ObjField {
		return pt.nodeForLoc(obj.Parent, joinPath(obj.Path, path))
	}
	if path == "" && obj.Var != nil {
		return pt.varNode(obj.Var)
	}
	k := fieldNodeKey{obj, path}
	n, ok := pt.fldNodes[k]
	if !ok {
		n = pt.newNode()
		pt.fldNodes[k] = n
	}
	return n
}

func joinPath(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "." + b
}

func (pt *PointsTo) enqueue(n *pnode) {
	if !pt.inWork[n] {
		pt.inWork[n] = true
		pt.work = append(pt.work, n)
	}
}

func (pt *PointsTo) addObj(n *pnode, o *Object) {
	if n == nil || o == nil || n.pts[o] {
		return
	}
	n.pts[o] = true
	n.delta = append(n.delta, o)
	pt.enqueue(n)
}

// addEdge adds a copy edge a→b (pts(b) ⊇ pts(a)).
func (pt *PointsTo) addEdge(a, b *pnode) {
	if a == nil || b == nil || a == b {
		return
	}
	a.succs = append(a.succs, b)
	for o := range a.pts {
		pt.addObj(b, o)
	}
}

// Solve propagates to a fixpoint.
func (pt *PointsTo) Solve() {
	for len(pt.work) > 0 {
		n := pt.work[len(pt.work)-1]
		pt.work = pt.work[:len(pt.work)-1]
		pt.inWork[n] = false
		delta := n.delta
		n.delta = nil
		for _, o := range delta {
			for _, s := range n.succs {
				pt.addObj(s, o)
			}
			for _, c := range n.loads {
				pt.addEdge(pt.nodeForLoc(o, c.path), c.node)
			}
			for _, c := range n.stores {
				pt.addEdge(c.node, pt.nodeForLoc(o, c.path))
			}
			for _, c := range n.addrs {
				pt.addObj(c.node, pt.fieldObject(o, c.path))
			}
			if o.Kind == ObjFunc && o.Fn != nil {
				for _, cs := range n.calls {
					pt.linkCall(cs, o.Fn)
				}
			}
		}
	}
	pt.solved = true
}

// addLoad arranges dst ⊇ load(base, path); new objects arriving at base
// re-fire the constraint.
func (pt *PointsTo) addLoad(base *pnode, path string, dst *pnode) {
	if base == nil || dst == nil {
		return
	}
	base.loads = append(base.loads, complexC{path, dst})
	for o := range base.pts {
		pt.addEdge(pt.nodeForLoc(o, path), dst)
	}
	pt.enqueue(base)
}

// addStore arranges store(base, path) ⊇ src.
func (pt *PointsTo) addStore(base *pnode, path string, src *pnode) {
	if base == nil || src == nil {
		return
	}
	base.stores = append(base.stores, complexC{path, src})
	for o := range base.pts {
		pt.addEdge(src, pt.nodeForLoc(o, path))
	}
}

// addAddr arranges dst ∋ fieldObject(o, path) for each o ∈ pts(base).
func (pt *PointsTo) addAddr(base *pnode, path string, dst *pnode) {
	if base == nil || dst == nil {
		return
	}
	base.addrs = append(base.addrs, complexC{path, dst})
	for o := range base.pts {
		pt.addObj(dst, pt.fieldObject(o, path))
	}
}

// addCallSite attaches an indirect call to the function-value node.
func (pt *PointsTo) addCallSite(fn *pnode, cs *callSite) {
	if fn == nil {
		return
	}
	fn.calls = append(fn.calls, cs)
	for o := range fn.pts {
		if o.Kind == ObjFunc && o.Fn != nil {
			pt.linkCall(cs, o.Fn)
		}
	}
}

// paramVars returns the declared parameter variables of f in order
// (receiver excluded; indirect calls through function values never carry
// one).
func paramVars(f *Func) []*types.Var {
	var ft *ast.FuncType
	switch n := f.Node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	default:
		return nil
	}
	var out []*types.Var
	if ft.Params != nil {
		for _, fld := range ft.Params.List {
			for _, name := range fld.Names {
				v, _ := f.Info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	return out
}

// isVariadic reports whether f's last parameter is ...T.
func isVariadic(f *Func) bool {
	var ft *ast.FuncType
	switch n := f.Node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	default:
		return false
	}
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	_, ok := ft.Params.List[len(ft.Params.List)-1].Type.(*ast.Ellipsis)
	return ok
}

// linkParam flows one evaluated argument into one parameter. Value
// aggregates (structs, arrays) are additionally copied into the
// parameter's own storage, so field and element reads through the
// parameter resolve to the caller's objects.
func (pt *PointsTo) linkParam(param *types.Var, arg *pnode) {
	if param == nil || arg == nil {
		return
	}
	pt.addEdge(arg, pt.varNode(param))
	g := &gen{pt: pt}
	switch u := param.Type().Underlying().(type) {
	case *types.Struct:
		g.copyFields(&locref{obj: pt.storageObj(param)}, &locref{base: arg}, u, 2)
	case *types.Array:
		g.writeLoc(&locref{obj: pt.storageObj(param), path: "[]"},
			g.readLoc(&locref{base: arg, path: "[]"}))
	}
}

// linkArgs wires evaluated arguments to a callee's parameters, modeling
// variadic collection: extra arguments are stored into a synthesized slice
// object flowing into the variadic parameter, while a spread call (xs...)
// passes the slice value itself.
func (pt *PointsTo) linkArgs(callee *Func, args []*pnode, spread bool) {
	params := paramVars(callee)
	variadic := isVariadic(callee)
	nfixed := len(params)
	if variadic {
		nfixed--
	}
	var varargs *pnode
	for i, a := range args {
		if a == nil {
			continue
		}
		if i < nfixed {
			pt.linkParam(params[i], a)
			continue
		}
		if !variadic || len(params) == 0 {
			continue
		}
		vp := params[len(params)-1]
		if vp == nil {
			continue
		}
		if spread && i == nfixed {
			pt.addEdge(a, pt.varNode(vp))
			continue
		}
		if varargs == nil {
			o := pt.newObject(ObjAlloc, vp.Pos(), vp.Type(), "variadic "+vp.Name())
			varargs = pt.newNode()
			pt.addObj(varargs, o)
			pt.addEdge(varargs, pt.varNode(vp))
		}
		pt.addStore(varargs, "[]", a)
	}
}

// resultNodes returns (creating on first use) the nodes carrying f's
// results: the var nodes of named results, synthetic nodes otherwise.
func (pt *PointsTo) resultNodes(f *Func) []*pnode {
	if ns, ok := pt.retNodes[f]; ok {
		return ns
	}
	var ft *ast.FuncType
	switch n := f.Node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	}
	var ns []*pnode
	if ft != nil && ft.Results != nil {
		for _, fld := range ft.Results.List {
			if len(fld.Names) == 0 {
				ns = append(ns, pt.newNode())
				continue
			}
			for _, name := range fld.Names {
				if v, ok := f.Info.Defs[name].(*types.Var); ok {
					ns = append(ns, pt.varNode(v))
				} else {
					ns = append(ns, pt.newNode())
				}
			}
		}
	}
	pt.retNodes[f] = ns
	return ns
}

// linkCall wires one call site to callee's parameters and results.
func (pt *PointsTo) linkCall(cs *callSite, callee *Func) {
	if cs.linked == nil {
		cs.linked = map[*Func]bool{}
	}
	if cs.linked[callee] {
		return
	}
	cs.linked[callee] = true
	pt.linkArgs(callee, cs.args, cs.spread)
	rets := pt.resultNodes(callee)
	for i, r := range cs.results {
		if r != nil && i < len(rets) {
			pt.addEdge(rets[i], r)
		}
	}
}

// LitFunc returns the synthetic Func for a function literal encountered
// during constraint generation, or nil.
func (pt *PointsTo) LitFunc(lit *ast.FuncLit) *Func { return pt.litFuncs[lit] }

// LitFuncs returns every literal's synthetic Func, in source order.
func (pt *PointsTo) LitFuncs() []*Func {
	var out []*Func
	for _, f := range pt.litFuncs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Body.Pos() < out[j].Body.Pos() })
	return out
}

// EnclosingOf returns the function node (FuncDecl or FuncLit) lexically
// enclosing the literal, or nil.
func (pt *PointsTo) EnclosingOf(lit *ast.FuncLit) ast.Node { return pt.parentFn[lit] }

// ---------- constraint generation ----------

// gen is the per-function constraint generator state.
type gen struct {
	pt   *PointsTo
	info *types.Info
	fn   *Func // current function (innermost literal or declared func)
}

// genGlobal generates constraints for one package-level var spec.
func (pt *PointsTo) genGlobal(info *types.Info, spec *ast.ValueSpec) {
	g := &gen{pt: pt, info: info}
	// Materialize storage for every declared global so queries on globals
	// never miss.
	var lhs []ast.Expr
	for _, name := range spec.Names {
		if v, ok := info.Defs[name].(*types.Var); ok {
			pt.storageObj(v)
		}
		lhs = append(lhs, name)
	}
	if len(spec.Values) == 0 {
		return
	}
	g.genAssign(lhs, spec.Values, token.Pos(0))
}

// genFunc generates constraints for one declared function body.
func (pt *PointsTo) genFunc(f *Func) {
	g := &gen{pt: pt, info: f.Info, fn: f}
	if fd, ok := f.Node.(*ast.FuncDecl); ok && fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		// The receiver is a parameter; its node exists for call linking.
		if v, ok := f.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
			pt.varNode(v)
		}
	}
	g.genBody(f.Body, f.Node)
}

// genBody walks a function body, descending into nested literals with the
// literal as the new current function.
func (g *gen) genBody(body *ast.BlockStmt, fnNode ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.pt.registerLit(g.info, n, fnNode, g.fn)
			return false
		case *ast.AssignStmt:
			g.genAssignStmt(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, s := range gd.Specs {
					if vs, ok := s.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						var lhs []ast.Expr
						for _, name := range vs.Names {
							lhs = append(lhs, name)
						}
						g.genAssign(lhs, vs.Values, n.Pos())
					}
				}
			}
		case *ast.ReturnStmt:
			g.genReturn(n)
		case *ast.RangeStmt:
			g.genRange(n)
		case *ast.SendStmt:
			g.pt.addStore(g.value(n.Chan), "[]", g.value(n.Value))
		case *ast.CallExpr:
			// Expression-position calls still link args to params.
			g.call(n, nil)
			return false // args already evaluated by call()
		}
		return true
	})
}

// registerLit records a literal as a synthetic Func (for spawn/context
// analysis) and returns it.
func (pt *PointsTo) registerLit(info *types.Info, lit *ast.FuncLit, parent ast.Node, parentFn *Func) *Func {
	if f, ok := pt.litFuncs[lit]; ok {
		return f
	}
	name := "func@" + pt.posLabel(lit.Pos())
	if parentFn != nil {
		name = parentFn.Name + "." + name
	}
	f := &Func{Info: info, Node: lit, Body: lit.Body, Name: name}
	pt.litFuncs[lit] = f
	pt.parentFn[lit] = parent
	// Generate the body exactly once, here: literals reached through any
	// path (statement walk, call argument, go statement) get constraints.
	sub := &gen{pt: pt, info: info, fn: f}
	sub.genBody(lit.Body, lit)
	return f
}

func (g *gen) genAssignStmt(a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return // op-assign (+=, |=, …) moves no pointers
	}
	g.genAssign(a.Lhs, a.Rhs, a.Pos())
}

// genAssign handles lhs... = rhs... including multi-value forms.
func (g *gen) genAssign(lhs, rhs []ast.Expr, pos token.Pos) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: call, map index, type assertion, channel receive.
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			var results []*pnode
			for range lhs {
				results = append(results, g.pt.newNode())
			}
			g.call(r, results)
			for i, l := range lhs {
				g.assignNode(l, results[i])
			}
		case *ast.IndexExpr: // v, ok := m[k]
			g.assignNode(lhs[0], g.value(r))
		case *ast.TypeAssertExpr: // v, ok := x.(T)
			g.assignNode(lhs[0], g.value(r.X))
		case *ast.UnaryExpr: // v, ok := <-ch
			if r.Op == token.ARROW {
				g.assignNode(lhs[0], g.value(r))
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		g.assignExpr(lhs[i], rhs[i])
	}
}

// assignExpr generates lhs = rhs for one pair.
func (g *gen) assignExpr(lhs, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	// A composite literal assigned by value into struct/array storage
	// initializes the target's fields in place rather than allocating.
	if cl, ok := rhs.(*ast.CompositeLit); ok && isValueComposite(g.info, cl) {
		if lr := g.loc(lhs); lr != nil {
			g.genCompositeInto(cl, lr)
			return
		}
	}
	src := g.value(rhs)
	g.assignNode(lhs, src)
	// Struct assigned by value: pointer-bearing fields copy too.
	if t := exprType(g.info, rhs); t != nil {
		if st, ok := t.Underlying().(*types.Struct); ok {
			if dst, srcLoc := g.loc(lhs), g.loc(rhs); dst != nil && srcLoc != nil {
				g.copyFields(dst, srcLoc, st, 2)
			}
		}
	}
}

// assignNode stores the value node into the location lhs denotes.
func (g *gen) assignNode(lhs ast.Expr, src *pnode) {
	if src == nil {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// m[k] = v also retains a pointer-like key in the element path.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if t := exprType(g.info, ix.X); t != nil {
			if mt, ok := t.Underlying().(*types.Map); ok && pointerLike(mt.Key()) {
				g.pt.addStore(g.value(ix.X), "[]", g.value(ix.Index))
			}
		}
	}
	if lr := g.loc(lhs); lr != nil {
		g.writeLoc(lr, src)
	}
}

// locref is an unresolved lvalue: either a statically known root object or
// a base node whose points-to set supplies the roots.
type locref struct {
	obj  *Object
	base *pnode
	path string
}

// writeLoc stores src into the location.
func (g *gen) writeLoc(lr *locref, src *pnode) {
	if lr.obj != nil {
		g.pt.addEdge(src, g.pt.nodeForLoc(lr.obj, lr.path))
		return
	}
	g.pt.addStore(lr.base, lr.path, src)
}

// readLoc returns a node holding the value stored at the location.
func (g *gen) readLoc(lr *locref) *pnode {
	if lr.obj != nil {
		return g.pt.nodeForLoc(lr.obj, lr.path)
	}
	t := g.pt.newNode()
	g.pt.addLoad(lr.base, lr.path, t)
	return t
}

// addrLoc returns a node pointing at the location's storage.
func (g *gen) addrLoc(lr *locref) *pnode {
	t := g.pt.newNode()
	if lr.obj != nil {
		g.pt.addObj(t, g.pt.fieldObject(lr.obj, lr.path))
		return t
	}
	g.pt.addAddr(lr.base, lr.path, t)
	return t
}

// loc resolves an lvalue expression to a location, or nil when untracked.
func (g *gen) loc(e ast.Expr) *locref {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := g.info.Uses[e].(*types.Var)
		if !ok {
			v, ok = g.info.Defs[e].(*types.Var)
		}
		if !ok || v.IsField() {
			return nil
		}
		return &locref{obj: g.pt.storageObj(v)}
	case *ast.SelectorExpr:
		// Package-qualified global.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := g.info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := g.info.Uses[e.Sel].(*types.Var); ok {
					return &locref{obj: g.pt.storageObj(v)}
				}
				return nil
			}
		}
		sel, ok := g.info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		return g.fieldLoc(e.X, sel)
	case *ast.StarExpr:
		return &locref{base: g.value(e.X)}
	case *ast.IndexExpr:
		t := exprType(g.info, e.X)
		if t == nil {
			return nil
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			return &locref{base: g.value(e.X), path: "[]"}
		case *types.Array:
			if lr := g.loc(e.X); lr != nil {
				lr.path = joinPath(lr.path, "[]")
				return lr
			}
		}
		return nil
	}
	return nil
}

// fieldLoc resolves x.f (a field selection) walking the selection's
// embedding path, crossing pointer boundaries with loads.
func (g *gen) fieldLoc(x ast.Expr, sel *types.Selection) *locref {
	path := selectionPath(sel)
	if path == "" {
		return nil
	}
	recv := sel.Recv()
	if _, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		return &locref{base: g.value(x), path: path}
	}
	// Value receiver: extend the base lvalue's path; fall back to treating
	// the expression as a pointer-like base (e.g. x returned from a call).
	if lr := g.loc(x); lr != nil {
		lr.path = joinPath(lr.path, path)
		return lr
	}
	return &locref{base: g.value(x), path: path}
}

// selectionPath renders a field selection's full path through embedded
// fields ("stats.ops"). Embedded pointer hops end the renderable path — a
// precise model would need a load per hop; we fall back to the suffix,
// keeping the analysis an under-approximation.
func selectionPath(sel *types.Selection) string {
	t := sel.Recv()
	var parts []string
	for _, idx := range sel.Index() {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return ""
		}
		f := st.Field(idx)
		parts = append(parts, f.Name())
		t = f.Type()
	}
	return strings.Join(parts, ".")
}

// copyFields links the pointer-bearing fields of a struct-by-value copy:
// both copies' fields point at the same objects afterwards.
func (g *gen) copyFields(dst, src *locref, st *types.Struct, depth int) {
	if depth <= 0 {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		dstF := &locref{obj: dst.obj, base: dst.base, path: joinPath(dst.path, f.Name())}
		srcF := &locref{obj: src.obj, base: src.base, path: joinPath(src.path, f.Name())}
		if sub, ok := f.Type().Underlying().(*types.Struct); ok {
			g.copyFields(dstF, srcF, sub, depth-1)
			continue
		}
		if pointerLike(f.Type()) {
			g.writeLoc(dstF, g.readLoc(srcF))
		}
	}
}

// pointerLike reports whether values of t carry references worth tracking.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	}
	return false
}

// isValueComposite reports whether a composite literal denotes struct or
// array storage (copied by value) rather than a reference (slice/map).
func isValueComposite(info *types.Info, cl *ast.CompositeLit) bool {
	t := exprType(info, cl)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// value evaluates an expression to a node holding its points-to set.
func (g *gen) value(e ast.Expr) *pnode {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := g.info.Uses[e].(*types.Var); ok && !v.IsField() {
			return g.pt.varNode(v)
		}
		if v, ok := g.info.Defs[e].(*types.Var); ok {
			return g.pt.varNode(v)
		}
		if fobj, ok := g.info.Uses[e].(*types.Func); ok {
			if mf := g.pt.cg.ByObj(fobj); mf != nil {
				t := g.pt.newNode()
				g.pt.addObj(t, g.pt.funcObject(mf))
				return t
			}
		}
		return g.pt.newNode()
	case *ast.FuncLit:
		// Inside a package-level initializer g.fn is nil: the literal has no
		// enclosing function, only the file.
		var parent ast.Node
		if g.fn != nil {
			parent = g.fn.Node
		}
		lit := g.pt.registerLit(g.info, e, parent, g.fn)
		t := g.pt.newNode()
		g.pt.addObj(t, g.pt.funcObject(lit))
		return t
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND: // &x
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return g.allocComposite(cl)
			}
			if lr := g.loc(e.X); lr != nil {
				return g.addrLoc(lr)
			}
			return g.pt.newNode()
		case token.ARROW: // <-ch
			t := g.pt.newNode()
			g.pt.addLoad(g.value(e.X), "[]", t)
			return t
		}
		return g.pt.newNode()
	case *ast.CompositeLit:
		return g.allocComposite(e)
	case *ast.CallExpr:
		res := []*pnode{g.pt.newNode()}
		g.call(e, res)
		return res[0]
	case *ast.SelectorExpr, *ast.IndexExpr:
		if lr := g.loc(e.(ast.Expr)); lr != nil {
			return g.readLoc(lr)
		}
		// Method value or untracked: evaluate the base for its side effects.
		if s, ok := e.(*ast.SelectorExpr); ok {
			if _, isPkg := g.info.Uses[firstIdent(s.X)].(*types.PkgName); !isPkg {
				g.value(s.X)
			}
		}
		return g.pt.newNode()
	case *ast.StarExpr:
		if lr := g.loc(e); lr != nil {
			return g.readLoc(lr)
		}
		return g.pt.newNode()
	case *ast.TypeAssertExpr:
		return g.value(e.X)
	case *ast.SliceExpr:
		return g.value(e.X) // a slice of s shares s's backing objects
	case *ast.BinaryExpr, *ast.BasicLit:
		return g.pt.newNode()
	}
	return g.pt.newNode()
}

func firstIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// allocComposite creates the allocation object for a composite literal and
// initializes its fields/elements.
func (g *gen) allocComposite(cl *ast.CompositeLit) *pnode {
	t := exprType(g.info, cl)
	if o, ok := g.pt.allocs[cl]; ok {
		n := g.pt.newNode()
		g.pt.addObj(n, o)
		return n
	}
	label := "alloc@" + g.pt.posLabel(cl.Pos())
	if t != nil {
		label = shortType(t) + "@" + g.pt.posLabel(cl.Pos())
	}
	o := g.pt.newObject(ObjAlloc, cl.Pos(), t, label)
	o.Fn = g.fn
	g.pt.allocs[cl] = o
	g.genCompositeInto(cl, &locref{obj: o})
	n := g.pt.newNode()
	g.pt.addObj(n, o)
	return n
}

// genCompositeInto initializes the fields/elements of a composite literal
// into the given location.
func (g *gen) genCompositeInto(cl *ast.CompositeLit, dst *locref) {
	t := exprType(g.info, cl)
	var st *types.Struct
	if t != nil {
		st, _ = t.Underlying().(*types.Struct)
	}
	for i, elt := range cl.Elts {
		var path string
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if st != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					path = id.Name
				}
			} else {
				path = "[]"
				// Pointer-like map keys land in "[]" too (conflated with
				// values).
				if kt := exprType(g.info, kv.Key); kt != nil && pointerLike(kt) {
					fk := &locref{obj: dst.obj, base: dst.base, path: joinPath(dst.path, "[]")}
					g.writeLoc(fk, g.value(kv.Key))
				}
			}
		} else if st != nil {
			if i < st.NumFields() {
				path = st.Field(i).Name()
			}
		} else {
			path = "[]"
		}
		if path == "" {
			continue
		}
		fdst := &locref{obj: dst.obj, base: dst.base, path: joinPath(dst.path, path)}
		if sub, ok := ast.Unparen(val).(*ast.CompositeLit); ok && isValueComposite(g.info, sub) {
			g.genCompositeInto(sub, fdst)
			continue
		}
		g.writeLoc(fdst, g.value(val))
	}
}

func shortType(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// genReturn links return values to the current function's result nodes.
func (g *gen) genReturn(r *ast.ReturnStmt) {
	if g.fn == nil || len(r.Results) == 0 {
		return
	}
	rets := g.pt.resultNodes(g.fn)
	if len(r.Results) == 1 && len(rets) > 1 {
		if call, ok := ast.Unparen(r.Results[0]).(*ast.CallExpr); ok {
			g.call(call, rets)
			return
		}
	}
	for i, res := range r.Results {
		if i < len(rets) {
			g.pt.addEdge(g.value(res), rets[i])
		}
	}
}

// genRange links range variables to the container's elements.
func (g *gen) genRange(r *ast.RangeStmt) {
	t := exprType(g.info, r.X)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if r.Value != nil {
			g.assignNode(r.Value, g.readLoc(&locref{base: g.value(r.X), path: "[]"}))
		}
	case *types.Map:
		// Keys and values share the element path "[]" (documented
		// conflation: key/value identity is rarely the racy distinction).
		elems := g.readLoc(&locref{base: g.value(r.X), path: "[]"})
		if r.Key != nil {
			g.assignNode(r.Key, elems)
		}
		if r.Value != nil {
			g.assignNode(r.Value, elems)
		}
	case *types.Array:
		if r.Value != nil {
			if lr := g.loc(r.X); lr != nil {
				lr.path = joinPath(lr.path, "[]")
				g.assignNode(r.Value, g.readLoc(lr))
			}
		}
	case *types.Chan:
		if r.Key != nil {
			g.assignNode(r.Key, g.readLoc(&locref{base: g.value(r.X), path: "[]"}))
		}
	}
}

// call evaluates a call expression, linking arguments to parameters of
// every resolvable callee and callee results to the given result nodes
// (may be nil).
func (g *gen) call(call *ast.CallExpr, results []*pnode) {
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) flows x through.
	if tv, ok := g.info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && len(results) > 0 {
			g.pt.addEdge(g.value(call.Args[0]), results[0])
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := g.info.Uses[id].(*types.Builtin); ok {
			g.genBuiltin(b.Name(), call, results)
			return
		}
	}

	// Evaluate arguments once.
	args := make([]*pnode, len(call.Args))
	for i, a := range call.Args {
		args[i] = g.value(a)
	}

	// Direct module-local callee (function or method).
	if obj := CalleeObj(g.info, call); obj != nil {
		if callee := g.pt.cg.ByObj(obj); callee != nil {
			g.linkDirect(call, callee, args, results)
			return
		}
		// Out-of-module: opaque. sync.Once.Do / method values on tracked
		// function args still run them — link function-typed args as
		// zero-arg invocations so their bodies stay reachable for escape.
		for _, a := range args {
			g.pt.addCallSite(a, &callSite{})
		}
		return
	}

	// Immediately invoked or indirect call through a function value.
	var funNode *pnode
	if lit, ok := fun.(*ast.FuncLit); ok {
		funNode = g.value(lit)
	} else {
		funNode = g.value(fun)
	}
	g.pt.addCallSite(funNode, &callSite{args: args, results: results, spread: call.Ellipsis.IsValid()})
}

// linkDirect wires a statically resolved call.
func (g *gen) linkDirect(call *ast.CallExpr, callee *Func, args []*pnode, results []*pnode) {
	// Method receiver.
	if fd, ok := callee.Node.(*ast.FuncDecl); ok && fd.Recv != nil && len(fd.Recv.List) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if len(fd.Recv.List[0].Names) > 0 {
				if rv, ok := callee.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
					g.linkReceiver(sel.X, rv)
				}
			}
		}
	}
	g.pt.linkArgs(callee, args, call.Ellipsis.IsValid())
	rets := g.pt.resultNodes(callee)
	for i, r := range results {
		if r != nil && i < len(rets) {
			g.pt.addEdge(rets[i], r)
		}
	}
}

// linkReceiver flows the receiver argument into the receiver parameter,
// inserting the implicit address-of for pointer-receiver methods called on
// addressable values.
func (g *gen) linkReceiver(recvArg ast.Expr, recvParam *types.Var) {
	recvNode := g.pt.varNode(recvParam)
	_, paramIsPtr := recvParam.Type().Underlying().(*types.Pointer)
	t := exprType(g.info, recvArg)
	_, argIsPtr := t.Underlying().(*types.Pointer)
	switch {
	case paramIsPtr && !argIsPtr:
		// Implicit &x on an addressable value.
		if lr := g.loc(recvArg); lr != nil {
			g.pt.addEdge(g.addrLoc(lr), recvNode)
		}
	case paramIsPtr && argIsPtr:
		g.pt.addEdge(g.value(recvArg), recvNode)
	case !paramIsPtr && argIsPtr:
		// Value receiver from pointer (implicit *p): the receiver copy's
		// fields share the pointed-to object's pointees.
		if st, ok := recvParam.Type().Underlying().(*types.Struct); ok {
			g.copyFields(&locref{obj: g.pt.storageObj(recvParam)},
				&locref{base: g.value(recvArg)}, st, 2)
		}
	default:
		// Value receiver on a value: copy fields from the caller's storage.
		if st, ok := recvParam.Type().Underlying().(*types.Struct); ok {
			if lr := g.loc(recvArg); lr != nil {
				g.copyFields(&locref{obj: g.pt.storageObj(recvParam)}, lr, st, 2)
			}
		}
	}
}

// genBuiltin models the pointer-relevant builtins.
func (g *gen) genBuiltin(name string, call *ast.CallExpr, results []*pnode) {
	switch name {
	case "new":
		if len(results) > 0 && len(call.Args) == 1 {
			t := exprType(g.info, call.Args[0])
			o := g.pt.newObject(ObjAlloc, call.Pos(), t, "new@"+g.pt.posLabel(call.Pos()))
			o.Fn = g.fn
			g.pt.addObj(results[0], o)
		}
	case "make":
		if len(results) > 0 && len(call.Args) >= 1 {
			t := exprType(g.info, call.Args[0])
			o := g.pt.newObject(ObjAlloc, call.Pos(), t, "make@"+g.pt.posLabel(call.Pos()))
			o.Fn = g.fn
			g.pt.addObj(results[0], o)
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		base := g.value(call.Args[0])
		var dst *pnode
		if len(results) > 0 && results[0] != nil {
			dst = results[0]
		} else {
			dst = g.pt.newNode()
		}
		g.pt.addEdge(base, dst)
		// Growth may allocate a fresh backing array.
		o := g.pt.newObject(ObjAlloc, call.Pos(), exprType(g.info, call.Args[0]), "append@"+g.pt.posLabel(call.Pos()))
		o.Fn = g.fn
		g.pt.addObj(dst, o)
		for _, a := range call.Args[1:] {
			g.pt.addStore(dst, "[]", g.value(a))
		}
	case "copy":
		if len(call.Args) == 2 {
			t := g.pt.newNode()
			g.pt.addLoad(g.value(call.Args[1]), "[]", t)
			g.pt.addStore(g.value(call.Args[0]), "[]", t)
		}
	case "delete", "len", "cap", "close", "panic", "print", "println", "clear", "min", "max":
		for _, a := range call.Args {
			g.value(a)
		}
	}
}

// ---------- post-solve queries ----------

// PointeesOf returns the objects the (pointer-like) expression may point
// at, sorted by object ID. Call after Solve.
func (pt *PointsTo) PointeesOf(info *types.Info, e ast.Expr) []*Object {
	q := &gen{pt: pt, info: info}
	return sortedObjs(q.queryValue(e))
}

// LocsOf returns the abstract locations the lvalue expression denotes,
// sorted. An empty result means the substrate does not track it.
func (pt *PointsTo) LocsOf(info *types.Info, e ast.Expr) []Loc {
	q := &gen{pt: pt, info: info}
	lr := q.queryLoc(e)
	if lr == nil {
		return nil
	}
	var out []Loc
	if lr.obj != nil {
		root, prefix := lr.obj.Root()
		out = append(out, Loc{root, joinPath(prefix, lr.path)})
	} else {
		for o := range lr.base.pts {
			if o.Kind == ObjFunc {
				continue
			}
			root, prefix := o.Root()
			out = append(out, Loc{root, joinPath(prefix, lr.path)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.ID != out[j].Obj.ID {
			return out[i].Obj.ID < out[j].Obj.ID
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// FuncPointeesOf returns the module functions (declared or literal) the
// expression may evaluate to: the call targets of an indirect call.
func (pt *PointsTo) FuncPointeesOf(info *types.Info, e ast.Expr) []*Func {
	var out []*Func
	for _, o := range pt.PointeesOf(info, e) {
		if o.Kind == ObjFunc && o.Fn != nil {
			out = append(out, o.Fn)
		}
	}
	return out
}

// VarStorage returns the storage object of a named variable if the
// substrate has materialized it, or nil.
func (pt *PointsTo) VarStorage(v *types.Var) *Object { return pt.varObjs[v] }

// VarPointees returns the objects variable v may point to, nil when the
// substrate never tracked v.
func (pt *PointsTo) VarPointees(v *types.Var) []*Object {
	n, ok := pt.varNodes[v]
	if !ok {
		return nil
	}
	out := make([]*Object, 0, len(n.pts))
	for o := range n.pts {
		out = append(out, o)
	}
	return out
}

// Reachable returns the closure of roots over the solved heap graph: an
// object stored at any field or element path inside a reachable object is
// reachable, and a reachable variable-storage object carries everything its
// variable points to. All objects are normalized to their roots.
func (pt *PointsTo) Reachable(roots []*Object) map[*Object]bool {
	if pt.heapAdj == nil {
		pt.heapAdj = map[*Object][]*Object{}
		add := func(from *Object, n *pnode) {
			r, _ := from.Root()
			for o := range n.pts {
				ro, _ := o.Root()
				pt.heapAdj[r] = append(pt.heapAdj[r], ro)
			}
		}
		for k, n := range pt.fldNodes {
			add(k.root, n)
		}
		for v, n := range pt.varNodes {
			if o := pt.varObjs[v]; o != nil {
				add(o, n)
			}
		}
	}
	reach := map[*Object]bool{}
	var stack []*Object
	push := func(o *Object) {
		if o == nil {
			return
		}
		r, _ := o.Root()
		if !reach[r] {
			reach[r] = true
			stack = append(stack, r)
		}
	}
	for _, o := range roots {
		push(o)
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range pt.heapAdj[o] {
			push(t)
		}
	}
	return reach
}

// queryValue is the read-only twin of value: it never adds constraints,
// resolving loads against the solved sets.
func (g *gen) queryValue(e ast.Expr) map[*Object]bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := g.info.Uses[e]
		if obj == nil {
			obj = g.info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if n, ok := g.pt.varNodes[v]; ok {
				return n.pts
			}
			return nil
		}
		if fobj, ok := obj.(*types.Func); ok {
			if mf := g.pt.cg.ByObj(fobj); mf != nil {
				if o, ok := g.pt.fnObjs[mf]; ok {
					return map[*Object]bool{o: true}
				}
			}
		}
		return nil
	case *ast.FuncLit:
		if f, ok := g.pt.litFuncs[e]; ok {
			if o, ok := g.pt.fnObjs[f]; ok {
				return map[*Object]bool{o: true}
			}
		}
		return nil
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				if o, ok := g.pt.allocs[cl]; ok {
					return map[*Object]bool{o: true}
				}
				return nil
			}
			if lr := g.queryLoc(e.X); lr != nil {
				out := map[*Object]bool{}
				if lr.obj != nil {
					out[g.pt.fieldObject(lr.obj, lr.path)] = true
				} else {
					for o := range lr.base.pts {
						if o.Kind != ObjFunc {
							out[g.pt.fieldObject(o, lr.path)] = true
						}
					}
				}
				return out
			}
			return nil
		case token.ARROW:
			return g.queryLoad(g.queryValue(e.X), "[]")
		}
		return nil
	case *ast.CompositeLit:
		if o, ok := g.pt.allocs[e]; ok {
			return map[*Object]bool{o: true}
		}
		return nil
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if lr := g.queryLoc(e.(ast.Expr)); lr != nil {
			if lr.obj != nil {
				if n := g.pt.lookupLocNode(lr.obj, lr.path); n != nil {
					return n.pts
				}
				return nil
			}
			out := map[*Object]bool{}
			for o := range lr.base.pts {
				if n := g.pt.lookupLocNode(o, lr.path); n != nil {
					for p := range n.pts {
						out[p] = true
					}
				}
			}
			return out
		}
		return nil
	case *ast.TypeAssertExpr:
		return g.queryValue(e.X)
	case *ast.SliceExpr:
		return g.queryValue(e.X)
	case *ast.CallExpr:
		// Conversions flow through; other calls are not re-queried.
		if tv, ok := g.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return g.queryValue(e.Args[0])
		}
		return nil
	}
	return nil
}

// queryLoad resolves a load of path against a set of base objects.
func (g *gen) queryLoad(base map[*Object]bool, path string) map[*Object]bool {
	out := map[*Object]bool{}
	for o := range base {
		if n := g.pt.lookupLocNode(o, path); n != nil {
			for p := range n.pts {
				out[p] = true
			}
		}
	}
	return out
}

// lookupLocNode is nodeForLoc without creation.
func (pt *PointsTo) lookupLocNode(obj *Object, path string) *pnode {
	if obj.Kind == ObjField {
		return pt.lookupLocNode(obj.Parent, joinPath(obj.Path, path))
	}
	if path == "" && obj.Var != nil {
		return pt.varNodes[obj.Var]
	}
	return pt.fldNodes[fieldNodeKey{obj, path}]
}

// queryLoc is the read-only twin of loc; it wraps solved base sets in a
// synthetic node so locref keeps one shape.
func (g *gen) queryLoc(e ast.Expr) *locref {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := g.info.Uses[e].(*types.Var)
		if !ok {
			v, ok = g.info.Defs[e].(*types.Var)
		}
		if !ok || v.IsField() {
			return nil
		}
		if o, ok := g.pt.varObjs[v]; ok {
			return &locref{obj: o}
		}
		return &locref{obj: g.pt.storageObj(v)}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := g.info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := g.info.Uses[e.Sel].(*types.Var); ok {
					return &locref{obj: g.pt.storageObj(v)}
				}
				return nil
			}
		}
		sel, ok := g.info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		path := selectionPath(sel)
		if path == "" {
			return nil
		}
		if _, isPtr := sel.Recv().Underlying().(*types.Pointer); isPtr {
			return &locref{base: g.queryNodeOf(e.X), path: path}
		}
		if lr := g.queryLoc(e.X); lr != nil {
			lr.path = joinPath(lr.path, path)
			return lr
		}
		return &locref{base: g.queryNodeOf(e.X), path: path}
	case *ast.StarExpr:
		return &locref{base: g.queryNodeOf(e.X)}
	case *ast.IndexExpr:
		t := exprType(g.info, e.X)
		if t == nil {
			return nil
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			return &locref{base: g.queryNodeOf(e.X), path: "[]"}
		case *types.Array:
			if lr := g.queryLoc(e.X); lr != nil {
				lr.path = joinPath(lr.path, "[]")
				return lr
			}
		}
		return nil
	}
	return nil
}

// queryNodeOf wraps the solved points-to set of e in a detached node.
func (g *gen) queryNodeOf(e ast.Expr) *pnode {
	return &pnode{pts: g.queryValue(e)}
}

func sortedObjs(set map[*Object]bool) []*Object {
	out := make([]*Object, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
