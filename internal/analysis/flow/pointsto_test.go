package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildPT typechecks one source file and builds the solved points-to
// substrate plus the escape pass over it.
func buildPT(t *testing.T, src string) (*PointsTo, *Escape, []*Func, *types.Info, *ast.File, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	funcs := CollectFuncs("p", info, []*ast.File{f})
	cg := NewCallGraph(funcs)
	var globals []Global
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, s := range gd.Specs {
			if vs, ok := s.(*ast.ValueSpec); ok {
				globals = append(globals, Global{Info: info, Spec: vs})
			}
		}
	}
	pt := BuildPointsTo(fset, cg, globals)
	esc := BuildEscape(pt, cg)
	return pt, esc, funcs, info, f, fset
}

// exprAt finds the first expression in fn whose source text equals want.
func exprIn(t *testing.T, fset *token.FileSet, file *ast.File, src, funcName, want string) (ast.Expr, *ast.FuncDecl) {
	t.Helper()
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if d, ok := d.(*ast.FuncDecl); ok && d.Name.Name == funcName {
			fd = d
		}
	}
	if fd == nil {
		t.Fatalf("func %s not found", funcName)
	}
	var found ast.Expr
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		start := fset.Position(e.Pos()).Offset
		end := fset.Position(e.End()).Offset
		if start >= 0 && end <= len(src) && src[start:end] == want {
			found = e
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("expression %q not found in %s", want, funcName)
	}
	return found, fd
}

const aliasSrc = `package p

type Server struct {
	mu    int
	cache map[string]int
	peer  *Server
}

func NewServer() *Server {
	s := &Server{cache: make(map[string]int)}
	return s
}

func (s *Server) Cache() map[string]int { return s.cache }

func use() map[string]int {
	srv := NewServer()
	alias := srv
	return alias.Cache()
}
`

func TestPointsToAliasThroughCallsAndReceivers(t *testing.T) {
	pt, _, _, info, file, fset := buildPT(t, aliasSrc)
	srvExpr, _ := exprIn(t, fset, file, aliasSrc, "use", "srv")
	aliasExpr, _ := exprIn(t, fset, file, aliasSrc, "use", "alias")
	a := pt.PointeesOf(info, srvExpr)
	b := pt.PointeesOf(info, aliasExpr)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("srv and alias should share one allocation object: %v vs %v", a, b)
	}
	if a[0].Kind != ObjAlloc || !strings.Contains(a[0].Label, "Server") {
		t.Fatalf("unexpected object: kind=%v label=%q", a[0].Kind, a[0].Label)
	}

	// Field sensitivity: srv.cache and srv.mu are distinct locations on the
	// same root.
	cacheExpr, _ := exprIn(t, fset, file, aliasSrc, "use", "alias.Cache()")
	_ = cacheExpr
	muLoc := pt.LocsOf(info, mustSel(t, file, fset, aliasSrc, "Cache", "s.cache"))
	if len(muLoc) != 1 || muLoc[0].Path != "cache" || muLoc[0].Obj != a[0] {
		t.Fatalf("s.cache should resolve to (allocObj, cache): %v", muLoc)
	}
}

func mustSel(t *testing.T, file *ast.File, fset *token.FileSet, src, funcName, want string) ast.Expr {
	t.Helper()
	e, _ := exprIn(t, fset, file, src, funcName, want)
	return e
}

func TestPointsToFieldSensitivity(t *testing.T) {
	src := `package p
type T struct{ a, b *int }
func f() (*int, *int) {
	x := new(int)
	y := new(int)
	t := &T{a: x}
	t.b = y
	return t.a, t.b
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	aExpr := mustSel(t, file, fset, src, "f", "t.a")
	bExpr := mustSel(t, file, fset, src, "f", "t.b")
	ap := pt.PointeesOf(info, aExpr)
	bp := pt.PointeesOf(info, bExpr)
	if len(ap) != 1 || len(bp) != 1 {
		t.Fatalf("each field should hold exactly one object: a=%v b=%v", ap, bp)
	}
	if ap[0] == bp[0] {
		t.Fatal("fields a and b must not be conflated (field sensitivity)")
	}
}

func TestPointsToCycleConvergence(t *testing.T) {
	// Mutually recursive flow plus a pointer cycle through a field must
	// converge and produce the correct sets.
	src := `package p
type N struct{ next *N }
func ring() *N {
	a := &N{}
	b := &N{}
	a.next = b
	b.next = a
	return walk(a, 10)
}
func walk(n *N, k int) *N {
	if k == 0 {
		return n
	}
	return walk(n.next, k-1)
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	nExpr := mustSel(t, file, fset, src, "walk", "n")
	objs := pt.PointeesOf(info, nExpr)
	if len(objs) != 2 {
		t.Fatalf("walk's n should reach both ring allocations, got %v", objs)
	}
}

func TestPointsToGlobalsAndChannels(t *testing.T) {
	src := `package p
var registry = map[string]*T{}
type T struct{ v int }
func pub(ch chan *T) {
	t := &T{}
	ch <- t
	registry["x"] = t
}
func sub(ch chan *T) *T {
	return <-ch
}
func g() *T {
	return registry["x"]
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	recvd := pt.PointeesOf(info, mustSel(t, file, fset, src, "sub", "<-ch"))
	// The send and the receive see the same channel only when the channel
	// values alias; here both come through parameters with no common
	// caller, so pub's object reaches sub only via the global.
	got := pt.PointeesOf(info, mustSel(t, file, fset, src, "g", `registry["x"]`))
	if len(got) != 1 || !strings.Contains(got[0].Label, "T@") {
		t.Fatalf("registry element should hold pub's allocation, got %v", got)
	}
	_ = recvd

	// With a shared channel the object flows sender → receiver.
	src2 := `package p
type T struct{ v int }
func roundtrip() *T {
	ch := make(chan *T, 1)
	go func() { ch <- &T{} }()
	return <-ch
}`
	pt2, _, _, info2, file2, fset2 := buildPT(t, src2)
	out := pt2.PointeesOf(info2, mustSel(t, file2, fset2, src2, "roundtrip", "<-ch"))
	if len(out) != 1 || out[0].Kind != ObjAlloc {
		t.Fatalf("object sent on channel should reach the receive: %v", out)
	}
}

func TestPointsToFuncValuesAndIndirectCalls(t *testing.T) {
	src := `package p
type T struct{ v int }
func mk() *T { return &T{} }
func apply(f func() *T) *T { return f() }
func use() *T {
	g := mk
	r := apply(g)
	return r
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	out := pt.PointeesOf(info, mustSel(t, file, fset, src, "use", "r"))
	if len(out) != 1 || out[0].Kind != ObjAlloc {
		t.Fatalf("indirect call through func value should link results: %v", out)
	}
	fns := pt.FuncPointeesOf(info, mustSel(t, file, fset, src, "use", "g"))
	if len(fns) != 1 || !strings.HasSuffix(fns[0].Name, ".mk") {
		t.Fatalf("g should point at mk, got %v", fns)
	}
}

func TestPointsToStructCopySharesPointees(t *testing.T) {
	src := `package p
type S struct{ buf []int }
func f() ([]int, []int) {
	a := S{buf: make([]int, 4)}
	b := a
	return a.buf, b.buf
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	ab := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "a.buf"))
	bb := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "b.buf"))
	if len(ab) != 1 || len(bb) != 1 || ab[0] != bb[0] {
		t.Fatalf("struct copy should share slice backing: a=%v b=%v", ab, bb)
	}
}

func TestPointsToAppendAndSliceElements(t *testing.T) {
	src := `package p
type T struct{ v int }
func f() *T {
	var xs []*T
	xs = append(xs, &T{})
	return xs[0]
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	out := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "xs[0]"))
	if len(out) != 1 || out[0].Kind != ObjAlloc {
		t.Fatalf("appended element should be readable by index: %v", out)
	}
}

func TestPointsToAddressOfField(t *testing.T) {
	src := `package p
type S struct{ mu, other int }
func f() (*int, *int) {
	s := &S{}
	p := &s.mu
	q := &s.other
	return p, q
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	p := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "p"))
	q := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "q"))
	if len(p) != 1 || len(q) != 1 {
		t.Fatalf("field addresses should resolve: p=%v q=%v", p, q)
	}
	if p[0] == q[0] {
		t.Fatal("&s.mu and &s.other must be distinct field objects")
	}
	root, path := p[0].Root()
	if path != "mu" || root.Kind != ObjAlloc {
		t.Fatalf("&s.mu should canonicalize to (alloc, mu), got (%v, %q)", root, path)
	}
}

func TestEscapeGoStatement(t *testing.T) {
	src := `package p
func spawnNamed() {
	go worker()
	local()
}
func worker() {}
func local() {}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	w := fn(t, funcs, "worker")
	l := fn(t, funcs, "local")
	wc := esc.Contexts(w)
	if len(wc) < 2 {
		t.Fatalf("worker should run in main (it is exported to the module) plus the go context: %v", wc.IDs())
	}
	if !esc.SharedCtxs(wc) {
		t.Fatal("worker's contexts should count as shared")
	}
	lc := esc.Contexts(l)
	if len(lc) != 1 || !lc[MainCtx] {
		t.Fatalf("local should run only in main, got %v", lc.IDs())
	}
}

func TestEscapeGoInLoopIsMulti(t *testing.T) {
	src := `package p
func f(n int) {
	for i := 0; i < n; i++ {
		go body()
	}
}
func body() {}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	b := fn(t, funcs, "body")
	multi := false
	for id := range esc.Contexts(b) {
		if id != MainCtx && esc.Site(id).Multi {
			multi = true
		}
	}
	if !multi {
		t.Fatal("go inside a loop must be a multi-instance context")
	}
}

func TestEscapeLiteralViaFuncValue(t *testing.T) {
	src := `package p
var sink int
func f() {
	body := func() { sink++ }
	go body()
}`
	pt, esc, _, _, _, _ := buildPT(t, src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected 1 literal, got %d", len(lits))
	}
	ctxs := esc.Contexts(lits[0])
	hasSpawn := false
	for id := range ctxs {
		if id != MainCtx {
			hasSpawn = true
		}
	}
	if !hasSpawn {
		t.Fatalf("literal spawned through a func value should carry the go context: %v", ctxs.IDs())
	}
	if ctxs[MainCtx] {
		t.Fatalf("spawned-only literal should not inherit main: %v", ctxs.IDs())
	}
}

func TestEscapeTransitiveCallee(t *testing.T) {
	src := `package p
func f() { go top() }
func top() { helper() }
func helper() {}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	h := fn(t, funcs, "helper")
	spawned := false
	for id := range esc.Contexts(h) {
		if id != MainCtx {
			spawned = true
		}
	}
	if !spawned {
		t.Fatal("helper called from a spawned body should inherit the spawn context")
	}
}

func TestEscapeSharedMarker(t *testing.T) {
	src := `package p
func f() { go g() }
func g() {}`
	pt, esc, funcs, _, _, _ := buildPT(t, src)
	_ = pt
	m := esc.NewSharedMarker()
	o := &Object{ID: 999, Label: "test"}
	m.Mark(o, esc.Contexts(fn(t, funcs, "f")))
	if m.Shared(o) {
		t.Fatal("single-context object should not be shared")
	}
	m.Mark(o, esc.Contexts(fn(t, funcs, "g")))
	if !m.Shared(o) {
		t.Fatal("object accessed from main and a spawned context is shared")
	}
	if got := m.Contexts(o); len(got) < 2 {
		t.Fatalf("marker should accumulate both contexts: %v", got.IDs())
	}
}

func TestEscapeWaitJoinWindow(t *testing.T) {
	src := `package p
import "sync"
func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	after()
}
func after() {}`
	pt, esc, funcs, _, file, fset := buildPT(t, src)
	_ = pt
	ff := fn(t, funcs, "f")
	// The after() call is positioned after wg.Wait: the go site is excluded.
	var afterPos token.Pos
	ast.Inspect(file, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "after" {
				afterPos = c.Pos()
			}
		}
		return true
	})
	_ = fset
	excl := esc.ExcludedSites(ff, afterPos)
	if len(excl) != 1 {
		t.Fatalf("access after wg.Wait should exclude the pre-Wait go site, got %v", excl)
	}
	before := esc.ExcludedSites(ff, ff.Body.Pos())
	if len(before) != 0 {
		t.Fatalf("access before the Wait should exclude nothing, got %v", before)
	}
}

func TestEscapeHandlerShaped(t *testing.T) {
	src := `package p
import "net/http"
func handle(w http.ResponseWriter, r *http.Request) {}
func plain(x int) {}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	h := fn(t, funcs, "handle")
	if !esc.SharedCtxs(esc.Contexts(h)) {
		t.Fatal("handler-shaped function must count as shared (per-request instances)")
	}
	p := fn(t, funcs, "plain")
	if esc.SharedCtxs(esc.Contexts(p)) {
		t.Fatal("plain function should not be shared")
	}
}

func TestLocsOfUntrackedReturnsNil(t *testing.T) {
	src := `package p
func ext() *int
func f() {
	p := ext()
	*p = 1
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	locs := pt.LocsOf(info, mustSel(t, file, fset, src, "f", "*p"))
	if len(locs) != 0 {
		t.Fatalf("deref of an untracked pointer must return no locations, got %v", locs)
	}
}
