package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition site of a local variable: a parameter or named
// result (defined at function entry), a := or = assignment, a var
// declaration, a range binding, or an ++/-- update. The value-flow tier
// reasons about variables through these sites: reaching definitions answer
// "which assignments can produce the value read here", and the taint
// analysis piggybacks on the same per-variable universe.
type Def struct {
	Var  *types.Var
	Node ast.Node  // the defining statement; nil for the entry definition
	Pos  token.Pos // position of the definition (the function body for entry defs)
}

// Entry reports whether the definition is the synthetic function-entry
// definition (parameters, named results, captured state).
func (d Def) Entry() bool { return d.Node == nil }

// DefUse holds the def-use substrate of one function: the definition
// universe and the converged reaching-definitions solution (may-analysis:
// a def reaches a point if SOME path from it avoids a redefinition).
type DefUse struct {
	Defs []Def

	byVar map[*types.Var][]int // var -> indices into Defs
	info  *types.Info
	sol   *Solution
	g     *Graph
}

// BuildDefUse computes definition sites and reaching definitions for fn over
// its CFG. Definitions are collected per variable object, so shadowed names
// are distinct; assignments through pointers, fields, or indexing do not
// define a new value of the base variable (the base def stays live, which is
// the conservative direction for both def-use queries and taint).
func BuildDefUse(fn *Func, g *Graph) *DefUse {
	du := &DefUse{byVar: map[*types.Var][]int{}, info: fn.Info, g: g}

	addDef := func(v *types.Var, node ast.Node, pos token.Pos) {
		if v == nil {
			return
		}
		du.byVar[v] = append(du.byVar[v], len(du.Defs))
		du.Defs = append(du.Defs, Def{Var: v, Node: node, Pos: pos})
	}

	// Entry definitions: receiver, parameters, and named results.
	var entryFields []*ast.Field
	if fd, ok := fn.Node.(*ast.FuncDecl); ok && fd.Recv != nil {
		entryFields = append(entryFields, fd.Recv.List...)
	}
	if ft := funcType(fn.Node); ft != nil {
		entryFields = append(entryFields, paramFields(ft)...)
	}
	for _, field := range entryFields {
		for _, name := range field.Names {
			if v, ok := fn.Info.Defs[name].(*types.Var); ok {
				addDef(v, nil, fn.Body.Pos())
			}
		}
	}

	// Statement definitions, block by block so the transfer function can
	// reuse the same classification.
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			eachDefinedVar(fn.Info, node, func(v *types.Var) {
				addDef(v, node, node.Pos())
			})
		}
	}

	transfer := func(b *Block, in BitSet) BitSet {
		out := in.Copy()
		for _, node := range b.Nodes {
			du.apply(node, out)
		}
		return out
	}
	p := Problem{Bits: len(du.Defs), Entry: du.entryFact(), Transfer: transfer}
	du.sol = p.Solve(g)
	return du
}

// entryFact returns the fact at function entry: every entry definition live.
func (du *DefUse) entryFact() BitSet {
	f := NewBitSet(len(du.Defs))
	for i, d := range du.Defs {
		if d.Entry() {
			f.Set(i)
		}
	}
	return f
}

// apply mutates facts with the gen/kill effect of one CFG node: a
// definition of v kills every other definition of v and gens itself.
func (du *DefUse) apply(node ast.Node, facts BitSet) {
	eachDefinedVar(du.info, node, func(v *types.Var) {
		for _, i := range du.byVar[v] {
			if du.Defs[i].Node == node {
				facts.Set(i)
			} else {
				facts.Clear(i)
			}
		}
	})
}

// In returns the reaching-definitions fact at block entry; nil for
// unreachable blocks.
func (du *DefUse) In(b *Block) (BitSet, bool) {
	f, ok := du.sol.In[b]
	return f, ok
}

// ReachingAt returns the definitions of v that reach node, which must be one
// of the Nodes of block b (facts are threaded through the block's earlier
// nodes). A nil slice means the block is unreachable or v is untracked.
func (du *DefUse) ReachingAt(v *types.Var, b *Block, node ast.Node) []Def {
	in, ok := du.sol.In[b]
	if !ok {
		return nil
	}
	facts := in.Copy()
	for _, n := range b.Nodes {
		if n == node {
			break
		}
		du.apply(n, facts)
	}
	var out []Def
	for _, i := range du.byVar[v] {
		if facts.Has(i) {
			out = append(out, du.Defs[i])
		}
	}
	return out
}

// eachDefinedVar visits the variables (re)defined by one statement node:
// plain and short assignments to identifiers, var declarations, range
// bindings, and ++/--. Writes through selectors, stars, or indexes are not
// definitions of the base (the base still holds the same composite).
// Definitions inside nested function literals belong to those literals.
func eachDefinedVar(info *types.Info, node ast.Node, visit func(*types.Var)) {
	ident := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			visit(v)
			return
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			visit(v)
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ident(lhs)
			}
		case *ast.IncDecStmt:
			ident(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				ident(n.Key)
			}
			if n.Value != nil {
				ident(n.Value)
			}
			return false // body statements live in their own blocks
		case *ast.ValueSpec:
			for _, name := range n.Names {
				ident(name)
			}
		}
		return true
	})
}

// funcType extracts the *ast.FuncType of a FuncDecl or FuncLit node.
func funcType(node ast.Node) *ast.FuncType {
	switch n := node.(type) {
	case *ast.FuncDecl:
		return n.Type
	case *ast.FuncLit:
		return n.Type
	}
	return nil
}

// paramFields returns the receiver-less parameter and named-result fields of
// a function type (the entry-defined variables). The receiver of a method is
// added by the caller when it has the FuncDecl.
func paramFields(ft *ast.FuncType) []*ast.Field {
	var out []*ast.Field
	if ft.Params != nil {
		out = append(out, ft.Params.List...)
	}
	if ft.Results != nil {
		out = append(out, ft.Results.List...)
	}
	return out
}

// Dominators computes the dominance relation of g: Dominates(a, b) reports
// whether every path from Entry to b passes through a. Implemented as the
// classic iterative bit-vector dataflow (dom(b) = {b} ∪ ⋂ dom(preds)),
// which is quadratic in the worst case but the CFGs here are per-function
// and small.
type Dominators struct {
	dom map[*Block]BitSet
	n   int
}

// BuildDominators solves dominance over the reachable blocks of g.
func BuildDominators(g *Graph) *Dominators {
	reach := g.Reachable()
	n := len(g.Blocks)
	d := &Dominators{dom: map[*Block]BitSet{}, n: n}
	for _, b := range reach {
		s := NewBitSet(n)
		if b == g.Entry {
			s.Set(b.Index)
		} else {
			s.Fill()
		}
		d.dom[b] = s
	}
	changed := true
	for changed {
		changed = false
		for _, b := range reach {
			if b == g.Entry {
				continue
			}
			s := NewBitSet(n)
			s.Fill()
			any := false
			for _, p := range b.Preds {
				ps, ok := d.dom[p]
				if !ok {
					continue // unreachable pred
				}
				s.IntersectWith(ps)
				any = true
			}
			if !any {
				s = NewBitSet(n)
			}
			s.Set(b.Index)
			if !s.Equal(d.dom[b]) {
				d.dom[b] = s
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether a dominates b (reflexively: a dominates a).
func (d *Dominators) Dominates(a, b *Block) bool {
	s, ok := d.dom[b]
	if !ok {
		return false
	}
	return s.Has(a.Index)
}
