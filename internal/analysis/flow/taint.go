package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Taint is a conservative forward taint analysis over the CFG substrate:
// the lattice is a set of tainted local variables per program point, an
// expression is tainted when any variable or source call it reads from is,
// and calls propagate taint through depth-limited summaries of module-local
// callees resolved via the call graph. The analysis over-approximates inside
// a function (a field write with a tainted value taints the whole base
// variable; a tainted operand taints the whole expression) and
// under-approximates across functions it cannot see into only in one
// deliberate way: taint never flows INTO a callee through its arguments —
// callees are summarized from their own bodies instead, and a call's results
// become tainted when the summary (or, for unresolved callees, the
// conservative any-argument rule) says so.
type Taint struct {
	cg *CallGraph

	// Source classifies a call as introducing wire taint: its results and
	// slice-typed arguments (fill-style APIs like io.ReadFull) become
	// tainted.
	Source func(info *types.Info, call *ast.CallExpr) bool

	// SourceParam classifies entry variables (parameters, receivers) that
	// carry tainted data when the function is entered, e.g. the raw []byte
	// of a decode function.
	SourceParam func(fn *Func, v *types.Var) bool

	// Depth bounds interprocedural summary recursion through the call
	// graph; 0 disables summaries entirely (unresolved-call rule only).
	Depth int

	summaries  map[*types.Func]*taintSummary
	inProgress map[*types.Func]bool
}

// taintSummary is the interprocedural abstraction of one module function:
// which results are tainted inherently (the body reads a source), and which
// are tainted whenever any argument or the receiver is.
type taintSummary struct {
	inherent  bool // some result carries source taint regardless of inputs
	fromParam bool // some result carries taint flowing from a parameter
}

// NewTaint builds a taint analysis over cg.
func NewTaint(cg *CallGraph) *Taint {
	return &Taint{
		cg:         cg,
		Depth:      3,
		summaries:  map[*types.Func]*taintSummary{},
		inProgress: map[*types.Func]bool{},
	}
}

// TaintResult holds the converged per-block taint facts for one function.
type TaintResult struct {
	Fn *Func

	t    *Taint
	vars []*types.Var
	idx  map[*types.Var]int
	sol  *Solution
	du   *DefUse
}

// Analyze solves the taint problem for fn over g (the function's CFG). The
// variable universe comes from the def-use substrate, so the two layers
// agree on what a "variable" is.
func (t *Taint) Analyze(fn *Func, g *Graph, du *DefUse) *TaintResult {
	r := &TaintResult{Fn: fn, t: t, idx: map[*types.Var]int{}, du: du}
	for _, d := range du.Defs {
		if _, ok := r.idx[d.Var]; !ok {
			r.idx[d.Var] = len(r.vars)
			r.vars = append(r.vars, d.Var)
		}
	}
	entry := NewBitSet(len(r.vars))
	if t.SourceParam != nil {
		for _, d := range du.Defs {
			if d.Entry() && t.SourceParam(fn, d.Var) {
				entry.Set(r.idx[d.Var])
			}
		}
	}
	p := Problem{
		Bits:  len(r.vars),
		Entry: entry,
		Transfer: func(b *Block, in BitSet) BitSet {
			out := in.Copy()
			for _, node := range b.Nodes {
				r.Apply(node, out)
			}
			return out
		},
	}
	r.sol = p.Solve(g)
	return r
}

// In returns the taint fact at block entry; ok is false for unreachable
// blocks.
func (r *TaintResult) In(b *Block) (BitSet, bool) {
	f, ok := r.sol.In[b]
	return f, ok
}

// NewFacts returns an empty fact set of the result's universe, for threading
// through a block by hand.
func (r *TaintResult) NewFacts() BitSet { return NewBitSet(len(r.vars)) }

// VarTainted reports whether v is tainted under facts.
func (r *TaintResult) VarTainted(v *types.Var, facts BitSet) bool {
	i, ok := r.idx[v]
	return ok && facts.Has(i)
}

// Apply mutates facts with the taint effect of one CFG node: assignments
// taint (or, for a plain identifier target with a clean source, untaint)
// their targets; writes through fields, stars, or indexes weakly taint the
// base variable.
func (r *TaintResult) Apply(node ast.Node, facts BitSet) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			r.applyAssign(n.Lhs, n.Rhs, facts)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, name := range n.Names {
					lhs[i] = name
				}
				r.applyAssign(lhs, n.Values, facts)
			}
		case *ast.RangeStmt:
			tainted := r.ExprTainted(n.X, facts)
			for _, e := range [2]ast.Expr{n.Key, n.Value} {
				if e != nil {
					r.setVar(e, tainted, true, facts)
				}
			}
			return false
		case *ast.CallExpr:
			// A source call fills its slice-typed arguments (io.ReadFull
			// style) — a weak update, since only part may be overwritten.
			if r.t.Source != nil && r.t.Source(r.Fn.Info, n) {
				for _, a := range n.Args {
					if tv, ok := r.Fn.Info.Types[a]; ok && tv.Type != nil {
						if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
							r.setVar(a, true, true, facts)
						}
					}
				}
			}
		}
		return true
	})
}

// applyAssign transfers one (possibly tuple) assignment.
func (r *TaintResult) applyAssign(lhs, rhs []ast.Expr, facts BitSet) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple form: a, b := f(). Taint every target when the call taints
		// any result (the summary is not per-result).
		tainted := r.ExprTainted(rhs[0], facts)
		for _, l := range lhs {
			r.setVar(l, tainted, false, facts)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			r.setVar(l, r.ExprTainted(rhs[i], facts), false, facts)
		}
	}
}

// setVar updates the taint bit of an assignment target. A plain identifier
// is a strong update (a clean value untaints); a field/index/deref write is
// a weak update of the base variable (the rest of the composite may still
// be tainted). weakOnly forces weak semantics (range bindings repeat).
func (r *TaintResult) setVar(target ast.Expr, tainted, weakOnly bool, facts BitSet) {
	e := ast.Unparen(target)
	strong := true
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e, strong = x.X, false
			continue
		case *ast.IndexExpr:
			e, strong = x.X, false
			continue
		case *ast.StarExpr:
			e, strong = x.X, false
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v := objVar(r.Fn.Info, id)
	if v == nil {
		return
	}
	i, ok := r.idx[v]
	if !ok {
		return
	}
	if tainted {
		facts.Set(i)
	} else if strong && !weakOnly {
		facts.Clear(i)
	}
}

// ExprTainted evaluates whether e reads tainted data under facts.
func (r *TaintResult) ExprTainted(e ast.Expr, facts BitSet) bool {
	switch e := ast.Unparen(e).(type) {
	case nil:
		return false
	case *ast.Ident:
		if v := objVar(r.Fn.Info, e); v != nil {
			return r.VarTainted(v, facts)
		}
		return false
	case *ast.SelectorExpr:
		// A field or method read off a tainted base is tainted; a package
		// selection (pkg.Name) never is.
		if sel, ok := r.Fn.Info.Selections[e]; ok && sel != nil {
			return r.ExprTainted(e.X, facts)
		}
		return false
	case *ast.IndexExpr:
		return r.ExprTainted(e.X, facts)
	case *ast.SliceExpr:
		return r.ExprTainted(e.X, facts)
	case *ast.StarExpr:
		return r.ExprTainted(e.X, facts)
	case *ast.UnaryExpr:
		return r.ExprTainted(e.X, facts)
	case *ast.BinaryExpr:
		return r.ExprTainted(e.X, facts) || r.ExprTainted(e.Y, facts)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if r.ExprTainted(el, facts) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return r.callTainted(e, facts)
	case *ast.TypeAssertExpr:
		return r.ExprTainted(e.X, facts)
	}
	return false
}

// callTainted evaluates a call's result taint: declared sources are always
// tainted; a type conversion or builtin passes its arguments' taint; a
// module-local callee answers through its summary; an unresolved callee
// (function value, interface method, out-of-module body) conservatively
// propagates taint from any argument or the receiver.
func (r *TaintResult) callTainted(call *ast.CallExpr, facts BitSet) bool {
	info := r.Fn.Info
	if r.t.Source != nil && r.t.Source(info, call) {
		return true
	}
	anyInput := func() bool {
		for _, a := range call.Args {
			if r.ExprTainted(a, facts) {
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s != nil {
				return r.ExprTainted(sel.X, facts)
			}
		}
		return false
	}
	// Conversions and builtins (len, cap, min, max, append, copy...) carry
	// their operands' taint.
	if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return anyInput()
	}
	obj := CalleeObj(info, call)
	if obj != nil {
		if sum := r.t.summary(obj, r.t.Depth); sum != nil {
			if sum.inherent {
				return true
			}
			if sum.fromParam {
				return anyInput()
			}
			return false
		}
	}
	return anyInput()
}

// summary computes (memoized, depth-limited) the taint summary of a
// module-local function. A nil return means "no summary": the callee is out
// of module, bodyless, or past the depth budget, and the caller falls back
// to the conservative any-argument rule.
func (t *Taint) summary(obj *types.Func, depth int) *taintSummary {
	if depth <= 0 {
		return nil
	}
	if s, ok := t.summaries[obj]; ok {
		return s
	}
	// Cycle guard: a recursive call back into a function that is still being
	// summarized gets no summary, so the caller falls back to the
	// any-argument rule. That over-taints within the cycle (the conservative
	// direction) but never caches an optimistic bottom as a member's final
	// summary — the memo is only written once the computation finishes.
	if t.inProgress[obj] {
		return nil
	}
	fn := t.cg.ByObj(obj)
	if fn == nil {
		return nil
	}
	t.inProgress[obj] = true
	defer delete(t.inProgress, obj)

	// Solve the callee intraprocedurally with every parameter treated as a
	// probe: one pass with params clean (detects inherent sources in
	// returned values) and one with params tainted (detects flow-through).
	sum := &taintSummary{}
	sub := &Taint{
		cg:         t.cg,
		Source:     t.Source,
		Depth:      depth - 1,
		summaries:  t.summaries,
		inProgress: t.inProgress,
	}
	g := fn.CFG(t.cg)
	du := BuildDefUse(fn, g)

	run := func(paramsTainted bool) bool {
		sub.SourceParam = nil
		if paramsTainted {
			sub.SourceParam = func(*Func, *types.Var) bool { return true }
		}
		res := sub.Analyze(fn, g, du)
		tainted := false
		for _, b := range g.Reachable() {
			in, ok := res.In(b)
			if !ok {
				continue
			}
			facts := in.Copy()
			for _, node := range b.Nodes {
				if ret, ok := node.(*ast.ReturnStmt); ok {
					for _, v := range ret.Results {
						if res.ExprTainted(v, facts) {
							tainted = true
						}
					}
				}
				res.Apply(node, facts)
			}
		}
		if !tainted {
			// Named results assigned before a bare return carry taint in
			// either pass: an inherent source stored into a named result is
			// as tainted as one in a return expression.
			tainted = namedResultTainted(fn, g, sub, du)
		}
		return tainted
	}
	sum.inherent = run(false)
	sum.fromParam = run(true)
	t.summaries[obj] = sum
	return sum
}

// namedResultTainted reports whether any named result variable is tainted at
// some function exit (covers bare returns, which list no expressions).
func namedResultTainted(fn *Func, g *Graph, t *Taint, du *DefUse) bool {
	ft := funcType(fn.Node)
	if ft == nil || ft.Results == nil {
		return false
	}
	var results []*types.Var
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			if v, ok := fn.Info.Defs[name].(*types.Var); ok {
				results = append(results, v)
			}
		}
	}
	if len(results) == 0 {
		return false
	}
	res := t.Analyze(fn, g, du)
	for _, b := range g.Reachable() {
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		in, ok := res.In(b)
		if !ok {
			continue
		}
		facts := in.Copy()
		for _, node := range b.Nodes {
			res.Apply(node, facts)
		}
		for _, v := range results {
			if res.VarTainted(v, facts) {
				return true
			}
		}
	}
	return false
}

// objVar resolves an identifier to the variable object it names, defined or
// used.
func objVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// exprPos is a tiny convenience for diagnostics on possibly-nil expressions.
func exprPos(e ast.Expr, fallback token.Pos) token.Pos {
	if e == nil {
		return fallback
	}
	return e.Pos()
}
