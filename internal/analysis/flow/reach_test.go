package flow

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// findSite returns the first spawn site whose label starts with prefix.
func findSite(t *testing.T, esc *Escape, prefix string) *SpawnSite {
	t.Helper()
	for _, s := range esc.Sites()[1:] {
		if strings.HasPrefix(s.Label, prefix) {
			return s
		}
	}
	t.Fatalf("no %q spawn site among %d sites", prefix, len(esc.Sites()))
	return nil
}

func TestReachableFollowsFieldsAndVarStorage(t *testing.T) {
	src := `package p
type box struct {
	v    *int
	next *box
}
var g = &box{}
func build() *box {
	n := new(int)
	b := &box{v: n}
	b.next = g
	stray := new(int)
	_ = stray
	return b
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	bObjs := pt.PointeesOf(info, mustSel(t, file, fset, src, "build", "b"))
	if len(bObjs) != 1 {
		t.Fatalf("pointees of b: %v", bObjs)
	}
	nObjs := pt.PointeesOf(info, mustSel(t, file, fset, src, "build", "n"))
	gObjs := pt.PointeesOf(info, mustSel(t, file, fset, src, "build", "g"))
	strayObjs := pt.PointeesOf(info, mustSel(t, file, fset, src, "build", "stray"))
	if len(nObjs) != 1 || len(gObjs) != 1 || len(strayObjs) != 1 {
		t.Fatalf("pointees: n=%v g=%v stray=%v", nObjs, gObjs, strayObjs)
	}
	reach := pt.Reachable(bObjs)
	if !reach[bObjs[0]] {
		t.Error("root itself must be reachable")
	}
	if !reach[nObjs[0]] {
		t.Error("object stored in field v must be reachable from b")
	}
	if !reach[gObjs[0]] {
		t.Error("object stored in field next must be reachable from b")
	}
	if reach[strayObjs[0]] {
		t.Error("an alloc never stored inside b must not be reachable")
	}
	if pt.Reachable(nil)[bObjs[0]] {
		t.Error("empty roots reach nothing")
	}
}

func TestVarPointees(t *testing.T) {
	src := `package p
func f() *int {
	x := new(int)
	return x
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	var xVar *types.Var
	for id, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && id.Name == "x" {
			xVar = v
		}
	}
	if xVar == nil {
		t.Fatal("x not found")
	}
	if got := pt.VarPointees(xVar); len(got) != 1 {
		t.Fatalf("VarPointees(x) = %v, want the new(int) alloc", got)
	}
	unknown := types.NewVar(0, nil, "ghost", types.Typ[types.Int])
	if got := pt.VarPointees(unknown); got != nil {
		t.Fatalf("VarPointees of an untracked var = %v, want nil", got)
	}
	_ = file
	_ = fset
	_ = info
}

func TestSiteSeesGoCapture(t *testing.T) {
	src := `package p
type S struct{ n int }
var G = &S{}
func Spawn() {
	local := &S{}
	other := &S{}
	_ = other
	go func() {
		local.n++
	}()
}`
	pt, esc, _, info, file, fset := buildPT(t, src)
	site := findSite(t, esc, "go@")
	localObj := pt.PointeesOf(info, mustSel(t, file, fset, src, "Spawn", "local"))
	otherObj := pt.PointeesOf(info, mustSel(t, file, fset, src, "Spawn", "other"))
	if len(localObj) != 1 || len(otherObj) != 1 {
		t.Fatalf("pointees: local=%v other=%v", localObj, otherObj)
	}
	if !esc.SiteSees(site.ID, localObj[0]) {
		t.Error("the goroutine captures local: its pointee must be visible")
	}
	if esc.SiteSees(site.ID, otherObj[0]) {
		t.Error("other never crosses the spawn: it must be invisible to the goroutine")
	}
	if !esc.SiteSees(MainCtx, otherObj[0]) {
		t.Error("the main context sees everything")
	}
	// Package-level storage is visible to every context.
	var gVar *types.Var
	for id, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && id.Name == "G" {
			gVar = v
		}
	}
	if gVar == nil || pt.VarStorage(gVar) == nil {
		t.Fatal("global G storage missing")
	}
	if !esc.SiteSees(site.ID, pt.VarStorage(gVar)) {
		t.Error("global storage must be visible to any context")
	}
}

func TestSiteSeesHandlerReceiver(t *testing.T) {
	src := `package p
import "net/http"
type Srv struct{ hits *int }
func (s *Srv) Handle(w http.ResponseWriter, r *http.Request) { *s.hits++ }
var srv = &Srv{hits: new(int)}
func use() { srv.Handle(nil, nil) }`
	pt, esc, _, info, file, fset := buildPT(t, src)
	site := findSite(t, esc, "handler ")
	srvObj := pt.PointeesOf(info, mustSel(t, file, fset, src, "use", "srv"))
	if len(srvObj) != 1 {
		t.Fatalf("pointees of srv: %v", srvObj)
	}
	if !esc.SiteSees(site.ID, srvObj[0]) {
		t.Error("a handler shares its receiver's state across requests")
	}
	hitsObj := pt.PointeesOf(info, mustSel(t, file, fset, src, "Handle", "s.hits"))
	if len(hitsObj) != 1 {
		t.Fatalf("pointees of s.hits: %v", hitsObj)
	}
	if !esc.SiteSees(site.ID, hitsObj[0]) {
		t.Error("state hanging off the receiver is in the handler's heap closure")
	}
}

// A function literal in a package-level initializer has no enclosing
// function; registering it used to dereference a nil generator context.
func TestGlobalFuncLitInitializer(t *testing.T) {
	src := `package p
var hook = func() int { return 1 }
func use() int { return hook() }`
	pt, _, _, _, _, _ := buildPT(t, src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected the initializer literal to register, got %d", len(lits))
	}
	if !strings.HasPrefix(lits[0].Name, "func@") {
		t.Errorf("parentless literal name = %q, want a bare func@ label", lits[0].Name)
	}
	if pt.EnclosingOf(lits[0].Node.(*ast.FuncLit)) != nil {
		t.Error("a package-level initializer literal has no enclosing function")
	}
}
