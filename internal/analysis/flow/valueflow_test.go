package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// localVar finds a *types.Var by name among a function's collected defs.
func localVar(t *testing.T, du *DefUse, name string) *types.Var {
	t.Helper()
	for _, d := range du.Defs {
		if d.Var.Name() == name {
			return d.Var
		}
	}
	t.Fatalf("variable %s not tracked", name)
	return nil
}

// blockOf finds the reachable block holding a node for which pred is true,
// returning the block and the node.
func blockOf(g *Graph, pred func(ast.Node) bool) (*Block, ast.Node) {
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x != nil && pred(x) {
					found = true
				}
				return !found
			})
			if found {
				return b, n
			}
		}
	}
	return nil, nil
}

// returnBlock finds a block whose nodes include a return statement carrying
// the given expression text.
func returnBlock(t *testing.T, g *Graph, text string) (*Block, ast.Node) {
	t.Helper()
	b, n := blockOf(g, func(x ast.Node) bool {
		r, ok := x.(*ast.ReturnStmt)
		return ok && len(r.Results) == 1 && types.ExprString(r.Results[0]) == text
	})
	if b == nil {
		t.Fatalf("return %s not found in any reachable block", text)
	}
	return b, n
}

func TestDefUseReachingDefs(t *testing.T) {
	funcs, _ := load(t, `package p
func merge(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
func branch(c bool) int {
	x := 1
	if c {
		x = 2
		return x
	}
	return x
}`)
	cg := NewCallGraph(funcs)

	// merge: both definitions can reach the return (may-analysis).
	{
		f := fn(t, funcs, "merge")
		g := f.CFG(cg)
		du := BuildDefUse(f, g)
		x := localVar(t, du, "x")
		b, n := returnBlock(t, g, "x")
		if got := len(du.ReachingAt(x, b, n)); got != 2 {
			t.Errorf("defs reaching merge return = %d, want 2 (x := 1 and x = 2)", got)
		}
	}

	// branch: the return inside the arm sees only x = 2 (the kill), and the
	// fall-through return sees only x := 1 (the arm exits the function).
	{
		f := fn(t, funcs, "branch")
		g := f.CFG(cg)
		du := BuildDefUse(f, g)
		x := localVar(t, du, "x")

		var armBlock, tailBlock *Block
		var armRet, tailRet ast.Node
		for _, blk := range g.Reachable() {
			hasAssign := false
			for _, node := range blk.Nodes {
				if as, ok := node.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
					hasAssign = true
				}
			}
			for _, node := range blk.Nodes {
				if _, ok := node.(*ast.ReturnStmt); ok {
					if hasAssign {
						armBlock, armRet = blk, node
					} else {
						tailBlock, tailRet = blk, node
					}
				}
			}
		}
		if armBlock == nil || tailBlock == nil {
			t.Fatal("arm and tail return blocks not found")
		}
		armDefs := du.ReachingAt(x, armBlock, armRet)
		if len(armDefs) != 1 {
			t.Fatalf("defs reaching arm return = %d, want 1", len(armDefs))
		}
		if as, ok := armDefs[0].Node.(*ast.AssignStmt); !ok || as.Tok != token.ASSIGN {
			t.Errorf("arm return reached by %T, want the x = 2 assignment", armDefs[0].Node)
		}
		tailDefs := du.ReachingAt(x, tailBlock, tailRet)
		if len(tailDefs) != 1 {
			t.Fatalf("defs reaching tail return = %d, want 1", len(tailDefs))
		}
		if as, ok := tailDefs[0].Node.(*ast.AssignStmt); !ok || as.Tok != token.DEFINE {
			t.Errorf("tail return reached by %T, want the x := 1 definition", tailDefs[0].Node)
		}
	}
}

func TestDefUseEntryDefs(t *testing.T) {
	funcs, _ := load(t, `package p
type r struct{ n int }
func (rc *r) m(a int) (out int) {
	out = a + rc.n
	return
}`)
	f := fn(t, funcs, "m")
	cg := NewCallGraph(funcs)
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	entries := map[string]bool{}
	for _, d := range du.Defs {
		if d.Entry() {
			entries[d.Var.Name()] = true
		}
	}
	for _, want := range []string{"rc", "a", "out"} {
		if !entries[want] {
			t.Errorf("entry definition for %s missing (have %v)", want, entries)
		}
	}
}

func TestDominators(t *testing.T) {
	funcs, _ := load(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	f := fn(t, funcs, "f")
	cg := NewCallGraph(funcs)
	g := f.CFG(cg)
	dom := BuildDominators(g)

	entry := g.Entry
	then, _ := blockOf(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && types.ExprString(as.Rhs[0]) == "1"
	})
	els, _ := blockOf(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && types.ExprString(as.Rhs[0]) == "2"
	})
	ret, _ := returnBlock(t, g, "x")
	if then == nil || els == nil {
		t.Fatal("branch blocks not found")
	}
	if !dom.Dominates(entry, ret) {
		t.Error("entry must dominate the return")
	}
	if !dom.Dominates(ret, ret) {
		t.Error("dominance must be reflexive")
	}
	if dom.Dominates(then, ret) || dom.Dominates(els, ret) {
		t.Error("neither branch arm may dominate the merge return")
	}
	if dom.Dominates(then, els) || dom.Dominates(els, then) {
		t.Error("sibling branch arms must not dominate each other")
	}
}

// taintAt runs the taint analysis and reports whether name is tainted at the
// block containing `return <retText>`.
func taintAt(t *testing.T, tn *Taint, f *Func, g *Graph, du *DefUse, name, retText string) bool {
	t.Helper()
	res := tn.Analyze(f, g, du)
	v := localVar(t, du, name)
	b, node := returnBlock(t, g, retText)
	in, ok := res.In(b)
	if !ok {
		t.Fatalf("return block unreachable")
	}
	facts := in.Copy()
	for _, n := range b.Nodes {
		if n == node {
			break
		}
		res.Apply(n, facts)
	}
	return res.VarTainted(v, facts)
}

const taintSrc = `package p
func read(b []byte) int { return int(b[0]) }
func passthrough(n int) int { return n + 1 }
func constant(n int) int { return 42 }
func chain1(n int) int { return passthrough(n) }
func chain2(n int) int { return chain1(n) }
func chain3(n int) int { return chain2(n) }
func inherent(b []byte) int { return read(b) }

func f(body []byte, clean int) int {
	a := read(body)
	b := passthrough(a)
	c := constant(a)
	d := passthrough(clean)
	e := chain3(a)
	h := inherent(nil)
	sum := b + c + d + e + h
	return sum
}`

// newTestTaint builds a Taint whose source rule marks read(...) calls.
func newTestTaint(cg *CallGraph) *Taint {
	tn := NewTaint(cg)
	tn.Source = func(info *types.Info, call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "read"
	}
	return tn
}

func TestTaintThroughSummaries(t *testing.T) {
	funcs, _ := load(t, taintSrc)
	f := fn(t, funcs, "f")
	cg := NewCallGraph(funcs)
	tn := newTestTaint(cg)
	tn.Depth = 4
	g := f.CFG(cg)
	du := BuildDefUse(f, g)

	cases := []struct {
		name string
		want bool
	}{
		{"a", true},  // direct source result
		{"b", true},  // flows through passthrough's fromParam summary
		{"c", false}, // constant's summary shows no flow from its params
		{"d", false}, // passthrough of a clean value stays clean
		{"e", true},  // three-deep chain within the depth budget
		{"h", true},  // inherent summary: callee reads a source itself
	}
	for _, tc := range cases {
		if got := taintAt(t, tn, f, g, du, tc.name, "sum"); got != tc.want {
			t.Errorf("taint(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTaintDepthLimit(t *testing.T) {
	funcs, _ := load(t, taintSrc)
	f := fn(t, funcs, "f")
	cg := NewCallGraph(funcs)
	tn := newTestTaint(cg)
	// Depth 2 cannot see through chain3 -> chain2 -> chain1 -> passthrough;
	// the unresolved-call fallback still propagates argument taint, which is
	// the conservative direction.
	tn.Depth = 2
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	if !taintAt(t, tn, f, g, du, "e", "sum") {
		t.Error("past the depth budget the any-argument fallback must keep e tainted")
	}
	// But a clean-by-summary callee past the budget is also treated by the
	// fallback: constant(a) becomes tainted at depth 0 where the summary is
	// unavailable.
	tn2 := newTestTaint(cg)
	tn2.Depth = 0
	if !taintAt(t, tn2, f, g, du, "c", "sum") {
		t.Error("with summaries disabled the any-argument rule must taint c")
	}
}

func TestTaintStrongUpdate(t *testing.T) {
	funcs, _ := load(t, `package p
func read(b []byte) int { return int(b[0]) }
func f(body []byte) int {
	n := read(body)
	n = 3
	return n
}`)
	f := fn(t, funcs, "f")
	cg := NewCallGraph(funcs)
	tn := newTestTaint(cg)
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	if taintAt(t, tn, f, g, du, "n", "n") {
		t.Error("reassigning a clean constant must untaint n (strong update)")
	}
}

func TestTaintSourceParamAndWeakUpdate(t *testing.T) {
	funcs, _ := load(t, `package p
type frame struct{ n int }
func decodeFrame(body []byte, fr *frame) int {
	fr.n = int(body[0])
	m := fr.n
	return m
}`)
	f := fn(t, funcs, "decodeFrame")
	cg := NewCallGraph(funcs)
	tn := NewTaint(cg)
	tn.SourceParam = func(fn *Func, v *types.Var) bool {
		return v.Name() == "body"
	}
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	if !taintAt(t, tn, f, g, du, "m", "m") {
		t.Error("a field written from a tainted param must taint the base (weak update) and flow to m")
	}
}

func TestTaintSummaryRecursionTerminates(t *testing.T) {
	funcs, _ := load(t, `package p
func read(b []byte) int { return int(b[0]) }
func odd(n int) int {
	if n == 0 {
		return 0
	}
	return even(n - 1)
}
func even(n int) int {
	if n == 0 {
		return 1
	}
	return odd(n - 1)
}
func f(body []byte) int {
	k := odd(read(body))
	return k
}`)
	f := fn(t, funcs, "f")
	cg := NewCallGraph(funcs)
	tn := newTestTaint(cg)
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	// Must converge despite the odd/even cycle; the flow-through summary
	// keeps k tainted.
	if !taintAt(t, tn, f, g, du, "k", "k") {
		t.Error("mutual recursion must converge with k tainted via fromParam")
	}
}

func TestTaintFuncNameHelper(t *testing.T) {
	// Guard against the harness drifting: the fixture names above rely on
	// suffix matching of qualified names.
	funcs, _ := load(t, `package p
func g() {}`)
	f := fn(t, funcs, "g")
	if !strings.HasSuffix(f.Name, ".g") {
		t.Fatalf("qualified name %q does not end in .g", f.Name)
	}
}
