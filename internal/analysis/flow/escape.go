package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the goroutine-escape pass of the fourth tier: which
// code runs in which goroutine contexts, and which abstract objects are
// reachable from more than one goroutine. A context is one spawn site — a
// `go` statement, a func value handed to internal/par (or a *Pool method),
// or a request-handler entry point — plus the distinguished main context.
// Context sets propagate along the module-local call graph (including
// calls through function values tracked by the points-to substrate) to a
// fixpoint.
//
// Two refinements keep the pass quiet where the runtime is actually
// ordered:
//
//   - synchronous parallel regions: a func value run by internal/par (For,
//     Run, ForCtx, …) or a *Pool method joins before the call returns, so
//     the caller's own accesses never overlap the body's. The body context
//     is marked multi-instance (worker count > 1) but the caller does not
//     share it.
//   - spawn-then-Wait: inside one function, accesses positioned after a
//     sync.WaitGroup.Wait call do not race with `go` statements launched
//     before that Wait (the join edge wg-balance already models).
//
// MainCtx is context 0; every declared function is seeded with it, since
// any exported function may be entered from the program's main goroutine.

// MainCtx is the distinguished main-goroutine context ID.
const MainCtx = 0

// SpawnSite is one non-main context.
type SpawnSite struct {
	ID    int
	Pos   token.Pos
	Multi bool   // more than one instance may run concurrently
	Sync  bool   // joined before the spawning call returns (par.* regions)
	Label string // "go@file:line", "par@file:line", "handler file:line"
}

// CtxSet is a set of context IDs.
type CtxSet map[int]bool

func (s CtxSet) clone() CtxSet {
	c := make(CtxSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// IDs returns the members in ascending order.
func (s CtxSet) IDs() []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Escape is the solved context assignment.
type Escape struct {
	pt           *PointsTo
	cg           *CallGraph
	sites        []*SpawnSite
	ctxs         map[*Func]CtxSet
	spawnedFuncs map[*Func]bool

	// carried records, per spawn site, the root objects the spawn hands to
	// its bodies: pointees of the spawn call's receiver and arguments, the
	// storage and pointees of every free variable captured by a spawned
	// literal, and a handler's receiver pointees. Together with globals these
	// bound what a context can actually see (SiteSees); reach caches the
	// heap closure per site.
	carried map[int][]*Object
	reach   map[int]map[*Object]bool

	// joinExcl records, per spawning function, spawn-site IDs that are
	// joined at a Wait position: accesses in that function after the
	// position do not share those contexts.
	joinExcl map[*Func][]joinWindow
}

type joinWindow struct {
	waitPos token.Pos
	sites   []int // sites spawned before waitPos in the same function
}

// BuildEscape computes goroutine contexts for every declared function and
// literal known to the points-to substrate.
func BuildEscape(pt *PointsTo, cg *CallGraph) *Escape {
	e := &Escape{
		pt:           pt,
		cg:           cg,
		ctxs:         map[*Func]CtxSet{},
		spawnedFuncs: map[*Func]bool{},
		joinExcl:     map[*Func][]joinWindow{},
		carried:      map[int][]*Object{},
		reach:        map[int]map[*Object]bool{},
	}
	e.sites = append(e.sites, &SpawnSite{ID: MainCtx, Label: "main"})

	var all []*Func
	all = append(all, cg.Funcs()...)
	all = append(all, pt.LitFuncs()...)
	for _, f := range all {
		if _, ok := f.Node.(*ast.FuncDecl); ok {
			e.ctxSet(f)[MainCtx] = true
			if isHandlerShaped(f) {
				s := e.newSite(f.Body.Pos(), true, false, "handler "+f.Name)
				e.ctxSet(f)[s.ID] = true
				// Request parameters are per-request; only the receiver's
				// state is shared across in-flight requests.
				if fd := f.Node.(*ast.FuncDecl); fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					if v, ok := f.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
						e.addCarried(s.ID, pt.VarPointees(v)...)
					}
				}
			}
		}
	}

	// Discover spawn sites and call edges. Literal-inherits-enclosing
	// edges are filtered after the full scan: whether a literal was handed
	// to a spawner may only be known once every function was visited
	// (`f := func(){…}; go f()`).
	type edge struct{ from, to *Func }
	var edges []edge
	var litEdges []edge
	for _, f := range all {
		ff := f
		e.scanFunc(ff, func(callee *Func, inherit bool) {
			if inherit {
				litEdges = append(litEdges, edge{ff, callee})
			} else {
				edges = append(edges, edge{ff, callee})
			}
		})
	}
	for _, ed := range litEdges {
		if !e.spawnedFuncs[ed.to] {
			edges = append(edges, ed)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ed := range edges {
			from, to := e.ctxSet(ed.from), e.ctxSet(ed.to)
			for id := range from {
				if !to[id] {
					to[id] = true
					changed = true
				}
			}
		}
	}
	return e
}

func (e *Escape) newSite(pos token.Pos, multi, sync bool, label string) *SpawnSite {
	s := &SpawnSite{ID: len(e.sites), Pos: pos, Multi: multi, Sync: sync, Label: label}
	e.sites = append(e.sites, s)
	return s
}

func (e *Escape) ctxSet(f *Func) CtxSet {
	s, ok := e.ctxs[f]
	if !ok {
		s = CtxSet{}
		e.ctxs[f] = s
	}
	return s
}

// Contexts returns the context set a function's body may run in. Literals
// inherit their enclosing function's contexts unless spawned.
func (e *Escape) Contexts(f *Func) CtxSet { return e.ctxSet(f) }

// Site returns the spawn site with the given ID.
func (e *Escape) Site(id int) *SpawnSite { return e.sites[id] }

// Sites returns every context, main first.
func (e *Escape) Sites() []*SpawnSite { return e.sites }

// scanFunc walks one function body (not descending into literals — they
// are scanned as their own Func), recording spawn sites and call edges via
// the callback; inherit=true marks a literal-inherits-enclosing edge that
// only holds if the literal is never spawned.
func (e *Escape) scanFunc(f *Func, callEdge func(callee *Func, inherit bool)) {
	var loopDepth int
	var walk func(n ast.Node) bool
	// Track wg.Wait positions and the go-sites spawned before them.
	var goSites []struct {
		id  int
		pos token.Pos
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if lf := e.pt.LitFunc(n); lf != nil {
				// A literal not handed to a spawner runs where its
				// enclosing function runs (called synchronously or stored
				// and invoked later from the same contexts we can see).
				callEdge(lf, true)
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), walk)
			loopDepth--
			return false
		case *ast.GoStmt:
			multi := loopDepth > 0
			s := e.newSite(n.Pos(), multi, false, "go@"+e.pt.posLabel(n.Pos()))
			targets := e.callTargets(f, n.Call)
			for _, t := range targets {
				e.ctxSet(t)[s.ID] = true
				e.markSpawned(t)
			}
			e.carryCall(f, n.Call, s.ID, targets)
			goSites = append(goSites, struct {
				id  int
				pos token.Pos
			}{s.ID, n.Pos()})
			// Arguments evaluate in the spawner.
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.CallExpr:
			e.scanCall(f, n, callEdge, &goSites)
			return true
		}
		return true
	}
	ast.Inspect(f.Body, walk)
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// scanCall classifies one call: a parallel-region submission, a WaitGroup
// join, or a plain (possibly indirect) call edge.
func (e *Escape) scanCall(f *Func, call *ast.CallExpr, callEdge func(callee *Func, inherit bool), goSites *[]struct {
	id  int
	pos token.Pos
}) {
	// sync.WaitGroup.Wait: accesses after this position do not race with
	// `go` statements launched before it in this function.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if tv, ok := f.Info.Types[sel.X]; ok && isSyncWaitGroup(tv.Type) {
			var ids []int
			for _, g := range *goSites {
				if g.pos < call.Pos() {
					ids = append(ids, g.id)
				}
			}
			if len(ids) > 0 {
				e.joinExcl[f] = append(e.joinExcl[f], joinWindow{waitPos: call.Pos(), sites: ids})
			}
		}
	}

	if e.isParRegion(f.Info, call) {
		// Every func-typed argument runs as a multi-instance, synchronously
		// joined worker body.
		s := e.newSite(call.Pos(), true, true, "par@"+e.pt.posLabel(call.Pos()))
		for _, a := range call.Args {
			if !isFuncTyped(f.Info, a) {
				continue
			}
			for _, t := range e.funcValueTargets(f, a) {
				e.ctxSet(t)[s.ID] = true
				e.markSpawned(t)
			}
		}
		return
	}

	if spawnsHandlers(f.Info, call) {
		s := e.newSite(call.Pos(), true, false, "handler-reg@"+e.pt.posLabel(call.Pos()))
		var targets []*Func
		for _, a := range call.Args {
			if !isFuncTyped(f.Info, a) {
				continue
			}
			for _, t := range e.funcValueTargets(f, a) {
				e.ctxSet(t)[s.ID] = true
				e.markSpawned(t)
				targets = append(targets, t)
			}
		}
		e.carryCall(f, call, s.ID, targets)
		return
	}

	// Plain call edge: module-local direct, or indirect through a tracked
	// function value.
	for _, t := range e.callTargets(f, call) {
		callEdge(t, false)
	}
}

// callTargets resolves the bodies a call may execute: the static callee
// plus any function values the points-to substrate tracked.
func (e *Escape) callTargets(f *Func, call *ast.CallExpr) []*Func {
	seen := map[*Func]bool{}
	var out []*Func
	add := func(t *Func) {
		if t != nil && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		add(e.pt.LitFunc(lit))
		return out
	}
	if obj := CalleeObj(f.Info, call); obj != nil {
		add(e.cg.ByObj(obj))
		return out
	}
	for _, t := range e.pt.FuncPointeesOf(f.Info, call.Fun) {
		add(t)
	}
	return out
}

// funcValueTargets resolves a func-typed argument expression to bodies.
func (e *Escape) funcValueTargets(f *Func, arg ast.Expr) []*Func {
	if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
		if t := e.pt.LitFunc(lit); t != nil {
			return []*Func{t}
		}
		return nil
	}
	return e.pt.FuncPointeesOf(f.Info, arg)
}

// markSpawned tags a Func as handed to a spawner, so the
// literal-inherits-enclosing edge is not added for it.
func (e *Escape) markSpawned(f *Func) { e.spawnedFuncs[f] = true }

// addCarried records objects a spawn site shares with its bodies, root
// normalized.
func (e *Escape) addCarried(id int, objs ...*Object) {
	for _, o := range objs {
		if o == nil {
			continue
		}
		r, _ := o.Root()
		e.carried[id] = append(e.carried[id], r)
	}
}

// carryCall records what a go statement or handler registration hands to the
// spawned bodies: pointees of the call's receiver and arguments (a method
// value's receiver travels with the value), and the captures of every
// spawned literal.
func (e *Escape) carryCall(f *Func, call *ast.CallExpr, id int, targets []*Func) {
	recvPointees := func(x ast.Expr) {
		if _, isPkg := f.Info.Uses[firstIdent(x)].(*types.PkgName); isPkg {
			return
		}
		e.addCarried(id, e.pt.PointeesOf(f.Info, x)...)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvPointees(sel.X)
	}
	for _, a := range call.Args {
		e.addCarried(id, e.pt.PointeesOf(f.Info, a)...)
		if sel, ok := ast.Unparen(a).(*ast.SelectorExpr); ok {
			recvPointees(sel.X)
		}
	}
	for _, t := range targets {
		e.carryFreeVars(id, t)
	}
}

// carryFreeVars records the storage and pointees of every variable a spawned
// literal captures from its environment.
func (e *Escape) carryFreeVars(id int, t *Func) {
	lit, ok := t.Node.(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := t.Info.Uses[use].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		e.addCarried(id, e.pt.VarStorage(v))
		e.addCarried(id, e.pt.VarPointees(v)...)
		return true
	})
}

// SiteSees reports whether code running under site id can reach root's
// storage at all: package globals always, anything for the main context,
// otherwise root must be in the heap closure of what the spawn carried.
// An object invisible to a context cannot race there, whatever the context
// sets of the functions touching it say — functions called both from main
// and from a handler operate on different instances in each.
func (e *Escape) SiteSees(id int, root *Object) bool {
	if id == MainCtx || root.Kind == ObjGlobal {
		return true
	}
	reach, ok := e.reach[id]
	if !ok {
		reach = e.pt.Reachable(e.carried[id])
		e.reach[id] = reach
	}
	return reach[root]
}

// isParRegion reports whether the call submits work to internal/par (the
// For/Run family or a method on a *par.Pool) or to a worker-pool type
// ("Pool"/"WorkerPool" receiver with a func-typed argument).
func (e *Escape) isParRegion(info *types.Info, call *ast.CallExpr) bool {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if strings.HasSuffix(obj.Pkg().Path(), "internal/par") {
		for _, a := range call.Args {
			if isFuncTyped(info, a) {
				return true
			}
		}
		return false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := recvNamed(sig.Recv().Type()); n != nil {
			name := n.Obj().Name()
			if strings.Contains(name, "Pool") {
				for _, a := range call.Args {
					if isFuncTyped(info, a) {
						return true
					}
				}
			}
		}
	}
	return false
}

// spawnsHandlers recognizes the stdlib registration points whose func
// arguments run concurrently per request or per timer: net/http handler
// registration and time.AfterFunc.
func spawnsHandlers(info *types.Info, call *ast.CallExpr) bool {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "net/http":
		switch obj.Name() {
		case "Handle", "HandleFunc", "HandlerFunc":
			return true
		}
	case "time":
		return obj.Name() == "AfterFunc"
	}
	return false
}

func isFuncTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Signature)
	return ok
}

func isSyncWaitGroup(t types.Type) bool {
	n := recvNamed(t)
	return n != nil && n.Obj().Name() == "WaitGroup" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

func recvNamed(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isHandlerShaped reports whether a declared function takes request-scoped
// HTTP parameters: such functions run once per in-flight request.
func isHandlerShaped(f *Func) bool {
	fd, ok := f.Node.(*ast.FuncDecl)
	if !ok || fd.Type.Params == nil {
		return false
	}
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			v, _ := f.Info.Defs[name].(*types.Var)
			if v == nil {
				continue
			}
			t := v.Type()
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http" {
				switch n.Obj().Name() {
				case "Request", "ResponseWriter":
					return true
				}
			}
		}
	}
	return false
}

// AccessContexts returns the contexts an access at pos inside f runs in.
// The spawn-then-Wait refinement is exposed separately via ExcludedSites:
// the joined sites belong to the spawned bodies' context sets, so the
// subtraction applies when intersecting an access against *other*
// accesses, not to f's own set.
func (e *Escape) AccessContexts(f *Func, pos token.Pos) CtxSet {
	return e.ctxSet(f).clone()
}

// ExcludedSites returns the spawn-site IDs an access at pos in f is
// ordered after (joined by an earlier Wait).
func (e *Escape) ExcludedSites(f *Func, pos token.Pos) map[int]bool {
	var out map[int]bool
	for _, jw := range e.joinExcl[f] {
		if pos > jw.waitPos {
			if out == nil {
				out = map[int]bool{}
			}
			for _, id := range jw.sites {
				out[id] = true
			}
		}
	}
	return out
}

// SharedMarker accumulates, per abstract object, the union of contexts its
// accesses were observed in — the "reachable from more than one goroutine"
// marking the race checks consume.
type SharedMarker struct {
	e    *Escape
	ctxs map[*Object]CtxSet
}

// NewSharedMarker returns an empty marker.
func (e *Escape) NewSharedMarker() *SharedMarker {
	return &SharedMarker{e: e, ctxs: map[*Object]CtxSet{}}
}

// Mark records that obj was accessed from the given contexts.
func (m *SharedMarker) Mark(obj *Object, ctxs CtxSet) {
	s, ok := m.ctxs[obj]
	if !ok {
		s = CtxSet{}
		m.ctxs[obj] = s
	}
	for id := range ctxs {
		s[id] = true
	}
}

// Contexts returns the accumulated context union for obj.
func (m *SharedMarker) Contexts(obj *Object) CtxSet { return m.ctxs[obj] }

// Shared reports whether obj is reachable from more than one goroutine:
// its accesses span at least two contexts, or any one multi-instance
// context (every instance is its own goroutine).
func (m *SharedMarker) Shared(obj *Object) bool {
	s := m.ctxs[obj]
	if len(s) >= 2 {
		return true
	}
	for id := range s {
		if m.e.sites[id].Multi {
			return true
		}
	}
	return false
}

// SharedCtxs reports the shared test over a bare context set.
func (e *Escape) SharedCtxs(s CtxSet) bool {
	if len(s) >= 2 {
		return true
	}
	for id := range s {
		if e.sites[id].Multi {
			return true
		}
	}
	return false
}
