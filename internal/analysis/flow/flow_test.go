package flow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load typechecks one source file and returns its funcs plus the fileset.
func load(t *testing.T, src string) ([]*Func, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return CollectFuncs("p", info, []*ast.File{f}), fset
}

// fn finds a collected function by bare name.
func fn(t *testing.T, funcs []*Func, name string) *Func {
	t.Helper()
	for _, f := range funcs {
		if strings.HasSuffix(f.Name, "."+name) {
			return f
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	funcs, _ := load(t, `package p
func f() int {
	x := 1
	x++
	return x
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("straight line should flow entry -> exit, got succs %v", g.Entry.Succs)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry should hold 3 nodes, got %d", len(g.Entry.Nodes))
	}
}

func TestCFGIfElse(t *testing.T) {
	funcs, _ := load(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("if/else should branch 2 ways from entry, got %d", n)
	}
	// Both arms merge; exit has one pred (the join).
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestCFGIfNoElse(t *testing.T) {
	funcs, _ := load(t, `package p
func f(c bool) {
	if x := 1; c {
		_ = x
	}
	return
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("if without else still branches 2 ways (then, join), got %d", n)
	}
}

func TestCFGForLoop(t *testing.T) {
	funcs, _ := load(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		s += i
	}
	return s
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	// head: entered from outside and from post (back edge).
	if len(head.Preds) != 2 {
		t.Fatalf("for.head preds = %d, want 2", len(head.Preds))
	}
	reach := g.Reachable()
	if len(reach) == len(g.Blocks) {
		// break/continue produce joins that are all reachable here; just
		// assert exit is reachable.
	}
	found := false
	for _, b := range reach {
		if b == g.Exit {
			found = true
		}
	}
	if !found {
		t.Fatal("exit not reachable")
	}
}

func TestCFGInfiniteLoopUnreachableExitPath(t *testing.T) {
	funcs, _ := load(t, `package p
func f() {
	for {
	}
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	for _, b := range g.Reachable() {
		if b == g.Exit {
			t.Fatal("exit must be unreachable past `for {}`")
		}
	}
}

func TestCFGRange(t *testing.T) {
	funcs, _ := load(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range.head should have 2 succs (body, exit)")
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	funcs, _ := load(t, `package p
func f(x int) int {
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	return x
}
func g(x int) int {
	switch {
	case x > 0:
		return 1
	}
	return 0
}`)
	cg := NewCallGraph(funcs)
	gf := fn(t, funcs, "f").CFG(cg)
	// With a default present, entry must not edge straight to the join.
	var join *Block
	for _, b := range gf.Blocks {
		if b.Kind == "switch.join" {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no switch.join")
	}
	for _, s := range gf.Entry.Succs {
		if s == join {
			t.Fatal("switch with default must not flow head->join directly")
		}
	}
	// Without a default, the head edges to the join.
	gg := fn(t, funcs, "g").CFG(cg)
	var join2 *Block
	for _, b := range gg.Blocks {
		if b.Kind == "switch.join" {
			join2 = b
		}
	}
	ok := false
	for _, s := range gg.Entry.Succs {
		if s == join2 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("switch without default must flow head->join")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	funcs, _ := load(t, `package p
func f(v any) int {
	switch v.(type) {
	case int:
		return 1
	case string:
		return 2
	}
	return 0
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	if len(g.Exit.Preds) < 3 {
		t.Fatalf("type switch with 2 returning cases + tail return: exit preds = %d, want >= 3", len(g.Exit.Preds))
	}
}

func TestCFGSelect(t *testing.T) {
	funcs, _ := load(t, `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case b <- 1:
	}
	return 0
}
func empty() {
	select {}
}`)
	cg := NewCallGraph(funcs)
	g := fn(t, funcs, "f").CFG(cg)
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("select fans out to its 2 comm clauses, got %d succs", n)
	}
	ge := fn(t, funcs, "empty").CFG(cg)
	for _, b := range ge.Reachable() {
		if b == ge.Exit {
			t.Fatal("select{} never proceeds; exit must be unreachable")
		}
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	funcs, _ := load(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}
func g(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				continue outer
			}
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}`)
	cg := NewCallGraph(funcs)
	gf := fn(t, funcs, "f").CFG(cg)
	var label *Block
	for _, b := range gf.Blocks {
		if b.Kind == "label.loop" {
			label = b
		}
	}
	if label == nil || len(label.Preds) != 2 {
		t.Fatalf("label block should have 2 preds (fall-in, goto), got %v", label)
	}
	gg := fn(t, funcs, "g").CFG(cg)
	for _, b := range gg.Reachable() {
		if b == gg.Exit {
			return // labeled break reaches function end: fine
		}
	}
	t.Fatal("labeled break should reach exit")
}

func TestCFGTerminatingCalls(t *testing.T) {
	funcs, _ := load(t, `package p
import "os"
func f(c bool) int {
	if c {
		panic("no")
	}
	os.Exit(2)
	return 1
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	// The `return 1` after os.Exit is dead.
	dead := false
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 && b != g.Entry && len(b.Nodes) > 0 {
			dead = true
		}
	}
	if !dead {
		t.Fatal("statements after os.Exit should land in an unreachable block")
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	funcs, _ := load(t, `package p
func f() int {
	return 1
	x := 2 //nolint
	return x
}`)
	g := fn(t, funcs, "f").CFG(NewCallGraph(funcs))
	reach := g.Reachable()
	if len(reach) >= len(g.Blocks) {
		t.Fatal("dead code after return should be unreachable")
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(130)
	b := NewBitSet(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	b.Set(64)
	if !a.Has(129) || a.Has(1) {
		t.Fatal("Set/Has broken")
	}
	if a.Empty() || !NewBitSet(130).Empty() {
		t.Fatal("Empty broken")
	}
	c := a.Copy()
	if !c.Equal(a) || c.Equal(b) {
		t.Fatal("Copy/Equal broken")
	}
	if changed := c.IntersectWith(b); !changed {
		t.Fatal("IntersectWith should report change")
	}
	if got := c.Bits(); len(got) != 1 || got[0] != 64 {
		t.Fatalf("intersect bits = %v, want [64]", got)
	}
	if changed := c.UnionWith(a); !changed || !c.Equal(a) {
		t.Fatal("UnionWith broken")
	}
	c.Clear(64)
	if c.Has(64) {
		t.Fatal("Clear broken")
	}
	f := NewBitSet(70)
	f.Fill()
	if got := len(f.Bits()); got != 70 {
		t.Fatalf("Fill set %d bits, want 70", got)
	}
	if f.Len() != 70 {
		t.Fatal("Len broken")
	}
}

// gkTransfer builds a transfer function from per-node gen/kill maps keyed
// by statement rendering order — here driven by simple node identity sets.
func gkTransfer(gen, kill map[ast.Node]int) func(b *Block, in BitSet) BitSet {
	return func(b *Block, in BitSet) BitSet {
		for _, n := range b.Nodes {
			if i, ok := kill[n]; ok {
				in.Clear(i)
			}
			if i, ok := gen[n]; ok {
				in.Set(i)
			}
		}
		return in
	}
}

// lockLikeFixture builds a CFG where bit 0 is "held": gen at calls to
// lock(), kill at calls to unlock().
func lockLikeFixture(t *testing.T, src string) (*Graph, func(b *Block, in BitSet) BitSet) {
	t.Helper()
	funcs, _ := load(t, src)
	f := fn(t, funcs, "f")
	g := f.CFG(NewCallGraph(funcs))
	gen := map[ast.Node]int{}
	kill := map[ast.Node]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if id.Name == "lock" {
						gen[n] = 0
					}
					if id.Name == "unlock" {
						kill[n] = 0
					}
				}
				return true
			})
		}
	}
	return g, gkTransfer(gen, kill)
}

const lockSrc = `package p
func lock()   {}
func unlock() {}
func f(c bool) {
	if c {
		lock()
	}
	unlock()
}`

func TestSolveMayVsMust(t *testing.T) {
	g, transfer := lockLikeFixture(t, lockSrc)
	may := (&Problem{Bits: 1, Transfer: transfer}).Solve(g)
	must := (&Problem{Bits: 1, Must: true, Transfer: transfer}).Solve(g)

	// At the join after the if (the block containing unlock()), MAY-in has
	// the lock held, MUST-in does not.
	var join *Block
	for _, b := range g.Blocks {
		if b.Kind == "if.join" {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no if.join block")
	}
	if !may.In[join].Has(0) {
		t.Fatal("may-analysis should see the lock held on some path at the join")
	}
	if must.In[join].Has(0) {
		t.Fatal("must-analysis should not see the lock held on every path at the join")
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	g, transfer := lockLikeFixture(t, `package p
func lock()   {}
func unlock() {}
func f(c bool) {
	for i := 0; i < 3; i++ {
		lock()
		unlock()
	}
}`)
	must := (&Problem{Bits: 1, Must: true, Transfer: transfer}).Solve(g)
	// After the loop, the lock is not held on any path.
	if out, ok := must.Out[g.Exit]; ok && out.Has(0) {
		t.Fatal("balanced lock/unlock in a loop must not be held at exit")
	}
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if must.In[head].Has(0) {
		t.Fatal("loop head must converge to not-held (entry path joins back edge)")
	}
}

func TestSolveUnbalancedLoop(t *testing.T) {
	g, transfer := lockLikeFixture(t, `package p
func lock()   {}
func unlock() {}
func f(c bool) {
	for i := 0; i < 3; i++ {
		lock()
	}
}`)
	may := (&Problem{Bits: 1, Transfer: transfer}).Solve(g)
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if !may.In[head].Has(0) {
		t.Fatal("may-analysis must propagate held around the back edge")
	}
}

func TestSolveEntryFact(t *testing.T) {
	funcs, _ := load(t, `package p
func f() {}`)
	f := fn(t, funcs, "f")
	g := f.CFG(NewCallGraph(funcs))
	entry := NewBitSet(2)
	entry.Set(1)
	sol := (&Problem{
		Bits:     2,
		Entry:    entry,
		Transfer: func(b *Block, in BitSet) BitSet { return in },
	}).Solve(g)
	if !sol.In[g.Entry].Has(1) || sol.In[g.Entry].Has(0) {
		t.Fatal("entry fact not seeded")
	}
	if !sol.Out[g.Exit].Has(1) {
		t.Fatal("identity transfer should carry the entry fact to exit")
	}
}

func TestCalleeResolution(t *testing.T) {
	funcs, _ := load(t, `package p
import "fmt"
type T struct{}
func (T) m() {}
func helper() {}
func f() {
	helper()
	var t T
	t.m()
	fmt.Println()
	g := func() {}
	g()
	func() {}()
}`)
	cg := NewCallGraph(funcs)
	f := fn(t, funcs, "f")
	var calls []*ast.CallExpr
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 5 {
		t.Fatalf("expected 5 calls, got %d", len(calls))
	}
	if got := cg.Callee(f.Info, calls[0]); got == nil || !strings.HasSuffix(got.Name, ".helper") {
		t.Fatalf("helper() resolved to %v", got)
	}
	if got := cg.Callee(f.Info, calls[1]); got == nil || !strings.HasSuffix(got.Name, "T.m") {
		t.Fatalf("t.m() resolved to %v", got)
	}
	if got := cg.Callee(f.Info, calls[2]); got != nil {
		t.Fatalf("fmt.Println should not resolve to a module Func, got %v", got)
	}
	if obj := CalleeObj(f.Info, calls[2]); obj == nil || obj.Pkg().Path() != "fmt" {
		t.Fatalf("CalleeObj(fmt.Println) = %v", obj)
	}
	if got := cg.Callee(f.Info, calls[3]); got != nil {
		t.Fatalf("call through func value should not resolve, got %v", got)
	}
	if got := cg.Callee(f.Info, calls[4]); got == nil || got.Name != "func-literal" {
		t.Fatalf("immediately invoked literal should resolve to a synthetic Func, got %v", got)
	}
	// ByObj round-trip.
	h := fn(t, funcs, "helper")
	if cg.ByObj(h.Obj) != h {
		t.Fatal("ByObj should return the indexed Func")
	}
	if len(cg.Funcs()) != len(funcs) {
		t.Fatal("Funcs() should return everything indexed")
	}
}

func TestTerminatesClassification(t *testing.T) {
	funcs, _ := load(t, `package p
import (
	"log"
	"os"
	"runtime"
)
func f() {
	panic("x")
}
func g() {
	os.Exit(1)
}
func h() {
	log.Fatalf("x")
}
func i() {
	runtime.Goexit()
}
func j() {
	os.Getpid()
}`)
	cg := NewCallGraph(funcs)
	check := func(name string, want bool) {
		f := fn(t, funcs, name)
		var call *ast.CallExpr
		ast.Inspect(f.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && call == nil {
				call = c
			}
			return true
		})
		if got := cg.Terminates(f.Info, call); got != want {
			t.Errorf("%s: Terminates = %v, want %v", name, got, want)
		}
	}
	check("f", true)
	check("g", true)
	check("h", true)
	check("i", true)
	check("j", false)
}

func TestRecvTypeNames(t *testing.T) {
	funcs, _ := load(t, `package p
type G[T any] struct{}
func (*G[T]) m() {}
type S struct{}
func (s *S) n() {}`)
	var names []string
	for _, f := range funcs {
		names = append(names, f.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "p.G.m") || !strings.Contains(joined, "p.S.n") {
		t.Fatalf("receiver names wrong: %v", names)
	}
}

func ExampleBuildCFG() {
	fset := token.NewFileSet()
	f, _ := parser.ParseFile(fset, "x.go", `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 0
}`, 0)
	fd := f.Decls[0].(*ast.FuncDecl)
	g := BuildCFG(fd.Body, nil)
	fmt.Println(len(g.Exit.Preds) == 2)
	// Output: true
}
