package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildPTPath is buildPT with a chosen package import path (so tests can
// exercise the internal/par spawn-site recognition, which keys on the
// callee's package path suffix).
func buildPTPath(t *testing.T, pkgPath, src string) (*PointsTo, *Escape, []*Func, *types.Info, *ast.File, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(pkgPath, fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	funcs := CollectFuncs(pkgPath, info, []*ast.File{f})
	cg := NewCallGraph(funcs)
	var globals []Global
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, s := range gd.Specs {
			if vs, ok := s.(*ast.ValueSpec); ok {
				globals = append(globals, Global{Info: info, Spec: vs})
			}
		}
	}
	pt := BuildPointsTo(fset, cg, globals)
	esc := BuildEscape(pt, cg)
	return pt, esc, funcs, info, f, fset
}

func TestPointsToRangeForms(t *testing.T) {
	src := `package p
type T struct{ v int }
func overSlice(xs []*T) *T {
	for _, x := range xs {
		return x
	}
	return nil
}
func overMap(m map[*T]*T) (*T, *T) {
	for k, v := range m {
		return k, v
	}
	return nil, nil
}
func overChan(ch chan *T) *T {
	for x := range ch {
		return x
	}
	return nil
}
func overArray(a [2]*T) *T {
	for _, x := range a {
		return x
	}
	return nil
}
func drive() {
	t := &T{}
	overSlice([]*T{t})
	overMap(map[*T]*T{t: t})
	ch := make(chan *T, 1)
	ch <- t
	overChan(ch)
	overArray([2]*T{t, t})
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	for _, fn := range []string{"overSlice", "overChan", "overArray"} {
		e := mustSel(t, file, fset, src, fn, "x")
		if got := pt.PointeesOf(info, e); len(got) != 1 {
			t.Errorf("%s: range value should carry the element, got %v", fn, got)
		}
	}
	kExpr := mustSel(t, file, fset, src, "overMap", "k")
	vExpr := mustSel(t, file, fset, src, "overMap", "v")
	if got := pt.PointeesOf(info, vExpr); len(got) != 1 {
		t.Errorf("map range value should carry the element, got %v", got)
	}
	if got := pt.PointeesOf(info, kExpr); len(got) != 1 {
		t.Errorf("map range key should carry the key object, got %v", got)
	}
}

func TestPointsToMultiValueForms(t *testing.T) {
	src := `package p
type T struct{ v int }
func pair() (*T, *T) { return &T{}, &T{} }
func f() (*T, *T, *T, *T, *T) {
	a, b := pair()
	m := map[string]*T{"k": &T{}}
	c, _ := m["k"]
	var i interface{} = &T{}
	d, _ := i.(*T)
	ch := make(chan *T, 1)
	ch <- &T{}
	e, _ := <-ch
	return a, b, c, d, e
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		ex := mustSel(t, file, fset, src, "f", name)
		if got := pt.PointeesOf(info, ex); len(got) != 1 {
			t.Errorf("%s: expected exactly one pointee, got %v", name, got)
		}
	}
	// a and b come from distinct result slots.
	a := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "a"))
	b := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "b"))
	if len(a) == 1 && len(b) == 1 && a[0] == b[0] {
		t.Error("multi-result call conflated its result slots")
	}
}

func TestPointsToVariadicAndConversions(t *testing.T) {
	src := `package p
type T struct{ v int }
type MyT = *T
func sink(xs ...*T) *T {
	for _, x := range xs {
		return x
	}
	return nil
}
func f() (*T, *T) {
	u := sink(&T{}, &T{})
	w := (MyT)(&T{})
	return u, w
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	u := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "u"))
	if len(u) != 2 {
		t.Errorf("variadic args should land in the parameter's elements: %v", u)
	}
	w := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "w"))
	if len(w) != 1 {
		t.Errorf("conversion should flow its operand through: %v", w)
	}
}

func TestPointsToValueReceiverVariants(t *testing.T) {
	src := `package p
type S struct{ p *int }
func (s S) Get() *int  { return s.p }
func (s *S) PGet() *int { return s.p }
func f() (*int, *int, *int) {
	x := new(int)
	s := S{p: x}
	ps := &S{p: x}
	return s.Get(), ps.Get(), s.PGet()
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	for _, want := range []string{"s.Get()", "ps.Get()", "s.PGet()"} {
		ex := mustSel(t, file, fset, src, "f", want)
		if got := pt.PointeesOf(info, mustNodeQuery(pt, info, ex)); got == nil {
			_ = got
		}
	}
	// Query via named results instead: rewrite with locals.
	src2 := `package p
type S struct{ p *int }
func (s S) Get() *int  { return s.p }
func (s *S) PGet() *int { return s.p }
func f() (*int, *int, *int) {
	x := new(int)
	s := S{p: x}
	ps := &S{p: x}
	a := s.Get()
	b := ps.Get()
	c := s.PGet()
	return a, b, c
}`
	pt2, _, _, info2, file2, fset2 := buildPT(t, src2)
	for _, name := range []string{"a", "b", "c"} {
		ex := mustSel(t, file2, fset2, src2, "f", name)
		if got := pt2.PointeesOf(info2, ex); len(got) != 1 {
			t.Errorf("%s: receiver linking lost the pointee, got %v", name, got)
		}
	}
}

// mustNodeQuery is a no-op passthrough kept to exercise PointeesOf on raw
// call expressions (which are untracked by design and must return nil, not
// panic).
func mustNodeQuery(pt *PointsTo, info *types.Info, e ast.Expr) ast.Expr { return e }

func TestPointsToBuiltinsAndSlices(t *testing.T) {
	src := `package p
type T struct{ v int }
func f() (*T, *T, *T) {
	a := make([]*T, 0, 4)
	a = append(a, &T{})
	b := make([]*T, 1)
	copy(b, a)
	more := []*T{&T{}}
	a = append(a, more...)
	tail := a[1:]
	return a[0], b[0], tail[0]
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	a0 := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "a[0]"))
	if len(a0) != 2 {
		t.Errorf("append + spread-append should accumulate both allocs: %v", a0)
	}
	b0 := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "b[0]"))
	if len(b0) == 0 {
		t.Errorf("copy should flow source elements into dst: %v", b0)
	}
	t0 := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "tail[0]"))
	if len(t0) != 2 {
		t.Errorf("reslicing shares the backing store: %v", t0)
	}
}

func TestPointsToDerefAndNestedComposite(t *testing.T) {
	src := `package p
type Inner struct{ p *int }
type Outer struct {
	in   Inner
	pin  *Inner
	m    map[string]*Inner
	list []*Inner
}
func f() (*int, *Inner, *Inner, *Inner) {
	x := new(int)
	o := &Outer{
		in:   Inner{p: x},
		pin:  &Inner{p: x},
		m:    map[string]*Inner{"k": {p: x}},
		list: []*Inner{{p: x}},
	}
	pp := &o.in
	q := *&o.pin
	return pp.p, q, o.m["k"], o.list[0]
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	got := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "pp.p"))
	if len(got) != 1 {
		t.Errorf("nested value-composite field should hold x: %v", got)
	}
	for _, want := range []string{"q", `o.m["k"]`, "o.list[0]"} {
		ex := mustSel(t, file, fset, src, "f", want)
		if got := pt.PointeesOf(info, ex); len(got) != 1 {
			t.Errorf("%s: expected one pointee, got %v", want, got)
		}
	}
	// LocsOf through a pointer base and an index.
	locs := pt.LocsOf(info, mustSel(t, file, fset, src, "f", "o.pin"))
	if len(locs) != 1 || locs[0].Path != "pin" {
		t.Errorf("o.pin loc: %v", locs)
	}
	// The map literal is its own allocation; its elements canonicalize to
	// (mapAlloc, "[]").
	elemLocs := pt.LocsOf(info, mustSel(t, file, fset, src, "f", `o.m["k"]`))
	if len(elemLocs) != 1 || elemLocs[0].Path != "[]" {
		t.Errorf("map element loc should be (mapAlloc, []): %v", elemLocs)
	}
}

func TestPointsToGlobalInitAndStrings(t *testing.T) {
	src := `package p
type T struct{ v int }
var def = &T{}
var tab = map[string]*T{"d": def}
func get() *T { return tab["d"] }`
	pt, _, _, info, file, fset := buildPT(t, src)
	got := pt.PointeesOf(info, mustSel(t, file, fset, src, "get", `tab["d"]`))
	if len(got) != 1 {
		t.Fatalf("global init chain broken: %v", got)
	}
	if s := got[0].String(); s == "" {
		t.Error("Object.String should be non-empty")
	}
	locs := pt.LocsOf(info, mustSel(t, file, fset, src, "get", `tab["d"]`))
	if len(locs) != 1 {
		t.Fatalf("map element locs: %v", locs)
	}
	if s := locs[0].String(); !strings.Contains(s, "[]") {
		t.Errorf("Loc.String should show the element path, got %q", s)
	}
	// VarStorage materialized the globals.
	var defVar *types.Var
	for id, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && id.Name == "def" {
			defVar = v
		}
	}
	if defVar == nil || pt.VarStorage(defVar) == nil {
		t.Error("VarStorage should know the global's storage object")
	}
}

func TestPointsToEnclosingOfAndLitFuncs(t *testing.T) {
	src := `package p
func outer() func() {
	inner := func() {}
	return inner
}`
	pt, _, _, _, _, _ := buildPT(t, src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected 1 literal, got %d", len(lits))
	}
	lit := lits[0].Node.(*ast.FuncLit)
	enc := pt.EnclosingOf(lit)
	if fd, ok := enc.(*ast.FuncDecl); !ok || fd.Name.Name != "outer" {
		t.Errorf("EnclosingOf should return outer's decl, got %T", enc)
	}
}

func TestEscapeParRegionByPackagePath(t *testing.T) {
	src := `package par
func For(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
func caller() {
	body := func(i int) {}
	For(4, body)
	after()
}
func after() {}`
	pt, esc, funcs, _, _, _ := buildPTPath(t, "graftmatch/internal/par", src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected the worker literal, got %d", len(lits))
	}
	var parSite *SpawnSite
	for id := range esc.Contexts(lits[0]) {
		if id != MainCtx {
			parSite = esc.Site(id)
		}
	}
	if parSite == nil || !parSite.Multi || !parSite.Sync {
		t.Fatalf("par worker body should run in a Multi+Sync site, got %+v", parSite)
	}
	if !strings.HasPrefix(parSite.Label, "par@") {
		t.Errorf("site label: %q", parSite.Label)
	}
	// The caller does not share the synchronous region's context.
	c := fn(t, funcs, "caller")
	if esc.Contexts(c)[parSite.ID] {
		t.Error("caller must not share the synchronously joined region")
	}
	if esc.SharedCtxs(esc.Contexts(c)) {
		t.Error("caller should remain main-only")
	}
	if got := len(esc.Sites()); got < 2 {
		t.Errorf("Sites should include main + par site, got %d", got)
	}
}

func TestEscapePoolReceiverIsParRegion(t *testing.T) {
	src := `package p
type Pool struct{}
func (p *Pool) ForCtx(n int, f func(int)) {}
func caller(p *Pool) {
	p.ForCtx(2, func(i int) {})
}`
	pt, esc, _, _, _, _ := buildPT(t, src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected 1 literal, got %d", len(lits))
	}
	multi := false
	for id := range esc.Contexts(lits[0]) {
		if id != MainCtx && esc.Site(id).Multi && esc.Site(id).Sync {
			multi = true
		}
	}
	if !multi {
		t.Error("Pool method submission should be a Multi+Sync spawn site")
	}
}

func TestEscapeHandlerRegistration(t *testing.T) {
	src := `package p
import (
	"net/http"
	"time"
)
func install() {
	http.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {})
	time.AfterFunc(time.Second, tick)
}
func tick() {}`
	pt, esc, funcs, _, _, _ := buildPT(t, src)
	lits := pt.LitFuncs()
	if len(lits) != 1 {
		t.Fatalf("expected handler literal, got %d", len(lits))
	}
	if !esc.SharedCtxs(esc.Contexts(lits[0])) {
		t.Error("registered handler literal must count as shared")
	}
	tk := fn(t, funcs, "tick")
	found := false
	for id := range esc.Contexts(tk) {
		if id != MainCtx && strings.HasPrefix(esc.Site(id).Label, "handler-reg@") {
			found = true
		}
	}
	if !found {
		t.Errorf("AfterFunc target should carry a handler-reg context: %v", esc.Contexts(tk).IDs())
	}
}

func TestEscapeAccessContextsAndCtxSetOps(t *testing.T) {
	src := `package p
func f() { go g() }
func g() {}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	g := fn(t, funcs, "g")
	ac := esc.AccessContexts(g, g.Body.Pos())
	if len(ac) != len(esc.Contexts(g)) {
		t.Error("AccessContexts should return the function's context set")
	}
	ac[99] = true
	if esc.Contexts(g)[99] {
		t.Error("AccessContexts must return a clone, not the live set")
	}
	ids := esc.Contexts(g).IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs must be ascending")
		}
	}
}

func TestEscapeIndirectSpawnThroughFuncPointees(t *testing.T) {
	// go through a func-typed variable whose target only the points-to
	// substrate knows.
	src := `package p
func mk() func() { return body }
func body() {}
func f() {
	h := mk()
	go h()
}`
	_, esc, funcs, _, _, _ := buildPT(t, src)
	b := fn(t, funcs, "body")
	spawned := false
	for id := range esc.Contexts(b) {
		if id != MainCtx {
			spawned = true
		}
	}
	if !spawned {
		t.Error("spawn through a tracked function value should reach body")
	}
}

func TestPointsToSelfAssignAndOpAssign(t *testing.T) {
	src := `package p
type T struct{ v int }
func f() *T {
	x := &T{}
	x = x
	n := 1
	n += 2
	_ = n
	return x
}`
	pt, _, _, info, file, fset := buildPT(t, src)
	got := pt.PointeesOf(info, mustSel(t, file, fset, src, "f", "x"))
	if len(got) != 1 {
		t.Errorf("self-assign must converge with one pointee: %v", got)
	}
}
