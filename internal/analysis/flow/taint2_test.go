package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// taintOf runs the taint analysis over one function and returns whether the
// named local is tainted at the end of the entry-reachable straight line.
func runTaint(t *testing.T, src, funcName string, source func(name string) bool) (*TaintResult, *Graph) {
	t.Helper()
	funcs, _ := load(t, src)
	f := fn(t, funcs, funcName)
	cg := NewCallGraph(funcs)
	ta := NewTaint(cg)
	ta.Source = func(info *types.Info, call *ast.CallExpr) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return source(id.Name)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return source(sel.Sel.Name)
		}
		return false
	}
	g := f.CFG(cg)
	du := BuildDefUse(f, g)
	return ta.Analyze(f, g, du), g
}

func TestTaintFormsAndSummaries(t *testing.T) {
	src := `package p
type Pkt struct{ b []byte }
func src() []byte { return nil }
func fill(b []byte) {}
func pass(b []byte) []byte { return b }
func clean() int { return 0 }
func rec(n int, b []byte) []byte {
	if n == 0 {
		return b
	}
	return rec(n-1, b)
}
func named() (out []byte) {
	out = src()
	return
}
func f() {
	var a = src()
	m, n := twin()
	var buf []byte
	fill(buf)
	p := Pkt{b: a}
	q := p.b
	r := pass(a)
	s := a[1:]
	u := *(&n)
	w := len(a)
	x := []byte(nil)
	x = append(x, a...)
	y := clean()
	z := rec(3, a)
	nb := named()
	var arr [4][]byte
	for _, e := range arr {
		_ = e
	}
	_, _, _, _, _, _, _, _, _, _, _ = m, q, r, s, u, w, x, y, z, nb, buf
}
func twin() ([]byte, []byte) { return src(), nil }`
	res, g := runTaint(t, src, "f", func(name string) bool { return name == "src" || name == "fill" })

	// Thread facts through the function body by hand, NewFacts-style.
	facts := res.NewFacts()
	for _, b := range g.Reachable() {
		if in, ok := res.In(b); ok && b == g.Entry {
			facts = in.Copy()
		}
	}
	var body *ast.BlockStmt
	body = res.Fn.Body
	for _, stmt := range body.List {
		res.Apply(stmt, facts)
	}
	tainted := func(name string) bool {
		var v *ast.Ident
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name && v == nil {
				v = id
			}
			return true
		})
		if v == nil {
			t.Fatalf("ident %s not found", name)
		}
		vr := objVar(res.Fn.Info, v)
		if vr == nil {
			t.Fatalf("ident %s has no var", name)
		}
		return res.VarTainted(vr, facts)
	}
	for _, want := range []struct {
		name string
		want bool
	}{
		{"a", true},    // direct source
		{"m", true},    // tuple via summary (inherent)
		{"buf", true},  // filled slice arg of a source
		{"q", true},    // field read off tainted composite
		{"r", true},    // flow-through summary (fromParam)
		{"s", true},    // reslice of tainted
		{"w", true},    // builtin over tainted operand
		{"x", true},    // append spread of tainted
		{"y", false},   // clean callee summary
		{"z", true},    // recursive callee: conservative any-arg rule
		{"nb", true},   // named-result bare return summary
	} {
		if got := tainted(want.name); got != want.want {
			t.Errorf("%s: tainted=%v, want %v", want.name, got, want.want)
		}
	}
}

func TestTaintUntaintAndWeakUpdates(t *testing.T) {
	src := `package p
func src() []byte { return nil }
func f() {
	a := src()
	a = nil
	_ = a
	b := src()
	var pk struct{ d []byte }
	pk.d = b
	c := map[string][]byte{}
	c["k"] = b
	var i interface{} = b
	dd, _ := i.([]byte)
	_, _, _ = pk, c, dd
}`
	res, _ := runTaint(t, src, "f", func(name string) bool { return name == "src" })
	facts := res.NewFacts()
	for _, stmt := range res.Fn.Body.List {
		res.Apply(stmt, facts)
	}
	check := func(name string, want bool) {
		var v *ast.Ident
		ast.Inspect(res.Fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name && v == nil {
				v = id
			}
			return true
		})
		vr := objVar(res.Fn.Info, v)
		if got := res.VarTainted(vr, facts); got != want {
			t.Errorf("%s: tainted=%v, want %v", name, got, want)
		}
	}
	check("a", false)  // strong update untaints
	check("pk", true)  // weak field write taints base
	check("c", true)   // weak index write taints base
	check("dd", true)  // type assertion carries taint
}

func TestExprPosFallback(t *testing.T) {
	if got := exprPos(nil, token.Pos(7)); got != token.Pos(7) {
		t.Errorf("nil expr should use fallback, got %v", got)
	}
	id := ast.NewIdent("x")
	id.NamePos = token.Pos(3)
	if got := exprPos(id, token.Pos(7)); got != token.Pos(3) {
		t.Errorf("non-nil expr should use its own pos, got %v", got)
	}
}

func TestTaintSelectorOfPackageIsClean(t *testing.T) {
	src := `package p
import "os"
func src() []byte { return nil }
func f() {
	a := os.Args
	_ = a
	b := src()
	_ = b
}`
	res, _ := runTaint(t, src, "f", func(name string) bool { return name == "src" })
	facts := res.NewFacts()
	for _, stmt := range res.Fn.Body.List {
		res.Apply(stmt, facts)
	}
	var v *ast.Ident
	ast.Inspect(res.Fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "a" && v == nil {
			v = id
		}
		return true
	})
	if res.VarTainted(objVar(res.Fn.Info, v), facts) {
		t.Error("package selection must not taint")
	}
	_ = strings.TrimSpace("")
}
