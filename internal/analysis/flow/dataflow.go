package flow

// BitSet is a fixed-universe bit vector: the fact domain of the dataflow
// framework. The universe size is fixed at creation; all sets combined by
// one Problem must share it.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set over a universe of n bits.
func NewBitSet(n int) BitSet {
	return BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (b BitSet) Len() int { return b.n }

// Set adds bit i.
func (b BitSet) Set(i int) { b.words[i/64] |= 1 << (i % 64) }

// Clear removes bit i.
func (b BitSet) Clear(i int) { b.words[i/64] &^= 1 << (i % 64) }

// Has reports whether bit i is present.
func (b BitSet) Has(i int) bool { return b.words[i/64]&(1<<(i%64)) != 0 }

// Fill sets every bit of the universe (the top element of a must-analysis).
func (b BitSet) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := b.n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// Copy returns an independent copy.
func (b BitSet) Copy() BitSet {
	c := NewBitSet(b.n)
	copy(c.words, b.words)
	return c
}

// UnionWith adds o's bits to b, reporting whether b changed.
func (b BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i := range b.words {
		nw := b.words[i] | o.words[i]
		if nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only bits present in both, reporting whether b changed.
func (b BitSet) IntersectWith(o BitSet) bool {
	changed := false
	for i := range b.words {
		nw := b.words[i] & o.words[i]
		if nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether the two sets hold the same bits.
func (b BitSet) Equal(o BitSet) bool {
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (b BitSet) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bits returns the indices of set bits in ascending order.
func (b BitSet) Bits() []int {
	var out []int
	for i := 0; i < b.n; i++ {
		if b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Problem is one forward dataflow problem over a CFG: block-level gen/kill
// expressed as an arbitrary transfer function, merged at join points by
// union (may-analysis) or intersection (must-analysis), iterated to a
// fixpoint with a worklist.
type Problem struct {
	// Bits is the universe size of the fact sets.
	Bits int

	// Entry is the fact at function entry; nil means the empty set.
	Entry BitSet

	// Must selects intersection merge (facts that hold on EVERY path);
	// false selects union merge (facts that hold on SOME path). Under Must,
	// blocks not yet visited contribute top (all bits), the standard
	// optimistic initialization that makes loops converge to the greatest
	// fixpoint.
	Must bool

	// Transfer computes OUT from IN for one block. It must not retain or
	// mutate in; write the result into the returned set (a fresh or reused
	// set of the same universe).
	Transfer func(b *Block, in BitSet) BitSet
}

// Solution holds the converged facts.
type Solution struct {
	In, Out map[*Block]BitSet
}

// Solve iterates the problem over g to a fixpoint and returns block-level
// IN/OUT facts. Only blocks reachable from Entry are solved; unreachable
// blocks are absent from the maps.
func (p *Problem) Solve(g *Graph) *Solution {
	reach := g.Reachable()
	sol := &Solution{In: map[*Block]BitSet{}, Out: map[*Block]BitSet{}}
	inWork := map[*Block]bool{}
	var work []*Block
	for _, b := range reach {
		work = append(work, b)
		inWork[b] = true
	}
	entry := p.Entry
	if entry.words == nil {
		entry = NewBitSet(p.Bits)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var in BitSet
		if b == g.Entry {
			in = entry.Copy()
		} else {
			first := true
			for _, pred := range b.Preds {
				po, ok := sol.Out[pred]
				if !ok {
					if p.Must {
						continue // unvisited pred contributes top: skip
					}
					continue // unvisited pred contributes bottom: skip
				}
				if first {
					in = po.Copy()
					first = false
				} else if p.Must {
					in.IntersectWith(po)
				} else {
					in.UnionWith(po)
				}
			}
			if first {
				// No visited predecessor yet.
				in = NewBitSet(p.Bits)
				if p.Must {
					in.Fill()
				}
			}
		}
		old, seen := sol.In[b]
		if seen && old.Equal(in) {
			if _, ok := sol.Out[b]; ok {
				continue // no change
			}
		}
		sol.In[b] = in
		out := p.Transfer(b, in.Copy())
		oldOut, hadOut := sol.Out[b]
		if hadOut && oldOut.Equal(out) {
			continue
		}
		sol.Out[b] = out
		for _, s := range b.Succs {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return sol
}
