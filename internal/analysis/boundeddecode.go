package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"graftmatch/internal/analysis/flow"
)

// BoundedDecode is the bounded-decode check: a `make` whose size or capacity
// operand is tainted by wire-read data (the result of a Recv/read call, or
// the raw []byte handed to a decode function) is an attacker-sized
// allocation unless a comparison over that size dominates the allocation —
// the decoder must latch the count against what the frame actually admits
// before reserving memory for it.
//
// `append` is deliberately exempt: appending decoded elements grows the
// slice by at most the bytes already admitted through the framed reader, so
// the allocation is bounded by the frame size limit even when the element
// count came off the wire. `make` reserves the claimed size up front, before
// any byte of payload backs it, which is the vector this check closes.
func BoundedDecode() Check {
	return Check{
		Name:  "bounded-decode",
		Doc:   "wire-tainted make sizes are dominated by a bound comparison",
		Level: "error",
		Run:   runBoundedDecode,
	}
}

func runBoundedDecode(prog *Program) []Diagnostic {
	fs := prog.flowInfo()
	taint := flow.NewTaint(fs.cg)
	taint.Source = func(info *types.Info, call *ast.CallExpr) bool {
		return isWireSource(fs.cg, info, call)
	}
	taint.SourceParam = isDecodeInput

	var out []Diagnostic
	for _, fn := range fs.cg.Funcs() {
		if !bodyHasMake(fn.Body) {
			continue
		}
		pkg := fs.pkgOf[fn]
		g := fn.CFG(fs.cg)
		du := flow.BuildDefUse(fn, g)
		res := taint.Analyze(fn, g, du)
		dom := flow.BuildDominators(g)

		for _, b := range g.Reachable() {
			in, ok := res.In(b)
			if !ok {
				continue
			}
			facts := in.Copy()
			for i, node := range b.Nodes {
				out = append(out, checkMakesIn(prog, pkg, fn, g, dom, res, b, i, node, facts)...)
				res.Apply(node, facts)
			}
		}
	}
	return out
}

// checkMakesIn scans one CFG node (facts hold the taint state at its entry)
// for make calls with tainted, unguarded size operands. nodeIdx is the
// node's position within b.Nodes, bounding the same-block guard search.
func checkMakesIn(prog *Program, pkg *Package, fn *flow.Func, g *flow.Graph, dom *flow.Dominators, res *flow.TaintResult, b *flow.Block, nodeIdx int, node ast.Node, facts flow.BitSet) []Diagnostic {
	var out []Diagnostic
	stepInspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinMake(pkg.Info, call) {
			return true
		}
		for _, size := range call.Args[1:] {
			if isLenCapCall(pkg.Info, size) {
				// len/cap of held data bounds the allocation by memory the
				// process already admitted, same as the append exemption.
				continue
			}
			if !res.ExprTainted(size, facts) {
				continue
			}
			vars := exprVars(pkg.Info, size)
			if len(vars) == 0 || boundDominates(g, dom, pkg.Info, b, nodeIdx, vars) {
				continue
			}
			out = append(out, prog.diag(call.Pos(), "bounded-decode",
				"make size %s in %s is tainted by wire-read data and no comparison over it dominates the allocation: a hostile frame picks the allocation size",
				types.ExprString(size), funcLabel(fn.Node)))
			break
		}
		return true
	})
	return out
}

// stepInspect walks one CFG node as a single step: nested literals are
// skipped, and compound statements whose inner statements the CFG lowers
// into their own blocks (range bodies, select clauses) are not descended
// into, so each expression is scanned exactly once across the graph.
func stepInspect(node ast.Node, visit func(ast.Node) bool) {
	if rs, ok := node.(*ast.RangeStmt); ok {
		// The block node is the per-iteration bind: only X is evaluated here.
		node = rs.X
	}
	if _, ok := node.(*ast.SelectStmt); ok {
		return // comm statements are the head nodes of the case blocks
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.RangeStmt, *ast.SelectStmt:
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}

// isLenCapCall reports whether e is a len or cap builtin call.
func isLenCapCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// boundDominates reports whether some comparison mentioning one of vars sits
// on every path to the allocation: in a strictly-dominating block, or earlier
// in the allocation's own block (nodes before nodeIdx, plus the guard half of
// the same node — an if condition is its own CFG node, so that case does not
// arise in practice).
func boundDominates(g *flow.Graph, dom *flow.Dominators, info *types.Info, at *flow.Block, nodeIdx int, vars map[*types.Var]bool) bool {
	for _, b := range g.Reachable() {
		if !dom.Dominates(b, at) {
			continue
		}
		limit := len(b.Nodes)
		if b == at {
			limit = nodeIdx
		}
		for _, node := range b.Nodes[:limit] {
			if hasComparisonOver(info, node, vars) {
				return true
			}
		}
	}
	return false
}

// hasComparisonOver reports whether node contains a comparison whose operand
// mentions one of vars. Equality counts: latching a wire count against the
// expected k (`nOut != k`) is exactly the bound the check wants.
func hasComparisonOver(info *types.Info, node ast.Node, vars map[*types.Var]bool) bool {
	found := false
	stepInspect(node, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			for v := range exprVars(info, be.X) {
				if vars[v] {
					found = true
				}
			}
			for v := range exprVars(info, be.Y) {
				if vars[v] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// exprVars collects the local variable objects an expression reads.
func exprVars(info *types.Info, e ast.Expr) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// bodyHasMake is a cheap pre-filter: the check only pays for dataflow in
// functions that allocate at all.
func bodyHasMake(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "make" {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltinMake reports whether call is the make builtin with an explicit
// size operand.
func isBuiltinMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isWireSource classifies the calls whose results (and filled slice
// arguments) carry attacker-controlled bytes: session receives and framed
// reads. Read/read prefixes match by name alone (os.ReadFile and io.ReadFull
// are as untrusted as a socket read); the bare name Recv is only a source on
// module-local or unresolvable callees, so foreign API methods that happen
// to be called Recv (types.Selection.Recv) do not taint.
func isWireSource(cg *flow.CallGraph, info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	if strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "read") {
		return true
	}
	if name != "Recv" {
		return false
	}
	obj := flow.CalleeObj(info, call)
	return obj == nil || cg.ByObj(obj) != nil
}

// isDecodeInput marks the []byte parameters of decode functions as tainted
// at entry: the frame body handed to decodeStep and friends IS the wire.
func isDecodeInput(fn *flow.Func, v *types.Var) bool {
	if fn.Obj == nil {
		return false
	}
	name := fn.Obj.Name()
	if !strings.HasPrefix(name, "decode") && !strings.HasPrefix(name, "Decode") {
		return false
	}
	s, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
