package analysis

import (
	"go/ast"
	"sort"

	"graftmatch/internal/analysis/flow"
)

// LockDiscipline is the lock-discipline check: a forward dataflow analysis
// over each function's CFG tracking which sync.Mutex/sync.RWMutex receivers
// are held at each program point. It solves the problem twice — once with
// may-merge (union: held on SOME path) and once with must-merge
// (intersection: held on EVERY path) — and reports four defect classes:
//
//   - blocking under lock: a channel send/receive, default-less select, or
//     (transitively) blocking call executes while a mutex MAY be held;
//   - double lock: X.Lock() (or RLock) runs while X MUST already be held
//     in the same mode — self-deadlock on sync.Mutex;
//   - lock leak: a return or fall-off-end exit where a mutex MUST be held
//     and no defer unlocks it;
//   - branch imbalance: a merge point where MAY-held and MUST-held differ —
//     one predecessor holds the lock, another does not.
//
// Lock identity is the syntactic receiver chain (exprKey): "mu", "e.mu",
// "w.s.mu". Receivers with calls or indexing in them are not tracked.
func LockDiscipline() Check {
	return Check{
		Name:  "lock-discipline",
		Doc:   "mutexes are released on every path and never held across blocking operations",
		Level: "error",
		Run:   runLockDiscipline,
	}
}

// lockKey is one tracked mutex in one mode.
type lockKey struct {
	key   string // exprKey of the receiver
	write bool   // Lock/Unlock (write) vs RLock/RUnlock (read)
}

func (k lockKey) String() string {
	if k.write {
		return k.key
	}
	return k.key + " (read)"
}

func runLockDiscipline(prog *Program) []Diagnostic {
	fs := prog.flowInfo()
	var out []Diagnostic
	for _, fn := range fs.cg.Funcs() {
		pkg := fs.pkgOf[fn]
		out = append(out, lockCheckFunc(prog, fs, pkg, fn)...)
		// Function literals get their own independent analysis: a lock
		// taken in the enclosing function is invisible inside the literal
		// (it runs on an unknown schedule), and vice versa.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lf := &flow.Func{Info: pkg.Info, Node: lit, Body: lit.Body, Name: funcLabel(lit)}
				out = append(out, lockCheckFunc(prog, fs, pkg, lf)...)
			}
			return true
		})
	}
	return out
}

// lockCheckFunc runs the per-function lock analysis.
func lockCheckFunc(prog *Program, fs *flowState, pkg *Package, fn *flow.Func) []Diagnostic {
	keys, deferred := collectLockKeys(pkg, fn.Body)
	if len(keys) == 0 {
		return nil
	}
	idx := map[lockKey]int{}
	for i, k := range keys {
		idx[k] = i
	}
	g := fn.CFG(fs.cg)
	transfer := func(b *flow.Block, in flow.BitSet) flow.BitSet {
		out := in.Copy()
		for _, node := range b.Nodes {
			applyLockOps(pkg, fn.Node, node, idx, out)
		}
		return out
	}
	mayP := flow.Problem{Bits: len(keys), Entry: flow.NewBitSet(len(keys)), Transfer: transfer}
	may := mayP.Solve(g)
	mustP := flow.Problem{Bits: len(keys), Entry: flow.NewBitSet(len(keys)), Must: true, Transfer: transfer}
	must := mustP.Solve(g)

	var out []Diagnostic
	imbalanced := map[lockKey]bool{}
	for _, b := range g.Reachable() {
		// Branch imbalance at merge points. The synthetic Exit block is
		// excluded: divergence there is the lock-leak case, reported with
		// a precise position below.
		if len(b.Preds) >= 2 && b != g.Exit {
			for k, i := range idx {
				if may.In[b].Has(i) && !must.In[b].Has(i) && !imbalanced[k] {
					imbalanced[k] = true
					pos := b.Pos()
					if !pos.IsValid() {
						pos = fn.Body.Pos()
					}
					out = append(out, prog.diag(pos, "lock-discipline",
						"%s is held on some paths into this merge point but not all: lock/unlock is branch-imbalanced in %s", k, funcLabel(fn.Node)))
				}
			}
		}
		// Statement-level defects, threading facts through the block.
		mayNow := may.In[b].Copy()
		mustNow := must.In[b].Copy()
		for i, node := range b.Nodes {
			// A select comm statement only executes once the select picked
			// it as ready — the blocking point is the SelectStmt itself,
			// already scanned in the predecessor block.
			if !(b.Kind == "select.case" && i == 0) {
				out = append(out, lockStmtDefects(prog, fs, pkg, fn, node, idx, mayNow, mustNow)...)
			}
			applyLockOps(pkg, fn.Node, node, idx, mayNow)
			applyLockOps(pkg, fn.Node, node, idx, mustNow)
		}
		// Lock leak at exits.
		for _, s := range b.Succs {
			if s != g.Exit {
				continue
			}
			for k, i := range idx {
				if mustNow.Has(i) && !deferred[k] {
					pos := b.Pos()
					if !pos.IsValid() {
						pos = fn.Body.Pos()
					}
					out = append(out, prog.diag(pos, "lock-discipline",
						"%s is still held when %s returns and no defer releases it", k, funcLabel(fn.Node)))
				}
			}
			break
		}
	}
	return out
}

// collectLockKeys scans a body for tracked mutex operations, returning the
// sorted key universe and the set of keys released by a defer statement.
// Nested function literals are skipped when scanning a FuncDecl body (they
// are analyzed separately), and the literal itself is scanned when fn.Node
// is that literal.
func collectLockKeys(pkg *Package, body *ast.BlockStmt) ([]lockKey, map[lockKey]bool) {
	set := map[lockKey]bool{}
	deferred := map[lockKey]bool{}
	scanOwn(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if k, ok := lockOp(pkg, n); ok {
				set[k.lockKey] = true
			}
		case *ast.DeferStmt:
			if k, ok := lockOp(pkg, n.Call); ok && !k.acquire {
				set[k.lockKey] = true
				deferred[k.lockKey] = true
			}
		}
	})
	keys := make([]lockKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key < keys[j].key
		}
		return keys[i].write && !keys[j].write
	})
	return keys, deferred
}

// scanOwn walks body without descending into nested function literals.
func scanOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockMutation is one Lock/Unlock/RLock/RUnlock call.
type lockMutation struct {
	lockKey
	acquire bool
}

// lockOp classifies a call as a tracked mutex operation.
func lockOp(pkg *Package, call *ast.CallExpr) (lockMutation, bool) {
	for _, tn := range [2]string{"Mutex", "RWMutex"} {
		if x := recvOfSyncCall(pkg, call, tn, "Lock", "Unlock", "RLock", "RUnlock"); x != nil {
			key := exprKey(x)
			if key == "" {
				return lockMutation{}, false
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			switch sel.Sel.Name {
			case "Lock":
				return lockMutation{lockKey{key, true}, true}, true
			case "Unlock":
				return lockMutation{lockKey{key, true}, false}, true
			case "RLock":
				return lockMutation{lockKey{key, false}, true}, true
			case "RUnlock":
				return lockMutation{lockKey{key, false}, false}, true
			}
		}
	}
	return lockMutation{}, false
}

// applyLockOps mutates facts with the gen/kill effect of one CFG node.
// Deferred unlocks have no flow effect (they run at function exit); nested
// literals are opaque.
func applyLockOps(pkg *Package, fnNode ast.Node, root ast.Node, idx map[lockKey]int, facts flow.BitSet) {
	if _, isDefer := root.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == fnNode
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if m, ok := lockOp(pkg, n); ok {
				if i, tracked := idx[m.lockKey]; tracked {
					if m.acquire {
						facts.Set(i)
					} else {
						facts.Clear(i)
					}
				}
			}
		}
		return true
	})
}

// lockStmtDefects reports blocking-under-lock and double-lock for one
// statement given the facts flowing into it.
func lockStmtDefects(prog *Program, fs *flowState, pkg *Package, fn *flow.Func, root ast.Node, idx map[lockKey]int, may, must flow.BitSet) []Diagnostic {
	var out []Diagnostic
	heldMay := func() []lockKey {
		var ks []lockKey
		for k, i := range idx {
			if may.Has(i) {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
		return ks
	}
	report := func(pos ast.Node, what string) {
		ks := heldMay()
		if len(ks) == 0 {
			return
		}
		out = append(out, prog.diag(pos.Pos(), "lock-discipline",
			"%s while %s may be held in %s", what, ks[0], funcLabel(fn.Node)))
	}
	if _, isDefer := root.(*ast.DeferStmt); isDefer {
		return nil
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == fn.Node
		case *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(n, "blocking select")
			}
			return false // cases run after the select picks; facts unchanged
		case *ast.CallExpr:
			if m, ok := lockOp(pkg, n); ok && m.acquire {
				if i, tracked := idx[m.lockKey]; tracked && must.Has(i) {
					out = append(out, prog.diag(n.Pos(), "lock-discipline",
						"%s is locked while already held on every path: self-deadlock in %s", m.lockKey, funcLabel(fn.Node)))
				}
				return true
			}
			if desc := fs.blockingCall(pkg, n, 3); desc != "" {
				report(n, "blocking call to "+desc)
			}
		}
		return true
	})
	return out
}
