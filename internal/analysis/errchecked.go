package analysis

import (
	"go/ast"
	"go/types"
)

// ErrChecked is the err-checked check, the hygiene wall around the other
// four: findings are only trustworthy if failures surface. Two rules:
//
//   - The error result of a module-internal call must not be silently
//     dropped by using the call as a bare statement, go statement, or defer.
//     Assigning to _ is allowed as an explicit, reviewable waiver; stdlib
//     and third-party callees are left to go vet and code review.
//
//   - panic is reserved for the containment layer (Config.PanicPackages —
//     internal/par, whose gate converts worker panics into *PanicError).
//     Everywhere else a panic would tear down the process from a worker
//     goroutine instead of flowing through the resilient-execution error
//     path; return an error, or annotate the assertion with its safety
//     argument.
func ErrChecked() Check {
	return Check{
		Name:  "err-checked",
		Doc:   "internal errors are never silently dropped; panic stays in the containment layer",
		Level: "error",
		Run:   runErrChecked,
	}
}

func runErrChecked(prog *Program) []Diagnostic {
	var out []Diagnostic
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		walkShallow(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					out = append(out, prog.checkDiscard(pkg, call, "")...)
				}
			case *ast.GoStmt:
				out = append(out, prog.checkDiscard(pkg, s.Call, "go ")...)
			case *ast.DeferStmt:
				out = append(out, prog.checkDiscard(pkg, s.Call, "defer ")...)
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && isBuiltinPanic(pkg, id) &&
					!inSuffixList(pkg.Path, prog.Config.PanicPackages) {
					out = append(out, prog.diag(s.Pos(), "err-checked",
						"panic outside the containment layer (%s): worker panics must flow through internal/par's gate as errors, not crash the process",
						pkg.Path))
				}
			}
			return true
		})
	})
	return out
}

// checkDiscard flags stmt-position calls to module-internal functions whose
// results include an error.
func (prog *Program) checkDiscard(pkg *Package, call *ast.CallExpr, how string) []Diagnostic {
	sig := callSignature(pkg, call)
	if sig == nil || !resultsIncludeError(sig) {
		return nil
	}
	callee := calleeObject(pkg, call)
	if callee == nil || !prog.isInternal(callee) {
		return nil
	}
	return []Diagnostic{prog.diag(call.Pos(), "err-checked",
		"%serror result of internal call %s discarded; handle it or assign to _ with a reason", how, callee.Name())}
}

// calleeObject resolves the called function to its declaring object.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// isBuiltinPanic reports whether id names the predeclared panic builtin.
func isBuiltinPanic(pkg *Package, id *ast.Ident) bool {
	if id.Name != "panic" {
		return false
	}
	obj := pkg.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}
