package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"graftmatch/internal/analysis/flow"
)

// GlobalMutable is the global-mutable check: package-level mutable state in
// the concurrent packages (CtxPackages) written from a goroutine-bearing
// context without synchronization. Reads never trigger; a write — direct
// assignment, element or field store, increment — fires when the writing
// function runs outside the single main context, no mutex is must-held, and
// the store is not an atomic operation. Writes in init functions are exempt:
// initialization happens-before main.
func GlobalMutable() Check {
	return Check{
		Name:  "global-mutable",
		Doc:   "package-level mutable state is only written with synchronization once goroutines exist",
		Level: "warning",
		Run:   runGlobalMutable,
	}
}

func runGlobalMutable(prog *Program) []Diagnostic {
	fs := prog.ptInfo()
	watched := map[*types.Var]bool{}
	for _, pkg := range prog.Pkgs {
		if !inSuffixList(pkg.Path, prog.Config.CtxPackages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						v, _ := pkg.Info.Defs[name].(*types.Var)
						if v == nil || v.Name() == "_" || untrackedType(v.Type()) {
							continue
						}
						watched[v] = true
					}
				}
			}
		}
	}
	if len(watched) == 0 {
		return nil
	}

	var out []Diagnostic
	reported := map[*types.Var]map[*flow.Func]bool{}
	for _, fn := range fs.valueFuncs() {
		pkg := fs.pkgFor(fn)
		if pkg == nil || isInitFunc(fn.Node) {
			continue
		}
		if !sharedWriterCtxs(fs, fn) {
			continue
		}
		walkWithLocks(fs, pkg, fn, func(node ast.Node, held map[string]bool) {
			if len(held) > 0 {
				return // any must-held mutex counts as the guard
			}
			for _, wr := range globalWritesIn(pkg.Info, node, fn.Node, watched) {
				if reported[wr.v] == nil {
					reported[wr.v] = map[*flow.Func]bool{}
				}
				if reported[wr.v][fn] {
					continue
				}
				reported[wr.v][fn] = true
				out = append(out, prog.diag(wr.pos, "global-mutable",
					"package-level %s is written in %s, which runs in goroutine context %s, with no lock held: guard it, make it atomic, or hang it off an instance",
					wr.v.Name(), fn.Name, writerCtxLabel(fs, fn)))
			}
		})
	}
	return out
}

// sharedWriterCtxs reports whether fn's body can run outside the one main
// goroutine: any non-main context, or a multi-instance main.
func sharedWriterCtxs(fs *flowState, fn *flow.Func) bool {
	for id := range fs.escape.Contexts(fn) {
		if id != flow.MainCtx || fs.escape.Site(id).Multi {
			return true
		}
	}
	return false
}

// writerCtxLabel names one non-main context fn runs in, for the message.
func writerCtxLabel(fs *flowState, fn *flow.Func) string {
	for _, id := range fs.escape.Contexts(fn).IDs() {
		if id != flow.MainCtx {
			return fs.escape.Site(id).Label
		}
	}
	return "main (multi-instance)"
}

// globalWrite is one store whose target chain roots at a watched global.
type globalWrite struct {
	v   *types.Var
	pos token.Pos
}

// globalWritesIn finds assignment/inc-dec targets inside one CFG node whose
// base variable is watched. fnNode bounds literal descent as elsewhere.
func globalWritesIn(info *types.Info, root ast.Node, fnNode ast.Node, watched map[*types.Var]bool) []globalWrite {
	var out []globalWrite
	target := func(e ast.Expr) {
		v := chainRootVar(info, e)
		if v != nil && watched[v] {
			out = append(out, globalWrite{v: v, pos: e.Pos()})
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == fnNode
		case *ast.RangeStmt:
			// The node form carries the whole statement; only the
			// per-iteration binds are this node's effect.
			if n.Key != nil {
				target(n.Key)
			}
			if n.Value != nil {
				target(n.Value)
			}
			return false
		case *ast.SelectStmt:
			return false // lowered into case blocks
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				target(l)
			}
		case *ast.IncDecStmt:
			target(n.X)
		}
		return true
	})
	return out
}
