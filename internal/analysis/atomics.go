package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// atomicPkgPath is the package whose pointer-taking functions define the
// "accessed atomically" property the checks reason about. The typed wrappers
// (atomic.Int64 etc.) are exempt by construction: their state is unexported,
// so it cannot be accessed plainly, and the runtime guarantees their 64-bit
// alignment on every GOARCH.
const atomicPkgPath = "sync/atomic"

// atomicCall reports whether call is a sync/atomic package-level function
// applied to &addr, returning the function name and the addressed operand
// (with parentheses stripped).
func atomicCall(pkg *Package, call *ast.CallExpr) (fn string, addr ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != atomicPkgPath {
		return "", nil, false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", nil, false
	}
	if len(call.Args) == 0 {
		return "", nil, false
	}
	unary, isUnary := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !isUnary || unary.Op.String() != "&" {
		return "", nil, false
	}
	return obj.Name(), ast.Unparen(unary.X), true
}

// is64BitAtomic reports whether the sync/atomic function operates on a
// 64-bit word.
func is64BitAtomic(fn string) bool { return strings.Contains(fn, "64") }

// fieldSelection resolves a selector to the struct field it names, or nil.
func fieldSelection(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isInternal reports whether obj is declared in this module.
func (prog *Program) isInternal(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == prog.ModPath || strings.HasPrefix(p, prog.ModPath+"/")
}

// funcLabel names a function node for diagnostics.
func funcLabel(node ast.Node) string {
	if fd, ok := node.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "function literal"
}
