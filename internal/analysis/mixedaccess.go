package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MixedAccess is the mixed-access check: a word that one piece of code
// reaches through sync/atomic must not be read or written plainly where the
// two accesses can race. Two rules, matching how the kernels are structured:
//
//   - Scalar rule (whole program): a struct field or package-level variable
//     addressed by atomic.* anywhere must be accessed only atomically
//     everywhere else — except inside init functions and composite-literal
//     keys, which run before any goroutine can observe the word.
//
//   - Element rule (per function): if a function passes &base[i] to
//     atomic.*, every other element access of the same base inside that same
//     function must also be atomic. Cross-function plain access to the same
//     array is deliberately allowed: the level-synchronous algorithms switch
//     between atomic (parallel phase) and plain (after the fork/join
//     barrier) access legitimately, and the barrier is exactly a function
//     boundary in this codebase.
func MixedAccess() Check {
	return Check{
		Name:  "mixed-access",
		Doc:   "words accessed via sync/atomic must not also be accessed plainly where it can race",
		Level: "error",
		Run:   runMixedAccess,
	}
}

type mixedFuncInfo struct {
	pkg  *Package
	node ast.Node
	body *ast.BlockStmt
	// elemTargets maps the base object of an atomically addressed element
	// (&base[i]) to the first atomic site in this function.
	elemTargets map[types.Object]token.Pos
	// skip holds the operand subtrees of atomic calls and composite-literal
	// keys: accesses inside them are not "plain".
	skip map[ast.Node]bool
}

func runMixedAccess(prog *Program) []Diagnostic {
	// Pass 1: collect atomic targets and excluded subtrees.
	scalarTargets := map[types.Object]token.Pos{}
	var funcs []*mixedFuncInfo
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		fi := &mixedFuncInfo{
			pkg: pkg, node: node, body: body,
			elemTargets: map[types.Object]token.Pos{},
			skip:        map[ast.Node]bool{},
		}
		walkShallow(body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range e.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							fi.skip[key] = true
						}
					}
				}
			case *ast.CallExpr:
				_, addr, ok := atomicCall(pkg, e)
				if !ok {
					return true
				}
				fi.skip[addr] = true
				switch a := addr.(type) {
				case *ast.SelectorExpr:
					if f := fieldSelection(pkg, a); f != nil {
						if _, seen := scalarTargets[f]; !seen {
							scalarTargets[f] = a.Pos()
						}
					}
				case *ast.Ident:
					if obj := pkg.Info.Uses[a]; isPackageVar(obj) {
						if _, seen := scalarTargets[obj]; !seen {
							scalarTargets[obj] = a.Pos()
						}
					}
				case *ast.IndexExpr:
					if obj := baseObject(pkg, a.X); obj != nil {
						if _, seen := fi.elemTargets[obj]; !seen {
							fi.elemTargets[obj] = a.Pos()
						}
					}
				}
				return true
			}
			return true
		})
		funcs = append(funcs, fi)
	})

	// Pass 2: report plain accesses.
	var out []Diagnostic
	for _, fi := range funcs {
		if isInitFunc(fi.node) {
			continue
		}
		pkg := fi.pkg
		walkShallow(fi.body, func(n ast.Node) bool {
			if fi.skip[n] {
				return false
			}
			switch e := n.(type) {
			case *ast.Ident:
				obj := pkg.Info.Uses[e]
				if obj == nil {
					return true
				}
				if atomicPos, isTarget := scalarTargets[obj]; isTarget {
					out = append(out, prog.diag(e.Pos(), "mixed-access",
						"plain access of %s, which is accessed atomically at %s; use sync/atomic (or annotate why the access cannot race)",
						obj.Name(), prog.shortPos(atomicPos)))
				}
			case *ast.IndexExpr:
				obj := baseObject(pkg, e.X)
				if obj == nil {
					return true
				}
				if atomicPos, isTarget := fi.elemTargets[obj]; isTarget {
					out = append(out, prog.diag(e.Pos(), "mixed-access",
						"plain element access of %s in %s, which also accesses its elements atomically at %s; inside one parallel region every access must be atomic",
						obj.Name(), funcLabel(fi.node), prog.shortPos(atomicPos)))
				}
			}
			return true
		})
	}
	return out
}

// baseObject resolves the base expression of an index to the variable or
// field object it names.
func baseObject(pkg *Package, base ast.Expr) types.Object {
	switch b := ast.Unparen(base).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[b]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if f := fieldSelection(pkg, b); f != nil {
			return f
		}
		if obj := pkg.Info.Uses[b.Sel]; isPackageVar(obj) {
			return obj
		}
	}
	return nil
}

// isPackageVar reports whether obj is a package-level variable.
func isPackageVar(obj types.Object) bool {
	v, isVar := obj.(*types.Var)
	if !isVar || v.IsField() {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isInitFunc reports whether node is a package init function.
func isInitFunc(node ast.Node) bool {
	fd, isDecl := node.(*ast.FuncDecl)
	return isDecl && fd.Recv == nil && fd.Name.Name == "init"
}
