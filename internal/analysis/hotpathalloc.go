package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"graftmatch/internal/analysis/flow"
)

// HotPathAlloc is the hotpath-alloc check: per-iteration heap allocations
// inside the code the matching kernels execute per element. Two region
// families are hot:
//
//   - the body of every function literal handed to an internal/par entry
//     point (For, ForCtx, ForDynamic, ForDynamicCtx, Run, RunCtx) — extended
//     by a fixpoint over module-local "hot wrappers": a function whose
//     func-typed parameter is forwarded into a hot call, or invoked inside a
//     literal given to one, is itself a hot entry (this discovers the repo's
//     pfor/pforDyn/eachRank-style wrappers automatically);
//   - every for/range loop body in a Config.HotPackages package (the
//     BFS/superstep drivers).
//
// Inside a maximal hot region the check flags operations that allocate per
// iteration: slice and map composite literals, &T{...} pointer literals,
// make and new, closures that capture local state, append onto a slice
// declared inside the region, and arguments boxed into interface
// parameters. Plain struct value literals and anything under a terminating
// call (panic, log.Fatal) are not flagged.
func HotPathAlloc() Check {
	return Check{
		Name:  "hotpath-alloc",
		Doc:   "no per-iteration heap allocation inside parallel bodies and hot-package loops",
		Level: "note",
		Run:   runHotPathAlloc,
	}
}

// parEntryNames are the internal/par entry points whose func arguments run
// per chunk on the worker pool.
var parEntryNames = map[string]bool{
	"For": true, "ForCtx": true, "ForDynamic": true, "ForDynamicCtx": true,
	"Run": true, "RunCtx": true,
}

func isParEntry(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return inSuffixList(obj.Pkg().Path(), []string{"internal/par"}) && parEntryNames[obj.Name()]
}

// hotRegion is one maximal hot span to scan for allocations.
type hotRegion struct {
	pkg  *Package
	body *ast.BlockStmt
	kind string // "parallel body" or "hot loop"
}

func runHotPathAlloc(prog *Program) []Diagnostic {
	fs := prog.flowInfo()

	// Index every declared function's parameter objects to (func, index).
	type paramSlot struct {
		obj *types.Func
		idx int
	}
	paramOf := map[*types.Var]paramSlot{}
	for _, fn := range fs.cg.Funcs() {
		if fn.Obj == nil {
			continue
		}
		sig := fn.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			paramOf[sig.Params().At(i)] = paramSlot{fn.Obj, i}
		}
	}

	// Fixpoint: discover hot wrapper parameters and hot literals.
	hotParam := map[*types.Func]map[int]bool{} // func -> hot param indices
	hotLits := map[*ast.FuncLit]*Package{}
	hotArgPositions := func(pkg *Package, call *ast.CallExpr) []int {
		obj := flow.CalleeObj(pkg.Info, call)
		if obj == nil {
			return nil
		}
		if isParEntry(obj) {
			var idxs []int
			for i, a := range call.Args {
				if tv, ok := pkg.Info.Types[a]; ok {
					if _, isFn := tv.Type.Underlying().(*types.Signature); isFn {
						idxs = append(idxs, i)
					}
				}
			}
			return idxs
		}
		if hp := hotParam[obj]; len(hp) > 0 {
			var idxs []int
			for i := range hp {
				idxs = append(idxs, i)
			}
			return idxs
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		markParam := func(slot paramSlot) {
			if hotParam[slot.obj] == nil {
				hotParam[slot.obj] = map[int]bool{}
			}
			if !hotParam[slot.obj][slot.idx] {
				hotParam[slot.obj][slot.idx] = true
				changed = true
			}
		}
		for _, fn := range fs.cg.Funcs() {
			pkg := fs.pkgOf[fn]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, i := range hotArgPositions(pkg, call) {
					if i >= len(call.Args) {
						continue
					}
					switch a := ast.Unparen(call.Args[i]).(type) {
					case *ast.FuncLit:
						if _, seen := hotLits[a]; !seen {
							hotLits[a] = pkg
							changed = true
						}
					case *ast.Ident:
						if v, ok := pkg.Info.Uses[a].(*types.Var); ok {
							if slot, isParam := paramOf[v]; isParam {
								markParam(slot)
							}
						}
					}
				}
				return true
			})
		}
		// A func param invoked inside a hot literal is a hot param too
		// (the eachRank pattern: par body calls f(...)).
		for lit, pkg := range hotLits {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						if slot, isParam := paramOf[v]; isParam {
							markParam(slot)
						}
					}
				}
				return true
			})
		}
	}

	// Collect regions: hot literal bodies plus every loop body in a hot
	// package, then keep only the maximal (outermost) ones.
	var regions []hotRegion
	for lit, pkg := range hotLits {
		regions = append(regions, hotRegion{pkg, lit.Body, "parallel body"})
	}
	for _, pkg := range prog.Pkgs {
		if !inSuffixList(pkg.Path, prog.Config.HotPackages) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					regions = append(regions, hotRegion{pkg, n.Body, "hot loop"})
				case *ast.RangeStmt:
					regions = append(regions, hotRegion{pkg, n.Body, "hot loop"})
				}
				return true
			})
		}
	}
	maximal := regions[:0]
	for _, r := range regions {
		contained := false
		for _, o := range regions {
			if o.body != r.body && r.body.Pos() >= o.body.Pos() && r.body.End() <= o.body.End() {
				contained = true
				break
			}
		}
		if !contained {
			maximal = append(maximal, r)
		}
	}

	var out []Diagnostic
	for _, r := range maximal {
		out = append(out, scanHotRegion(prog, fs, r)...)
	}
	return dedupDiags(out)
}

// dedupDiags removes exact duplicate diagnostics (same position, check,
// message) that overlapping regions can produce.
func dedupDiags(in []Diagnostic) []Diagnostic {
	type k struct {
		file          string
		line, col     int
		check, msg    string
	}
	seen := map[k]bool{}
	var out []Diagnostic
	for _, d := range in {
		kk := k{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message}
		if seen[kk] {
			continue
		}
		seen[kk] = true
		out = append(out, d)
	}
	return out
}

// scanHotRegion flags per-iteration allocations inside one region.
func scanHotRegion(prog *Program, fs *flowState, r hotRegion) []Diagnostic {
	pkg := r.pkg
	var out []Diagnostic
	flag := func(pos token.Pos, format string, args ...any) {
		args = append(args, r.kind)
		out = append(out, prog.diag(pos, "hotpath-alloc", format+" in %s; hoist it out or reuse per-worker scratch", args...))
	}
	ast.Inspect(r.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if cg := fs.cg; cg.Terminates(pkg.Info, n) {
				return false // panic/fatal path: not per-iteration cost
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						flag(n.Pos(), "make allocates per iteration")
					case "new":
						flag(n.Pos(), "new allocates per iteration")
					case "append":
						if dst, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
							if v, ok := pkg.Info.Uses[dst].(*types.Var); ok &&
								v.Pos() >= r.body.Pos() && v.Pos() < r.body.End() {
								flag(n.Pos(), "append grows %q, which is declared inside the region, so every iteration reallocates", dst.Name)
							}
						}
					}
					return true
				}
			}
			out = append(out, boxedArgs(prog, pkg, n, r.kind)...)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					flag(n.Pos(), "&T{...} allocates per iteration")
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					flag(n.Pos(), "slice literal allocates per iteration")
				case *types.Map:
					flag(n.Pos(), "map literal allocates per iteration")
				}
			}
		case *ast.FuncLit:
			if n.Body == r.body {
				return true // the region's own literal
			}
			if capturesLocals(pkg, n) {
				flag(n.Pos(), "closure captures local state and allocates per iteration")
			}
		}
		return true
	})
	return out
}

// capturesLocals reports whether a function literal references a variable
// declared outside the literal that is not package-level — the condition
// under which the closure (and its captured variables) escape to the heap.
func capturesLocals(pkg *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkg.Types.Scope() {
			return true // package-level: no capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params/locals
		}
		captured = true
		return false
	})
	return captured
}

// boxedArgs flags non-constant, non-pointer-shaped arguments passed to
// interface parameters: each such call boxes the value on the heap.
func boxedArgs(prog *Program, pkg *Package, call *ast.CallExpr, kind string) []Diagnostic {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil // conversion or builtin
	}
	if call.Ellipsis.IsValid() {
		return nil // fn(xs...): the slice is passed as-is
	}
	var out []Diagnostic
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := pkg.Info.Types[a]
		if !ok || atv.Value != nil || atv.IsNil() {
			continue // constant or nil: no per-call allocation
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // already an interface, or pointer-shaped: fits the data word
		}
		out = append(out, prog.diag(a.Pos(), "hotpath-alloc",
			"argument is boxed into an interface parameter on every iteration in %s; hoist it out or reuse per-worker scratch", kind))
	}
	return out
}
