package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"graftmatch/internal/analysis"
)

func loadSuppress(t *testing.T, checks []string) []analysis.Diagnostic {
	t.Helper()
	prog, err := analysis.LoadTree(filepath.Join("testdata", "src", "suppress"), "fix", analysis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(checks)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestSuppressionForms(t *testing.T) {
	diags := loadSuppress(t, []string{"err-checked"})
	var errChecked, directive []analysis.Diagnostic
	for _, d := range diags {
		switch d.Check {
		case "err-checked":
			errChecked = append(errChecked, d)
		case "lint-directive":
			directive = append(directive, d)
		default:
			t.Errorf("unexpected check %q in suppression fixture: %s", d.Check, d)
		}
	}
	// Five fail() discards are visible to err-checked: Unsuppressed,
	// WrongCheck, MissingReason, UnknownCheck, and Bare (the latter three
	// because their directives are malformed and suppress nothing).
	// Trailing, Above, and Multi are suppressed.
	if len(errChecked) != 5 {
		t.Errorf("err-checked findings = %d, want 5:\n%s", len(errChecked), render(errChecked))
	}
	// Three malformed directives: missing reason, unknown check, bare.
	if len(directive) != 3 {
		t.Errorf("lint-directive findings = %d, want 3:\n%s", len(directive), render(directive))
	}
	for _, d := range errChecked {
		if !strings.Contains(d.Message, "fail") {
			t.Errorf("err-checked finding does not name the callee: %s", d)
		}
	}
}

// TestMalformedDirectivesAlwaysReported runs a check selection that does
// not include err-checked: malformed directives must still surface.
func TestMalformedDirectivesAlwaysReported(t *testing.T) {
	diags := loadSuppress(t, []string{"falseshare"})
	count := 0
	for _, d := range diags {
		if d.Check != "lint-directive" {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		count++
	}
	if count != 3 {
		t.Errorf("lint-directive findings = %d, want 3:\n%s", count, render(diags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}
