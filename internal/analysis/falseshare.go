package analysis

import (
	"go/ast"
	"go/types"
)

// FalseShare is the falseshare check: state indexed by worker id — the
// per-worker counter cells and local frontier buffers at the heart of the
// paper's scaling story (§IV) — must not let two workers' hot words share a
// cache line. Concretely, when a slice or array is indexed by a worker-id
// parameter (w, worker, wid, workerID):
//
//   - a struct element type must have a size that is a multiple of the
//     cache-line size (64 bytes) under 64-bit layout, so element i and
//     element i+1 never split a line;
//   - a bare numeric element written in place (s[w]++, s[w] += d, s[w] = v)
//     is flagged outright: adjacent counters in a []int64 are the canonical
//     false-sharing bug, and belong in a padded per-worker struct.
func FalseShare() Check {
	return Check{
		Name:  "falseshare",
		Doc:   "per-worker slots indexed by a worker id must be cache-line padded",
		Level: "note",
		Run:   runFalseShare,
	}
}

// cacheLineSize is the padding granularity the repo targets (internal/par's
// cacheLine constant).
const cacheLineSize = 64

// workerParamNames are the parameter names treated as worker ids. The
// parallel primitives in internal/par pass the worker id as the first
// callback parameter, named w by convention throughout the repo.
var workerParamNames = map[string]bool{
	"w": true, "worker": true, "wid": true, "workerID": true, "workerId": true,
}

func runFalseShare(prog *Program) []Diagnostic {
	var out []Diagnostic
	flaggedTypes := map[types.Type]bool{}
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		workerParams := workerParamObjs(pkg, node)
		if len(workerParams) == 0 {
			return
		}
		// writes records index expressions that appear as assignment or
		// inc/dec targets, for the bare-numeric rule.
		writes := map[ast.Node]bool{}
		walkShallow(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					writes[ast.Unparen(lhs)] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(s.X)] = true
			}
			return true
		})
		walkShallow(body, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(idx.Index).(*ast.Ident)
			if !ok || !workerParams[pkg.Info.Uses[id]] {
				return true
			}
			elem := elemType(pkg, idx.X)
			if elem == nil {
				return true
			}
			switch u := elem.Underlying().(type) {
			case *types.Struct:
				if flaggedTypes[elem] {
					return true
				}
				if sz := prog.Sizes64.Sizeof(elem); sz%cacheLineSize != 0 {
					flaggedTypes[elem] = true
					out = append(out, prog.diag(idx.Pos(), "falseshare",
						"per-worker element type %s has size %d, not a multiple of the %d-byte cache line; adjacent workers' slots share a line — pad the struct tail",
						types.TypeString(elem, types.RelativeTo(pkg.Types)), sz, cacheLineSize))
				}
			case *types.Basic:
				if u.Info()&types.IsNumeric == 0 || !writes[idx] {
					return true
				}
				out = append(out, prog.diag(idx.Pos(), "falseshare",
					"per-worker write to bare %s slot: adjacent workers' counters share a cache line — use a padded per-worker struct (see par.Counter)",
					u.String()))
			}
			return true
		})
	})
	return out
}

// workerParamObjs collects the parameter objects of node whose names mark
// them as worker ids.
func workerParamObjs(pkg *Package, node ast.Node) map[types.Object]bool {
	var ft *ast.FuncType
	switch f := node.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	objs := map[types.Object]bool{}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if workerParamNames[name.Name] {
				if obj := pkg.Info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	return objs
}

// elemType returns the element type when base is a slice, array, or pointer
// to array.
func elemType(pkg *Package, base ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[base]
	if !ok {
		return nil
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	case *types.Pointer:
		if a, isArr := t.Elem().Underlying().(*types.Array); isArr {
			return a.Elem()
		}
	}
	return nil
}
