package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ProtoExhaustive is the proto-exhaustive check: a switch over an integer
// discriminator whose case constants come from one iota const block (an "op
// set", like the cluster protocol's frame types and superstep op codes) must
// either cover every constant of the block or carry a failing default — one
// that cannot fall through to the code after the switch (return, panic, a
// terminating call). A silent default on a protocol dispatch is exactly how
// an unknown or misrouted frame disappears instead of failing the link.
func ProtoExhaustive() Check {
	return Check{
		Name:  "proto-exhaustive",
		Doc:   "switches over iota-block discriminators cover every constant or fail on default",
		Level: "error",
		Run:   runProtoExhaustive,
	}
}

// iotaGroups indexes, per package, every constant declared in a const block
// that uses iota, keyed by constant object.
type iotaGroup struct {
	name    string // the first constant's name, labeling the block
	members []*types.Const
}

func collectIotaGroups(pkg *Package) map[*types.Const]*iotaGroup {
	idx := map[*types.Const]*iotaGroup{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			usesIota := false
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok && id.Name == "iota" {
							if _, isBuiltin := pkg.Info.Uses[id].(*types.Const); isBuiltin || pkg.Info.Uses[id] == nil {
								usesIota = true
							}
						}
						return true
					})
				}
			}
			if !usesIota {
				continue
			}
			g := &iotaGroup{}
			for _, spec := range gd.Specs {
				for _, name := range spec.(*ast.ValueSpec).Names {
					if name.Name == "_" {
						continue
					}
					if c, ok := pkg.Info.Defs[name].(*types.Const); ok {
						if g.name == "" {
							g.name = c.Name()
						}
						g.members = append(g.members, c)
						idx[c] = g
					}
				}
			}
		}
	}
	return idx
}

func runProtoExhaustive(prog *Program) []Diagnostic {
	fs := prog.flowInfo()
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		groups := collectIotaGroups(pkg)
		if len(groups) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				out = append(out, checkSwitch(prog, fs, pkg, groups, sw)...)
				return true
			})
		}
	}
	return out
}

// checkSwitch analyzes one tagged switch against the iota-group index.
func checkSwitch(prog *Program, fs *flowState, pkg *Package, groups map[*types.Const]*iotaGroup, sw *ast.SwitchStmt) []Diagnostic {
	if tv, ok := pkg.Info.Types[sw.Tag]; !ok || tv.Type == nil || !isIntegerType(tv.Type) {
		return nil
	}
	var group *iotaGroup
	covered := map[*types.Const]bool{}
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			c := constOf(pkg.Info, e)
			if c == nil {
				return nil // non-constant case: not an op dispatch
			}
			g, ok := groups[c]
			if !ok {
				return nil // constant outside any iota block
			}
			if group == nil {
				group = g
			} else if group != g {
				return nil // cases from two blocks: not a single op set
			}
			covered[c] = true
		}
	}
	if group == nil {
		return nil
	}
	var missing []string
	for _, m := range group.members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	if defaultClause != nil && clauseTerminates(fs, pkg, defaultClause.Body) {
		return nil
	}
	shown := missing
	if len(shown) > 4 {
		shown = append(append([]string{}, shown[:4]...), "...")
	}
	what := "has no default"
	if defaultClause != nil {
		what = "its default can fall through"
	}
	return []Diagnostic{prog.diag(sw.Pos(), "proto-exhaustive",
		"switch covers %d of %d constants in the %s iota block (missing %s) and %s: unknown values pass silently",
		len(covered), len(group.members), group.name, strings.Join(shown, ", "), what)}
}

// constOf resolves a case expression to the constant object it names.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// isIntegerType reports whether t's underlying type is an integer (byte and
// named op types included).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// clauseTerminates reports whether a statement list cannot fall off its end:
// every path returns, panics, makes a terminating call, or branches away
// from the switch. Under-approximates (an unrecognized shape counts as
// falling through), which is the conservative direction for the check.
func clauseTerminates(fs *flowState, pkg *Package, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	last := stmts[len(stmts)-1]
	switch s := last.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// goto leaves the clause; continue re-enters an enclosing loop
		// rather than falling into post-switch code. break falls through to
		// the join, which is the silent path.
		return s.Tok == token.GOTO || s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return fs.cg.Terminates(pkg.Info, call)
		}
	case *ast.BlockStmt:
		return clauseTerminates(fs, pkg, s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		thenOK := clauseTerminates(fs, pkg, s.Body.List)
		var elseOK bool
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseOK = clauseTerminates(fs, pkg, e.List)
		case *ast.IfStmt:
			elseOK = clauseTerminates(fs, pkg, []ast.Stmt{e})
		}
		return thenOK && elseOK
	case *ast.ForStmt:
		// for {} with no condition and no break never falls through.
		if s.Cond == nil && !hasBreak(s.Body) {
			return true
		}
	}
	return false
}

// hasBreak reports whether body contains an unlabeled break binding to the
// enclosing loop (nested loops, switches, and selects capture their own).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
	return found
}
