package analysis

import (
	"go/ast"
	"go/constant"
)

// WGBalance is the wg-balance check for sync.WaitGroup misuse, per function:
//
//   - Rule A (racy Add): X.Add called inside a goroutine body while the
//     same function calls X.Wait. Wait may run before the goroutine's Add,
//     observing a zero counter and returning early — the classic
//     add-inside-goroutine race the race detector only catches when the
//     schedule cooperates.
//
//   - Rule B (constant mismatch): when every X.Add in the function has a
//     constant positive argument, none sits inside a loop or goroutine,
//     and X never escapes (no call receives it, no non-go function literal
//     captures it), the total added must equal the number of completions:
//     direct X.Done calls plus `go` statements whose body calls X.Done.
//     A go statement inside a loop makes the count unknowable and bails.
//
// WaitGroup identity is the syntactic receiver chain (exprKey), same as
// lock-discipline.
func WGBalance() Check {
	return Check{
		Name:  "wg-balance",
		Doc:   "WaitGroup Add/Done counts match and Add never races Wait",
		Level: "error",
		Run:   runWGBalance,
	}
}

func runWGBalance(prog *Program) []Diagnostic {
	var out []Diagnostic
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		out = append(out, wgCheckFunc(prog, pkg, node, body)...)
	})
	return out
}

// wgUse accumulates everything one function does with one WaitGroup key.
type wgUse struct {
	addConst     int64 // sum of constant Add arguments outside loops/goroutines
	addCalls     int   // total Add call count
	addNonConst  bool  // some Add argument is not a constant
	addInLoop    bool  // some Add sits inside a loop
	addInGo      []ast.Node
	doneDirect   int  // Done calls outside go statements
	doneGoStmts  int  // go statements whose body calls Done
	goInLoop     bool // a Done-completing go statement sits inside a loop
	waits        []ast.Node
	escapes      bool // passed to a call or captured by a non-go literal
	firstAddNode ast.Node
}

func wgCheckFunc(prog *Program, pkg *Package, fnNode ast.Node, body *ast.BlockStmt) []Diagnostic {
	uses := map[string]*wgUse{}
	use := func(key string) *wgUse {
		u := uses[key]
		if u == nil {
			u = &wgUse{}
			uses[key] = u
		}
		return u
	}

	// Pass 1: classify every WaitGroup operation with its enclosing-loop and
	// enclosing-go context, walking only this function's own statements.
	var walk func(n ast.Node, inLoop, inGo bool, goRoot ast.Node)
	walk = func(n ast.Node, inLoop, inGo bool, goRoot ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walkEach(n.Init, n.Cond, inLoop, inGo, goRoot, walk)
			walk(n.Body, true, inGo, goRoot)
			walkEach(n.Post, nil, true, inGo, goRoot, walk)
			return
		case *ast.RangeStmt:
			walkEach(n.X, nil, inLoop, inGo, goRoot, walk)
			walk(n.Body, true, inGo, goRoot)
			return
		case *ast.GoStmt:
			// The spawned body (literal or named callee's args) runs
			// concurrently. Only literals are attributed; a named callee
			// receiving the wg counts as escape in pass 2.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				walk(lit.Body, false, true, n)
			}
			for _, a := range n.Call.Args {
				walk(a, inLoop, inGo, goRoot)
			}
			return
		case *ast.FuncLit:
			return // non-go nested literal: handled by eachFunc on its own; capture = escape (pass 2)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isSyncType(tv.Type, "WaitGroup") {
					if key := exprKey(sel.X); key != "" {
						u := use(key)
						switch sel.Sel.Name {
						case "Add":
							u.addCalls++
							if u.firstAddNode == nil {
								u.firstAddNode = n
							}
							if inGo {
								u.addInGo = append(u.addInGo, goRoot)
							}
							if inLoop {
								u.addInLoop = true
							}
							v := constInt(pkg, n.Args)
							if v == nil {
								u.addNonConst = true
							} else if !inLoop && !inGo {
								u.addConst += *v
							}
						case "Done":
							if inGo {
								// counted per-go in pass 3
							} else {
								u.doneDirect++
							}
						case "Wait":
							u.waits = append(u.waits, n)
						}
					}
				}
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n || c == nil {
				return true
			}
			walk(c, inLoop, inGo, goRoot)
			return false
		})
	}
	walk(body, false, false, nil)

	// Pass 3 (interleaved above is awkward for go-literal Done counting, so
	// do it directly): count go statements whose literal body calls Done on
	// each key, and whether any such go sits in a loop.
	countGoDones(pkg, body, uses)

	// Pass 2: escape analysis — a WaitGroup passed as a call argument (incl.
	// `go namedFunc(&wg)`) or captured by a non-go function literal leaves
	// this function's accounting.
	markEscapes(pkg, body, uses)

	var out []Diagnostic
	for key, u := range uses {
		// Rule A: Add inside a goroutine racing a Wait in the same function.
		if len(u.addInGo) > 0 && len(u.waits) > 0 {
			out = append(out, prog.diag(u.addInGo[0].Pos(), "wg-balance",
				"%s.Add runs inside a goroutine while %s also calls %s.Wait: Wait can observe the counter before Add runs; call Add before the go statement", key, funcLabel(fnNode), key))
		}
		// Rule B: constant accounting.
		if u.addCalls == 0 || u.addNonConst || u.addInLoop || len(u.addInGo) > 0 ||
			u.escapes || u.goInLoop {
			continue
		}
		completions := int64(u.doneDirect + u.doneGoStmts)
		if u.addConst != completions {
			out = append(out, prog.diag(u.firstAddNode.Pos(), "wg-balance",
				"%s.Add totals %d but %s completes it %d time(s): Wait will %s", key, u.addConst, funcLabel(fnNode), completions, mismatchEffect(u.addConst, completions)))
		}
	}
	return out
}

func mismatchEffect(added, completed int64) string {
	if added > completed {
		return "block forever"
	}
	return "panic on negative counter"
}

// walkEach walks up to two child nodes with the given context.
func walkEach(a, b ast.Node, inLoop, inGo bool, goRoot ast.Node, walk func(ast.Node, bool, bool, ast.Node)) {
	if a != nil {
		walk(a, inLoop, inGo, goRoot)
	}
	if b != nil {
		walk(b, inLoop, inGo, goRoot)
	}
}

// constInt evaluates the first argument as a constant int64, or nil.
func constInt(pkg *Package, args []ast.Expr) *int64 {
	if len(args) != 1 {
		return nil
	}
	tv, ok := pkg.Info.Types[args[0]]
	if !ok || tv.Value == nil {
		return nil
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return nil
	}
	return &v
}

// countGoDones walks the function's own statements counting `go func(){...}`
// spawns whose body calls X.Done, per key.
func countGoDones(pkg *Package, body *ast.BlockStmt, uses map[string]*wgUse) {
	var inLoop func(n ast.Node, loop bool)
	inLoop = func(n ast.Node, loop bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.ForStmt:
				inLoop(c.Body, true)
				return false
			case *ast.RangeStmt:
				inLoop(c.Body, true)
				return false
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(c.Call.Fun).(*ast.FuncLit); ok {
					for _, key := range doneKeysIn(pkg, lit.Body) {
						if u, ok := uses[key]; ok {
							u.doneGoStmts++
							if loop {
								u.goInLoop = true
							}
						}
					}
				}
				return false
			case *ast.FuncLit:
				return false // skip non-go literals
			}
			return true
		})
	}
	inLoop(body, false)
}

// doneKeysIn returns the WaitGroup keys on which a block calls Done.
func doneKeysIn(pkg *Package, body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || !isSyncType(tv.Type, "WaitGroup") {
			return true
		}
		if key := exprKey(sel.X); key != "" && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		return true
	})
	return keys
}

// markEscapes flags keys whose WaitGroup is passed to a call or referenced
// inside a non-go function literal.
func markEscapes(pkg *Package, body *ast.BlockStmt, uses map[string]*wgUse) {
	keyOfExpr := func(e ast.Expr) string {
		tv, ok := pkg.Info.Types[e]
		if !ok || !isSyncType(tv.Type, "WaitGroup") {
			return ""
		}
		return exprKey(e)
	}
	var visit func(n ast.Node, inGoLit bool)
	visit = func(n ast.Node, inGoLit bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(c.Call.Fun).(*ast.FuncLit); ok {
					visit(lit.Body, true)
					for _, a := range c.Call.Args {
						visit(a, inGoLit)
					}
					return false
				}
				// go namedFunc(...): arguments escape below via CallExpr.
			case *ast.FuncLit:
				if !inGoLit {
					// Capture by an arbitrary literal: escapes.
					for _, key := range wgKeysReferenced(pkg, c.Body) {
						if u, ok := uses[key]; ok {
							u.escapes = true
						}
					}
				}
				return false
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
					if keyOfExpr(sel.X) != "" {
						switch sel.Sel.Name {
						case "Add", "Done", "Wait":
							return true // the tracked ops themselves
						}
					}
				}
				for _, a := range c.Args {
					if key := keyOfExpr(a); key != "" {
						if u, ok := uses[key]; ok {
							u.escapes = true
						}
					}
					if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op.String() == "&" {
						if key := keyOfExpr(un.X); key != "" {
							if u, ok := uses[key]; ok {
								u.escapes = true
							}
						}
					}
				}
			}
			return true
		})
	}
	visit(body, false)
}

// wgKeysReferenced returns keys of WaitGroup-typed expressions referenced in
// a block.
func wgKeysReferenced(pkg *Package, body ast.Node) []string {
	seen := map[string]bool{}
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[e]
		if !ok || !isSyncType(tv.Type, "WaitGroup") {
			return true
		}
		if key := exprKey(e); key != "" && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		return true
	})
	return keys
}
