package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicAlign is the atomic-align check: every word reached by a 64-bit
// sync/atomic operation must be 8-byte aligned under the strictest 32-bit
// layout (gc/386), where int64 has only 4-byte natural alignment. The
// tree-grafting kernels put their hot words (frontier cursors, per-worker
// counters, mate CAS words) inside structs, and a field that lands on a
// 4-mod-8 offset panics at runtime on 386/arm — a failure the race detector
// and amd64 CI can never see. Addressed through the alignment rules the
// sync/atomic documentation guarantees: the first word of an allocated
// struct, slice element array, or package-level variable is 64-bit aligned.
func AtomicAlign() Check {
	return Check{
		Name:  "atomic-align",
		Doc:   "64-bit sync/atomic operands must be 8-byte aligned under GOARCH=386 layout",
		Level: "error",
		Run:   runAtomicAlign,
	}
}

func runAtomicAlign(prog *Program) []Diagnostic {
	var out []Diagnostic
	prog.eachFunc(func(pkg *Package, node ast.Node, body *ast.BlockStmt) {
		walkShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, addr, ok := atomicCall(pkg, call)
			if !ok || !is64BitAtomic(fn) {
				return true
			}
			if d := prog.checkAddrAlign(pkg, fn, addr); d != nil {
				out = append(out, *d)
			}
			return true
		})
	})
	return out
}

// checkAddrAlign validates the 386 alignment of the operand of a 64-bit
// atomic, following the addressing chain down to an alignment anchor (an
// allocation or a package-level variable, both 8-aligned by the sync/atomic
// contract).
func (prog *Program) checkAddrAlign(pkg *Package, fn string, addr ast.Expr) *Diagnostic {
	switch e := addr.(type) {
	case *ast.SelectorExpr:
		f := fieldSelection(pkg, e)
		if f == nil {
			return nil // package-qualified var: 8-aligned by the spec
		}
		off, ok := prog.selectionOffset32(pkg, e)
		if !ok {
			return nil
		}
		if off%8 != 0 {
			d := prog.diag(e.Sel.Pos(), "atomic-align",
				"atomic.%s on field %s at 32-bit offset %d (need 8-byte alignment on GOARCH=386/arm); move it to the front of the struct or pad before it",
				fn, f.Name(), off)
			return &d
		}
		return prog.checkBaseAlign(pkg, fn, ast.Unparen(e.X))
	case *ast.IndexExpr:
		return prog.checkIndexAlign(pkg, fn, e)
	}
	// Bare identifiers (package-level or escaping local vars) and
	// dereferences anchor a fresh allocation: 8-aligned by the spec.
	return nil
}

// checkBaseAlign validates the part of the chain *enclosing* an already
// 8-aligned offset: the enclosing struct itself must sit on an 8-aligned
// base for the field offset to mean anything.
func (prog *Program) checkBaseAlign(pkg *Package, fn string, base ast.Expr) *Diagnostic {
	switch e := base.(type) {
	case *ast.SelectorExpr:
		if f := fieldSelection(pkg, e); f != nil {
			off, ok := prog.selectionOffset32(pkg, e)
			if !ok {
				return nil
			}
			if off%8 != 0 {
				d := prog.diag(e.Sel.Pos(), "atomic-align",
					"atomic.%s target nested in field %s at 32-bit offset %d (need 8-byte alignment on GOARCH=386/arm)",
					fn, f.Name(), off)
				return &d
			}
			return prog.checkBaseAlign(pkg, fn, ast.Unparen(e.X))
		}
		return nil
	case *ast.IndexExpr:
		return prog.checkIndexAlign(pkg, fn, e)
	}
	return nil
}

// checkIndexAlign validates element addressing: elements keep the base
// alignment only when the element size is a multiple of 8 under 386 layout.
func (prog *Program) checkIndexAlign(pkg *Package, fn string, e *ast.IndexExpr) *Diagnostic {
	tv, ok := pkg.Info.Types[e.X]
	if !ok {
		return nil
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Pointer:
		if a, isArr := t.Elem().Underlying().(*types.Array); isArr {
			elem = a.Elem()
		}
	}
	if elem == nil {
		return nil
	}
	if sz := prog.Sizes32.Sizeof(elem); sz%8 != 0 {
		d := prog.diag(e.Pos(), "atomic-align",
			"atomic.%s on an element of %s (32-bit element size %d not a multiple of 8; elements beyond index 0 lose 8-byte alignment on GOARCH=386/arm)",
			fn, types.TypeString(tv.Type, types.RelativeTo(pkg.Types)), sz)
		return &d
	}
	return prog.checkBaseAlign(pkg, fn, ast.Unparen(e.X))
}

// selectionOffset32 computes the byte offset of the field named by sel
// within its immediately enclosing struct chain (through embedded value
// fields) under 386 layout. The second result is false when the offset is
// not meaningful (e.g. selection through an embedded pointer, which anchors
// a fresh 8-aligned allocation).
func (prog *Program) selectionOffset32(pkg *Package, sel *ast.SelectorExpr) (int64, bool) {
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return 0, false
	}
	t := s.Recv()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	var off int64
	for _, idx := range s.Index() {
		st, isStruct := t.Underlying().(*types.Struct)
		if !isStruct {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += prog.Sizes32.Offsetsof(fields)[idx]
		ft := st.Field(idx).Type()
		if p, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			// Embedded pointer: the tail of the path lives in its own
			// allocation; restart the offset at that anchor.
			off = 0
			t = p.Elem()
			continue
		}
		t = ft
	}
	return off, true
}
