package gen

import (
	"testing"

	"graftmatch/internal/bipartite"
)

func validate(t *testing.T, g *bipartite.Graph) {
	t.Helper()
	if err := bipartite.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestERDeterministic(t *testing.T) {
	a := ER(50, 60, 200, 7)
	b := ER(50, 60, 200, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(nil), b.Edges(nil)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different edges at %d", i)
		}
	}
	c := ER(50, 60, 200, 8)
	ec := c.Edges(nil)
	same := len(ec) == len(ea)
	if same {
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestERShapes(t *testing.T) {
	g := ER(100, 50, 300, 1)
	if g.NX() != 100 || g.NY() != 50 {
		t.Fatalf("sizes %d,%d", g.NX(), g.NY())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	validate(t, g)
	empty := ER(0, 10, 50, 1)
	if empty.NumEdges() != 0 {
		t.Fatal("edges in empty part graph")
	}
}

func TestGridPerfectStructure(t *testing.T) {
	g := Grid(8, 8)
	validate(t, g)
	if g.NX() != 64 || g.NY() != 64 {
		t.Fatalf("sizes %d,%d", g.NX(), g.NY())
	}
	// Diagonal present: every vertex has its own column → perfect matching
	// exists trivially.
	for v := int32(0); v < 64; v++ {
		if !g.HasEdge(v, v) {
			t.Fatalf("diagonal (%d,%d) missing", v, v)
		}
	}
	// Interior vertex has 5 neighbors (self + 4 lattice).
	interior := int32(3*8 + 3)
	if d := g.DegX(interior); d != 5 {
		t.Fatalf("interior degree = %d, want 5", d)
	}
	// Corner has 3.
	if d := g.DegX(0); d != 3 {
		t.Fatalf("corner degree = %d, want 3", d)
	}
}

func TestMesh(t *testing.T) {
	g := Mesh(6, 7, 3)
	validate(t, g)
	if g.NX() != 42 || g.NY() != 42 {
		t.Fatalf("sizes %d,%d", g.NX(), g.NY())
	}
	for v := int32(0); v < 42; v++ {
		if !g.HasEdge(v, v) {
			t.Fatalf("diagonal missing at %d", v)
		}
	}
}

func TestRoadNet(t *testing.T) {
	g := RoadNet(10, 10, 0.9, 2)
	validate(t, g)
	s := bipartite.ComputeStats(g)
	if s.MaxDegX > 12 {
		t.Fatalf("road network should have low degree, max = %d", s.MaxDegX)
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	validate(t, g)
	if g.NX() != 1024 {
		t.Fatalf("nx = %d", g.NX())
	}
	s := bipartite.ComputeStats(g)
	// RMAT with Graph500 parameters is heavily skewed.
	if s.DegSkewX < 5 {
		t.Fatalf("RMAT skew = %f, want > 5", s.DegSkewX)
	}
}

func TestScaleFreeSkew(t *testing.T) {
	g := ScaleFree(512, 512, 4, 4)
	validate(t, g)
	s := bipartite.ComputeStats(g)
	if s.MaxDegY < 3*int64(s.MeanDegY) {
		t.Fatalf("scale-free Y degrees not skewed: max=%d mean=%f", s.MaxDegY, s.MeanDegY)
	}
	if trivial := ScaleFree(4, 0, 2, 1); trivial.NumEdges() != 0 {
		t.Fatal("edges with empty Y part")
	}
}

func TestWebLikeLowMatchingNumber(t *testing.T) {
	g := WebLike(10, 6, 0.4, 5)
	validate(t, g)
	// The hub core (n/8 Y vertices) absorbs every edge of the ~40% "leaf"
	// X vertices, capping the matching number well below n: the König
	// cover {core} ∪ {live X} bounds |M| ≤ core + 0.6n + slack. Verify the
	// structural signature instead of solving: the core must be massively
	// oversubscribed.
	s := bipartite.ComputeStats(g)
	if s.MaxDegY < 10*int64(s.MeanDegY+1) {
		t.Fatalf("hub core not oversubscribed: max=%d mean=%f", s.MaxDegY, s.MeanDegY)
	}
}

func TestRankDeficientBound(t *testing.T) {
	g := RankDeficient(100, 100, 40, 3, 6)
	validate(t, g)
	// All edges must land in the Y core [0, 40): the core is a vertex
	// cover, so by König the maximum matching is at most 40.
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if y >= 40 {
				t.Fatalf("edge (%d,%d) escapes the deficient core", x, y)
			}
		}
	}
	// Rows 0..39 have their private diagonal, so the maximum is exactly 40.
	for x := int32(0); x < 40; x++ {
		if !g.HasEdge(x, x) {
			t.Fatalf("diagonal (%d,%d) missing", x, x)
		}
	}
	// Clamping of an oversized target.
	h := RankDeficient(10, 10, 99, 1, 1)
	validate(t, h)
}

func TestBanded(t *testing.T) {
	g := Banded(50, 2, 1.0, 9)
	validate(t, g)
	for i := int32(0); i < 50; i++ {
		if !g.HasEdge(i, i) {
			t.Fatalf("diagonal missing at %d", i)
		}
		for _, y := range g.NbrX(i) {
			if y < i-2 || y > i+2 {
				t.Fatalf("edge (%d,%d) outside band", i, y)
			}
		}
	}
}

func TestStripDiagonal(t *testing.T) {
	g := Grid(6, 6)
	s := StripDiagonal(g)
	validate(t, s)
	if s.NumEdges() != g.NumEdges()-int64(g.NX()) {
		t.Fatalf("stripped %d edges, want %d", g.NumEdges()-s.NumEdges(), g.NX())
	}
	for v := int32(0); v < s.NX(); v++ {
		if s.HasEdge(v, v) {
			t.Fatalf("diagonal (%d,%d) survived", v, v)
		}
	}
	// Off-diagonal edges preserved.
	for x := int32(0); x < g.NX(); x++ {
		for _, y := range g.NbrX(x) {
			if x != y && !s.HasEdge(x, y) {
				t.Fatalf("edge (%d,%d) lost", x, y)
			}
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(10)
	validate(t, g)
	if g.NumEdges() != 19 {
		t.Fatalf("edges = %d, want 19", g.NumEdges())
	}
	if g.DegX(0) != 1 || g.DegX(5) != 2 {
		t.Fatalf("degrees: %d, %d", g.DegX(0), g.DegX(5))
	}
	if Chain(0).NumEdges() != 0 {
		t.Fatal("empty chain has edges")
	}
}
